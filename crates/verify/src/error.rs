//! Verifier errors.

use std::fmt;

/// Errors raised while building alphabets or exploring state spaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A static language error.
    Lang(polysig_lang::LangError),
    /// A simulation error that is not an environment-constraint violation
    /// (those are pruned during exploration).
    Sim(polysig_sim::SimError),
    /// The exploration hit its state cap before exhausting the reachable
    /// space; the verdict would be unsound.
    StateCapExceeded {
        /// The cap that was hit.
        cap: usize,
    },
    /// The alphabet is empty — nothing to explore.
    EmptyAlphabet,
    /// The program or property falls outside the fragment the symbolic
    /// (BMC) backend can encode; rerun with the explicit backend.
    BmcUnsupported {
        /// What could not be encoded.
        reason: String,
    },
    /// The symbolic backend produced a model that does not replay on the
    /// concrete reactor — an encoder/executor divergence, never a verdict.
    BmcInternal {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Lang(e) => write!(f, "{e}"),
            VerifyError::Sim(e) => write!(f, "{e}"),
            VerifyError::StateCapExceeded { cap } => {
                write!(f, "state cap of {cap} exceeded before exhausting the reachable space")
            }
            VerifyError::EmptyAlphabet => write!(f, "input alphabet is empty"),
            VerifyError::BmcUnsupported { reason } => {
                write!(f, "symbolic backend cannot encode this query: {reason}")
            }
            VerifyError::BmcInternal { reason } => {
                write!(f, "symbolic backend internal error: {reason}")
            }
        }
    }
}

impl std::error::Error for VerifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerifyError::Lang(e) => Some(e),
            VerifyError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<polysig_lang::LangError> for VerifyError {
    fn from(e: polysig_lang::LangError) -> Self {
        VerifyError::Lang(e)
    }
}

impl From<polysig_sim::SimError> for VerifyError {
    fn from(e: polysig_sim::SimError) -> Self {
        VerifyError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(VerifyError::StateCapExceeded { cap: 10 }.to_string().contains("10"));
        assert!(!VerifyError::EmptyAlphabet.to_string().is_empty());
    }

    #[test]
    fn conversion_from_sim() {
        let e: VerifyError = polysig_sim::SimError::NotAnInput { name: "x".into() }.into();
        assert!(matches!(e, VerifyError::Sim(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
