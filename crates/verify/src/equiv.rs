//! Differential equivalence oracles.
//!
//! Theorems 1 and 2 say the desynchronized network is *flow-equivalent*
//! (Definition 4) to the original synchronous composition on the signals of
//! interest. [`compare_flows`] validates that end-to-end: run the two
//! programs over an ensemble of paired scenarios and compare the value
//! flows of mapped signals — exactly, or up to a consumer-side prefix when
//! messages may still be in flight at the end of the finite run.

use polysig_lang::Program;
use polysig_sim::{Scenario, Simulator};
use polysig_tagged::{SigName, Value};

use crate::error::VerifyError;

/// How the right-hand program's flow may relate to the left's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowRelation {
    /// Flows must be identical (complete delivery).
    Equal,
    /// The right flow must be a prefix of the left flow (in-flight
    /// messages allowed).
    PrefixOfLeft,
}

/// One mismatch found by [`compare_flows`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Index into the scenario ensemble.
    pub scenario: usize,
    /// The left program's signal.
    pub left_signal: SigName,
    /// The right program's signal.
    pub right_signal: SigName,
    /// The left flow.
    pub left_flow: Vec<Value>,
    /// The right flow.
    pub right_flow: Vec<Value>,
}

/// The outcome of a differential comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComparisonReport {
    /// Scenario pairs executed.
    pub scenarios: usize,
    /// Signal comparisons that matched.
    pub matches: usize,
    /// Every mismatch, with both flows for diagnosis.
    pub mismatches: Vec<Mismatch>,
}

impl ComparisonReport {
    /// `true` iff every comparison matched.
    pub fn all_match(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Scenario pairs per worker below which the fan-out isn't worth the two
/// extra program elaborations a parallel chunk pays for its simulators.
const MIN_PAIRS_PER_CHUNK: usize = 4;

/// Runs `left` and `right` over paired scenarios and compares the flows of
/// the mapped signals under `relation`, using the workspace default worker
/// count (see [`compare_flows_with`]).
///
/// # Errors
///
/// Surfaces elaboration or reaction errors of either program.
pub fn compare_flows(
    left: &Program,
    right: &Program,
    scenario_pairs: &[(Scenario, Scenario)],
    signal_map: &[(SigName, SigName)],
    relation: FlowRelation,
) -> Result<ComparisonReport, VerifyError> {
    compare_flows_with(
        left,
        right,
        scenario_pairs,
        signal_map,
        relation,
        crossbeam::pool::default_threads(),
    )
}

/// [`compare_flows`] with an explicit worker thread count.
///
/// Scenario pairs are independent, so large ensembles are split into
/// contiguous chunks, each executed on its own pair of simulators; chunk
/// results are merged in scenario order, so the report (and, on failure,
/// the surfaced error — always the earliest-indexed one) is identical for
/// every `threads` value.
pub fn compare_flows_with(
    left: &Program,
    right: &Program,
    scenario_pairs: &[(Scenario, Scenario)],
    signal_map: &[(SigName, SigName)],
    relation: FlowRelation,
    threads: usize,
) -> Result<ComparisonReport, VerifyError> {
    // elaborate both programs up front: static errors surface even for an
    // empty ensemble, and the sequential path reuses these simulators
    let mut left_sim = Simulator::for_program(left)?;
    let mut right_sim = Simulator::for_program(right)?;
    let mut report =
        ComparisonReport { scenarios: scenario_pairs.len(), matches: 0, mismatches: Vec::new() };

    if threads <= 1 || scenario_pairs.len() < 2 * MIN_PAIRS_PER_CHUNK {
        let (matches, mismatches) =
            run_pairs(&mut left_sim, &mut right_sim, 0, scenario_pairs, signal_map, relation)?;
        report.matches = matches;
        report.mismatches = mismatches;
        return Ok(report);
    }

    let outs = crossbeam::pool::map_chunks(
        threads,
        scenario_pairs,
        MIN_PAIRS_PER_CHUNK,
        |start, chunk| -> Result<(usize, Vec<Mismatch>), VerifyError> {
            let mut ls = Simulator::for_program(left)?;
            let mut rs = Simulator::for_program(right)?;
            run_pairs(&mut ls, &mut rs, start, chunk, signal_map, relation)
        },
    );
    // merge in chunk (= scenario) order; the first error in order is the
    // one the sequential run would have hit first
    for out in outs {
        let (matches, mismatches) = out?;
        report.matches += matches;
        report.mismatches.extend(mismatches);
    }
    Ok(report)
}

/// Runs one contiguous slice of the ensemble on the given simulators;
/// `first_index` is the slice's offset into the full ensemble.
fn run_pairs(
    left_sim: &mut Simulator,
    right_sim: &mut Simulator,
    first_index: usize,
    pairs: &[(Scenario, Scenario)],
    signal_map: &[(SigName, SigName)],
    relation: FlowRelation,
) -> Result<(usize, Vec<Mismatch>), VerifyError> {
    let mut matches = 0usize;
    let mut mismatches = Vec::new();
    for (offset, (ls, rs)) in pairs.iter().enumerate() {
        left_sim.reset();
        right_sim.reset();
        let lrun = left_sim.run(ls)?;
        let rrun = right_sim.run(rs)?;
        for (lsig, rsig) in signal_map {
            let lf = lrun.flow(lsig);
            let rf = rrun.flow(rsig);
            let ok = match relation {
                FlowRelation::Equal => lf == rf,
                FlowRelation::PrefixOfLeft => rf.len() <= lf.len() && lf[..rf.len()] == rf[..],
            };
            if ok {
                matches += 1;
            } else {
                mismatches.push(Mismatch {
                    scenario: first_index + offset,
                    left_signal: lsig.clone(),
                    right_signal: rsig.clone(),
                    left_flow: lf,
                    right_flow: rf,
                });
            }
        }
    }
    Ok((matches, mismatches))
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_lang::parse_program;
    use polysig_sim::{PeriodicInputs, ScenarioGenerator};
    use polysig_tagged::ValueType;

    fn doubler(name: &str, extra: i64) -> Program {
        parse_program(&format!(
            "process {name} {{ input a: int; output x: int; x := a * 2 + {extra}; }}"
        ))
        .unwrap()
    }

    fn scenarios(n: usize) -> Vec<(Scenario, Scenario)> {
        (0..n)
            .map(|k| {
                let s = PeriodicInputs::new("a", ValueType::Int, 1 + k % 3, k % 2).generate(10);
                (s.clone(), s)
            })
            .collect()
    }

    #[test]
    fn identical_programs_match() {
        let a = doubler("A", 0);
        let b = doubler("B", 0);
        let report =
            compare_flows(&a, &b, &scenarios(5), &[("x".into(), "x".into())], FlowRelation::Equal)
                .unwrap();
        assert!(report.all_match());
        assert_eq!(report.matches, 5);
    }

    #[test]
    fn different_programs_mismatch_with_diagnostics() {
        let a = doubler("A", 0);
        let b = doubler("B", 1);
        let report =
            compare_flows(&a, &b, &scenarios(3), &[("x".into(), "x".into())], FlowRelation::Equal)
                .unwrap();
        assert!(!report.all_match());
        assert_eq!(report.mismatches.len(), 3);
        let m = &report.mismatches[0];
        assert_ne!(m.left_flow, m.right_flow);
        assert_eq!(m.left_flow.len(), m.right_flow.len());
    }

    #[test]
    fn report_is_thread_count_invariant() {
        // large enough ensemble to actually fan out; mismatch indices and
        // order must match the sequential report exactly
        let a = doubler("A", 0);
        let b = doubler("B", 1);
        let pairs = scenarios(16);
        let map = [(SigName::from("x"), SigName::from("x"))];
        let seq = compare_flows_with(&a, &b, &pairs, &map, FlowRelation::Equal, 1).unwrap();
        assert_eq!(seq.mismatches.len(), 16);
        for threads in [2, 4, 8] {
            let par =
                compare_flows_with(&a, &b, &pairs, &map, FlowRelation::Equal, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn prefix_relation_tolerates_lag() {
        // right sees a shorter input scenario → shorter (prefix) flow
        let a = doubler("A", 0);
        let b = doubler("B", 0);
        let long = PeriodicInputs::new("a", ValueType::Int, 1, 0).generate(10);
        let short = PeriodicInputs::new("a", ValueType::Int, 1, 0).generate(6);
        let pairs = vec![(long, short)];
        let eq = compare_flows(&a, &b, &pairs, &[("x".into(), "x".into())], FlowRelation::Equal)
            .unwrap();
        assert!(!eq.all_match());
        let pre =
            compare_flows(&a, &b, &pairs, &[("x".into(), "x".into())], FlowRelation::PrefixOfLeft)
                .unwrap();
        assert!(pre.all_match());
    }
}
