//! Proving exact worst-case bounds by exhaustive exploration.
//!
//! The paper's conclusion asks for algorithms "to make the buffer size
//! estimation and proof automatic". Given a finite-state program and a
//! rate-constrained environment automaton, [`max_signal_value`] explores
//! the *entire* reachable space and returns the largest value an integer
//! signal ever takes — applied to a channel's occupancy `count`, that is a
//! *proof* of the worst-case buffer requirement, not an estimate.
//!
//! The exploration runs on the same layer-synchronous engine as
//! [`crate::reach::check`]; [`max_signal_value_with`] exposes the worker
//! thread count (the maximum is a commutative fold, so the result is
//! identical at any thread count).

use polysig_lang::Program;
use polysig_sim::{DenseEnv, Reactor};
use polysig_tagged::{SigId, SigName, Value};

use crate::alphabet::{Alphabet, EnvAutomaton};
use crate::bmc::Backend;
use crate::error::VerifyError;
use crate::frontier::{self, Inspect};

/// Result of a bound computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundResult {
    /// The maximum value the signal was ever observed to take (`None` when
    /// it never ticked on any reachable path).
    pub max: Option<i64>,
    /// Distinct states visited (the whole reachable space; `0` under the
    /// symbolic backend, which visits no explicit states).
    pub states_explored: usize,
    /// Reactions executed.
    pub transitions: usize,
    /// `true` iff the bound only covers traces up to a depth cutoff (the
    /// symbolic backend); the explicit exploration is exhaustive, so its
    /// maximum is a proven invariant and this is `false`.
    pub depth_bounded: bool,
}

/// Tracks the running maximum of the watched signal across reactions.
struct MaxInspect {
    watched: Option<SigId>,
}

impl Inspect for MaxInspect {
    type Acc = Option<i64>;

    #[inline]
    fn inspect(&self, reaction: &DenseEnv, acc: &mut Option<i64>) -> bool {
        if let Some(watched) = self.watched {
            if let Some(v) = reaction.get(watched).and_then(Value::as_int) {
                *acc = Some(acc.map_or(v, |m| m.max(v)));
            }
        }
        false
    }

    fn merge(into: &mut Option<i64>, from: Option<i64>) {
        if let Some(v) = from {
            *into = Some(into.map_or(v, |m| m.max(v)));
        }
    }
}

/// Explores every reachable state of `program` under `alphabet`/`env` and
/// returns the maximum value ever carried by integer signal `signal`.
///
/// Because the exploration is exhaustive (it aborts rather than truncate),
/// the returned maximum is a proven invariant: `signal ≤ max` on every
/// execution the environment permits.
///
/// Uses the workspace default worker count; see [`max_signal_value_with`]
/// to pin it.
///
/// # Errors
///
/// * [`VerifyError::EmptyAlphabet`] — nothing to explore;
/// * [`VerifyError::StateCapExceeded`] — the space exceeds `max_states`
///   (the bound would be unsound, so no partial answer is returned);
/// * [`VerifyError::Sim`] — a non-clock program error.
pub fn max_signal_value(
    program: &Program,
    alphabet: &Alphabet,
    env: Option<&EnvAutomaton>,
    signal: &SigName,
    max_states: usize,
) -> Result<BoundResult, VerifyError> {
    max_signal_value_with(
        program,
        alphabet,
        env,
        signal,
        max_states,
        crossbeam::pool::default_threads(),
    )
}

/// [`max_signal_value`] with an explicit worker thread count.
///
/// `threads == 1` never spawns; larger values fan each sufficiently large
/// BFS layer across scoped workers. The proven bound and every counter are
/// identical for every `threads` value.
pub fn max_signal_value_with(
    program: &Program,
    alphabet: &Alphabet,
    env: Option<&EnvAutomaton>,
    signal: &SigName,
    max_states: usize,
    threads: usize,
) -> Result<BoundResult, VerifyError> {
    if alphabet.is_empty() {
        return Err(VerifyError::EmptyAlphabet);
    }
    let mut reactor = Reactor::for_program(program)?;
    let free_env;
    let env = match env {
        Some(e) => e,
        None => {
            free_env = EnvAutomaton::free(alphabet);
            &free_env
        }
    };

    let compiled = frontier::compile_boundary(&reactor, alphabet, env)?;
    // an undeclared signal never ticks, so `None` just leaves `max` empty
    let inspect = MaxInspect { watched: reactor.sig_id(signal) };
    let e = frontier::explore(&mut reactor, &compiled, &inspect, max_states, None, threads)?;
    Ok(BoundResult {
        max: e.acc,
        states_explored: e.states.len(),
        transitions: e.transitions,
        depth_bounded: false,
    })
}

/// [`max_signal_value`] dispatched through [`CheckOptions`]: the explicit
/// exhaustive exploration under [`Backend::Explicit`] (using the options'
/// state cap, environment and thread count), or the symbolic bounded
/// maximization under [`Backend::Bmc`] (the returned bound then only covers
/// traces up to that depth — `depth_bounded` is set).
///
/// # Errors
///
/// As [`max_signal_value`]; the symbolic backend additionally reports
/// [`VerifyError::BmcUnsupported`] outside its encodable fragment.
pub fn max_signal_value_opts(
    program: &Program,
    alphabet: &Alphabet,
    signal: &SigName,
    options: &crate::reach::CheckOptions,
) -> Result<BoundResult, VerifyError> {
    match options.backend {
        Backend::Explicit => max_signal_value_with(
            program,
            alphabet,
            options.env.as_ref(),
            signal,
            options.max_states,
            options.threads,
        ),
        Backend::Bmc { depth } => {
            crate::bmc::run_bound(program, alphabet, options.env.as_ref(), signal, depth)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Letter;
    use polysig_gals::nfifo::nfifo_component;
    use polysig_gals::{desynchronize, DesyncOptions};
    use polysig_lang::parse_program;

    fn letters(seq: &[(&[(&str, Value)], usize)]) -> (Alphabet, EnvAutomaton) {
        // seq of (letter contents, _) cycled
        let ls: Vec<Letter> = seq
            .iter()
            .map(|(pairs, _)| {
                pairs.iter().map(|(n, v)| (SigName::from(*n), *v)).collect::<Letter>()
            })
            .collect();
        let mut alphabet = Alphabet::from_letters(ls.clone()).unwrap();
        let env = EnvAutomaton::cycle(&mut alphabet, &ls);
        (alphabet, env)
    }

    #[test]
    fn proves_fifo_occupancy_bound() {
        // 2 writes then 2 reads, cycled, on a depth-3 FIFO. The *ideal*
        // queue bound for this environment is 2; the chain's ripple latency
        // (early reads miss while items are still in transit) provably
        // retains one more item: the exhaustive exploration certifies 3 —
        // an honest measurement of the Section-5.1 construction's cost.
        let p = polysig_lang::Program::single(nfifo_component("ch", 3));
        let (alphabet, env) = letters(&[
            (&[("tick", Value::TRUE), ("ch_in", Value::Int(1))], 0),
            (&[("tick", Value::TRUE), ("ch_in", Value::Int(1))], 0),
            (&[("tick", Value::TRUE), ("ch_rd", Value::TRUE)], 0),
            (&[("tick", Value::TRUE), ("ch_rd", Value::TRUE)], 0),
        ]);
        let r = max_signal_value(&p, &alphabet, Some(&env), &"ch_count".into(), 100_000).unwrap();
        assert_eq!(r.max, Some(3), "ideal bound 2 + one in-ripple item");
        assert!(r.states_explored > 1);
        // sanity: the bound can never exceed the declared depth
        assert!(r.max.unwrap() <= 3);
    }

    #[test]
    fn proven_bound_equals_the_minimal_safe_depth() {
        // the "automatic proof" workflow: prove the occupancy bound on a
        // generously sized channel, then check the bound-sized channel is
        // alarm-free — estimation made exact
        let prog = parse_program(
            "process P { input a: int; output x: int; x := a; } \
             process Q { input x: int; output y: int; y := x; }",
        )
        .unwrap();
        let generous = desynchronize(&prog, &DesyncOptions::with_size(6)).unwrap();
        let (alphabet, env) = letters(&[
            (&[("tick", Value::TRUE), ("a", Value::Int(1))], 0),
            (&[("tick", Value::TRUE), ("a", Value::Int(1))], 0),
            (&[("tick", Value::TRUE), ("x_rd", Value::TRUE)], 0),
            (&[("tick", Value::TRUE), ("x_rd", Value::TRUE)], 0),
        ]);
        let r =
            max_signal_value(&generous.program, &alphabet, Some(&env), &"x_count".into(), 100_000)
                .unwrap();
        let bound = r.max.unwrap() as usize;
        // at least the ideal backlog of 2; bounded by the generous depth
        assert!((2..=6).contains(&bound), "got {bound}");
        // the proven bound is safe…
        let sized = desynchronize(&prog, &DesyncOptions::with_size(bound)).unwrap();
        let (alphabet2, env2) = letters(&[
            (&[("tick", Value::TRUE), ("a", Value::Int(1))], 0),
            (&[("tick", Value::TRUE), ("a", Value::Int(1))], 0),
            (&[("tick", Value::TRUE), ("x_rd", Value::TRUE)], 0),
            (&[("tick", Value::TRUE), ("x_rd", Value::TRUE)], 0),
        ]);
        let safe = crate::reach::check(
            &sized.program,
            &alphabet2,
            &crate::prop::Property::never_true("x_alarm"),
            &crate::reach::CheckOptions { env: Some(env2), ..Default::default() },
        )
        .unwrap();
        assert!(safe.holds);
    }

    #[test]
    fn never_ticking_signal_has_no_max() {
        // a mod-4 counter plus a signal sampled on an impossible condition
        let p = parse_program(
            "process P { input tick: bool; output n: int, m: int; \
             n := (0 when ((pre 0 n) = 3)) default ((pre 0 n) + 1); n ^= tick; \
             m := n when (n < 0); }",
        )
        .unwrap();
        let alphabet = Alphabet::exhaustive(&p, &[]).unwrap();
        let r = max_signal_value(&p, &alphabet, None, &"m".into(), 10_000).unwrap();
        assert_eq!(r.max, None, "m never ticks (n is never negative)");
        // while n's own maximum is proven
        let rn = max_signal_value(&p, &alphabet, None, &"n".into(), 10_000).unwrap();
        assert_eq!(rn.max, Some(3));
    }

    #[test]
    fn cap_aborts_rather_than_underestimates() {
        let p = parse_program(
            "process C { input tick: bool; output n: int; \
             n := ((pre 0 n) when tick) + 1; n ^= tick; }",
        )
        .unwrap();
        let alphabet = Alphabet::exhaustive(&p, &[]).unwrap();
        let err = max_signal_value(&p, &alphabet, None, &"n".into(), 10).unwrap_err();
        assert!(matches!(err, VerifyError::StateCapExceeded { .. }));
    }

    #[test]
    fn bound_is_thread_count_invariant() {
        let p = polysig_lang::Program::single(nfifo_component("ch", 3));
        let (alphabet, env) = letters(&[
            (&[("tick", Value::TRUE), ("ch_in", Value::Int(1))], 0),
            (&[("tick", Value::TRUE), ("ch_rd", Value::TRUE)], 0),
        ]);
        let seq = max_signal_value_with(&p, &alphabet, Some(&env), &"ch_count".into(), 100_000, 1)
            .unwrap();
        for threads in [2, 4, 8] {
            let par = max_signal_value_with(
                &p,
                &alphabet,
                Some(&env),
                &"ch_count".into(),
                100_000,
                threads,
            )
            .unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }
}
