//! Proving exact worst-case bounds by exhaustive exploration.
//!
//! The paper's conclusion asks for algorithms "to make the buffer size
//! estimation and proof automatic". Given a finite-state program and a
//! rate-constrained environment automaton, [`max_signal_value`] explores
//! the *entire* reachable space and returns the largest value an integer
//! signal ever takes — applied to a channel's occupancy `count`, that is a
//! *proof* of the worst-case buffer requirement, not an estimate.

use std::collections::{HashMap, VecDeque};

use polysig_lang::Program;
use polysig_sim::{DenseEnv, Reactor, SimError};
use polysig_tagged::{SigName, Value};

use crate::alphabet::{Alphabet, EnvAutomaton};
use crate::error::VerifyError;

/// Result of a bound computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundResult {
    /// The maximum value the signal was ever observed to take (`None` when
    /// it never ticked on any reachable path).
    pub max: Option<i64>,
    /// Distinct states visited (the whole reachable space).
    pub states_explored: usize,
    /// Reactions executed.
    pub transitions: usize,
}

/// Explores every reachable state of `program` under `alphabet`/`env` and
/// returns the maximum value ever carried by integer signal `signal`.
///
/// Because the exploration is exhaustive (it aborts rather than truncate),
/// the returned maximum is a proven invariant: `signal ≤ max` on every
/// execution the environment permits.
///
/// # Errors
///
/// * [`VerifyError::EmptyAlphabet`] — nothing to explore;
/// * [`VerifyError::StateCapExceeded`] — the space exceeds `max_states`
///   (the bound would be unsound, so no partial answer is returned);
/// * [`VerifyError::Sim`] — a non-clock program error.
pub fn max_signal_value(
    program: &Program,
    alphabet: &Alphabet,
    env: Option<&EnvAutomaton>,
    signal: &SigName,
    max_states: usize,
) -> Result<BoundResult, VerifyError> {
    if alphabet.is_empty() {
        return Err(VerifyError::EmptyAlphabet);
    }
    let mut reactor = Reactor::for_program(program)?;
    let free_env;
    let env = match env {
        Some(e) => e,
        None => {
            free_env = EnvAutomaton::free(alphabet);
            &free_env
        }
    };

    // boundary work, once: dense letters, the watched signal's id (an
    // undeclared signal never ticks, so `None` just leaves `max` empty),
    // and the per-env-state move table
    let n = reactor.signal_count();
    let mut dense_letters: Vec<DenseEnv> = Vec::with_capacity(alphabet.len());
    for letter in alphabet.letters() {
        let mut le = DenseEnv::new(n);
        for (name, value) in letter {
            let Some(id) = reactor.sig_id(name) else {
                return Err(SimError::NotAnInput { name: name.clone() }.into());
            };
            le.set(id, *value);
        }
        dense_letters.push(le);
    }
    let watched = reactor.sig_id(signal);
    let moves_of: Vec<Vec<(usize, usize)>> =
        (0..env.state_count()).map(|s| env.moves(s).collect()).collect();

    // canonical states in an indexed arena; frontier holds u32 ids
    type StateKey = (Vec<Value>, u32);
    let initial: StateKey = (reactor.registers().to_vec(), 0);
    let mut ids: HashMap<StateKey, u32> = HashMap::new();
    let mut states: Vec<(Box<[Value]>, u32)> = vec![(initial.0.clone().into_boxed_slice(), 0)];
    ids.insert(initial, 0);
    let mut queue: VecDeque<u32> = VecDeque::new();
    queue.push_back(0);

    let mut max: Option<i64> = None;
    let mut transitions = 0usize;
    let mut cur_regs: Vec<Value> = Vec::new();
    let mut probe: StateKey = (Vec::new(), 0);

    while let Some(id) = queue.pop_front() {
        cur_regs.clear();
        cur_regs.extend_from_slice(&states[id as usize].0);
        let env_state = states[id as usize].1;
        for &(letter_index, env_next) in &moves_of[env_state as usize] {
            reactor.set_registers(&cur_regs);
            match reactor.react_dense(&dense_letters[letter_index]) {
                Ok(reaction) => {
                    transitions += 1;
                    if let Some(watched) = watched {
                        if let Some(v) = reaction.get(watched).and_then(Value::as_int) {
                            max = Some(max.map_or(v, |m| m.max(v)));
                        }
                    }
                    probe.0.clear();
                    probe.0.extend_from_slice(reactor.registers());
                    probe.1 = env_next as u32;
                    if !ids.contains_key(&probe) {
                        if states.len() >= max_states {
                            return Err(VerifyError::StateCapExceeded { cap: max_states });
                        }
                        let nid = states.len() as u32;
                        states.push((probe.0.clone().into_boxed_slice(), probe.1));
                        ids.insert(std::mem::take(&mut probe), nid);
                        queue.push_back(nid);
                    }
                }
                Err(SimError::ClockMismatch { .. })
                | Err(SimError::Contradiction { .. })
                | Err(SimError::UndeterminedClock { .. }) => {}
                Err(other) => return Err(other.into()),
            }
        }
    }
    Ok(BoundResult { max, states_explored: states.len(), transitions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Letter;
    use polysig_gals::nfifo::nfifo_component;
    use polysig_gals::{desynchronize, DesyncOptions};
    use polysig_lang::parse_program;

    fn letters(seq: &[(&[(&str, Value)], usize)]) -> (Alphabet, EnvAutomaton) {
        // seq of (letter contents, _) cycled
        let ls: Vec<Letter> = seq
            .iter()
            .map(|(pairs, _)| {
                pairs.iter().map(|(n, v)| (SigName::from(*n), *v)).collect::<Letter>()
            })
            .collect();
        let mut alphabet = Alphabet::from_letters(ls.clone()).unwrap();
        let env = EnvAutomaton::cycle(&mut alphabet, &ls);
        (alphabet, env)
    }

    #[test]
    fn proves_fifo_occupancy_bound() {
        // 2 writes then 2 reads, cycled, on a depth-3 FIFO. The *ideal*
        // queue bound for this environment is 2; the chain's ripple latency
        // (early reads miss while items are still in transit) provably
        // retains one more item: the exhaustive exploration certifies 3 —
        // an honest measurement of the Section-5.1 construction's cost.
        let p = polysig_lang::Program::single(nfifo_component("ch", 3));
        let (alphabet, env) = letters(&[
            (&[("tick", Value::TRUE), ("ch_in", Value::Int(1))], 0),
            (&[("tick", Value::TRUE), ("ch_in", Value::Int(1))], 0),
            (&[("tick", Value::TRUE), ("ch_rd", Value::TRUE)], 0),
            (&[("tick", Value::TRUE), ("ch_rd", Value::TRUE)], 0),
        ]);
        let r = max_signal_value(&p, &alphabet, Some(&env), &"ch_count".into(), 100_000).unwrap();
        assert_eq!(r.max, Some(3), "ideal bound 2 + one in-ripple item");
        assert!(r.states_explored > 1);
        // sanity: the bound can never exceed the declared depth
        assert!(r.max.unwrap() <= 3);
    }

    #[test]
    fn proven_bound_equals_the_minimal_safe_depth() {
        // the "automatic proof" workflow: prove the occupancy bound on a
        // generously sized channel, then check the bound-sized channel is
        // alarm-free — estimation made exact
        let prog = parse_program(
            "process P { input a: int; output x: int; x := a; } \
             process Q { input x: int; output y: int; y := x; }",
        )
        .unwrap();
        let generous = desynchronize(&prog, &DesyncOptions::with_size(6)).unwrap();
        let (alphabet, env) = letters(&[
            (&[("tick", Value::TRUE), ("a", Value::Int(1))], 0),
            (&[("tick", Value::TRUE), ("a", Value::Int(1))], 0),
            (&[("tick", Value::TRUE), ("x_rd", Value::TRUE)], 0),
            (&[("tick", Value::TRUE), ("x_rd", Value::TRUE)], 0),
        ]);
        let r =
            max_signal_value(&generous.program, &alphabet, Some(&env), &"x_count".into(), 100_000)
                .unwrap();
        let bound = r.max.unwrap() as usize;
        // at least the ideal backlog of 2; bounded by the generous depth
        assert!((2..=6).contains(&bound), "got {bound}");
        // the proven bound is safe…
        let sized = desynchronize(&prog, &DesyncOptions::with_size(bound)).unwrap();
        let (alphabet2, env2) = letters(&[
            (&[("tick", Value::TRUE), ("a", Value::Int(1))], 0),
            (&[("tick", Value::TRUE), ("a", Value::Int(1))], 0),
            (&[("tick", Value::TRUE), ("x_rd", Value::TRUE)], 0),
            (&[("tick", Value::TRUE), ("x_rd", Value::TRUE)], 0),
        ]);
        let safe = crate::reach::check(
            &sized.program,
            &alphabet2,
            &crate::prop::Property::never_true("x_alarm"),
            &crate::reach::CheckOptions { env: Some(env2), ..Default::default() },
        )
        .unwrap();
        assert!(safe.holds);
    }

    #[test]
    fn never_ticking_signal_has_no_max() {
        // a mod-4 counter plus a signal sampled on an impossible condition
        let p = parse_program(
            "process P { input tick: bool; output n: int, m: int; \
             n := (0 when ((pre 0 n) = 3)) default ((pre 0 n) + 1); n ^= tick; \
             m := n when (n < 0); }",
        )
        .unwrap();
        let alphabet = Alphabet::exhaustive(&p, &[]).unwrap();
        let r = max_signal_value(&p, &alphabet, None, &"m".into(), 10_000).unwrap();
        assert_eq!(r.max, None, "m never ticks (n is never negative)");
        // while n's own maximum is proven
        let rn = max_signal_value(&p, &alphabet, None, &"n".into(), 10_000).unwrap();
        assert_eq!(rn.max, Some(3));
    }

    #[test]
    fn cap_aborts_rather_than_underestimates() {
        let p = parse_program(
            "process C { input tick: bool; output n: int; \
             n := ((pre 0 n) when tick) + 1; n ^= tick; }",
        )
        .unwrap();
        let alphabet = Alphabet::exhaustive(&p, &[]).unwrap();
        let err = max_signal_value(&p, &alphabet, None, &"n".into(), 10).unwrap_err();
        assert!(matches!(err, VerifyError::StateCapExceeded { .. }));
    }
}
