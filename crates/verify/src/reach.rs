//! Explicit-state reachability checking.
//!
//! The state of a Signal program is its `pre` register file; the checker
//! explores `(registers, env_state)` pairs breadth-first over the letters an
//! [`EnvAutomaton`] permits, checking a [`Property`] on every reaction.
//! BFS yields the *shortest* counterexample, which is what the estimation
//! loop wants to replay.
//!
//! Letters whose reaction fails with a clock error are pruned: they are
//! environment moves the program's clock constraints forbid (e.g. a write
//! without the master tick). Genuine program errors still surface.

use std::collections::{HashMap, VecDeque};

use polysig_lang::Program;
use polysig_sim::{DenseEnv, Reactor, SimError};
use polysig_tagged::Value;

use crate::alphabet::{Alphabet, EnvAutomaton};
use crate::counterexample::Counterexample;
use crate::error::VerifyError;
use crate::prop::Property;

/// Exploration limits.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Abort (with [`VerifyError::StateCapExceeded`]) beyond this many
    /// distinct states.
    pub max_states: usize,
    /// Stop exploring paths longer than this many reactions (`None` =
    /// unbounded; the verdict is then exact rather than bounded).
    pub max_depth: Option<usize>,
    /// Environment automaton; `None` means unrestricted.
    pub env: Option<EnvAutomaton>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions { max_states: 1_000_000, max_depth: None, env: None }
    }
}

/// The verdict of a reachability check.
#[derive(Debug)]
pub struct CheckResult {
    /// `true` iff no reachable reaction violates the property (within
    /// `max_depth`, when bounded).
    pub holds: bool,
    /// Shortest violating input sequence, when `!holds`.
    pub counterexample: Option<Counterexample>,
    /// Distinct `(registers, env_state)` states visited.
    pub states_explored: usize,
    /// Reactions executed.
    pub transitions: usize,
    /// Letters pruned because the program's clocks rejected them.
    pub pruned: usize,
    /// `true` iff exploration was cut off by `max_depth` before closure
    /// (a `holds` verdict is then only valid up to that bound).
    pub depth_bounded: bool,
}

/// Runs the breadth-first check of `property` on `program` under
/// `alphabet` (shaped by `options.env` when given).
///
/// # Errors
///
/// * [`VerifyError::EmptyAlphabet`] — nothing to explore;
/// * [`VerifyError::StateCapExceeded`] — the reachable space is larger than
///   `options.max_states`;
/// * [`VerifyError::Sim`] — a non-clock program error during a reaction.
pub fn check(
    program: &Program,
    alphabet: &Alphabet,
    property: &Property,
    options: &CheckOptions,
) -> Result<CheckResult, VerifyError> {
    if alphabet.is_empty() {
        return Err(VerifyError::EmptyAlphabet);
    }
    let mut reactor = Reactor::for_program(program)?;
    let free_env;
    let env = match &options.env {
        Some(e) => e,
        None => {
            free_env = EnvAutomaton::free(alphabet);
            &free_env
        }
    };

    // one-time boundary work: compile letters to dense environments, bind
    // the property to signal ids, snapshot the id-ordered name table — the
    // BFS below never touches a name-keyed map
    let n = reactor.signal_count();
    let mut dense_letters: Vec<DenseEnv> = Vec::with_capacity(alphabet.len());
    for letter in alphabet.letters() {
        let mut le = DenseEnv::new(n);
        for (name, value) in letter {
            let Some(id) = reactor.sig_id(name) else {
                return Err(SimError::NotAnInput { name: name.clone() }.into());
            };
            le.set(id, *value);
        }
        dense_letters.push(le);
    }
    let dense_prop = property.bind(&reactor);
    let names = reactor.signal_names().to_vec();

    // canonical states live in an indexed arena; the BFS frontier, parent
    // pointers and depths are all u32 ids into it
    type StateKey = (Vec<Value>, u32);
    let initial: StateKey = (reactor.registers().to_vec(), 0);
    let mut ids: HashMap<StateKey, u32> = HashMap::new();
    let mut states: Vec<(Box<[Value]>, u32)> = vec![(initial.0.clone().into_boxed_slice(), 0)];
    let mut parents: Vec<Option<(u32, u32)>> = vec![None];
    let mut depths: Vec<u32> = vec![0];
    ids.insert(initial, 0);

    let mut queue: VecDeque<u32> = VecDeque::new();
    queue.push_back(0);
    let mut transitions = 0usize;
    let mut pruned = 0usize;
    let mut depth_bounded = false;
    // reusable buffers: the popped state's registers, and the successor
    // probe key (its Vec only reallocates right after a new-state insert)
    let mut cur_regs: Vec<Value> = Vec::new();
    let mut probe: StateKey = (Vec::new(), 0);

    let rebuild =
        |violating_letter: u32, from: u32, parents: &[Option<(u32, u32)>], alphabet: &Alphabet| {
            let mut letters = vec![alphabet.letters()[violating_letter as usize].clone()];
            let mut cur = from;
            while let Some((pred, li)) = parents[cur as usize] {
                letters.push(alphabet.letters()[li as usize].clone());
                cur = pred;
            }
            letters.reverse();
            Counterexample::new(letters)
        };

    while let Some(id) = queue.pop_front() {
        if let Some(max) = options.max_depth {
            if depths[id as usize] as usize >= max {
                depth_bounded = true;
                continue;
            }
        }
        cur_regs.clear();
        cur_regs.extend_from_slice(&states[id as usize].0);
        let env_state = states[id as usize].1;
        for (letter_index, env_next) in env.moves(env_state as usize) {
            reactor.set_registers(&cur_regs);
            match reactor.react_dense(&dense_letters[letter_index]) {
                Ok(reaction) => {
                    transitions += 1;
                    if !dense_prop.holds_dense(reaction, &names) {
                        return Ok(CheckResult {
                            holds: false,
                            counterexample: Some(rebuild(
                                letter_index as u32,
                                id,
                                &parents,
                                alphabet,
                            )),
                            states_explored: states.len(),
                            transitions,
                            pruned,
                            depth_bounded,
                        });
                    }
                    probe.0.clear();
                    probe.0.extend_from_slice(reactor.registers());
                    probe.1 = env_next as u32;
                    if !ids.contains_key(&probe) {
                        if states.len() >= options.max_states {
                            return Err(VerifyError::StateCapExceeded { cap: options.max_states });
                        }
                        let nid = states.len() as u32;
                        states.push((probe.0.clone().into_boxed_slice(), probe.1));
                        ids.insert(std::mem::take(&mut probe), nid);
                        parents.push(Some((id, letter_index as u32)));
                        depths.push(depths[id as usize] + 1);
                        queue.push_back(nid);
                    }
                }
                // clock-constraint violations are environment moves the
                // program forbids — prune them
                Err(SimError::ClockMismatch { .. })
                | Err(SimError::Contradiction { .. })
                | Err(SimError::UndeterminedClock { .. }) => {
                    pruned += 1;
                }
                Err(other) => return Err(other.into()),
            }
        }
    }

    Ok(CheckResult {
        holds: true,
        counterexample: None,
        states_explored: states.len(),
        transitions,
        pruned,
        depth_bounded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_gals::nfifo::nfifo_component;
    use polysig_lang::parse_program;
    use polysig_sim::Simulator;
    use polysig_tagged::SigName;

    #[test]
    fn counter_range_property_holds_with_reset() {
        // a mod-4 counter stays within [0, 3]
        let p = parse_program(
            "process C { input tick: bool; output n: int; local np: int; \
             np := (pre 0 n) when tick; \
             n := (0 when (np = 3)) default (np + 1); n ^= tick; }",
        )
        .unwrap();
        let alphabet = Alphabet::exhaustive(&p, &[]).unwrap();
        let r =
            check(&p, &alphabet, &Property::always_in_range("n", 0, 4), &CheckOptions::default())
                .unwrap();
        assert!(r.holds);
        assert_eq!(r.states_explored, 4, "mod-4 counter has 4 states");
        assert!(!r.depth_bounded);
    }

    #[test]
    fn violation_found_with_shortest_trace() {
        let p = parse_program(
            "process C { input tick: bool; output n: int; \
             n := ((pre 0 n) when tick) + 1; n ^= tick; }",
        )
        .unwrap();
        let alphabet = Alphabet::exhaustive(&p, &[]).unwrap();
        let r =
            check(&p, &alphabet, &Property::always_in_range("n", 0, 2), &CheckOptions::default())
                .unwrap();
        assert!(!r.holds);
        // n reaches 3 at the third tick
        assert_eq!(r.counterexample.unwrap().len(), 3);
    }

    #[test]
    fn fifo_overflow_alarm_reachable_and_replayable() {
        let p = polysig_lang::Program::single(nfifo_component("ch", 2));
        let alphabet = Alphabet::exhaustive(&p, &[1]).unwrap();
        let r = check(&p, &alphabet, &Property::never_true("ch_alarm"), &CheckOptions::default())
            .unwrap();
        assert!(!r.holds);
        let cx = r.counterexample.unwrap();
        // three consecutive writes overflow depth 2
        assert_eq!(cx.len(), 3);

        // Section 5.2 feedback: replay the counterexample in the simulator
        // and observe the alarm it predicts
        let mut sim = Simulator::for_program(&p).unwrap();
        let run = sim.run(&cx.to_scenario()).unwrap();
        assert!(run.flow(&SigName::from("ch_alarm")).contains(&Value::TRUE));
    }

    #[test]
    fn environment_automaton_rules_out_the_overflow() {
        // depth-1 FIFO, but the environment alternates write / read —
        // Lemma 2's rate condition with n = 1 — so no alarm is reachable
        let p = polysig_lang::Program::single(nfifo_component("ch", 1));
        let mut alphabet = Alphabet::exhaustive(&p, &[1]).unwrap();
        let mut write = crate::alphabet::Letter::new();
        write.insert("tick".into(), Value::TRUE);
        write.insert("ch_in".into(), Value::Int(1));
        let mut read = crate::alphabet::Letter::new();
        read.insert("tick".into(), Value::TRUE);
        read.insert("ch_rd".into(), Value::TRUE);
        let env = EnvAutomaton::cycle(&mut alphabet, &[write, read]);
        let r = check(
            &p,
            &alphabet,
            &Property::never_true("ch_alarm"),
            &CheckOptions { env: Some(env), ..Default::default() },
        )
        .unwrap();
        assert!(r.holds, "alternating write/read never overflows a 1-place buffer");
    }

    #[test]
    fn depth_bound_limits_exploration() {
        let p = parse_program(
            "process C { input tick: bool; output n: int; \
             n := ((pre 0 n) when tick) + 1; n ^= tick; }",
        )
        .unwrap();
        let alphabet = Alphabet::exhaustive(&p, &[]).unwrap();
        let r = check(
            &p,
            &alphabet,
            &Property::always_in_range("n", 0, 1000),
            &CheckOptions { max_depth: Some(10), ..Default::default() },
        )
        .unwrap();
        assert!(r.holds);
        assert!(r.depth_bounded);
        assert!(r.states_explored <= 12);
    }

    #[test]
    fn state_cap_is_enforced() {
        let p = parse_program(
            "process C { input tick: bool; output n: int; \
             n := ((pre 0 n) when tick) + 1; n ^= tick; }",
        )
        .unwrap();
        let alphabet = Alphabet::exhaustive(&p, &[]).unwrap();
        let err = check(
            &p,
            &alphabet,
            &Property::always_in_range("n", 0, 1_000_000),
            &CheckOptions { max_states: 50, ..Default::default() },
        )
        .unwrap_err();
        assert!(matches!(err, VerifyError::StateCapExceeded { cap: 50 }));
    }
}
