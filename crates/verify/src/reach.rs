//! Explicit-state reachability checking.
//!
//! The state of a Signal program is its `pre` register file; the checker
//! explores `(registers, env_state)` pairs breadth-first over the letters an
//! [`EnvAutomaton`] permits, checking a [`Property`] on every reaction.
//! BFS yields the *shortest* counterexample, which is what the estimation
//! loop wants to replay.
//!
//! Exploration runs on the crate's layer-synchronous frontier engine:
//! with [`CheckOptions::threads`] `> 1`, each depth layer is fanned out
//! across scoped worker threads, and the barrier merge keeps every result
//! field — state ids, counters, the shortest counterexample — bit-identical
//! to the sequential run.
//!
//! Letters whose reaction fails with a clock error are pruned: they are
//! environment moves the program's clock constraints forbid (e.g. a write
//! without the master tick). Genuine program errors still surface.

use polysig_sim::{DenseEnv, Reactor};
use polysig_tagged::SigName;

use polysig_lang::Program;

use crate::alphabet::{Alphabet, EnvAutomaton};
use crate::bmc::Backend;
use crate::counterexample::Counterexample;
use crate::error::VerifyError;
use crate::frontier::{self, Inspect};
use crate::prop::{DenseCheck, Property};

/// Exploration limits.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Abort (with [`VerifyError::StateCapExceeded`]) beyond this many
    /// distinct states.
    pub max_states: usize,
    /// Stop exploring paths longer than this many reactions (`None` =
    /// unbounded; the verdict is then exact rather than bounded).
    pub max_depth: Option<usize>,
    /// Environment automaton; `None` means unrestricted.
    pub env: Option<EnvAutomaton>,
    /// Worker threads for layer-parallel exploration. `1` never spawns;
    /// larger values split each sufficiently large BFS layer across scoped
    /// workers. The verdict, every counter and the counterexample are
    /// identical for every value — only wall-clock time changes. Defaults
    /// to the detected parallelism (`POLYSIG_TEST_THREADS` overrides it).
    pub threads: usize,
    /// Which engine answers the query: the explicit breadth-first checker
    /// (default) or symbolic bounded model checking ([`Backend::Bmc`],
    /// which ignores `max_states`, `max_depth` and `threads` — its own
    /// `depth` bounds the query).
    pub backend: Backend,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            max_states: 1_000_000,
            max_depth: None,
            env: None,
            threads: crossbeam::pool::default_threads(),
            backend: Backend::Explicit,
        }
    }
}

/// The verdict of a reachability check.
#[derive(Debug)]
pub struct CheckResult {
    /// `true` iff no reachable reaction violates the property (within
    /// `max_depth`, when bounded).
    pub holds: bool,
    /// Shortest violating input sequence, when `!holds`.
    pub counterexample: Option<Counterexample>,
    /// Distinct `(registers, env_state)` states visited.
    pub states_explored: usize,
    /// Reactions executed.
    pub transitions: usize,
    /// Letters pruned because the program's clocks rejected them.
    pub pruned: usize,
    /// `true` iff exploration was cut off by `max_depth` before closure
    /// (a `holds` verdict is then only valid up to that bound).
    pub depth_bounded: bool,
}

/// The property check as the frontier engine sees it: a bound dense check
/// plus the id-ordered name table for the `Custom` fallback.
struct PropInspect<'p> {
    check: DenseCheck<'p>,
    names: &'p [SigName],
}

impl Inspect for PropInspect<'_> {
    type Acc = ();

    #[inline]
    fn inspect(&self, reaction: &DenseEnv, _acc: &mut ()) -> bool {
        !self.check.holds_dense(reaction, self.names)
    }

    fn merge(_into: &mut (), _from: ()) {}
}

/// Runs the breadth-first check of `property` on `program` under
/// `alphabet` (shaped by `options.env` when given).
///
/// # Errors
///
/// * [`VerifyError::EmptyAlphabet`] — nothing to explore;
/// * [`VerifyError::StateCapExceeded`] — the reachable space is larger than
///   `options.max_states`;
/// * [`VerifyError::Sim`] — a non-clock program error during a reaction.
pub fn check(
    program: &Program,
    alphabet: &Alphabet,
    property: &Property,
    options: &CheckOptions,
) -> Result<CheckResult, VerifyError> {
    if alphabet.is_empty() {
        return Err(VerifyError::EmptyAlphabet);
    }
    if let Backend::Bmc { depth } = options.backend {
        return crate::bmc::run_check(program, alphabet, property, options, depth);
    }
    let mut reactor = Reactor::for_program(program)?;
    let free_env;
    let env = match &options.env {
        Some(e) => e,
        None => {
            free_env = EnvAutomaton::free(alphabet);
            &free_env
        }
    };

    let compiled = frontier::compile_boundary(&reactor, alphabet, env)?;
    let names = reactor.signal_names().to_vec();
    let inspect = PropInspect { check: property.bind(&reactor), names: &names };
    let e = frontier::explore(
        &mut reactor,
        &compiled,
        &inspect,
        options.max_states,
        options.max_depth,
        options.threads,
    )?;

    let counterexample = e.violation.map(|(state, letter)| {
        // walk the parent pointers back to the root, then append the
        // violating letter
        let mut letters = vec![alphabet.letters()[letter as usize].clone()];
        let mut cur = state;
        while let Some((pred, li)) = e.parents[cur as usize] {
            letters.push(alphabet.letters()[li as usize].clone());
            cur = pred;
        }
        letters.reverse();
        Counterexample::new(letters)
    });

    Ok(CheckResult {
        holds: counterexample.is_none(),
        counterexample,
        states_explored: e.states.len(),
        transitions: e.transitions,
        pruned: e.pruned,
        depth_bounded: e.depth_bounded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_gals::nfifo::nfifo_component;
    use polysig_lang::parse_program;
    use polysig_sim::Simulator;
    use polysig_tagged::{SigName, Value};

    #[test]
    fn counter_range_property_holds_with_reset() {
        // a mod-4 counter stays within [0, 3]
        let p = parse_program(
            "process C { input tick: bool; output n: int; local np: int; \
             np := (pre 0 n) when tick; \
             n := (0 when (np = 3)) default (np + 1); n ^= tick; }",
        )
        .unwrap();
        let alphabet = Alphabet::exhaustive(&p, &[]).unwrap();
        let r =
            check(&p, &alphabet, &Property::always_in_range("n", 0, 4), &CheckOptions::default())
                .unwrap();
        assert!(r.holds);
        assert_eq!(r.states_explored, 4, "mod-4 counter has 4 states");
        assert!(!r.depth_bounded);
    }

    #[test]
    fn violation_found_with_shortest_trace() {
        let p = parse_program(
            "process C { input tick: bool; output n: int; \
             n := ((pre 0 n) when tick) + 1; n ^= tick; }",
        )
        .unwrap();
        let alphabet = Alphabet::exhaustive(&p, &[]).unwrap();
        let r =
            check(&p, &alphabet, &Property::always_in_range("n", 0, 2), &CheckOptions::default())
                .unwrap();
        assert!(!r.holds);
        // n reaches 3 at the third tick
        assert_eq!(r.counterexample.unwrap().len(), 3);
    }

    #[test]
    fn fifo_overflow_alarm_reachable_and_replayable() {
        let p = polysig_lang::Program::single(nfifo_component("ch", 2));
        let alphabet = Alphabet::exhaustive(&p, &[1]).unwrap();
        let r = check(&p, &alphabet, &Property::never_true("ch_alarm"), &CheckOptions::default())
            .unwrap();
        assert!(!r.holds);
        let cx = r.counterexample.unwrap();
        // three consecutive writes overflow depth 2
        assert_eq!(cx.len(), 3);

        // Section 5.2 feedback: replay the counterexample in the simulator
        // and observe the alarm it predicts
        let mut sim = Simulator::for_program(&p).unwrap();
        let run = sim.run(&cx.to_scenario()).unwrap();
        assert!(run.flow(&SigName::from("ch_alarm")).contains(&Value::TRUE));
    }

    #[test]
    fn environment_automaton_rules_out_the_overflow() {
        // depth-1 FIFO, but the environment alternates write / read —
        // Lemma 2's rate condition with n = 1 — so no alarm is reachable
        let p = polysig_lang::Program::single(nfifo_component("ch", 1));
        let mut alphabet = Alphabet::exhaustive(&p, &[1]).unwrap();
        let mut write = crate::alphabet::Letter::new();
        write.insert("tick".into(), Value::TRUE);
        write.insert("ch_in".into(), Value::Int(1));
        let mut read = crate::alphabet::Letter::new();
        read.insert("tick".into(), Value::TRUE);
        read.insert("ch_rd".into(), Value::TRUE);
        let env = EnvAutomaton::cycle(&mut alphabet, &[write, read]);
        let r = check(
            &p,
            &alphabet,
            &Property::never_true("ch_alarm"),
            &CheckOptions { env: Some(env), ..Default::default() },
        )
        .unwrap();
        assert!(r.holds, "alternating write/read never overflows a 1-place buffer");
    }

    #[test]
    fn depth_bound_limits_exploration() {
        let p = parse_program(
            "process C { input tick: bool; output n: int; \
             n := ((pre 0 n) when tick) + 1; n ^= tick; }",
        )
        .unwrap();
        let alphabet = Alphabet::exhaustive(&p, &[]).unwrap();
        let r = check(
            &p,
            &alphabet,
            &Property::always_in_range("n", 0, 1000),
            &CheckOptions { max_depth: Some(10), ..Default::default() },
        )
        .unwrap();
        assert!(r.holds);
        assert!(r.depth_bounded);
        assert!(r.states_explored <= 12);
    }

    #[test]
    fn state_cap_is_enforced() {
        let p = parse_program(
            "process C { input tick: bool; output n: int; \
             n := ((pre 0 n) when tick) + 1; n ^= tick; }",
        )
        .unwrap();
        let alphabet = Alphabet::exhaustive(&p, &[]).unwrap();
        let err = check(
            &p,
            &alphabet,
            &Property::always_in_range("n", 0, 1_000_000),
            &CheckOptions { max_states: 50, ..Default::default() },
        )
        .unwrap_err();
        assert!(matches!(err, VerifyError::StateCapExceeded { cap: 50 }));
    }
}
