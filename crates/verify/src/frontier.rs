//! Layer-synchronous frontier exploration — the shared BFS engine behind
//! [`crate::reach::check`] and [`crate::bound::max_signal_value`].
//!
//! The engine explores the `(registers, env_state)` space breadth-first,
//! one depth **layer** at a time. Because global deduplication assigns
//! every state its minimal depth, each layer is a contiguous range of the
//! u32-indexed state arena, and the plain FIFO checker's processing order
//! is exactly: layers in order, states within a layer in arena order,
//! moves within a state in letter order. The engine exploits that: a layer
//! is split into balanced contiguous chunks, each chunk is expanded by a
//! worker owning its own [`Reactor`], and the barrier merge replays the
//! workers' per-chunk outputs *in chunk order* — so state ids, counters
//! and the first (= shortest, lexicographically-least) violation are
//! bit-identical to the sequential exploration at any thread count.
//!
//! Determinism hinges on three invariants:
//!
//! 1. **Frozen visited-map during expansion.** Workers probe the visited
//!    map read-only (it only grows at the barrier), so which successors a
//!    worker reports depends on the layer's *starting* state set, never on
//!    worker interleaving. Candidates rediscovered within the same layer
//!    are deduplicated at the merge, first-in-canonical-order wins — the
//!    same winner the sequential checker picks.
//! 2. **Prefix semantics on terminal events.** A worker stops its chunk at
//!    the first violation or hard error, so a chunk's counters and
//!    candidate list are exactly the sequential prefix up to that event.
//!    The merge consumes chunks in order and returns at the first chunk
//!    carrying a terminal event; later chunks' work is discarded, which is
//!    precisely what the sequential checker never computed.
//! 3. **Canonical append order.** New states are appended to the arena in
//!    `(parent position, letter index)` order, so ids, parent pointers,
//!    the `max_states` abort point and counterexample reconstruction all
//!    match the sequential run.

use polysig_sim::{DenseEnv, Reactor, SimError};
use polysig_tagged::hash::FxHashMap;
use polysig_tagged::Value;

use crate::alphabet::{Alphabet, EnvAutomaton};
use crate::error::VerifyError;

/// A canonical state: the `pre` register file plus the environment
/// automaton's state.
pub(crate) type StateKey = (Vec<Value>, u32);

/// Workers only fan out when a layer has at least this many states per
/// chunk — below that, spawn latency dominates the expansion work and the
/// layer runs inline (the sequential path and the parallel path share all
/// code either way).
const MIN_STATES_PER_CHUNK: usize = 8;

/// The alphabet and environment compiled to the dense, id-addressed form
/// the per-reaction hot loop consumes.
pub(crate) struct Compiled {
    /// `letters[i]` as a dense environment addressed by the reactor's ids.
    pub dense_letters: Vec<DenseEnv>,
    /// Per env-automaton state: permitted `(letter index, successor)`
    /// moves, in letter order.
    pub moves_of: Vec<Vec<(u32, u32)>>,
}

/// One-time boundary work shared by the checkers: compile every letter to
/// a [`DenseEnv`] addressed by the reactor's ids, tabulate the environment
/// automaton's moves.
pub(crate) fn compile_boundary(
    reactor: &Reactor,
    alphabet: &Alphabet,
    env: &EnvAutomaton,
) -> Result<Compiled, VerifyError> {
    let n = reactor.signal_count();
    let mut dense_letters: Vec<DenseEnv> = Vec::with_capacity(alphabet.len());
    for letter in alphabet.letters() {
        let mut le = DenseEnv::new(n);
        for (name, value) in letter {
            let Some(id) = reactor.sig_id(name) else {
                return Err(SimError::NotAnInput { name: name.clone() }.into());
            };
            le.set(id, *value);
        }
        dense_letters.push(le);
    }
    let moves_of: Vec<Vec<(u32, u32)>> = (0..env.state_count())
        .map(|s| env.moves(s).map(|(li, to)| (li as u32, to as u32)).collect())
        .collect();
    Ok(Compiled { dense_letters, moves_of })
}

/// What a checker does with each successful reaction.
///
/// Implementations must be order-insensitive in `Acc` (merging is done in
/// chunk order, but a violation truncates later chunks), and `inspect`
/// returning `true` marks the reaction as a terminal violation.
pub(crate) trait Inspect: Sync {
    /// Per-worker accumulator, merged at every layer barrier.
    type Acc: Send + Default;
    /// Examines one reaction; `true` = property violated, stop here.
    fn inspect(&self, reaction: &DenseEnv, acc: &mut Self::Acc) -> bool;
    /// Folds a worker's accumulator into the global one.
    fn merge(into: &mut Self::Acc, from: Self::Acc);
}

/// The outcome of an exploration that did not error out.
pub(crate) struct Exploration<A> {
    /// `Some((state id, letter index))` when a reaction violated; the
    /// first violation in canonical order, i.e. the sequential one.
    pub violation: Option<(u32, u32)>,
    /// The state arena, in discovery order.
    pub states: Vec<(Box<[Value]>, u32)>,
    /// `parents[i]` = the `(predecessor id, letter index)` that first
    /// discovered state `i` (`None` for the initial state).
    pub parents: Vec<Option<(u32, u32)>>,
    /// Reactions executed (up to and including a violating one).
    pub transitions: usize,
    /// Letters pruned because the program's clocks rejected them.
    pub pruned: usize,
    /// `true` iff a non-empty layer was cut off by the depth bound.
    pub depth_bounded: bool,
    /// The merged accumulator.
    pub acc: A,
}

/// A terminal event inside a chunk; the worker stopped right after it.
enum Terminal {
    Violation { state: u32, letter: u32 },
    Error(SimError),
}

/// A newly discovered candidate successor, pending barrier dedup.
struct Succ {
    parent: u32,
    letter: u32,
    env_next: u32,
    regs: Vec<Value>,
}

/// Everything one worker produced for its chunk. When `terminal` is set,
/// every other field holds exactly the prefix up to the terminal event.
struct ChunkOut<A> {
    transitions: usize,
    pruned: usize,
    succs: Vec<Succ>,
    terminal: Option<Terminal>,
    acc: A,
}

/// Runs the layer-synchronous exploration, starting from `reactor`'s
/// current registers.
///
/// `threads == 1` never spawns (and never clones the reactor); larger
/// values fan each sufficiently large layer out across scoped workers,
/// cloning worker reactors lazily on the first layer that needs them.
/// Results are identical for every `threads` value — see the module docs
/// for the argument.
pub(crate) fn explore<I: Inspect>(
    reactor: &mut Reactor,
    compiled: &Compiled,
    inspect: &I,
    max_states: usize,
    max_depth: Option<usize>,
    threads: usize,
) -> Result<Exploration<I::Acc>, VerifyError> {
    let threads = threads.max(1);
    let initial: StateKey = (reactor.registers().to_vec(), 0);
    let mut ids: FxHashMap<StateKey, u32> = FxHashMap::default();
    let mut states: Vec<(Box<[Value]>, u32)> = vec![(initial.0.clone().into_boxed_slice(), 0)];
    let mut parents: Vec<Option<(u32, u32)>> = vec![None];
    ids.insert(initial, 0);

    // worker reactors beyond the caller's own; cloned only when a layer
    // actually fans out (the sequential path never pays for a clone)
    let mut extra_workers: Vec<Reactor> = Vec::new();
    let mut transitions = 0usize;
    let mut pruned = 0usize;
    let mut acc = I::Acc::default();
    let mut depth_bounded = false;
    let mut layer = 0usize..1usize;
    let mut depth = 0usize;

    while !layer.is_empty() {
        if let Some(max) = max_depth {
            if depth >= max {
                depth_bounded = true;
                break;
            }
        }
        let wanted = threads.min(layer.len() / MIN_STATES_PER_CHUNK).max(1);
        while extra_workers.len() + 1 < wanted {
            extra_workers.push(reactor.clone());
        }
        let layer_start = layer.start;
        let layer_slice = &states[layer.clone()];
        let mut workers: Vec<&mut Reactor> = Vec::with_capacity(wanted);
        workers.push(&mut *reactor);
        workers.extend(extra_workers.iter_mut().take(wanted - 1));
        let outs = crossbeam::pool::map_chunks_mut(
            &mut workers,
            layer_slice,
            MIN_STATES_PER_CHUNK,
            |reactor, start, chunk| {
                expand_chunk(reactor, (layer_start + start) as u32, chunk, &ids, compiled, inspect)
            },
        );

        // barrier: replay per-chunk outputs in chunk (= canonical) order
        let next_start = states.len();
        for out in outs {
            transitions += out.transitions;
            pruned += out.pruned;
            I::merge(&mut acc, out.acc);
            for succ in out.succs {
                let key: StateKey = (succ.regs, succ.env_next);
                if ids.contains_key(&key) {
                    continue; // rediscovered within this layer; first wins
                }
                if states.len() >= max_states {
                    return Err(VerifyError::StateCapExceeded { cap: max_states });
                }
                let nid = states.len() as u32;
                states.push((key.0.clone().into_boxed_slice(), key.1));
                ids.insert(key, nid);
                parents.push(Some((succ.parent, succ.letter)));
            }
            if let Some(terminal) = out.terminal {
                return match terminal {
                    Terminal::Violation { state, letter } => Ok(Exploration {
                        violation: Some((state, letter)),
                        states,
                        parents,
                        transitions,
                        pruned,
                        depth_bounded,
                        acc,
                    }),
                    Terminal::Error(e) => Err(e.into()),
                };
            }
        }
        layer = next_start..states.len();
        depth += 1;
    }

    Ok(Exploration { violation: None, states, parents, transitions, pruned, depth_bounded, acc })
}

/// Expands one contiguous chunk of a layer on one worker-owned reactor.
/// Stops at the chunk's first terminal event, leaving prefix-exact
/// counters and candidates (see module docs).
fn expand_chunk<I: Inspect>(
    reactor: &mut Reactor,
    first_id: u32,
    chunk: &[(Box<[Value]>, u32)],
    ids: &FxHashMap<StateKey, u32>,
    compiled: &Compiled,
    inspect: &I,
) -> ChunkOut<I::Acc> {
    let mut out = ChunkOut {
        transitions: 0,
        pruned: 0,
        succs: Vec::new(),
        terminal: None,
        acc: I::Acc::default(),
    };
    let mut cur_regs: Vec<Value> = Vec::new();
    let mut probe: StateKey = (Vec::new(), 0);

    'states: for (offset, (regs, env_state)) in chunk.iter().enumerate() {
        let id = first_id + offset as u32;
        cur_regs.clear();
        cur_regs.extend_from_slice(regs);
        for &(letter_index, env_next) in &compiled.moves_of[*env_state as usize] {
            reactor.set_registers(&cur_regs);
            match reactor.react_dense(&compiled.dense_letters[letter_index as usize]) {
                Ok(reaction) => {
                    out.transitions += 1;
                    if inspect.inspect(reaction, &mut out.acc) {
                        out.terminal =
                            Some(Terminal::Violation { state: id, letter: letter_index });
                        break 'states;
                    }
                    probe.0.clear();
                    probe.0.extend_from_slice(reactor.registers());
                    probe.1 = env_next;
                    if !ids.contains_key(&probe) {
                        out.succs.push(Succ {
                            parent: id,
                            letter: letter_index,
                            env_next,
                            regs: probe.0.clone(),
                        });
                    }
                }
                // clock-constraint violations are environment moves the
                // program forbids — prune them
                Err(SimError::ClockMismatch { .. })
                | Err(SimError::Contradiction { .. })
                | Err(SimError::UndeterminedClock { .. }) => {
                    out.pruned += 1;
                }
                Err(other) => {
                    out.terminal = Some(Terminal::Error(other));
                    break 'states;
                }
            }
        }
    }
    out
}
