//! Counterexample traces.
//!
//! When the checker finds a reachable property violation it reconstructs
//! the shortest input sequence leading to it. Per Section 5.2, "the error
//! trace may help us finding the input sequence resulting in alarm. This
//! input can be added to our simulation data" — [`Counterexample::to_scenario`]
//! does exactly that conversion, closing the verify → simulate loop.

use std::fmt;

use polysig_sim::Scenario;

use crate::alphabet::Letter;

/// The shortest input sequence driving the program into a violating
/// reaction (the last letter causes the violation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    letters: Vec<Letter>,
}

impl Counterexample {
    /// Wraps a letter sequence.
    pub fn new(letters: Vec<Letter>) -> Self {
        Counterexample { letters }
    }

    /// Number of reactions in the trace.
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// `true` iff the initial state itself violates (no inputs needed).
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }

    /// The letters in order.
    pub fn letters(&self) -> &[Letter] {
        &self.letters
    }

    /// Converts the trace into a [`Scenario`] for the simulator — the
    /// feedback edge of the paper's estimate/verify loop.
    pub fn to_scenario(&self) -> Scenario {
        let mut s = Scenario::new();
        for letter in &self.letters {
            s.push_step(letter.clone());
        }
        s
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counterexample ({} reactions):", self.letters.len())?;
        for (i, letter) in self.letters.iter().enumerate() {
            write!(f, "  step {i}: ")?;
            if letter.is_empty() {
                write!(f, "(silence)")?;
            }
            for (j, (name, value)) in letter.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{name}={value}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_tagged::Value;

    #[test]
    fn converts_to_scenario() {
        let mut l1 = Letter::new();
        l1.insert("a".into(), Value::Int(1));
        let l2 = Letter::new();
        let cx = Counterexample::new(vec![l1.clone(), l2]);
        let s = cx.to_scenario();
        assert_eq!(s.len(), 2);
        assert_eq!(s.step(0), Some(&l1));
        assert!(s.step(1).unwrap().is_empty());
    }

    #[test]
    fn display_shows_steps() {
        let mut l = Letter::new();
        l.insert("msgin".into(), Value::Int(2));
        let cx = Counterexample::new(vec![Letter::new(), l]);
        let text = cx.to_string();
        assert!(text.contains("step 0: (silence)"));
        assert!(text.contains("msgin=2"));
    }
}
