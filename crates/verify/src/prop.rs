//! Safety properties over reactions.
//!
//! A [`Property`] examines one reaction's present signals. The paper's
//! verification step needs exactly one shape — "the alarm signal is never
//! raised" — but the checker accepts any reaction predicate.

use std::fmt;

use polysig_sim::{DenseEnv, Reactor};
use polysig_tagged::{SigId, SigName, Value};

/// A reaction as the checker sees it: present signals with their values,
/// sorted by name.
pub type Reaction = [(SigName, Value)];

/// The recognized shapes of a property, kept alongside the name-keyed
/// closure so the checkers can pre-bind signal names to [`SigId`]s and
/// evaluate the hot loop on dense environments.
pub(crate) enum Shape {
    NeverTrue(SigName),
    NeverPresent(SigName),
    InRange(SigName, i64, i64),
    Custom,
}

/// A named safety property over reactions.
pub struct Property {
    name: String,
    check: Box<dyn Fn(&Reaction) -> bool + Send + Sync>,
    shape: Shape,
}

impl Property {
    /// Builds a property from a predicate (`true` = reaction is fine).
    ///
    /// Custom predicates see name-keyed reactions, so the checkers must
    /// materialize signal names for every transition they examine; the
    /// shaped constructors ([`Property::never_true`] & co.) stay on dense
    /// ids throughout.
    pub fn new(
        name: impl Into<String>,
        check: impl Fn(&Reaction) -> bool + Send + Sync + 'static,
    ) -> Self {
        Property { name: name.into(), check: Box::new(check), shape: Shape::Custom }
    }

    /// The paper's property: `signal` is never present with value `true`
    /// (no alarm is ever raised).
    pub fn never_true(signal: impl Into<SigName>) -> Property {
        let signal = signal.into();
        let s = signal.clone();
        let mut p = Property::new(format!("never {signal}=true"), move |reaction| {
            !reaction.iter().any(|(n, v)| n == &signal && *v == Value::TRUE)
        });
        p.shape = Shape::NeverTrue(s);
        p
    }

    /// `signal` never ticks at all.
    pub fn never_present(signal: impl Into<SigName>) -> Property {
        let signal = signal.into();
        let s = signal.clone();
        let mut p = Property::new(format!("never {signal} present"), move |reaction| {
            !reaction.iter().any(|(n, _)| n == &signal)
        });
        p.shape = Shape::NeverPresent(s);
        p
    }

    /// An integer signal stays within `lo..=hi` whenever present.
    pub fn always_in_range(signal: impl Into<SigName>, lo: i64, hi: i64) -> Property {
        let signal = signal.into();
        let s = signal.clone();
        let mut p = Property::new(format!("{signal} in [{lo}, {hi}]"), move |reaction| {
            reaction
                .iter()
                .all(|(n, v)| n != &signal || v.as_int().is_none_or(|i| lo <= i && i <= hi))
        });
        p.shape = Shape::InRange(s, lo, hi);
        p
    }

    /// The property's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the property on a reaction.
    pub fn holds_on(&self, reaction: &Reaction) -> bool {
        (self.check)(reaction)
    }

    /// The recognized shape, for checkers that compile properties (the
    /// symbolic backend encodes shaped properties and rejects `Custom`).
    pub(crate) fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Pre-binds the property to a reactor's signal ids for dense checking.
    /// A name the program does not declare never appears in a reaction, so
    /// it binds to `None` and the property holds trivially.
    pub(crate) fn bind(&self, reactor: &Reactor) -> DenseCheck<'_> {
        match &self.shape {
            Shape::NeverTrue(s) => DenseCheck::NeverTrue(reactor.sig_id(s)),
            Shape::NeverPresent(s) => DenseCheck::NeverPresent(reactor.sig_id(s)),
            Shape::InRange(s, lo, hi) => DenseCheck::InRange(reactor.sig_id(s), *lo, *hi),
            Shape::Custom => DenseCheck::Custom(self),
        }
    }
}

/// A [`Property`] bound to one reactor's [`SigId`]s: evaluating it on a
/// dense reaction touches no names except in the `Custom` fallback.
pub(crate) enum DenseCheck<'p> {
    NeverTrue(Option<SigId>),
    NeverPresent(Option<SigId>),
    InRange(Option<SigId>, i64, i64),
    Custom(&'p Property),
}

impl DenseCheck<'_> {
    /// Evaluates the bound property on one dense reaction. `names` is the
    /// reactor's id-ordered name table, used only by the `Custom` fallback.
    pub(crate) fn holds_dense(&self, env: &DenseEnv, names: &[SigName]) -> bool {
        match self {
            DenseCheck::NeverTrue(id) => id.is_none_or(|id| env.get(id) != Some(Value::TRUE)),
            DenseCheck::NeverPresent(id) => id.is_none_or(|id| !env.is_present(id)),
            DenseCheck::InRange(id, lo, hi) => id.is_none_or(|id| match env.get(id) {
                Some(Value::Int(i)) => *lo <= i && i <= *hi,
                _ => true,
            }),
            DenseCheck::Custom(p) => {
                let reaction: Vec<(SigName, Value)> =
                    env.iter().map(|(id, v)| (names[id.index()].clone(), v)).collect();
                p.holds_on(&reaction)
            }
        }
    }
}

impl fmt::Debug for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Property").field("name", &self.name).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reaction(pairs: &[(&str, Value)]) -> Vec<(SigName, Value)> {
        pairs.iter().map(|(n, v)| (SigName::from(*n), *v)).collect()
    }

    #[test]
    fn never_true_fires_only_on_true() {
        let p = Property::never_true("alarm");
        assert!(p.holds_on(&reaction(&[])));
        assert!(p.holds_on(&reaction(&[("alarm", Value::FALSE)])));
        assert!(p.holds_on(&reaction(&[("other", Value::TRUE)])));
        assert!(!p.holds_on(&reaction(&[("alarm", Value::TRUE)])));
    }

    #[test]
    fn never_present_fires_on_any_tick() {
        let p = Property::never_present("x");
        assert!(p.holds_on(&reaction(&[])));
        assert!(!p.holds_on(&reaction(&[("x", Value::FALSE)])));
        assert!(!p.holds_on(&reaction(&[("x", Value::Int(0))])));
    }

    #[test]
    fn range_property() {
        let p = Property::always_in_range("n", 0, 3);
        assert!(p.holds_on(&reaction(&[("n", Value::Int(3))])));
        assert!(!p.holds_on(&reaction(&[("n", Value::Int(4))])));
        assert!(p.holds_on(&reaction(&[("m", Value::Int(100))])));
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(Property::never_true("alarm").name(), "never alarm=true");
        assert!(Property::always_in_range("n", 0, 3).name().contains("[0, 3]"));
    }
}
