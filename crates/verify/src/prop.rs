//! Safety properties over reactions.
//!
//! A [`Property`] examines one reaction's present signals. The paper's
//! verification step needs exactly one shape — "the alarm signal is never
//! raised" — but the checker accepts any reaction predicate.

use std::fmt;

use polysig_tagged::{SigName, Value};

/// A reaction as the checker sees it: present signals with their values,
/// sorted by name.
pub type Reaction = [(SigName, Value)];

/// A named safety property over reactions.
pub struct Property {
    name: String,
    check: Box<dyn Fn(&Reaction) -> bool + Send + Sync>,
}

impl Property {
    /// Builds a property from a predicate (`true` = reaction is fine).
    pub fn new(
        name: impl Into<String>,
        check: impl Fn(&Reaction) -> bool + Send + Sync + 'static,
    ) -> Self {
        Property { name: name.into(), check: Box::new(check) }
    }

    /// The paper's property: `signal` is never present with value `true`
    /// (no alarm is ever raised).
    pub fn never_true(signal: impl Into<SigName>) -> Property {
        let signal = signal.into();
        Property::new(format!("never {signal}=true"), move |reaction| {
            !reaction.iter().any(|(n, v)| n == &signal && *v == Value::TRUE)
        })
    }

    /// `signal` never ticks at all.
    pub fn never_present(signal: impl Into<SigName>) -> Property {
        let signal = signal.into();
        Property::new(format!("never {signal} present"), move |reaction| {
            !reaction.iter().any(|(n, _)| n == &signal)
        })
    }

    /// An integer signal stays within `lo..=hi` whenever present.
    pub fn always_in_range(signal: impl Into<SigName>, lo: i64, hi: i64) -> Property {
        let signal = signal.into();
        Property::new(format!("{signal} in [{lo}, {hi}]"), move |reaction| {
            reaction.iter().all(|(n, v)| {
                n != &signal || v.as_int().is_none_or(|i| lo <= i && i <= hi)
            })
        })
    }

    /// The property's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Evaluates the property on a reaction.
    pub fn holds_on(&self, reaction: &Reaction) -> bool {
        (self.check)(reaction)
    }
}

impl fmt::Debug for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Property").field("name", &self.name).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reaction(pairs: &[(&str, Value)]) -> Vec<(SigName, Value)> {
        pairs.iter().map(|(n, v)| (SigName::from(*n), *v)).collect()
    }

    #[test]
    fn never_true_fires_only_on_true() {
        let p = Property::never_true("alarm");
        assert!(p.holds_on(&reaction(&[])));
        assert!(p.holds_on(&reaction(&[("alarm", Value::FALSE)])));
        assert!(p.holds_on(&reaction(&[("other", Value::TRUE)])));
        assert!(!p.holds_on(&reaction(&[("alarm", Value::TRUE)])));
    }

    #[test]
    fn never_present_fires_on_any_tick() {
        let p = Property::never_present("x");
        assert!(p.holds_on(&reaction(&[])));
        assert!(!p.holds_on(&reaction(&[("x", Value::FALSE)])));
        assert!(!p.holds_on(&reaction(&[("x", Value::Int(0))])));
    }

    #[test]
    fn range_property() {
        let p = Property::always_in_range("n", 0, 3);
        assert!(p.holds_on(&reaction(&[("n", Value::Int(3))])));
        assert!(!p.holds_on(&reaction(&[("n", Value::Int(4))])));
        assert!(p.holds_on(&reaction(&[("m", Value::Int(100))])));
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(Property::never_true("alarm").name(), "never alarm=true");
        assert!(Property::always_in_range("n", 0, 3).name().contains("[0, 3]"));
    }
}
