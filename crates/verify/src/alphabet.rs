//! Finite input alphabets and environment automata.
//!
//! A *letter* is one reaction's worth of environment input: which external
//! inputs are present, with which values. [`Alphabet::exhaustive`]
//! enumerates every combination over a finite integer domain (booleans get
//! both values); an [`EnvAutomaton`] restricts which letters the
//! environment may emit in which order — this is how rate assumptions
//! ("the writer ticks at most every other instant") enter the verification,
//! mirroring Lemma 2's rate-matching side condition.

use std::collections::BTreeMap;

use polysig_lang::Program;
use polysig_tagged::{SigName, Value, ValueType};

use crate::error::VerifyError;

/// One reaction's environment input: present inputs with values.
pub type Letter = BTreeMap<SigName, Value>;

/// A finite set of input letters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alphabet {
    letters: Vec<Letter>,
}

impl Alphabet {
    /// Builds the exhaustive alphabet of a program: each external input is
    /// absent or present with a value from its domain (`int_values` for
    /// integers, both booleans for bools). Inputs named `tick` are treated
    /// as the always-present master clock (never absent), which keeps the
    /// alphabet aligned with the endochronized components of
    /// `polysig-gals`.
    ///
    /// # Errors
    ///
    /// [`VerifyError::EmptyAlphabet`] if `int_values` is empty while the
    /// program has integer inputs.
    pub fn exhaustive(program: &Program, int_values: &[i64]) -> Result<Alphabet, VerifyError> {
        let inputs: Vec<(SigName, ValueType)> = {
            let names = program.external_inputs();
            names
                .into_iter()
                .map(|n| {
                    let ty = program
                        .components
                        .iter()
                        .find_map(|c| c.decl(&n))
                        .map(|d| d.ty)
                        .expect("external input is declared somewhere");
                    (n, ty)
                })
                .collect()
        };
        let mut letters: Vec<Letter> = vec![BTreeMap::new()];
        for (name, ty) in inputs {
            let mut choices: Vec<Option<Value>> = Vec::new();
            if name.as_str() == "tick" {
                choices.push(Some(Value::TRUE));
            } else {
                choices.push(None);
                match ty {
                    ValueType::Bool => {
                        choices.push(Some(Value::TRUE));
                        choices.push(Some(Value::FALSE));
                    }
                    ValueType::Int => {
                        if int_values.is_empty() {
                            return Err(VerifyError::EmptyAlphabet);
                        }
                        for v in int_values {
                            choices.push(Some(Value::Int(*v)));
                        }
                    }
                }
            }
            let mut next = Vec::with_capacity(letters.len() * choices.len());
            for letter in &letters {
                for choice in &choices {
                    let mut l = letter.clone();
                    if let Some(v) = choice {
                        l.insert(name.clone(), *v);
                    }
                    next.push(l);
                }
            }
            letters = next;
        }
        Ok(Alphabet { letters })
    }

    /// Builds an alphabet from explicit letters.
    ///
    /// # Errors
    ///
    /// [`VerifyError::EmptyAlphabet`] when no letters are given.
    pub fn from_letters(letters: Vec<Letter>) -> Result<Alphabet, VerifyError> {
        if letters.is_empty() {
            return Err(VerifyError::EmptyAlphabet);
        }
        Ok(Alphabet { letters })
    }

    /// The letters.
    pub fn letters(&self) -> &[Letter] {
        &self.letters
    }

    /// Number of letters.
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// `true` iff there are no letters.
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }
}

/// A finite automaton over alphabet letters, restricting what the
/// environment can do — the verification-side model of rate assumptions.
///
/// State `0` is initial. A transition `(state, letter_index) → state`
/// permits the letter in that state; letters without a transition are
/// forbidden there.
#[derive(Debug, Clone, Default)]
pub struct EnvAutomaton {
    transitions: BTreeMap<(usize, usize), usize>,
    state_count: usize,
}

impl EnvAutomaton {
    /// The unrestricted environment: every letter allowed at all times.
    pub fn free(alphabet: &Alphabet) -> EnvAutomaton {
        let mut a = EnvAutomaton { transitions: BTreeMap::new(), state_count: 1 };
        for li in 0..alphabet.len() {
            a.transitions.insert((0, li), 0);
        }
        a
    }

    /// Creates an empty automaton with `state_count` states.
    pub fn with_states(state_count: usize) -> EnvAutomaton {
        EnvAutomaton { transitions: BTreeMap::new(), state_count }
    }

    /// Permits `letter_index` in `from`, moving to `to`.
    pub fn allow(&mut self, from: usize, letter_index: usize, to: usize) {
        assert!(from < self.state_count && to < self.state_count, "state out of range");
        self.transitions.insert((from, letter_index), to);
    }

    /// The permitted letters in a state, with successor states.
    pub fn moves(&self, state: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.transitions.range((state, 0)..(state + 1, 0)).map(|((_, li), to)| (*li, *to))
    }

    /// Number of environment states.
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// A convenience builder: a cyclic environment that emits the given
    /// letter sequence forever (deterministic periodic input).
    ///
    /// The letters are appended to `alphabet` if not already present;
    /// returns the automaton.
    pub fn cycle(alphabet: &mut Alphabet, sequence: &[Letter]) -> EnvAutomaton {
        let n = sequence.len().max(1);
        let mut a = EnvAutomaton::with_states(n);
        for (i, letter) in sequence.iter().enumerate() {
            let li = match alphabet.letters.iter().position(|l| l == letter) {
                Some(li) => li,
                None => {
                    alphabet.letters.push(letter.clone());
                    alphabet.letters.len() - 1
                }
            };
            a.allow(i, li, (i + 1) % n);
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_lang::parse_program;

    #[test]
    fn exhaustive_alphabet_counts() {
        let p = parse_program("process P { input a: int, c: bool; output x: int; x := a when c; }")
            .unwrap();
        // a: absent | 1 | 2  (3) × c: absent | true | false (3) = 9
        let a = Alphabet::exhaustive(&p, &[1, 2]).unwrap();
        assert_eq!(a.len(), 9);
    }

    #[test]
    fn tick_is_always_present() {
        let p = parse_program(
            "process P { input tick: bool; output n: int; n := (pre 0 n) + (1 when tick); }",
        )
        .unwrap();
        let a = Alphabet::exhaustive(&p, &[]).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a.letters()[0][&SigName::from("tick")], Value::TRUE);
    }

    #[test]
    fn empty_int_domain_rejected_only_when_needed() {
        let p = parse_program("process P { input a: int; output x: int; x := a; }").unwrap();
        assert!(matches!(Alphabet::exhaustive(&p, &[]), Err(VerifyError::EmptyAlphabet)));
    }

    #[test]
    fn explicit_letters() {
        let mut l = Letter::new();
        l.insert("a".into(), Value::Int(1));
        let a = Alphabet::from_letters(vec![l]).unwrap();
        assert_eq!(a.len(), 1);
        assert!(Alphabet::from_letters(vec![]).is_err());
    }

    #[test]
    fn free_automaton_allows_everything() {
        let p = parse_program("process P { input c: bool; output x: bool; x := c; }").unwrap();
        let alphabet = Alphabet::exhaustive(&p, &[]).unwrap();
        let env = EnvAutomaton::free(&alphabet);
        assert_eq!(env.state_count(), 1);
        assert_eq!(env.moves(0).count(), alphabet.len());
    }

    #[test]
    fn cycle_automaton_follows_sequence() {
        let p = parse_program("process P { input c: bool; output x: bool; x := c; }").unwrap();
        let mut alphabet = Alphabet::exhaustive(&p, &[]).unwrap();
        let mut on = Letter::new();
        on.insert("c".into(), Value::TRUE);
        let off = Letter::new();
        let env = EnvAutomaton::cycle(&mut alphabet, &[on.clone(), off.clone()]);
        assert_eq!(env.state_count(), 2);
        // state 0 permits exactly the `on` letter, moving to state 1
        let moves0: Vec<(usize, usize)> = env.moves(0).collect();
        assert_eq!(moves0.len(), 1);
        assert_eq!(alphabet.letters()[moves0[0].0], on);
        assert_eq!(moves0[0].1, 1);
    }
}
