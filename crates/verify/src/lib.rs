//! # `polysig-verify` — model checking and differential validation
//!
//! The validation half of the paper's methodology (Section 5.2):
//!
//! > "Verification of the desynchronized design consists of checking that no
//! > alarm signal is raised. In case of failing to prove this, the error
//! > trace may help us finding the input sequence resulting in alarm. This
//! > input can be added to our simulation data."
//!
//! * [`alphabet`] — finite input alphabets: every combination of
//!   present/absent inputs over a finite value domain, optionally shaped by
//!   an environment automaton (periodic writers/readers, bursts);
//! * [`reach`] — explicit-state breadth-first reachability over a program's
//!   `pre`-register state space, checking [`prop`] invariants and returning
//!   the shortest [`counterexample`] input sequence on violation — exactly
//!   the error trace the estimation loop feeds back into simulation;
//! * [`equiv`] — differential oracles: run two programs over a scenario
//!   ensemble and compare selected signals for flow- or stretch-equivalence
//!   (the equivalences of Definitions 2 and 4, used to validate Theorems 1
//!   and 2 end-to-end).
//!
//! ## Example: a one-place buffer overflows, a counterexample is found
//!
//! ```
//! use polysig_gals::nfifo::nfifo_component;
//! use polysig_lang::Program;
//! use polysig_verify::{alphabet::Alphabet, prop::Property, reach::{check, CheckOptions}};
//!
//! let fifo = Program::single(nfifo_component("ch", 1));
//! let alphabet = Alphabet::exhaustive(&fifo, &[1]).unwrap();
//! let result = check(
//!     &fifo,
//!     &alphabet,
//!     &Property::never_true("ch_alarm"),
//!     &CheckOptions::default(),
//! ).unwrap();
//! assert!(!result.holds);
//! // two back-to-back writes overflow a 1-place buffer
//! assert_eq!(result.counterexample.unwrap().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alphabet;
pub mod bmc;
pub mod bound;
pub mod counterexample;
pub mod equiv;
pub mod error;
mod frontier;
pub mod prop;
pub mod reach;

pub use alphabet::{Alphabet, EnvAutomaton};
pub use bmc::Backend;
pub use bound::{max_signal_value, max_signal_value_opts, max_signal_value_with, BoundResult};
pub use counterexample::Counterexample;
pub use equiv::{compare_flows, compare_flows_with, ComparisonReport};
pub use error::VerifyError;
pub use prop::Property;
pub use reach::{check, CheckOptions, CheckResult};
