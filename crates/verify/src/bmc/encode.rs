//! Symbolic execution of a compiled static schedule.
//!
//! [`encode_step`] transcribes one reaction of a [`CompiledComponent`] into
//! the CNF under construction: every slot of the schedule becomes a
//! [`SymFlow`] — presence, unvaluedness and value as symbolic bits — and
//! every op is replayed over those flows following `schedule.rs` rule for
//! rule. The executor's *bails* (clock mismatches, contradictions, overflow,
//! type errors) become hard infeasibility constraints: a model of the CNF is
//! by construction a trace of successful reactions, exactly the transitions
//! the explicit checker explores (it prunes bailing letters and never
//! commits a bailing reaction).
//!
//! The value of a flow is `Option<SymVal>` with the invariant that `None`
//! means *never valued-present on any feasible path* (the slot can only be
//! absent, or present-unvalued — which some later constraint rules out).
//! That makes `None` safe to propagate through every value-combining op:
//! a result can only be read as a value under conditions the constraints
//! have made infeasible.

use polysig_lang::{Binop, Unop};
use polysig_sim::schedule::{CompiledComponent, Flow, Mode, Op};
use polysig_tagged::Value;

use super::cnf::{Bit, Cnf, Word};

/// A symbolic value: a boolean bit or a 64-bit integer word.
#[derive(Debug, Clone)]
pub(crate) enum SymVal {
    B(Bit),
    I(Word),
}

/// A slot's symbolic flow — the [`Flow`] lattice with symbolic coordinates.
///
/// `Dyn { pres, unval, val }` covers `Absent` (`pres` false), `Unvalued`
/// (`pres` and `unval` true) and `Present` (`pres` true, `unval` false);
/// `unval ⇒ pres` holds on feasible paths. `Ubiq` mirrors
/// `Flow::Ubiquitous`: a constant, present whenever the context demands.
#[derive(Debug, Clone)]
pub(crate) enum SymFlow {
    Ubiq(SymVal),
    Dyn { pres: Bit, unval: Bit, val: Option<SymVal> },
}

impl SymFlow {
    fn absent() -> SymFlow {
        SymFlow::Dyn { pres: Bit::Const(false), unval: Bit::Const(false), val: None }
    }

    /// `Flow::is_present` symbolically: `Unvalued | Present`, never `Ubiq`.
    fn presence(&self) -> Bit {
        match self {
            SymFlow::Ubiq(_) => Bit::Const(false),
            SymFlow::Dyn { pres, .. } => *pres,
        }
    }
}

/// Lifts a concrete value into constant bits.
pub(crate) fn sym_of_value(cnf: &Cnf, v: Value) -> SymVal {
    match v {
        Value::Bool(b) => SymVal::B(Bit::Const(b)),
        Value::Int(i) => SymVal::I(cnf.word_const(i)),
    }
}

fn flow_of_init(cnf: &Cnf, f: &Flow) -> SymFlow {
    match f {
        Flow::Absent => SymFlow::absent(),
        Flow::Unvalued => {
            SymFlow::Dyn { pres: Bit::Const(true), unval: Bit::Const(true), val: None }
        }
        Flow::Present(v) => SymFlow::Dyn {
            pres: Bit::Const(true),
            unval: Bit::Const(false),
            val: Some(sym_of_value(cnf, *v)),
        },
        Flow::Ubiquitous(v) => SymFlow::Ubiq(sym_of_value(cnf, *v)),
    }
}

/// One symbolically executed reaction: the decided signal slots and the
/// next-reaction register file.
pub(crate) struct StepIo {
    /// Signal slots after the reaction (prefix of the slot array).
    pub(crate) outputs: Vec<SymFlow>,
    /// Register file entering the next reaction.
    pub(crate) regs_out: Vec<SymVal>,
}

/// Symbolically executes one reaction of `cc`, asserting every bail
/// condition as a hard infeasibility constraint on the CNF.
///
/// `inputs` aligns with `cc.input_slots`: per input, its presence bit and
/// (correctly-typed) value. Returns the final signal flows and register
/// file, or a description of a construct the encoding does not cover.
pub(crate) fn encode_step(
    cnf: &mut Cnf,
    cc: &CompiledComponent,
    regs_in: &[SymVal],
    inputs: &[(Bit, SymVal)],
) -> Result<StepIo, String> {
    let mut slots: Vec<SymFlow> = cc.init_slots.iter().map(|f| flow_of_init(cnf, f)).collect();
    for (k, &slot) in cc.input_slots.iter().enumerate() {
        let (pres, val) = &inputs[k];
        slots[slot as usize] =
            SymFlow::Dyn { pres: *pres, unval: Bit::Const(false), val: Some(val.clone()) };
    }
    let mut regs_out: Vec<SymVal> = regs_in.to_vec();

    for op in cc.ops.iter() {
        step_op(cnf, op, regs_in, &mut slots, &mut regs_out)?;
    }
    // consistency epilogue: group presence uniformity and clock subsets
    for group in cc.check_groups.iter() {
        let first = slots[group[0] as usize].presence();
        for &i in group.iter().skip(1) {
            let p = slots[i as usize].presence();
            let agree = cnf.iff(p, first);
            cnf.assert_bit(agree);
        }
    }
    for &(sub, sup) in cc.check_edges.iter() {
        let ps = slots[sub as usize].presence();
        let pu = slots[sup as usize].presence();
        let np = cnf.not(ps);
        cnf.assert_clause(&[np, pu]);
    }
    for op in cc.reg_ops.iter() {
        step_op(cnf, op, regs_in, &mut slots, &mut regs_out)?;
    }

    let outputs = slots[..cc.signal_count as usize].to_vec();
    Ok(StepIo { outputs, regs_out })
}

/// `if c { a } else { b }` over typed values. `None` on either side stays
/// `None` only when both are `None`; a one-sided `None` is resolved by the
/// never-valued invariant (see the module docs) — feasibility forces the
/// other branch whenever the value is read.
fn ite_val(
    cnf: &mut Cnf,
    c: Bit,
    a: &Option<SymVal>,
    b: &Option<SymVal>,
) -> Result<Option<SymVal>, String> {
    Ok(match (a, b) {
        (None, None) => None,
        (Some(x), None) => Some(x.clone()),
        (None, Some(y)) => Some(y.clone()),
        (Some(SymVal::B(x)), Some(SymVal::B(y))) => Some(SymVal::B(cnf.ite(c, *x, *y))),
        (Some(SymVal::I(x)), Some(SymVal::I(y))) => Some(SymVal::I(cnf.ite_word(c, x, y))),
        _ => return Err("ill-typed merge of boolean and integer flows".into()),
    })
}

/// Commits an op result, mirroring `schedule::store`. Bails are asserted
/// as infeasibility.
fn sym_store(
    cnf: &mut Cnf,
    slots: &mut [SymFlow],
    m: Mode,
    dst: u32,
    f: SymFlow,
) -> Result<(), String> {
    match m {
        Mode::Temp => slots[dst as usize] = f,
        Mode::Guard => match f {
            // a ubiquitous result cannot be committed: always a bail
            SymFlow::Ubiq(_) => {
                cnf.assert_bit(Bit::Const(false));
                slots[dst as usize] = SymFlow::absent();
            }
            SymFlow::Dyn { pres, unval, val } => {
                // unvalued result: bail
                let bad = cnf.and(pres, unval);
                let ok = cnf.not(bad);
                cnf.assert_bit(ok);
                slots[dst as usize] = SymFlow::Dyn { pres, unval: Bit::Const(false), val };
            }
        },
        Mode::GuardAtClock => {
            let clock = match &slots[dst as usize] {
                SymFlow::Dyn { pres, .. } => *pres,
                SymFlow::Ubiq(_) => return Err("clocked store onto a constant slot".into()),
            };
            match f {
                // a ubiquitous constant adapts to the pre-decided clock
                SymFlow::Ubiq(v) => {
                    slots[dst as usize] =
                        SymFlow::Dyn { pres: clock, unval: Bit::Const(false), val: Some(v) }
                }
                SymFlow::Dyn { pres, unval, val } => {
                    // presence must agree with the clock, and the result
                    // must supply a value when present
                    let agree = cnf.iff(clock, pres);
                    cnf.assert_bit(agree);
                    let bad = cnf.and(pres, unval);
                    let ok = cnf.not(bad);
                    cnf.assert_bit(ok);
                    slots[dst as usize] =
                        SymFlow::Dyn { pres: clock, unval: Bit::Const(false), val };
                }
            }
        }
    }
    Ok(())
}

/// `schedule::pre_flow`: the register's value at the body's clock.
fn sym_pre(body: &SymFlow, reg: &SymVal) -> SymFlow {
    match body {
        SymFlow::Ubiq(_) => SymFlow::Ubiq(reg.clone()),
        SymFlow::Dyn { pres, .. } => {
            SymFlow::Dyn { pres: *pres, unval: Bit::Const(false), val: Some(reg.clone()) }
        }
    }
}

/// `schedule::when_flow`: `body when cond`, with each bail arm asserted as
/// infeasibility under exactly the conditions the concrete rule bails.
fn sym_when(cnf: &mut Cnf, b: &SymFlow, c: &SymFlow) -> Result<SymFlow, String> {
    match c {
        SymFlow::Ubiq(SymVal::B(Bit::Const(true))) => Ok(b.clone()),
        SymFlow::Ubiq(SymVal::B(Bit::Const(false))) => Ok(SymFlow::absent()),
        SymFlow::Ubiq(SymVal::B(cbit)) => match b {
            // a symbolic ubiquitous condition keeps a dynamic body's shape
            SymFlow::Dyn { pres, unval, val } => {
                let p = cnf.and(*pres, *cbit);
                let u = cnf.and(*unval, *cbit);
                Ok(SymFlow::Dyn { pres: p, unval: u, val: val.clone() })
            }
            SymFlow::Ubiq(_) => {
                Err("`when` over a symbolic ubiquitous condition and constant body".into())
            }
        },
        SymFlow::Ubiq(SymVal::I(_)) => {
            // integer condition: a type bail unless the body is absent
            let bp = b.presence();
            match b {
                SymFlow::Ubiq(_) => cnf.assert_bit(Bit::Const(false)),
                SymFlow::Dyn { .. } => {
                    let ok = cnf.not(bp);
                    cnf.assert_bit(ok);
                }
            }
            Ok(SymFlow::absent())
        }
        SymFlow::Dyn { pres: cp, unval: cu, val: cv } => {
            let cbit = match cv {
                Some(SymVal::B(bit)) => Some(*bit),
                // an integer-valued or never-valued condition can only be
                // sampled feasibly when it or the body is absent
                Some(SymVal::I(_)) | None => None,
            };
            match (b, cbit) {
                (SymFlow::Dyn { pres: bp, unval: bu, val: bv }, Some(cbit)) => {
                    // bail: body present while the condition is unvalued
                    let bad = cnf.and(*bp, *cu);
                    let ok = cnf.not(bad);
                    cnf.assert_bit(ok);
                    let pc = cnf.and(*cp, cbit);
                    let pres = cnf.and(*bp, pc);
                    let unval = cnf.and(*bu, pc);
                    Ok(SymFlow::Dyn { pres, unval, val: bv.clone() })
                }
                (SymFlow::Ubiq(v), Some(cbit)) => {
                    // bail: a non-absent body with an unvalued condition
                    let ok = cnf.not(*cu);
                    cnf.assert_bit(ok);
                    // a true present condition anchors the constant
                    let pres = cnf.and(*cp, cbit);
                    Ok(SymFlow::Dyn { pres, unval: Bit::Const(false), val: Some(v.clone()) })
                }
                (SymFlow::Dyn { pres: bp, .. }, None) => {
                    let bad = cnf.and(*bp, *cp);
                    let ok = cnf.not(bad);
                    cnf.assert_bit(ok);
                    Ok(SymFlow::absent())
                }
                (SymFlow::Ubiq(_), None) => {
                    let ok = cnf.not(*cp);
                    cnf.assert_bit(ok);
                    Ok(SymFlow::absent())
                }
            }
        }
    }
}

/// Applies `op` to two values; returns the result and a *bail bit* that is
/// true exactly when `Binop::apply` would return `None` (type error or
/// arithmetic overflow) on these operands.
fn sym_apply(cnf: &mut Cnf, op: Binop, a: &SymVal, b: &SymVal) -> (SymVal, Bit) {
    use Binop::*;
    let type_bail = (SymVal::B(Bit::Const(false)), Bit::Const(true));
    match op {
        Add | Sub | Mul => match (a, b) {
            (SymVal::I(x), SymVal::I(y)) => {
                let (w, ovf) = match op {
                    Add => cnf.add_ovf(x, y),
                    Sub => cnf.sub_ovf(x, y),
                    _ => cnf.mul_ovf(x, y),
                };
                (SymVal::I(w), ovf)
            }
            _ => type_bail,
        },
        Lt | Le | Gt | Ge => match (a, b) {
            (SymVal::I(x), SymVal::I(y)) => {
                let r = match op {
                    Lt => cnf.slt(x, y),
                    Le => cnf.sle(x, y),
                    Gt => cnf.slt(y, x),
                    _ => cnf.sle(y, x),
                };
                (SymVal::B(r), Bit::Const(false))
            }
            _ => type_bail,
        },
        Eq | Ne => {
            // `Value` equality compares tag and payload; mixed types are
            // plain `false` (no bail)
            let eq = match (a, b) {
                (SymVal::B(x), SymVal::B(y)) => cnf.iff(*x, *y),
                (SymVal::I(x), SymVal::I(y)) => cnf.eq_word(x, y),
                _ => Bit::Const(false),
            };
            let r = if op == Eq { eq } else { cnf.not(eq) };
            (SymVal::B(r), Bit::Const(false))
        }
        And | Or => match (a, b) {
            (SymVal::B(x), SymVal::B(y)) => {
                let r = if op == And { cnf.and(*x, *y) } else { cnf.or(*x, *y) };
                (SymVal::B(r), Bit::Const(false))
            }
            _ => type_bail,
        },
    }
}

/// `schedule::binary_flow`: synchronous pointwise application with the
/// present/absent-mix and apply-failure bails asserted.
fn sym_binary(cnf: &mut Cnf, op: Binop, l: &SymFlow, r: &SymFlow) -> Result<SymFlow, String> {
    let apply = |cnf: &mut Cnf,
                 a: &Option<SymVal>,
                 b: &Option<SymVal>,
                 valued: Bit|
     -> (Option<SymVal>, Bit) {
        match (a, b) {
            (Some(x), Some(y)) => {
                let (v, bail) = sym_apply(cnf, op, x, y);
                let bad = cnf.and(valued, bail);
                (Some(v), bad)
            }
            // a never-valued operand makes the result never valued: no
            // application happens on any feasible path
            _ => (None, Bit::Const(false)),
        }
    };
    match (l, r) {
        (SymFlow::Ubiq(a), SymFlow::Ubiq(b)) => {
            let (v, bail) = sym_apply(cnf, op, a, b);
            let ok = cnf.not(bail);
            cnf.assert_bit(ok);
            Ok(SymFlow::Ubiq(v))
        }
        (SymFlow::Ubiq(a), SymFlow::Dyn { pres, unval, val }) => {
            let nu = cnf.not(*unval);
            let valued = cnf.and(*pres, nu);
            let (v, bad) = apply(cnf, &Some(a.clone()), val, valued);
            let ok = cnf.not(bad);
            cnf.assert_bit(ok);
            Ok(SymFlow::Dyn { pres: *pres, unval: *unval, val: v })
        }
        (SymFlow::Dyn { pres, unval, val }, SymFlow::Ubiq(b)) => {
            let nu = cnf.not(*unval);
            let valued = cnf.and(*pres, nu);
            let (v, bad) = apply(cnf, val, &Some(b.clone()), valued);
            let ok = cnf.not(bad);
            cnf.assert_bit(ok);
            Ok(SymFlow::Dyn { pres: *pres, unval: *unval, val: v })
        }
        (
            SymFlow::Dyn { pres: lp, unval: lu, val: lv },
            SymFlow::Dyn { pres: rp, unval: ru, val: rv },
        ) => {
            // a present/absent operand mix is a clock mismatch: bail
            let agree = cnf.iff(*lp, *rp);
            cnf.assert_bit(agree);
            let unval = cnf.or(*lu, *ru);
            let nu = cnf.not(unval);
            let valued = cnf.and(*lp, nu);
            let (v, bad) = apply(cnf, lv, rv, valued);
            let ok = cnf.not(bad);
            cnf.assert_bit(ok);
            Ok(SymFlow::Dyn { pres: *lp, unval, val: v })
        }
    }
}

/// `schedule::unary_flow`.
fn sym_unary(cnf: &mut Cnf, op: Unop, a: &SymFlow) -> Result<SymFlow, String> {
    match op {
        Unop::ClockOf => Ok(match a {
            SymFlow::Ubiq(_) => SymFlow::Ubiq(SymVal::B(Bit::Const(true))),
            SymFlow::Dyn { pres, .. } => SymFlow::Dyn {
                pres: *pres,
                unval: Bit::Const(false),
                val: Some(SymVal::B(Bit::Const(true))),
            },
        }),
        Unop::Not | Unop::Neg => {
            // apply the operator to a value; bail bit true on type error
            // or overflow, mirroring the concrete `apply` closure
            let apply = |cnf: &mut Cnf, v: &SymVal| -> (Option<SymVal>, Bit) {
                match (op, v) {
                    (Unop::Not, SymVal::B(b)) => (Some(SymVal::B(cnf.not(*b))), Bit::Const(false)),
                    (Unop::Neg, SymVal::I(w)) => {
                        let (r, ovf) = cnf.neg_ovf(w);
                        (Some(SymVal::I(r)), ovf)
                    }
                    _ => (None, Bit::Const(true)),
                }
            };
            match a {
                SymFlow::Ubiq(v) => {
                    let (r, bail) = apply(cnf, v);
                    let ok = cnf.not(bail);
                    cnf.assert_bit(ok);
                    match r {
                        Some(r) => Ok(SymFlow::Ubiq(r)),
                        // type error on a constant: always infeasible, any
                        // placeholder flow will do
                        None => Ok(SymFlow::absent()),
                    }
                }
                SymFlow::Dyn { pres, unval, val } => {
                    let (v, bail) = match val {
                        Some(v) => apply(cnf, v),
                        None => (None, Bit::Const(false)),
                    };
                    let nu = cnf.not(*unval);
                    let valued = cnf.and(*pres, nu);
                    let bad = cnf.and(valued, bail);
                    let ok = cnf.not(bad);
                    cnf.assert_bit(ok);
                    Ok(SymFlow::Dyn { pres: *pres, unval: *unval, val: v })
                }
            }
        }
    }
}

/// `left default right`: left wins when present.
fn sym_merge(cnf: &mut Cnf, l: &SymFlow, r: &SymFlow) -> Result<SymFlow, String> {
    match (l, r) {
        // a ubiquitous preferred operand is never absent
        (SymFlow::Ubiq(_), _) => Ok(l.clone()),
        (SymFlow::Dyn { pres, .. }, _) if *pres == Bit::Const(false) => Ok(r.clone()),
        (SymFlow::Dyn { pres, .. }, _) if *pres == Bit::Const(true) => Ok(l.clone()),
        (SymFlow::Dyn { .. }, SymFlow::Ubiq(_)) => {
            Err("`default` merging a dynamic flow into a ubiquitous fallback is not encodable"
                .into())
        }
        (
            SymFlow::Dyn { pres: lp, unval: lu, val: lv },
            SymFlow::Dyn { pres: rp, unval: ru, val: rv },
        ) => {
            let pres = cnf.or(*lp, *rp);
            let unval = cnf.ite(*lp, *lu, *ru);
            let val = ite_val(cnf, *lp, lv, rv)?;
            Ok(SymFlow::Dyn { pres, unval, val })
        }
    }
}

/// Symbolically executes one op, mirroring `schedule::step_op`.
fn step_op(
    cnf: &mut Cnf,
    op: &Op,
    regs_in: &[SymVal],
    slots: &mut [SymFlow],
    regs_out: &mut [SymVal],
) -> Result<(), String> {
    match op {
        Op::EvalClock { fold, members } => {
            let d = slots[fold[0] as usize].presence();
            for &i in fold.iter().skip(1) {
                let p = slots[i as usize].presence();
                let agree = cnf.iff(p, d);
                cnf.assert_bit(agree);
            }
            for &m in members.iter() {
                slots[m as usize] = SymFlow::Dyn { pres: d, unval: d, val: None };
            }
        }
        Op::SetClockFrom { dst, src } => match &slots[*src as usize] {
            SymFlow::Ubiq(_) => {
                cnf.assert_bit(Bit::Const(false));
                slots[*dst as usize] = SymFlow::absent();
            }
            SymFlow::Dyn { pres, .. } => {
                let p = *pres;
                slots[*dst as usize] = SymFlow::Dyn { pres: p, unval: p, val: None };
            }
        },
        Op::Mov { m, dst, src } => {
            let f = slots[*src as usize].clone();
            sym_store(cnf, slots, *m, *dst, f)?;
        }
        Op::Pre { m, dst, reg, body } => {
            let f = sym_pre(&slots[*body as usize], &regs_in[*reg as usize]);
            sym_store(cnf, slots, *m, *dst, f)?;
        }
        Op::PreWhen { m, dst, reg, body, cond } => {
            let b = sym_pre(&slots[*body as usize], &regs_in[*reg as usize]);
            let f = sym_when(cnf, &b, &slots[*cond as usize].clone())?;
            sym_store(cnf, slots, *m, *dst, f)?;
        }
        Op::When { m, dst, body, cond } => {
            let f = sym_when(cnf, &slots[*body as usize].clone(), &slots[*cond as usize].clone())?;
            sym_store(cnf, slots, *m, *dst, f)?;
        }
        Op::DefaultConstAt { m, dst, left, konst, cond } => {
            // the sampled fallback is evaluated unconditionally, exactly
            // like the unfused pair: its bails fire even when `left` wins
            let w = sym_when(cnf, &slots[*konst as usize].clone(), &slots[*cond as usize].clone())?;
            let f = sym_merge(cnf, &slots[*left as usize].clone(), &w)?;
            sym_store(cnf, slots, *m, *dst, f)?;
        }
        Op::DefaultMerge { m, dst, left, right } => {
            let f =
                sym_merge(cnf, &slots[*left as usize].clone(), &slots[*right as usize].clone())?;
            sym_store(cnf, slots, *m, *dst, f)?;
        }
        Op::Unary { m, dst, op, arg } => {
            let f = sym_unary(cnf, *op, &slots[*arg as usize].clone())?;
            sym_store(cnf, slots, *m, *dst, f)?;
        }
        Op::UnaryWhen { m, dst, op, arg, cond } => {
            let b = sym_unary(cnf, *op, &slots[*arg as usize].clone())?;
            let f = sym_when(cnf, &b, &slots[*cond as usize].clone())?;
            sym_store(cnf, slots, *m, *dst, f)?;
        }
        Op::Binary { m, dst, op, left, right } => {
            let f = sym_binary(
                cnf,
                *op,
                &slots[*left as usize].clone(),
                &slots[*right as usize].clone(),
            )?;
            sym_store(cnf, slots, *m, *dst, f)?;
        }
        Op::BinaryWhen { m, dst, op, left, right, cond } => {
            let b = sym_binary(
                cnf,
                *op,
                &slots[*left as usize].clone(),
                &slots[*right as usize].clone(),
            )?;
            let f = sym_when(cnf, &b, &slots[*cond as usize].clone())?;
            sym_store(cnf, slots, *m, *dst, f)?;
        }
        Op::RegisterShift { reg, src } => {
            shift_register(cnf, slots, regs_out, *reg, *src)?;
        }
        Op::RegisterShiftN { moves } => {
            for &(reg, src) in moves.iter() {
                shift_register(cnf, slots, regs_out, reg, src)?;
            }
        }
    }
    Ok(())
}

/// `schedule::Op::RegisterShift`: a present body advances the register, an
/// absent or ubiquitous body keeps it, an unvalued body bails.
fn shift_register(
    cnf: &mut Cnf,
    slots: &[SymFlow],
    regs_out: &mut [SymVal],
    reg: u32,
    src: u32,
) -> Result<(), String> {
    match &slots[src as usize] {
        SymFlow::Ubiq(_) => {}
        SymFlow::Dyn { pres, unval, val } => {
            let bad = cnf.and(*pres, *unval);
            let ok = cnf.not(bad);
            cnf.assert_bit(ok);
            let old = regs_out[reg as usize].clone();
            let next =
                ite_val(cnf, *pres, val, &Some(old))?.expect("register merge always has a value");
            regs_out[reg as usize] = next;
        }
    }
    Ok(())
}
