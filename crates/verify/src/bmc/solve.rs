//! The bounded model checking driver: lazy unrolling, iterative deepening,
//! lexicographic counterexample minimization and bounded maximization.
//!
//! The transition relation is unrolled one step at a time, and each step's
//! feasibility constraints are asserted as *hard* clauses only once every
//! shorter depth has been queried — so a depth-`j` query is never
//! contaminated by step `j+1`'s constraints (a violating trace may well end
//! in a state with no feasible successor). The violation condition itself is
//! only ever passed as a solve-time *assumption*, never asserted.
//!
//! Because depths are queried in ascending order, the first satisfiable
//! depth is the minimal counterexample length — the same length the
//! explicit breadth-first checker finds. Within that depth the trace is
//! then minimized move by move in ascending letter order under the
//! violation assumption, which reproduces the explicit checker's
//! lexicographically-least counterexample exactly (BFS expands layers in
//! arena order and moves in letter order, so the first violation it reports
//! is the lexicographically-least shortest trace).

use std::collections::BTreeMap;

use minicdcl::Lit;
use polysig_lang::Program;
use polysig_sim::schedule::CompiledComponent;
use polysig_sim::Reactor;
use polysig_tagged::{SigName, Value, ValueType};

use crate::alphabet::{Alphabet, EnvAutomaton};
use crate::bound::BoundResult;
use crate::error::VerifyError;
use crate::prop::{Property, Shape};
use crate::reach::{CheckOptions, CheckResult};

use super::cnf::{Bit, Cnf};
use super::decode;
use super::encode::{encode_step, sym_of_value, SymFlow, SymVal};

fn unsupported(reason: impl Into<String>) -> VerifyError {
    VerifyError::BmcUnsupported { reason: reason.into() }
}

fn internal(reason: impl Into<String>) -> VerifyError {
    VerifyError::BmcInternal { reason: reason.into() }
}

/// One permitted environment move at one step of the unrolling.
struct Move {
    /// Source automaton state.
    state: u32,
    /// Letter index into the alphabet.
    letter: u32,
    /// Successor automaton state.
    next: u32,
    /// Selection literal: true iff the trace takes this move here.
    lit: Lit,
}

/// The lazily-unrolled transition relation.
struct Unroller {
    cnf: Cnf,
    cc: CompiledComponent,
    /// Per letter, per input (aligned with `cc.input_slots`): the driven
    /// value, `None` when the letter leaves the input absent.
    letters: Vec<Vec<Option<Value>>>,
    /// Environment automaton moves, tabulated per state in letter order.
    moves_of: Vec<Vec<(u32, u32)>>,
    /// Symbolic register file entering the next step.
    regs: Vec<SymVal>,
    /// Concretely-reachable automaton states at the current frontier, with
    /// their one-hot activation bits, in ascending state order.
    cur_states: Vec<(u32, Bit)>,
    /// Per encoded step: its moves, in (state, letter) order.
    step_moves: Vec<Vec<Move>>,
}

impl Unroller {
    fn new(
        program: &Program,
        alphabet: &Alphabet,
        env: Option<&EnvAutomaton>,
    ) -> Result<(Unroller, Reactor), VerifyError> {
        let reactor = Reactor::for_program_compiled(program)?;
        let cc = reactor
            .compiled_schedule()
            .cloned()
            .ok_or_else(|| unsupported("program does not lower to a static schedule"))?;

        // compile every letter onto the schedule's input layout; anything
        // the schedule would reject per-reaction (a driven non-input, an
        // ill-typed value) is rejected for the whole run instead
        let mut letters: Vec<Vec<Option<Value>>> = Vec::with_capacity(alphabet.len());
        for letter in alphabet.letters() {
            let mut row: Vec<Option<Value>> = vec![None; cc.input_slots.len()];
            for (name, v) in letter {
                let Some(id) = reactor.sig_id(name) else {
                    return Err(polysig_sim::SimError::NotAnInput { name: name.clone() }.into());
                };
                let Some(k) = cc.input_slots.iter().position(|&slot| slot as usize == id.index())
                else {
                    return Err(unsupported(format!("letter drives non-input signal `{name}`")));
                };
                if v.ty() != cc.input_types[k] {
                    return Err(unsupported(format!("letter value for `{name}` is ill-typed")));
                }
                row[k] = Some(*v);
            }
            letters.push(row);
        }

        let free_env;
        let env = match env {
            Some(e) => e,
            None => {
                free_env = EnvAutomaton::free(alphabet);
                &free_env
            }
        };
        let moves_of: Vec<Vec<(u32, u32)>> = (0..env.state_count())
            .map(|s| env.moves(s).map(|(li, to)| (li as u32, to as u32)).collect())
            .collect();

        let cnf = Cnf::new();
        let regs: Vec<SymVal> =
            reactor.registers().iter().map(|v| sym_of_value(&cnf, *v)).collect();
        let un = Unroller {
            cnf,
            cc,
            letters,
            moves_of,
            regs,
            cur_states: vec![(0, Bit::Const(true))],
            step_moves: Vec::new(),
        };
        Ok((un, reactor))
    }

    /// Encodes one more step of the transition relation, returning the
    /// step's decided signal flows. All feasibility constraints are hard;
    /// nothing here mentions the property.
    fn push_step(&mut self) -> Result<Vec<SymFlow>, VerifyError> {
        // the step's environment moves, from concretely-reachable states
        let mut moves: Vec<Move> = Vec::new();
        for &(s, sbit) in &self.cur_states {
            for &(li, next) in &self.moves_of[s as usize] {
                let lit = self.cnf.fresh_lit();
                // a move is only available when its source state is live
                self.cnf.assert_clause(&[Bit::Lit(!lit), sbit]);
                moves.push(Move { state: s, letter: li, next, lit });
            }
        }
        let move_bits: Vec<Bit> = moves.iter().map(|m| Bit::Lit(m.lit)).collect();
        self.cnf.exactly_one(&move_bits);

        // successor automaton states: one-hot by construction (exactly one
        // move fires and each move has one target)
        let mut incoming: BTreeMap<u32, Vec<Bit>> = BTreeMap::new();
        for m in &moves {
            incoming.entry(m.next).or_default().push(Bit::Lit(m.lit));
        }
        self.cur_states = incoming
            .into_iter()
            .map(|(s, bits)| {
                let b = self.cnf.or_many(&bits);
                (s, b)
            })
            .collect();

        // the step's inputs, as multiplexers over the selected move
        let mut inputs: Vec<(Bit, SymVal)> = Vec::with_capacity(self.cc.input_slots.len());
        for k in 0..self.cc.input_slots.len() {
            let driving: Vec<(&Move, Value)> = moves
                .iter()
                .filter_map(|m| self.letters[m.letter as usize][k].map(|v| (m, v)))
                .collect();
            let pres_bits: Vec<Bit> = driving.iter().map(|(m, _)| Bit::Lit(m.lit)).collect();
            let pres = self.cnf.or_many(&pres_bits);
            let val = match self.cc.input_types[k] {
                ValueType::Bool => {
                    let on: Vec<Bit> = driving
                        .iter()
                        .filter(|(_, v)| v.is_true())
                        .map(|(m, _)| Bit::Lit(m.lit))
                        .collect();
                    SymVal::B(self.cnf.or_many(&on))
                }
                ValueType::Int => {
                    let mut word = Vec::with_capacity(super::cnf::W);
                    for j in 0..super::cnf::W {
                        let on: Vec<Bit> = driving
                            .iter()
                            .filter(|(_, v)| matches!(v, Value::Int(i) if (*i >> j) & 1 == 1))
                            .map(|(m, _)| Bit::Lit(m.lit))
                            .collect();
                        word.push(self.cnf.or_many(&on));
                    }
                    SymVal::I(word)
                }
            };
            inputs.push((pres, val));
        }

        let io = encode_step(&mut self.cnf, &self.cc, &self.regs, &inputs).map_err(unsupported)?;
        self.regs = io.regs_out;
        self.step_moves.push(moves);
        Ok(io.outputs)
    }

    /// After a SAT answer at the deepest encoded step, fixes the trace one
    /// move at a time in ascending letter order under the violation
    /// assumption, tracking the automaton state concretely. Returns the
    /// letter index sequence — the lexicographically-least shortest
    /// violating trace.
    fn lex_minimize(&mut self, viol: Lit) -> Result<Vec<usize>, VerifyError> {
        let mut fixed: Vec<Lit> = Vec::new();
        let mut seq: Vec<usize> = Vec::new();
        let mut state = 0u32;
        for t in 0..self.step_moves.len() {
            let mut chosen: Option<(u32, u32)> = None;
            for m in self.step_moves[t].iter().filter(|m| m.state == state) {
                let mut assumptions = fixed.clone();
                assumptions.push(m.lit);
                assumptions.push(viol);
                if self.cnf.solver.solve_assuming(&assumptions) {
                    chosen = Some((m.letter, m.next));
                    fixed.push(m.lit);
                    break;
                }
            }
            let Some((letter, next)) = chosen else {
                return Err(internal(format!(
                    "no feasible move at step {t} while minimizing a satisfiable trace"
                )));
            };
            seq.push(letter as usize);
            state = next;
        }
        Ok(seq)
    }
}

/// The property shapes the encoder understands, bound to a signal's dense
/// index (`None`: the program never declares the signal — trivially safe).
enum PropSpec {
    NeverTrue(Option<usize>),
    NeverPresent(Option<usize>),
    InRange(Option<usize>, i64, i64),
}

fn prop_spec(property: &Property, reactor: &Reactor) -> Result<PropSpec, VerifyError> {
    let ix = |s: &SigName| reactor.sig_id(s).map(|id| id.index());
    match property.shape() {
        Shape::NeverTrue(s) => Ok(PropSpec::NeverTrue(ix(s))),
        Shape::NeverPresent(s) => Ok(PropSpec::NeverPresent(ix(s))),
        Shape::InRange(s, lo, hi) => Ok(PropSpec::InRange(ix(s), *lo, *hi)),
        Shape::Custom => {
            Err(unsupported("custom property predicates cannot be encoded symbolically"))
        }
    }
}

/// The violation bit of one step's outputs: true iff this reaction breaks
/// the property. Every signal slot is decided, so the bit is exact.
fn violation_bit(cnf: &mut Cnf, outputs: &[SymFlow], spec: &PropSpec) -> Bit {
    match spec {
        PropSpec::NeverTrue(Some(ix)) => match &outputs[*ix] {
            SymFlow::Dyn { pres, val: Some(SymVal::B(b)), .. } => cnf.and(*pres, *b),
            // integer-valued, never-valued or constant slots are never
            // present with `Value::TRUE`
            _ => Bit::Const(false),
        },
        PropSpec::NeverPresent(Some(ix)) => match &outputs[*ix] {
            SymFlow::Dyn { pres, .. } => *pres,
            SymFlow::Ubiq(_) => Bit::Const(false),
        },
        PropSpec::InRange(Some(ix), lo, hi) => match &outputs[*ix] {
            SymFlow::Dyn { pres, val: Some(SymVal::I(w)), .. } => {
                let low = cnf.word_const(*lo);
                let high = cnf.word_const(*hi);
                let below = cnf.slt(w, &low);
                let above = cnf.slt(&high, w);
                let out = cnf.or(below, above);
                cnf.and(*pres, out)
            }
            _ => Bit::Const(false),
        },
        _ => Bit::Const(false),
    }
}

/// Bounded check of `property` up to `depth` reactions — the
/// [`crate::bmc::Backend::Bmc`] implementation behind [`crate::check`].
pub(crate) fn run_check(
    program: &Program,
    alphabet: &Alphabet,
    property: &Property,
    options: &CheckOptions,
    depth: usize,
) -> Result<CheckResult, VerifyError> {
    if alphabet.is_empty() {
        return Err(VerifyError::EmptyAlphabet);
    }
    let (mut un, reactor) = Unroller::new(program, alphabet, options.env.as_ref())?;
    let spec = prop_spec(property, &reactor)?;
    drop(reactor);

    for _ in 0..depth {
        let outputs = un.push_step()?;
        let viol = violation_bit(&mut un.cnf, &outputs, &spec);
        let vlit = un.cnf.lit(viol);
        if un.cnf.solver.solve_assuming(&[vlit]) {
            let seq = un.lex_minimize(vlit)?;
            let cx = decode::replay(program, alphabet, &seq, property)?;
            return Ok(CheckResult {
                holds: false,
                counterexample: Some(cx),
                states_explored: 0,
                transitions: 0,
                pruned: 0,
                depth_bounded: false,
            });
        }
    }
    Ok(CheckResult {
        holds: true,
        counterexample: None,
        states_explored: 0,
        transitions: 0,
        pruned: 0,
        depth_bounded: true,
    })
}

/// Bounded maximization of an integer signal up to `depth` reactions — the
/// symbolic counterpart of [`crate::bound::max_signal_value`].
pub(crate) fn run_bound(
    program: &Program,
    alphabet: &Alphabet,
    env: Option<&EnvAutomaton>,
    signal: &SigName,
    depth: usize,
) -> Result<BoundResult, VerifyError> {
    if alphabet.is_empty() {
        return Err(VerifyError::EmptyAlphabet);
    }
    let (mut un, reactor) = Unroller::new(program, alphabet, env)?;
    // an undeclared signal never ticks, exactly like the explicit bound
    let Some(ix) = reactor.sig_id(signal).map(|id| id.index()) else {
        return Ok(BoundResult {
            max: None,
            states_explored: 0,
            transitions: 0,
            depth_bounded: true,
        });
    };
    drop(reactor);

    let mut best: Option<i64> = None;
    for _ in 0..depth {
        let outputs = un.push_step()?;
        let (pres, word) = match &outputs[ix] {
            SymFlow::Dyn { pres, val: Some(SymVal::I(w)), .. } => (*pres, w.clone()),
            // boolean, never-valued or constant slots contribute no value
            _ => continue,
        };
        // threshold maximization: repeatedly demand a strictly larger
        // observation at this step until the solver refutes one
        loop {
            let above = match best {
                None => Bit::Const(true),
                Some(b) => {
                    let bw = un.cnf.word_const(b);
                    un.cnf.slt(&bw, &word)
                }
            };
            let q = un.cnf.and(pres, above);
            let qlit = un.cnf.lit(q);
            if un.cnf.solver.solve_assuming(&[qlit]) {
                best = Some(un.cnf.word_model(&word));
            } else {
                break;
            }
        }
    }
    Ok(BoundResult { max: best, states_explored: 0, transitions: 0, depth_bounded: true })
}
