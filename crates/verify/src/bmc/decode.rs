//! Concrete validation of symbolic counterexamples.
//!
//! A SAT model is only trusted after it replays: the decoded letter
//! sequence is run on a plain [`Reactor`] (the same execution path the
//! explicit checker uses), every reaction must succeed, every intermediate
//! reaction must satisfy the property, and the final reaction must violate
//! it. Any disagreement is a [`VerifyError::BmcInternal`] — an unreplayable
//! model means the encoding and the executor diverged, and reporting the
//! trace anyway would be unsound.

use polysig_lang::Program;
use polysig_sim::{DenseEnv, Reactor};

use crate::alphabet::{Alphabet, Letter};
use crate::counterexample::Counterexample;
use crate::error::VerifyError;
use crate::prop::Property;

fn internal(reason: impl Into<String>) -> VerifyError {
    VerifyError::BmcInternal { reason: reason.into() }
}

/// Replays the letter-index sequence `seq` concretely and returns it as a
/// [`Counterexample`], or a [`VerifyError::BmcInternal`] when the symbolic
/// trace does not reproduce on the reactor.
pub(crate) fn replay(
    program: &Program,
    alphabet: &Alphabet,
    seq: &[usize],
    property: &Property,
) -> Result<Counterexample, VerifyError> {
    let mut reactor = Reactor::for_program(program)?;
    let names = reactor.signal_names().to_vec();
    let check = property.bind(&reactor);
    let n = reactor.signal_count();

    let letters: Vec<Letter> = seq.iter().map(|&li| alphabet.letters()[li].clone()).collect();
    for (pos, letter) in letters.iter().enumerate() {
        let mut env = DenseEnv::new(n);
        for (name, v) in letter {
            let id = reactor
                .sig_id(name)
                .ok_or_else(|| internal(format!("trace letter names unknown signal `{name}`")))?;
            env.set(id, *v);
        }
        let reaction = reactor
            .react_dense(&env)
            .map_err(|e| internal(format!("symbolic trace does not replay at step {pos}: {e}")))?;
        let violated = !check.holds_dense(reaction, &names);
        let last = pos + 1 == letters.len();
        if violated != last {
            return Err(internal(format!(
                "symbolic trace {} the property at step {pos}, expected {}",
                if violated { "violates" } else { "satisfies" },
                if last { "a violation" } else { "no violation" },
            )));
        }
    }
    Ok(Counterexample::new(letters))
}
