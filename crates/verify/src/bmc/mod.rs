//! Symbolic bounded model checking over the compiled transition relation.
//!
//! The explicit checker ([`crate::reach`]) enumerates `(registers,
//! env_state)` states one by one; this backend instead *encodes* the
//! program's reaction as a Boolean formula and asks a SAT solver (the
//! vendored [`minicdcl`] CDCL core) whether a property violation is
//! reachable within `k` reactions. The encoding substrate is the compiled
//! static schedule (`polysig_sim::schedule`): each slot becomes presence /
//! unvaluedness bits plus a bit-blasted 64-bit value, each op is transcribed
//! rule for rule, and every executor *bail* becomes an infeasibility
//! constraint — a model is a trace of successful reactions by construction.
//!
//! ## Soundness contract
//!
//! * **UNSAT at depth `k` proves safety only up to `k` reactions.** The
//!   verdict is reported with `depth_bounded = true`; it says nothing about
//!   longer traces (no fixpoint/interpolation reasoning is attempted).
//! * **SAT yields a replayed concrete trace.** Every satisfying model is
//!   minimized to the lexicographically-least shortest trace and then
//!   replayed on the concrete reactor before being reported; the final
//!   [`crate::Counterexample`] is *identical* to what the explicit
//!   breadth-first checker returns for the same query. A model that fails
//!   to replay is a hard [`crate::VerifyError::BmcInternal`], never a
//!   result.
//! * **Hard program errors are treated as infeasibility.** Arithmetic
//!   overflow and runtime type errors abort the explicit checker with an
//!   error verdict; the symbolic encoding instead prunes such paths. On
//!   programs where the explicit checker returns `Ok`, no such path is
//!   reachable and the backends agree; on programs where it errors, the
//!   symbolic backend may still return a verdict that only covers
//!   non-erroring paths.
//!
//! Programs outside the encodable fragment (no static schedule, custom
//! property closures, a few exotic `when`/`default` operand shapes) are
//! rejected with [`crate::VerifyError::BmcUnsupported`] rather than
//! answered wrongly.

mod cnf;
mod decode;
mod encode;
mod solve;

pub(crate) use solve::{run_bound, run_check};

/// Which engine answers a reachability or bound query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Explicit-state breadth-first exploration: exhaustive (up to
    /// `max_depth`, when set), exact counters, works on every program.
    #[default]
    Explicit,
    /// Symbolic bounded model checking via the vendored SAT core: unrolls
    /// the transition relation to `depth` reactions. A `holds` verdict is
    /// bounded (`depth_bounded` is always reported `true`); a violation
    /// comes with the same shortest counterexample the explicit checker
    /// finds. `CheckOptions::max_states`, `max_depth` and `threads` are
    /// ignored under this backend — `depth` alone bounds the query.
    Bmc {
        /// Number of reactions to unroll.
        depth: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::Backend;
    use crate::alphabet::{Alphabet, EnvAutomaton, Letter};
    use crate::prop::Property;
    use crate::reach::{check, CheckOptions};
    use crate::VerifyError;
    use polysig_gals::nfifo::nfifo_component;
    use polysig_lang::parse_program;
    use polysig_tagged::Value;

    fn bmc(depth: usize) -> CheckOptions {
        CheckOptions { backend: Backend::Bmc { depth }, ..Default::default() }
    }

    #[test]
    fn mod4_counter_range_holds_bounded() {
        let p = parse_program(
            "process C { input tick: bool; output n: int; local np: int; \
             np := (pre 0 n) when tick; \
             n := (0 when (np = 3)) default (np + 1); n ^= tick; }",
        )
        .unwrap();
        let alphabet = Alphabet::exhaustive(&p, &[]).unwrap();
        let r = check(&p, &alphabet, &Property::always_in_range("n", 0, 4), &bmc(6)).unwrap();
        assert!(r.holds);
        assert!(r.depth_bounded, "a BMC `holds` verdict is always bounded");
        assert_eq!(r.states_explored, 0, "symbolic: no explicit states");
    }

    #[test]
    fn counter_violation_matches_explicit_counterexample() {
        let p = parse_program(
            "process C { input tick: bool; output n: int; \
             n := ((pre 0 n) when tick) + 1; n ^= tick; }",
        )
        .unwrap();
        let alphabet = Alphabet::exhaustive(&p, &[]).unwrap();
        let prop = Property::always_in_range("n", 0, 2);
        let explicit = check(&p, &alphabet, &prop, &CheckOptions::default()).unwrap();
        let symbolic = check(&p, &alphabet, &prop, &bmc(6)).unwrap();
        assert!(!symbolic.holds);
        assert!(!symbolic.depth_bounded);
        assert_eq!(
            symbolic.counterexample.as_ref().unwrap().letters(),
            explicit.counterexample.as_ref().unwrap().letters(),
            "same shortest lexicographically-least trace"
        );
    }

    #[test]
    fn fifo_overflow_found_at_exact_depth() {
        let p = polysig_lang::Program::single(nfifo_component("ch", 2));
        let alphabet = Alphabet::exhaustive(&p, &[1]).unwrap();
        let prop = Property::never_true("ch_alarm");
        // three writes overflow depth 2: invisible at depth 2 …
        let shallow = check(&p, &alphabet, &prop, &bmc(2)).unwrap();
        assert!(shallow.holds);
        assert!(shallow.depth_bounded);
        // … found (with the BFS-identical trace) at depth 3
        let deep = check(&p, &alphabet, &prop, &bmc(3)).unwrap();
        assert!(!deep.holds);
        let explicit = check(&p, &alphabet, &prop, &CheckOptions::default()).unwrap();
        assert_eq!(
            deep.counterexample.as_ref().unwrap().letters(),
            explicit.counterexample.as_ref().unwrap().letters(),
        );
    }

    #[test]
    fn env_automaton_restricts_symbolic_traces_too() {
        let p = polysig_lang::Program::single(nfifo_component("ch", 1));
        let mut alphabet = Alphabet::exhaustive(&p, &[1]).unwrap();
        let mut write = Letter::new();
        write.insert("tick".into(), Value::TRUE);
        write.insert("ch_in".into(), Value::Int(1));
        let mut read = Letter::new();
        read.insert("tick".into(), Value::TRUE);
        read.insert("ch_rd".into(), Value::TRUE);
        let env = EnvAutomaton::cycle(&mut alphabet, &[write, read]);
        let r = check(
            &p,
            &alphabet,
            &Property::never_true("ch_alarm"),
            &CheckOptions {
                env: Some(env),
                backend: Backend::Bmc { depth: 8 },
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.holds, "alternating write/read never overflows a 1-place buffer");
    }

    #[test]
    fn custom_property_is_rejected_not_misanswered() {
        let p = parse_program("process P { input a: bool; output x: bool; x := a; }").unwrap();
        let alphabet = Alphabet::exhaustive(&p, &[]).unwrap();
        let prop = Property::new("custom", |_r| true);
        let err = check(&p, &alphabet, &prop, &bmc(3)).unwrap_err();
        assert!(matches!(err, VerifyError::BmcUnsupported { .. }));
    }

    #[test]
    fn undeclared_property_signal_holds_trivially() {
        let p = parse_program("process P { input a: bool; output x: bool; x := a; }").unwrap();
        let alphabet = Alphabet::exhaustive(&p, &[]).unwrap();
        let r = check(&p, &alphabet, &Property::never_true("ghost"), &bmc(4)).unwrap();
        assert!(r.holds);
    }

    #[test]
    fn negative_multiplication_does_not_phantom_overflow() {
        // regression: the multiplier's 128-bit sign extension must join the
        // shift-add, or `-3 * -2` raises a phantom overflow bail and every
        // unrolled step becomes infeasible (reported as a bogus `holds`)
        let p = parse_program("process M { input r: int; output y: int; y := (r * -2); }").unwrap();
        let mut letter = Letter::new();
        letter.insert("r".into(), Value::Int(-3));
        let mut alphabet = Alphabet::from_letters(vec![letter.clone()]).unwrap();
        let env = EnvAutomaton::cycle(&mut alphabet, &[letter]);
        let opts = CheckOptions {
            env: Some(env.clone()),
            backend: Backend::Bmc { depth: 2 },
            ..Default::default()
        };
        let r = check(&p, &alphabet, &Property::never_present("y"), &opts).unwrap();
        assert!(!r.holds, "y ticks with value 6 at the first reaction");
        assert_eq!(r.counterexample.unwrap().len(), 1);
        let b = crate::bound::max_signal_value_opts(&p, &alphabet, &"y".into(), &opts).unwrap();
        assert_eq!(b.max, Some(6));
    }

    #[test]
    fn bound_backend_dispatch_matches_explicit_max() {
        let p = parse_program(
            "process C { input tick: bool; output n: int; local np: int; \
             np := (pre 0 n) when tick; \
             n := (0 when (np = 3)) default (np + 1); n ^= tick; }",
        )
        .unwrap();
        let alphabet = Alphabet::exhaustive(&p, &[]).unwrap();
        let explicit = crate::bound::max_signal_value_opts(
            &p,
            &alphabet,
            &"n".into(),
            &CheckOptions::default(),
        )
        .unwrap();
        let symbolic =
            crate::bound::max_signal_value_opts(&p, &alphabet, &"n".into(), &bmc(8)).unwrap();
        assert_eq!(explicit.max, Some(3));
        assert_eq!(symbolic.max, Some(3), "depth 8 sees the full period");
        assert!(!explicit.depth_bounded);
        assert!(symbolic.depth_bounded);
    }
}
