//! Tseitin-style circuit-to-CNF construction over the vendored CDCL core.
//!
//! The encoder manipulates [`Bit`]s — booleans that are either known at
//! encoding time or solver literals — and [`Word`]s, 64-bit two's-complement
//! integers as LSB-first bit vectors. Every gate constant-folds aggressively:
//! the transition relation of a typical program is mostly constants (interned
//! literals, absent initial slots, small input domains), and folding keeps
//! the emitted clause set proportional to the genuinely symbolic part.

use minicdcl::{Lit, Solver};

/// Machine-integer width: [`polysig_tagged::Value::Int`] is an `i64`, and
/// encoding all 64 bits makes the symbolic arithmetic *exact* — including
/// the `checked_add`/`checked_mul` overflow bails of the concrete executor.
pub(crate) const W: usize = 64;

/// A symbolic boolean: a constant folded at encoding time, or a CNF literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Bit {
    /// Known at encoding time.
    Const(bool),
    /// Decided by the solver.
    Lit(Lit),
}

/// A two's-complement integer as `W` bits, least significant first.
pub(crate) type Word = Vec<Bit>;

/// The CNF under construction: a solver plus a pinned `true` literal so
/// constants can cross into assumption position.
pub(crate) struct Cnf {
    pub(crate) solver: Solver,
    true_lit: Lit,
}

impl Cnf {
    pub(crate) fn new() -> Cnf {
        let mut solver = Solver::new();
        let t = Lit::pos(solver.new_var());
        solver.add_clause(&[t]);
        Cnf { solver, true_lit: t }
    }

    /// A fresh unconstrained literal.
    pub(crate) fn fresh_lit(&mut self) -> Lit {
        Lit::pos(self.solver.new_var())
    }

    /// Materializes a bit as a literal (constants map onto the pinned
    /// always-true variable), e.g. for use as a solve-time assumption.
    pub(crate) fn lit(&self, b: Bit) -> Lit {
        match b {
            Bit::Const(true) => self.true_lit,
            Bit::Const(false) => !self.true_lit,
            Bit::Lit(l) => l,
        }
    }

    /// Asserts `b` as a hard constraint.
    pub(crate) fn assert_bit(&mut self, b: Bit) {
        match b {
            Bit::Const(true) => {}
            Bit::Const(false) => {
                self.solver.add_clause(&[]);
            }
            Bit::Lit(l) => {
                self.solver.add_clause(&[l]);
            }
        }
    }

    /// Asserts the disjunction of `bits` as a hard clause.
    pub(crate) fn assert_clause(&mut self, bits: &[Bit]) {
        let mut lits = Vec::with_capacity(bits.len());
        for &b in bits {
            match b {
                Bit::Const(true) => return, // already satisfied
                Bit::Const(false) => {}
                Bit::Lit(l) => lits.push(l),
            }
        }
        self.solver.add_clause(&lits);
    }

    pub(crate) fn not(&self, b: Bit) -> Bit {
        match b {
            Bit::Const(c) => Bit::Const(!c),
            Bit::Lit(l) => Bit::Lit(!l),
        }
    }

    pub(crate) fn and(&mut self, a: Bit, b: Bit) -> Bit {
        match (a, b) {
            (Bit::Const(false), _) | (_, Bit::Const(false)) => Bit::Const(false),
            (Bit::Const(true), x) | (x, Bit::Const(true)) => x,
            (Bit::Lit(x), Bit::Lit(y)) if x == y => a,
            (Bit::Lit(x), Bit::Lit(y)) if x == !y => Bit::Const(false),
            (Bit::Lit(x), Bit::Lit(y)) => {
                let g = self.fresh_lit();
                self.solver.add_clause(&[!g, x]);
                self.solver.add_clause(&[!g, y]);
                self.solver.add_clause(&[g, !x, !y]);
                Bit::Lit(g)
            }
        }
    }

    pub(crate) fn or(&mut self, a: Bit, b: Bit) -> Bit {
        let na = self.not(a);
        let nb = self.not(b);
        let n = self.and(na, nb);
        self.not(n)
    }

    pub(crate) fn xor(&mut self, a: Bit, b: Bit) -> Bit {
        match (a, b) {
            (Bit::Const(x), Bit::Const(y)) => Bit::Const(x ^ y),
            (Bit::Const(false), x) | (x, Bit::Const(false)) => x,
            (Bit::Const(true), x) | (x, Bit::Const(true)) => self.not(x),
            (Bit::Lit(x), Bit::Lit(y)) if x == y => Bit::Const(false),
            (Bit::Lit(x), Bit::Lit(y)) if x == !y => Bit::Const(true),
            (Bit::Lit(x), Bit::Lit(y)) => {
                let g = self.fresh_lit();
                self.solver.add_clause(&[!g, x, y]);
                self.solver.add_clause(&[!g, !x, !y]);
                self.solver.add_clause(&[g, !x, y]);
                self.solver.add_clause(&[g, x, !y]);
                Bit::Lit(g)
            }
        }
    }

    pub(crate) fn iff(&mut self, a: Bit, b: Bit) -> Bit {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// `if c { t } else { e }`.
    pub(crate) fn ite(&mut self, c: Bit, t: Bit, e: Bit) -> Bit {
        match c {
            Bit::Const(true) => t,
            Bit::Const(false) => e,
            _ => {
                if t == e {
                    return t;
                }
                let ct = self.and(c, t);
                let nc = self.not(c);
                let ce = self.and(nc, e);
                self.or(ct, ce)
            }
        }
    }

    pub(crate) fn or_many(&mut self, bits: &[Bit]) -> Bit {
        let mut acc = Bit::Const(false);
        for &b in bits {
            acc = self.or(acc, b);
        }
        acc
    }

    /// Asserts that exactly one of `bits` holds (at-least-one clause plus
    /// pairwise at-most-one).
    pub(crate) fn exactly_one(&mut self, bits: &[Bit]) {
        self.assert_clause(bits);
        for i in 0..bits.len() {
            for j in i + 1..bits.len() {
                let ni = self.not(bits[i]);
                let nj = self.not(bits[j]);
                self.assert_clause(&[ni, nj]);
            }
        }
    }

    // ---- words -------------------------------------------------------

    pub(crate) fn word_const(&self, v: i64) -> Word {
        (0..W).map(|i| Bit::Const((v >> i) & 1 == 1)).collect()
    }

    /// The encoding-time value of a fully-constant word.
    pub(crate) fn word_as_const(&self, w: &[Bit]) -> Option<i64> {
        let mut v: u64 = 0;
        for (i, b) in w.iter().enumerate() {
            match b {
                Bit::Const(true) => v |= 1 << i,
                Bit::Const(false) => {}
                Bit::Lit(_) => return None,
            }
        }
        Some(v as i64)
    }

    /// Reads a word back from the solver's current model.
    pub(crate) fn word_model(&self, w: &[Bit]) -> i64 {
        let mut v: u64 = 0;
        for (i, &b) in w.iter().enumerate() {
            let set = match b {
                Bit::Const(c) => c,
                Bit::Lit(l) => self.solver.model_value(l),
            };
            if set {
                v |= 1 << i;
            }
        }
        v as i64
    }

    fn full_add(&mut self, a: Bit, b: Bit, c: Bit) -> (Bit, Bit) {
        let ab = self.xor(a, b);
        let sum = self.xor(ab, c);
        let g1 = self.and(a, b);
        let g2 = self.and(c, ab);
        let carry = self.or(g1, g2);
        (sum, carry)
    }

    /// Ripple addition of `a` and `b_bits` with carry-in `c0`; returns the
    /// sum and the signed-overflow flag `carry_out ⊕ carry_into_sign` (the
    /// hardware V flag, which matches `checked_add`/`checked_sub` when the
    /// subtrahend arrives pre-complemented with `c0 = true`).
    fn ripple(&mut self, a: &[Bit], b_bits: &[Bit], c0: Bit) -> (Word, Bit) {
        let mut out = Vec::with_capacity(W);
        let mut carry = c0;
        let mut carry_into_sign = Bit::Const(false);
        for i in 0..W {
            if i == W - 1 {
                carry_into_sign = carry;
            }
            let (s, c) = self.full_add(a[i], b_bits[i], carry);
            out.push(s);
            carry = c;
        }
        let ovf = self.xor(carry, carry_into_sign);
        (out, ovf)
    }

    /// `a + b` with the `i64::checked_add` overflow flag.
    pub(crate) fn add_ovf(&mut self, a: &[Bit], b: &[Bit]) -> (Word, Bit) {
        if let (Some(x), Some(y)) = (self.word_as_const(a), self.word_as_const(b)) {
            return match x.checked_add(y) {
                Some(s) => (self.word_const(s), Bit::Const(false)),
                None => (self.word_const(0), Bit::Const(true)),
            };
        }
        self.ripple(a, b, Bit::Const(false))
    }

    /// `a - b` with the `i64::checked_sub` overflow flag.
    pub(crate) fn sub_ovf(&mut self, a: &[Bit], b: &[Bit]) -> (Word, Bit) {
        if let (Some(x), Some(y)) = (self.word_as_const(a), self.word_as_const(b)) {
            return match x.checked_sub(y) {
                Some(s) => (self.word_const(s), Bit::Const(false)),
                None => (self.word_const(0), Bit::Const(true)),
            };
        }
        let nb: Vec<Bit> = b.iter().map(|&x| self.not(x)).collect();
        self.ripple(a, &nb, Bit::Const(true))
    }

    /// `-a` with the `i64::checked_neg` overflow flag (`a == i64::MIN`).
    pub(crate) fn neg_ovf(&mut self, a: &[Bit]) -> (Word, Bit) {
        let zero = self.word_const(0);
        let (w, _) = self.sub_ovf(&zero, a);
        let min = self.word_const(i64::MIN);
        let ovf = self.eq_word(a, &min);
        (w, ovf)
    }

    /// `a * b` with the `i64::checked_mul` overflow flag: shift-add over the
    /// 128-bit sign-extended product, overflow iff the top 65 bits are not a
    /// sign extension of bit 63.
    pub(crate) fn mul_ovf(&mut self, a: &[Bit], b: &[Bit]) -> (Word, Bit) {
        if let (Some(x), Some(y)) = (self.word_as_const(a), self.word_as_const(b)) {
            return match x.checked_mul(y) {
                Some(s) => (self.word_const(s), Bit::Const(false)),
                None => (self.word_const(0), Bit::Const(true)),
            };
        }
        // put the more-constant operand on the multiplier side: partial
        // products for its zero bits fold away entirely
        let (a, b) = if self.word_as_const(a).is_some() { (b, a) } else { (a, b) };
        let ext = |w: &[Bit]| -> Vec<Bit> {
            let mut e = w.to_vec();
            e.resize(2 * W, w[W - 1]);
            e
        };
        let ea = ext(a);
        let mut acc: Vec<Bit> = vec![Bit::Const(false); 2 * W];
        for (i, &bi) in b.iter().enumerate() {
            if bi == Bit::Const(false) {
                continue;
            }
            // partial product: ea << i, gated by b's bit i
            let mut carry = Bit::Const(false);
            for j in i..2 * W {
                let pj = self.and(bi, ea[j - i]);
                let (s, c) = self.full_add(acc[j], pj, carry);
                acc[j] = s;
                carry = c;
            }
        }
        // the multiplier must be sign-extended too: a negative `b` has the
        // high 64 positions of its 128-bit two's-complement form set, and
        // their partial products land exactly in the high half the
        // overflow check reads (ea·eb ≡ a·b mod 2^128). Their sum folds to
        // one conditional add: Σ_{i=W..2W} (ea << i) ≡ ((-a mod 2^W) << W),
        // gated by b's sign bit.
        let bsign = b[W - 1];
        if bsign != Bit::Const(false) {
            let zero = self.word_const(0);
            let (na, _) = self.ripple(
                &zero,
                &a.iter().map(|&x| self.not(x)).collect::<Vec<_>>(),
                Bit::Const(true),
            );
            let mut carry = Bit::Const(false);
            for j in 0..W {
                let pj = self.and(bsign, na[j]);
                let (s, c) = self.full_add(acc[W + j], pj, carry);
                acc[W + j] = s;
                carry = c;
            }
        }
        let sign = acc[W - 1];
        let mut ovf = Bit::Const(false);
        for &hi in acc.iter().take(2 * W).skip(W) {
            let d = self.xor(hi, sign);
            ovf = self.or(ovf, d);
        }
        (acc[..W].to_vec(), ovf)
    }

    /// Unsigned `a < b`.
    fn ult(&mut self, a: &[Bit], b: &[Bit]) -> Bit {
        let mut lt = Bit::Const(false);
        for i in 0..W {
            let same = self.iff(a[i], b[i]);
            lt = self.ite(same, lt, b[i]);
        }
        lt
    }

    /// Signed `a < b` (unsigned comparison with the sign bits flipped).
    pub(crate) fn slt(&mut self, a: &[Bit], b: &[Bit]) -> Bit {
        if let (Some(x), Some(y)) = (self.word_as_const(a), self.word_as_const(b)) {
            return Bit::Const(x < y);
        }
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        fa[W - 1] = self.not(fa[W - 1]);
        fb[W - 1] = self.not(fb[W - 1]);
        self.ult(&fa, &fb)
    }

    /// Signed `a <= b`.
    pub(crate) fn sle(&mut self, a: &[Bit], b: &[Bit]) -> Bit {
        let gt = self.slt(b, a);
        self.not(gt)
    }

    pub(crate) fn eq_word(&mut self, a: &[Bit], b: &[Bit]) -> Bit {
        let mut acc = Bit::Const(true);
        for i in 0..W {
            let e = self.iff(a[i], b[i]);
            acc = self.and(acc, e);
        }
        acc
    }

    pub(crate) fn ite_word(&mut self, c: Bit, t: &[Bit], e: &[Bit]) -> Word {
        (0..W).map(|i| self.ite(c, t[i], e[i])).collect()
    }
}
