//! Ablations of the design choices called out in DESIGN.md §5:
//!
//! * `estimation_policy` — the paper's grow-by-max-miss rule vs doubling;
//! * `fifo_impl` — the Signal chain (paper's construction, simulated
//!   equation-by-equation) vs the native ring-buffer runtime channel;
//! * `verify_strategy` — exhaustive BFS vs depth-bounded exploration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use polysig_bench::{banner, pipe, pipe_env};
use polysig_gals::estimate::{estimate_buffer_sizes, EstimationOptions, GrowthPolicy};
use polysig_gals::nfifo::nfifo_component;
use polysig_gals::runtime::RuntimeChannel;
use polysig_gals::{desynchronize, ChannelPolicy, DesyncOptions};
use polysig_sim::generator::master_clock;
use polysig_sim::{BurstyInputs, PeriodicInputs, Scenario, ScenarioGenerator, Simulator};
use polysig_tagged::{Value, ValueType};
use polysig_verify::alphabet::Letter;
use polysig_verify::{check, Alphabet, CheckOptions, EnvAutomaton, Property};

fn bench_estimation_policy(c: &mut Criterion) {
    banner("ablation", "estimation growth policy: by-max-miss (paper) vs doubling");
    eprintln!("{:>6} | {:>14} | {:>14}", "burst", "by-miss (iters→n)", "doubling (iters→n)");
    let env = |burst: usize| {
        BurstyInputs::new("a", ValueType::Int, burst, 16)
            .generate(80)
            .zip_union(&PeriodicInputs::new("x_rd", ValueType::Bool, 2, 0).generate(80))
            .zip_union(&master_clock("tick", 80))
    };
    for burst in [2usize, 4, 8] {
        let by_miss = estimate_buffer_sizes(
            &pipe(),
            &env(burst),
            &EstimationOptions { growth: GrowthPolicy::ByMaxMiss, ..Default::default() },
        )
        .unwrap();
        let doubling = estimate_buffer_sizes(
            &pipe(),
            &env(burst),
            &EstimationOptions { growth: GrowthPolicy::Doubling, ..Default::default() },
        )
        .unwrap();
        eprintln!(
            "{burst:>6} | {:>9}→{:<5} | {:>9}→{:<5}",
            by_miss.iterations(),
            by_miss.size_of(&"x".into()).unwrap(),
            doubling.iterations(),
            doubling.size_of(&"x".into()).unwrap(),
        );
    }

    let mut group = c.benchmark_group("ablation_estimation");
    for (name, growth) in
        [("by_max_miss", GrowthPolicy::ByMaxMiss), ("doubling", GrowthPolicy::Doubling)]
    {
        let scenario = env(6);
        group.bench_function(BenchmarkId::new("loop", name), |b| {
            b.iter(|| {
                std::hint::black_box(
                    estimate_buffer_sizes(
                        &pipe(),
                        &scenario,
                        &EstimationOptions { growth, ..Default::default() },
                    )
                    .unwrap()
                    .iterations(),
                )
            })
        });
    }
    group.finish();
}

fn bench_fifo_impl(c: &mut Criterion) {
    banner("ablation", "FIFO implementation: Signal chain vs native ring buffer");
    let steps = 128;
    let mut scenario = Scenario::new();
    for i in 0..steps {
        let mut t = scenario.on("tick", Value::TRUE);
        if i % 2 == 0 {
            t = t.on("ch_in", Value::Int(i as i64));
        }
        if i % 2 == 1 {
            t = t.on("ch_rd", Value::TRUE);
        }
        scenario = t.tick();
    }

    let mut group = c.benchmark_group("ablation_fifo");
    for depth in [2usize, 8] {
        let comp = nfifo_component("ch", depth);
        group.bench_with_input(BenchmarkId::new("signal_chain", depth), &depth, |b, _| {
            let mut sim = Simulator::for_component(&comp).unwrap();
            b.iter(|| {
                sim.reset();
                std::hint::black_box(sim.run(&scenario).unwrap().events)
            })
        });
        group.bench_with_input(BenchmarkId::new("native_ring", depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut ch = RuntimeChannel::new("ch".into(), Some(depth), ChannelPolicy::Lossy);
                let mut delivered = 0usize;
                for i in 0..steps {
                    if i % 2 == 0 {
                        let _ = ch.push(Value::Int(i as i64));
                    }
                    if i % 2 == 1 && ch.pop().is_some() {
                        delivered += 1;
                    }
                }
                std::hint::black_box(delivered)
            })
        });
    }
    group.finish();
}

fn bench_verify_strategy(c: &mut Criterion) {
    banner("ablation", "verification: exhaustive vs depth-bounded");
    let d = desynchronize(&pipe(), &DesyncOptions::with_size(3)).unwrap();
    let mut seq = Vec::new();
    for i in 0..2 {
        let mut l = Letter::new();
        l.insert("tick".into(), Value::TRUE);
        l.insert("a".into(), Value::Int(i + 1));
        seq.push(l);
    }
    for _ in 0..2 {
        let mut l = Letter::new();
        l.insert("tick".into(), Value::TRUE);
        l.insert("x_rd".into(), Value::TRUE);
        seq.push(l);
    }
    let mut alphabet = Alphabet::from_letters(seq.clone()).unwrap();
    let env = EnvAutomaton::cycle(&mut alphabet, &seq);

    let mut group = c.benchmark_group("ablation_verify");
    for (name, max_depth) in [("exhaustive", None), ("bounded_depth_8", Some(8usize))] {
        let alphabet = alphabet.clone();
        let env = env.clone();
        group.bench_function(BenchmarkId::new("strategy", name), |b| {
            b.iter(|| {
                let r = check(
                    &d.program,
                    &alphabet,
                    &Property::never_true("x_alarm"),
                    &CheckOptions { env: Some(env.clone()), max_depth, ..Default::default() },
                )
                .unwrap();
                std::hint::black_box(r.states_explored)
            })
        });
    }
    group.finish();

    let _ = pipe_env(4, 1, 1); // keep the helper exercised
}

fn bench_sim_scheduling(c: &mut Criterion) {
    banner("ablation", "simulator: scheduled equations vs naive fixpoint");
    // a deep instantaneous chain in reverse declaration order — the worst
    // case for the naive evaluation order
    let mut eqs = String::new();
    let mut locals = Vec::new();
    let depth = 16;
    for i in (0..depth).rev() {
        let lhs = if i == depth - 1 { "out".to_string() } else { format!("s{}", i + 1) };
        let rhs = if i == 0 { "a".to_string() } else { format!("s{i}") };
        if lhs != "out" {
            locals.push(lhs.clone());
        }
        eqs.push_str(&format!("{lhs} := {rhs} + 1; "));
    }
    let src = format!(
        "process Deep {{ input a: int; output out: int; local {}: int; {eqs} }}",
        locals.join(": int, ")
    );
    let program = polysig_lang::parse_program(&src).unwrap();
    let scenario = {
        let mut s = Scenario::new();
        for i in 0..64 {
            s = s.on("a", polysig_tagged::Value::Int(i)).tick();
        }
        s
    };
    // report pass counts once
    let mut sched = polysig_sim::Reactor::for_program(&program).unwrap();
    let mut naive = polysig_sim::Reactor::for_program_unscheduled(&program).unwrap();
    for step in scenario.iter() {
        sched.react(step).unwrap();
        naive.react(step).unwrap();
    }
    eprintln!(
        "depth-{depth} chain, 64 reactions: scheduled {} passes, naive {} passes",
        sched.passes(),
        naive.passes()
    );

    let mut group = c.benchmark_group("ablation_scheduling");
    group.bench_function("scheduled", |b| {
        let mut r = polysig_sim::Reactor::for_program(&program).unwrap();
        b.iter(|| {
            r.reset();
            for step in scenario.iter() {
                std::hint::black_box(r.react(step).unwrap().len());
            }
        })
    });
    group.bench_function("naive_fixpoint", |b| {
        let mut r = polysig_sim::Reactor::for_program_unscheduled(&program).unwrap();
        b.iter(|| {
            r.reset();
            for step in scenario.iter() {
                std::hint::black_box(r.react(step).unwrap().len());
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_estimation_policy,
    bench_fifo_impl,
    bench_verify_strategy,
    bench_sim_scheduling
);
criterion_main!(benches);
