//! E4 — Figure 3: cost and scaling of the desynchronization transformation.
//!
//! Prints the structural summary (components/channels before → after), then
//! measures transformation time versus pipeline length and buffer depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use polysig_bench::banner;
use polysig_gals::{channels_of_program, desynchronize, DesyncOptions};
use polysig_lang::{parse_program, Program};

/// A linear pipeline of `n` components (n-1 channels).
fn pipeline(n: usize) -> Program {
    let mut src = String::new();
    for i in 0..n {
        let input = if i == 0 { "a".to_string() } else { format!("s{i}") };
        let output = format!("s{}", i + 1);
        src.push_str(&format!(
            "process C{i} {{ input {input}: int; output {output}: int; {output} := {input} + 1; }} "
        ));
    }
    parse_program(&src).expect("pipeline parses")
}

fn bench(c: &mut Criterion) {
    banner("E4 / Figure 3", "transformation scaling");
    eprintln!(
        "{:>6} | {:>9} | {:>16} | {:>15}",
        "stages", "channels", "components after", "signals after"
    );
    for n in [2usize, 4, 8, 16] {
        let p = pipeline(n);
        let channels = channels_of_program(&p).unwrap().len();
        let d = desynchronize(&p, &DesyncOptions::with_size(2).instrumented()).unwrap();
        eprintln!(
            "{n:>6} | {channels:>9} | {:>16} | {:>15}",
            d.program.components.len(),
            d.program.all_names().len(),
        );
    }

    let mut group = c.benchmark_group("desync");
    for n in [2usize, 4, 8, 16] {
        let p = pipeline(n);
        group.bench_with_input(BenchmarkId::new("transform_pipeline", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    desynchronize(&p, &DesyncOptions::with_size(2)).unwrap().channels.len(),
                )
            })
        });
    }
    for depth in [1usize, 4, 16, 64] {
        let p = pipeline(4);
        group.bench_with_input(BenchmarkId::new("transform_depth", depth), &depth, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    desynchronize(&p, &DesyncOptions::with_size(depth))
                        .unwrap()
                        .program
                        .components
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
