//! E12 — federated execution: compiled federates over bounded credit
//! channels.
//!
//! `federated/throughput_N` drives an `N`-stage integer pipeline with one
//! federate per stage (stage 0 replays a periodic writer scenario, every
//! later stage runs data-driven) in soak mode — no flow recording, the
//! streaming counters are the only observation — and measures whole-runs:
//! elaboration, spawn, the RTI start barrier, the activation loops, and
//! the join-everything teardown. The banner reports steady-state
//! events/sec per federate count and the 4-vs-1 ratio; on a single-CPU
//! runner the ratio stays near (or below) 1 — the federates time-slice one
//! core and pay the coordination on top — which is the measured gap
//! DESIGN.md §14 explains.

use criterion::{criterion_group, criterion_main, Criterion};

use polysig_bench::banner;
use polysig_gals::runtime::{run_federated, FederateSpec, FederatedOptions, FederatedRun};
use polysig_lang::{parse_program, Program};
use polysig_sim::{PeriodicInputs, Scenario, ScenarioGenerator};
use polysig_tagged::ValueType;

/// Activations per federate inside the timed rows (whole-run latency stays
/// in criterion's comfort zone even at 8 federates on one core).
const STEPS: usize = 1_500;

/// An `n`-stage integer pipeline `a -> s0 -> s1 -> ...` (stage `j` adds 1).
fn chain(stages: usize) -> Program {
    let mut src = String::from("process S0 { input a: int; output s0: int; s0 := a + 1; } ");
    for j in 1..stages {
        src.push_str(&format!(
            "process S{j} {{ input s{}: int; output s{j}: int; s{j} := s{} + 1; }} ",
            j - 1,
            j - 1
        ));
    }
    parse_program(&src).unwrap()
}

fn federates(stages: usize, activations: usize, env: &Scenario) -> Vec<FederateSpec> {
    let mut v = vec![FederateSpec::new("S0", activations).with_environment(env.clone())];
    for j in 1..stages {
        v.push(FederateSpec::new(format!("S{j}"), 2 * activations).data_driven());
    }
    v
}

fn run_chain(program: &Program, stages: usize, activations: usize, env: &Scenario) -> FederatedRun {
    let run = run_federated(
        program,
        federates(stages, activations, env),
        &FederatedOptions::default().with_default_capacity(32).soak(),
    )
    .unwrap();
    // the row is meaningless unless the federation actually did the work
    assert_eq!(run.total_reactions(), stages * activations, "every federate ran its budget");
    for (name, c) in &run.channels {
        assert_eq!(c.pushes, activations as u64, "channel {name} carried every value");
        assert!(c.drained(), "channel {name} drained");
    }
    run
}

fn bench(c: &mut Criterion) {
    let counts = [1usize, 2, 4, 8];
    let programs: Vec<(usize, Program)> = counts.iter().map(|&n| (n, chain(n))).collect();
    let env = PeriodicInputs::new("a", ValueType::Int, 1, 0).generate(STEPS);

    // steady-state calibration for the banner: one long run per federate
    // count, reactions/sec as the events metric
    let mut rates = Vec::new();
    for (n, program) in &programs {
        let big = 20_000;
        let big_env = PeriodicInputs::new("a", ValueType::Int, 1, 0).generate(big);
        let run = run_chain(program, *n, big, &big_env);
        assert!(run.federates.values().all(|s| s.compiled), "federates must run compiled plans");
        rates.push((*n, run.total_reactions() as f64 / run.elapsed.as_secs_f64()));
    }
    let rate_of = |n: usize| rates.iter().find(|(c, _)| *c == n).map(|(_, r)| *r).unwrap();
    banner(
        "E12 / federated execution",
        &format!(
            "events/sec: {} — 4-federate vs single-federate ratio {:.2} on {} CPU(s)",
            rates.iter().map(|(n, r)| format!("{n} fed {:.0}", r)).collect::<Vec<_>>().join(", "),
            rate_of(4) / rate_of(1),
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        ),
    );

    let mut group = c.benchmark_group("federated");
    for (n, program) in &programs {
        group.bench_function(format!("throughput_{n}"), |b| {
            b.iter(|| std::hint::black_box(run_chain(program, *n, STEPS, &env).total_reactions()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
