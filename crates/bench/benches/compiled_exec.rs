//! E10 — compiled execution: static schedules vs the micro-step interpreter.
//!
//! `compile/lower_fig2` measures the one-time lowering cost of the Figure-2
//! buffer; `compile/exec_fig2*` drives the raw per-reaction dispatch
//! (`react_dense`) of the fig2 components under both execution plans; and
//! `compile/full_loop_*` re-runs the Section-5.2 estimation loop with
//! compilation forced on and off, giving compiled-vs-interpreted comparison
//! rows next to the `fig2/*` and `estimation/full_loop/*` sections.

use criterion::{criterion_group, criterion_main, Criterion};

use polysig_bench::banner;
use polysig_gals::estimate::{estimate_buffer_sizes, EstimationOptions};
use polysig_gals::onefifo::{memory_cell_component, one_place_buffer_component};
use polysig_lang::ast::Program;
use polysig_sim::generator::master_clock;
use polysig_sim::{BurstyInputs, DenseEnv, PeriodicInputs, Reactor, Scenario, ScenarioGenerator};
use polysig_tagged::{Value, ValueType};

const STEPS: usize = 256;

/// The same workload as `fig2/*_256_reactions`, pre-rendered to dense
/// slot-indexed environments so the rows below time the reactor alone —
/// no `Behavior` recording, no name lookups.
fn dense_workload(r: &Reactor, steps: usize) -> Vec<DenseEnv> {
    let tick = r.sig_id("tick").unwrap();
    let msgin = r.sig_id("msgin").unwrap();
    let rd = r.sig_id("rd").unwrap();
    (0..steps)
        .map(|i| {
            let mut e = DenseEnv::new(r.signal_count());
            e.set(tick, Value::TRUE);
            if i % 2 == 0 {
                e.set(msgin, Value::Int(i as i64));
            } else {
                e.set(rd, Value::TRUE);
            }
            e
        })
        .collect()
}

fn drive(r: &mut Reactor, envs: &[DenseEnv]) -> usize {
    r.reset();
    let mut present = 0usize;
    for env in envs {
        present += r.react_dense(env).unwrap().present_count();
    }
    present
}

/// The `estimation/full_loop/*` workload (see `buffer_estimation.rs`).
fn bursty_env(steps: usize, burst: usize) -> Scenario {
    BurstyInputs::new("a", ValueType::Int, burst, 16)
        .generate(steps)
        .zip_union(&PeriodicInputs::new("x_rd", ValueType::Bool, 2, 0).generate(steps))
        .zip_union(&master_clock("tick", steps))
}

fn bench(c: &mut Criterion) {
    let buffer = Program::single(one_place_buffer_component("B"));
    let cell = Program::single(memory_cell_component("M"));

    // the rows below are meaningless if the plans are not what their
    // names claim, so pin that down before measuring
    let compiled_buffer = Reactor::for_program_compiled(&buffer).unwrap();
    let compiled_cell = Reactor::for_program_compiled(&cell).unwrap();
    assert!(compiled_buffer.is_compiled(), "fig2 buffer must lower to a static schedule");
    assert!(compiled_cell.is_compiled(), "fig2 memory cell must lower to a static schedule");
    assert!(!Reactor::for_program_interpreted(&buffer).unwrap().is_compiled());
    banner(
        "E10 / compiled execution",
        &format!(
            "static schedules: buffer {} ops, memory cell {} ops",
            compiled_buffer.compiled_op_count().unwrap(),
            compiled_cell.compiled_op_count().unwrap(),
        ),
    );

    let mut group = c.benchmark_group("compile");
    group.bench_function("lower_fig2", |b| {
        b.iter(|| {
            let r = Reactor::for_program_compiled(&buffer).unwrap();
            assert!(r.is_compiled());
            std::hint::black_box(r.compiled_op_count())
        })
    });

    {
        let mut compiled = Reactor::for_program_compiled(&buffer).unwrap();
        let envs = dense_workload(&compiled, STEPS);
        group.bench_function("exec_fig2", |b| {
            b.iter(|| std::hint::black_box(drive(&mut compiled, &envs)))
        });
        let mut interp = Reactor::for_program_interpreted(&buffer).unwrap();
        let envs = dense_workload(&interp, STEPS);
        group.bench_function("exec_fig2_interpreted", |b| {
            b.iter(|| std::hint::black_box(drive(&mut interp, &envs)))
        });
    }
    {
        let mut compiled = Reactor::for_program_compiled(&cell).unwrap();
        let envs = dense_workload(&compiled, STEPS);
        group.bench_function("exec_fig2_memory_cell", |b| {
            b.iter(|| std::hint::black_box(drive(&mut compiled, &envs)))
        });
        let mut interp = Reactor::for_program_interpreted(&cell).unwrap();
        let envs = dense_workload(&interp, STEPS);
        group.bench_function("exec_fig2_memory_cell_interpreted", |b| {
            b.iter(|| std::hint::black_box(drive(&mut interp, &envs)))
        });
    }

    // estimation-loop comparison: the loop builds its reactors through
    // `Reactor::for_program`, which honours POLYSIG_COMPILE at build time,
    // so toggling the variable around the runs selects the plan. The
    // harness is single-threaded; restore the ambient value afterwards.
    let ambient = std::env::var("POLYSIG_COMPILE").ok();
    for burst in [2usize, 4, 8] {
        let env = bursty_env(80, burst);
        let baseline = {
            std::env::remove_var("POLYSIG_COMPILE");
            estimate_buffer_sizes(&polysig_bench::pipe(), &env, &EstimationOptions::default())
                .unwrap()
        };
        std::env::remove_var("POLYSIG_COMPILE");
        group.bench_function(format!("full_loop_{burst}"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    estimate_buffer_sizes(
                        &polysig_bench::pipe(),
                        &env,
                        &EstimationOptions::default(),
                    )
                    .unwrap()
                    .iterations(),
                )
            })
        });
        std::env::set_var("POLYSIG_COMPILE", "off");
        let interp =
            estimate_buffer_sizes(&polysig_bench::pipe(), &env, &EstimationOptions::default())
                .unwrap();
        assert_eq!(interp.final_sizes, baseline.final_sizes);
        assert_eq!(interp.iterations(), baseline.iterations());
        group.bench_function(format!("full_loop_{burst}_interpreted"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    estimate_buffer_sizes(
                        &polysig_bench::pipe(),
                        &env,
                        &EstimationOptions::default(),
                    )
                    .unwrap()
                    .iterations(),
                )
            })
        });
        match &ambient {
            Some(v) => std::env::set_var("POLYSIG_COMPILE", v),
            None => std::env::remove_var("POLYSIG_COMPILE"),
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
