//! E1 — Figure 2: the one-place buffer.
//!
//! Prints the regenerated Figure-2 trace table, then measures simulation
//! throughput of the Example-1 buffer (reactions per second), comparing it
//! against the unconstrained memory cell to quantify the cost of the FIFO
//! causality logic.

use criterion::{criterion_group, criterion_main, Criterion};

use polysig_bench::banner;
use polysig_gals::onefifo::{memory_cell_component, one_place_buffer_component};
use polysig_gals::report::trace_table;
use polysig_sim::{Scenario, Simulator};
use polysig_tagged::Value;

fn figure2_stimulus() -> Scenario {
    Scenario::new()
        .on("tick", Value::TRUE)
        .on("msgin", Value::Int(1))
        .tick()
        .on("tick", Value::TRUE)
        .tick()
        .on("tick", Value::TRUE)
        .on("msgin", Value::Int(2))
        .tick()
        .on("tick", Value::TRUE)
        .on("rd", Value::TRUE)
        .tick()
        .on("tick", Value::TRUE)
        .on("msgin", Value::Int(3))
        .tick()
        .on("tick", Value::TRUE)
        .on("rd", Value::TRUE)
        .tick()
}

fn long_workload(steps: usize) -> Scenario {
    let mut s = Scenario::new();
    for i in 0..steps {
        let mut t = s.on("tick", Value::TRUE);
        if i % 2 == 0 {
            t = t.on("msgin", Value::Int(i as i64));
        }
        if i % 2 == 1 {
            t = t.on("rd", Value::TRUE);
        }
        s = t.tick();
    }
    s
}

fn bench(c: &mut Criterion) {
    banner("E1 / Figure 2", "one-place buffer sample behavior");
    let mut sim = Simulator::for_component(&one_place_buffer_component("OneFifo")).unwrap();
    let run = sim.run(&figure2_stimulus()).unwrap();
    eprintln!(
        "{}",
        trace_table(
            &run.behavior,
            &[
                "msgin".into(),
                "inw".into(),
                "full".into(),
                "rdw".into(),
                "msgout".into(),
                "alarm".into()
            ],
            6,
        )
    );

    let workload = long_workload(256);
    let mut group = c.benchmark_group("fig2");
    group.bench_function("one_place_buffer_256_reactions", |b| {
        let mut sim = Simulator::for_component(&one_place_buffer_component("B")).unwrap();
        b.iter(|| {
            sim.reset();
            std::hint::black_box(sim.run(&workload).unwrap().events)
        })
    });
    group.bench_function("memory_cell_256_reactions", |b| {
        let mut sim = Simulator::for_component(&memory_cell_component("M")).unwrap();
        b.iter(|| {
            sim.reset();
            std::hint::black_box(sim.run(&workload).unwrap().events)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
