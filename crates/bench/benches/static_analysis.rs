//! E10 — the static GALS analyzer's cost.
//!
//! Lints the shipped example programs (the exact workload the CI lint step
//! runs) and proves rate bounds on the canonical pipe, then measures both.
//! Static analysis is advertised as "free" next to simulation — this bench
//! keeps that claim honest.

use criterion::{criterion_group, criterion_main, Criterion};

use polysig_analyze::{analyze_program, analyze_with_scenario, prove_bounds, ProveOptions};
use polysig_bench::{banner, pipe, pipe_env};
use polysig_lang::{check_program, Program};

fn shipped_programs() -> Vec<(String, Program)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../programs");
    let mut out = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("programs/ directory")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "sig"))
        .collect();
    entries.sort();
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("readable program");
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        out.push((name, check_program(&src).expect("shipped program checks")));
    }
    out
}

fn bench(c: &mut Criterion) {
    let programs = shipped_programs();
    banner("E10 / static analysis", "lint verdicts on the shipped programs");
    eprintln!("{:>22} | {:>10} | {:>8} | {:>8}", "program", "components", "channels", "findings");
    for (name, p) in &programs {
        let report = analyze_program(p);
        assert!(report.is_clean(), "{name} must lint clean");
        eprintln!(
            "{name:>22} | {:>10} | {:>8} | {:>8}",
            report.endochrony.len(),
            report.channels.len(),
            report.diagnostics.len()
        );
    }

    let mut group = c.benchmark_group("analyze");
    group.bench_function("lint_programs", |b| {
        b.iter(|| {
            let mut findings = 0usize;
            for (_, p) in &programs {
                findings += std::hint::black_box(analyze_program(p)).diagnostics.len();
            }
            findings
        })
    });

    // rate proving on the canonical pipe: the static counterpart of one
    // estimation/full_loop iteration
    let env = pipe_env(80, 2, 2);
    let p = pipe();
    group.bench_function("prove_bounds_pipe", |b| {
        b.iter(|| std::hint::black_box(prove_bounds(&p, &env, &ProveOptions::default())))
    });
    group.bench_function("analyze_with_scenario_pipe", |b| {
        b.iter(|| {
            std::hint::black_box(analyze_with_scenario(&p, &env, &ProveOptions::default()))
                .diagnostics
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
