//! E10 — the static GALS analyzer's cost.
//!
//! Lints the shipped example programs (the exact workload the CI lint step
//! runs) and proves rate bounds on the canonical pipe, then measures both.
//! Static analysis is advertised as "free" next to simulation — this bench
//! keeps that claim honest.

use criterion::{criterion_group, criterion_main, Criterion};

use polysig_analyze::{
    analyze_deployment, analyze_program, analyze_with_scenario, prove_bounds, DeploymentPlan,
    ProveOptions,
};
use polysig_bench::{banner, pipe, pipe_env};
use polysig_lang::{check_program, Program};
use polysig_sim::{PeriodicInputs, Scenario, ScenarioGenerator};
use polysig_tagged::ValueType;

/// An 8-stage open pipeline: the deployment analysis proves it deadlock-free
/// by Kahn sufficiency (graph construction + structural argument).
fn pipe8() -> Program {
    let mut src = String::from("process S0 { input a: int; output s0: int; s0 := a + 1; } ");
    for j in 1..8 {
        src.push_str(&format!(
            "process S{j} {{ input s{}: int; output s{j}: int; s{j} := s{} + 1; }} ",
            j - 1,
            j - 1
        ));
    }
    check_program(&src).unwrap()
}

/// A 12-component ring whose tail joins the chain with a direct edge from
/// the head: the join defeats the structural Kahn argument, so the verdict
/// comes from the abstract replay (the analysis pass's expensive path).
fn cycle12() -> Program {
    let mut src = String::from(
        "process R0 { input a: int, f: int; output s0: int, t0: int; \
                      s0 := (f default a) + 1; t0 := a * 2; } ",
    );
    for j in 1..11 {
        src.push_str(&format!(
            "process R{j} {{ input s{}: int; output s{j}: int; s{j} := s{} + 1; }} ",
            j - 1,
            j - 1
        ));
    }
    src.push_str("process R11 { input s10: int, t0: int; output f: int; f := pre 0 (s10 + t0); }");
    check_program(&src).unwrap()
}

fn ring_env(steps: usize) -> Scenario {
    PeriodicInputs::new("a", ValueType::Int, 1, 0).generate(steps)
}

fn shipped_programs() -> Vec<(String, Program)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../programs");
    let mut out = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("programs/ directory")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "sig"))
        .collect();
    entries.sort();
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("readable program");
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        out.push((name, check_program(&src).expect("shipped program checks")));
    }
    out
}

fn bench(c: &mut Criterion) {
    let programs = shipped_programs();
    banner("E10 / static analysis", "lint verdicts on the shipped programs");
    eprintln!("{:>22} | {:>10} | {:>8} | {:>8}", "program", "components", "channels", "findings");
    for (name, p) in &programs {
        let report = analyze_program(p);
        assert!(report.is_clean(), "{name} must lint clean");
        eprintln!(
            "{name:>22} | {:>10} | {:>8} | {:>8}",
            report.endochrony.len(),
            report.channels.len(),
            report.diagnostics.len()
        );
    }

    let mut group = c.benchmark_group("analyze");
    group.bench_function("lint_programs", |b| {
        b.iter(|| {
            let mut findings = 0usize;
            for (_, p) in &programs {
                findings += std::hint::black_box(analyze_program(p)).diagnostics.len();
            }
            findings
        })
    });

    // rate proving on the canonical pipe: the static counterpart of one
    // estimation/full_loop iteration
    let env = pipe_env(80, 2, 2);
    let p = pipe();
    group.bench_function("prove_bounds_pipe", |b| {
        b.iter(|| std::hint::black_box(prove_bounds(&p, &env, &ProveOptions::default())))
    });
    group.bench_function("analyze_with_scenario_pipe", |b| {
        b.iter(|| {
            std::hint::black_box(analyze_with_scenario(&p, &env, &ProveOptions::default()))
                .diagnostics
                .len()
        })
    });

    // the federated-deployment pass on its two topology archetypes: the
    // open chain resolves structurally, the joined ring pays for the
    // abstract replay
    let chain = pipe8();
    let chain_plan = DeploymentPlan::canonical(&chain, Some(&ring_env(24)));
    group.bench_function("federated_safety_pipe8", |b| {
        b.iter(|| {
            let (report, diags) =
                std::hint::black_box(analyze_deployment(&chain, &chain_plan, None));
            assert!(report.is_deadlock_free() && diags.is_empty());
            report.channels
        })
    });
    let ring = cycle12();
    let ring_plan = DeploymentPlan::canonical(&ring, Some(&ring_env(24)));
    group.bench_function("federated_safety_cycle12", |b| {
        b.iter(|| {
            let (report, diags) = std::hint::black_box(analyze_deployment(&ring, &ring_plan, None));
            assert!(report.is_deadlock_free() && diags.is_empty());
            report.channels
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
