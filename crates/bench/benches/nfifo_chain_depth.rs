//! E5 — Section 5.1: n-FIFO chain depth scaling.
//!
//! Prints the simulation-cost and signal-count series as the chain deepens
//! (the price of the paper's compositional construction), then measures
//! reaction throughput per depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use polysig_bench::banner;
use polysig_gals::nfifo::nfifo_component;
use polysig_sim::{Scenario, Simulator};
use polysig_tagged::Value;

fn workload(steps: usize) -> Scenario {
    let mut s = Scenario::new();
    for i in 0..steps {
        let mut t = s.on("tick", Value::TRUE);
        if i % 2 == 0 {
            t = t.on("ch_in", Value::Int(i as i64));
        }
        if i % 3 == 0 {
            t = t.on("ch_rd", Value::TRUE);
        }
        s = t.tick();
    }
    s
}

fn bench(c: &mut Criterion) {
    banner("E5 / Section 5.1", "chain size vs depth");
    eprintln!("{:>6} | {:>8} | {:>10}", "depth", "signals", "equations");
    for n in [1usize, 2, 4, 8, 16, 32] {
        let comp = nfifo_component("ch", n);
        eprintln!("{n:>6} | {:>8} | {:>10}", comp.decls.len(), comp.equations().count());
    }

    let steps = 128;
    let w = workload(steps);
    let mut group = c.benchmark_group("nfifo_depth");
    group.throughput(Throughput::Elements(steps as u64));
    for n in [1usize, 2, 4, 8, 16, 32] {
        let comp = nfifo_component("ch", n);
        group.bench_with_input(BenchmarkId::new("simulate_128_reactions", n), &n, |b, _| {
            let mut sim = Simulator::for_component(&comp).unwrap();
            b.iter(|| {
                sim.reset();
                std::hint::black_box(sim.run(&w).unwrap().events)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
