//! Serve-path benchmarks: the latency contract behind `polysig-serve`.
//!
//! Three rows, all in-process against [`polysig::serve::Engine`] so the
//! numbers measure the engine (hashing, caching, coalescing, analysis)
//! rather than loopback TCP:
//!
//! * `serve/cold_pipe` — a fresh engine answering the canonical pipeline
//!   request: full parse → analyze → estimate cost, the cache-miss floor;
//! * `serve/warm_hit` — the same request against a warmed engine: the
//!   content-hash hit path (normalize + hash + clone), which the bench
//!   gate holds far below the cold cost;
//! * `serve/mixed_c8` — a batch of 8 (4 duplicate warm, 4 unseen cold)
//!   through `submit_many` on 8 workers: the steady-state mix a loaded
//!   server sees.

use std::sync::atomic::{AtomicUsize, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use polysig::serve::loadgen::{cold_source, PIPE_SCENARIO, WARM_SOURCE};
use polysig::serve::{Engine, EngineConfig, Request, RequestKind, Served};
use polysig_bench::banner;

fn warm_request(id: u64) -> Request {
    let mut req = Request::new(id, RequestKind::Pipeline, WARM_SOURCE);
    req.scenario = Some(PIPE_SCENARIO.into());
    req
}

fn cold_request(id: u64, variant: usize) -> Request {
    let mut req = Request::new(id, RequestKind::Pipeline, cold_source(variant));
    req.scenario = Some(PIPE_SCENARIO.into());
    req
}

fn bench(c: &mut Criterion) {
    // Pin the behaviors the rows claim to measure before timing them: the
    // first submit is a cold execution, the repeat is a cache hit, and a
    // duplicate-heavy batch answers every request.
    let engine = Engine::new(EngineConfig::default());
    let cold = engine.submit(&warm_request(1));
    assert_eq!(cold.served, Served::Cold, "first submit must execute");
    assert_eq!(cold.outcome.tag(), "pipeline", "canonical request must analyze cleanly");
    let warm = engine.submit(&warm_request(2));
    assert_eq!(warm.served, Served::Hit, "repeat submit must hit the cache");
    assert_eq!(warm.outcome, cold.outcome, "hit must return the cold payload");
    let batch: Vec<Request> = (0..8)
        .map(|i| if i % 2 == 0 { warm_request(i) } else { cold_request(i, i as usize) })
        .collect();
    let answers = engine.submit_many(&batch, 8);
    assert_eq!(answers.len(), 8, "every batched request is answered");
    assert!(answers.iter().all(|r| r.outcome.tag() == "pipeline"));
    banner(
        "E11 / analysis serving",
        &format!(
            "engine after pinning: executed {}, hits {}",
            engine.stats().executed,
            engine.stats().results.hits,
        ),
    );

    let mut group = c.benchmark_group("serve");

    group.bench_function("cold_pipe", |b| {
        b.iter(|| {
            let engine = Engine::new(EngineConfig::default());
            std::hint::black_box(engine.submit(&warm_request(1)))
        })
    });

    {
        let engine = Engine::new(EngineConfig::default());
        engine.submit(&warm_request(1));
        group.bench_function("warm_hit", |b| {
            b.iter(|| std::hint::black_box(engine.submit(&warm_request(2))))
        });
    }

    {
        let engine = Engine::new(EngineConfig::default());
        engine.submit(&warm_request(1));
        // unseen cold variants each iteration, so half the batch always
        // misses; the LRU keeps the accumulated results bounded
        let next = AtomicUsize::new(1000);
        group.bench_function("mixed_c8", |b| {
            b.iter(|| {
                let base = next.fetch_add(4, Ordering::Relaxed);
                let batch: Vec<Request> = (0..8u64)
                    .map(|i| {
                        if i % 2 == 0 {
                            warm_request(i)
                        } else {
                            cold_request(i, base + i as usize)
                        }
                    })
                    .collect();
                std::hint::black_box(engine.submit_many(&batch, 8))
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
