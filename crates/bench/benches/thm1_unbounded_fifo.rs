//! E2 — Theorem 1: exactness of unbounded-FIFO desynchronization.
//!
//! Prints the match table (LHS vs RHS behavior counts per model — the match
//! rate must be 100%), then measures the cost of the two independent
//! constructions as the model grows.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use polysig_bench::banner;
use polysig_tagged::{
    causal_async_compose, fifo_spec::afifo_process_for_flow, sync_compose, Behavior, CausalOrder,
    Process, SigName, Value,
};

/// P writes `msgs` values (each synchronous with a private `a` event);
/// Q reads them (each synchronous with a private `b` event).
fn model(msgs: usize) -> (Process, Process) {
    let mut pb = Behavior::new();
    let mut qb = Behavior::new();
    for i in 0..msgs {
        let t = i as u64 + 1;
        pb.push_event("x", t, Value::Int(i as i64));
        pb.push_event("a", t, Value::Int(i as i64));
        qb.push_event("x", t, Value::Int(i as i64));
        qb.push_event("b", t, Value::Int(i as i64));
    }
    let mut p = Process::over(["x".into(), "a".into()]);
    p.insert(pb).unwrap();
    let mut q = Process::over(["x".into(), "b".into()]);
    q.insert(qb).unwrap();
    (p, q)
}

fn lhs(p: &Process, q: &Process) -> Process {
    let x = SigName::from("x");
    let mut orders = BTreeMap::new();
    orders.insert(x.clone(), CausalOrder::LeftProduces);
    causal_async_compose(p, q, &orders).hide([x])
}

fn rhs(p: &Process, q: &Process) -> Process {
    let x = SigName::from("x");
    let xp = x.suffixed("_p");
    let xq = x.suffixed("_q");
    let p2 = p.rename(&x, &xp).unwrap();
    let q2 = q.rename(&x, &xq).unwrap();
    let pq = sync_compose(&p2, &q2);
    let mut afifo = Process::over([xp.clone(), xq.clone()]);
    for b in p.iter() {
        let flow = b.trace(&x).map(|t| t.values()).unwrap_or_default();
        for fb in afifo_process_for_flow(&xp, &xq, &flow, false).iter() {
            afifo.insert(fb.clone()).unwrap();
        }
    }
    sync_compose(&pq, &afifo).hide([xp, xq])
}

fn bench(c: &mut Criterion) {
    banner("E2 / Theorem 1", "LHS (causal ∥a) vs RHS (∥s with AFifo), canonical sets");
    eprintln!("{:>5} | {:>10} | {:>10} | match", "msgs", "LHS size", "RHS size");
    for msgs in 1..=3 {
        let (p, q) = model(msgs);
        let l = lhs(&p, &q);
        let r = rhs(&p, &q);
        eprintln!(
            "{msgs:>5} | {:>10} | {:>10} | {}",
            l.len(),
            r.len(),
            if l.equivalent(&r) { "EXACT" } else { "MISMATCH!" }
        );
        assert!(l.equivalent(&r), "Theorem 1 must hold");
    }

    let mut group = c.benchmark_group("thm1");
    for msgs in [1usize, 2, 3] {
        let (p, q) = model(msgs);
        group.bench_with_input(BenchmarkId::new("lhs_causal_compose", msgs), &msgs, |b, _| {
            b.iter(|| std::hint::black_box(lhs(&p, &q).len()))
        });
        group.bench_with_input(BenchmarkId::new("rhs_sync_with_afifo", msgs), &msgs, |b, _| {
            b.iter(|| std::hint::black_box(rhs(&p, &q).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
