//! E3 — Lemma 2 / Theorem 2: the bounded-FIFO crossover series.
//!
//! Prints the headline series — minimal sufficient buffer depth versus
//! burst length and versus write/read rate ratio — then measures the
//! Lemma-2 predicate and the bounded composition slice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use polysig_bench::banner;
use polysig_tagged::{
    fifo_spec::afifo_process_for_flow, is_nfifo_behavior, lemma2_bound_holds, Behavior, SigName,
    Tag, Value,
};

/// A writer/reader tag pattern: `burst` writes, then `burst` reads, cycled
/// `cycles` times.
fn burst_behavior(burst: usize, cycles: usize) -> Behavior {
    let mut b = Behavior::new();
    b.declare("w");
    b.declare("r");
    let mut t = 1u64;
    let mut k = 0i64;
    for _ in 0..cycles {
        for _ in 0..burst {
            b.push_event("w", Tag::new(t), Value::Int(k));
            t += 1;
            k += 1;
        }
        for i in 0..burst {
            b.push_event("r", Tag::new(t), Value::Int(k - burst as i64 + i as i64));
            t += 1;
        }
    }
    b
}

/// A rate-ratio pattern: writer every tick, reader every `ratio` ticks,
/// over a window of `window` writes (reads trail behind).
fn ratio_behavior(ratio: usize, window: usize) -> Behavior {
    let mut b = Behavior::new();
    b.declare("w");
    b.declare("r");
    for i in 0..window {
        b.push_event("w", Tag::new(2 * i as u64 + 1), Value::Int(i as i64));
    }
    // reader runs at 1/ratio of the writer's pace: backlog accumulates
    for i in 0..window {
        let t = 2 + 2 * (ratio as u64) * (i as u64);
        b.push_event("r", Tag::new(t), Value::Int(i as i64));
    }
    b
}

fn minimal_n(b: &Behavior) -> usize {
    let w = b.trace(&SigName::from("w")).unwrap();
    let r = b.trace(&SigName::from("r")).unwrap();
    (1..=w.len()).find(|&n| lemma2_bound_holds(w, r, n)).unwrap_or(w.len())
}

fn bench(c: &mut Criterion) {
    banner("E3 / Theorem 2", "minimal sufficient depth vs burst length");
    eprintln!("{:>6} | {:>9}", "burst", "minimal n");
    for burst in 1..=6 {
        let b = burst_behavior(burst, 3);
        let n = minimal_n(&b);
        eprintln!("{burst:>6} | {n:>9}");
        assert_eq!(n, burst, "crossover must track the burst length");
    }

    banner("E3 / Theorem 2", "minimal sufficient depth vs backlog window");
    eprintln!("{:>6} | {:>9}", "window", "minimal n");
    for window in [2usize, 4, 8, 16] {
        let b = ratio_behavior(2, window);
        eprintln!("{window:>6} | {:>9}", minimal_n(&b));
    }

    let mut group = c.benchmark_group("thm2");
    for burst in [2usize, 4, 8] {
        let b = burst_behavior(burst, 8);
        let w = b.trace(&SigName::from("w")).unwrap().clone();
        let r = b.trace(&SigName::from("r")).unwrap().clone();
        group.bench_with_input(BenchmarkId::new("lemma2_predicate", burst), &burst, |bench, _| {
            bench
                .iter(|| std::hint::black_box((1..=burst).find(|&n| lemma2_bound_holds(&w, &r, n))))
        });
    }
    // bounded slice construction: filter the AFifo slice by Definition 9
    for msgs in [2usize, 3, 4] {
        let flow: Vec<Value> = (0..msgs as i64).map(Value::Int).collect();
        group.bench_with_input(BenchmarkId::new("nfifo_slice", msgs), &msgs, |bench, _| {
            let xp = SigName::from("w");
            let xq = SigName::from("r");
            bench.iter(|| {
                let slice = afifo_process_for_flow(&xp, &xq, &flow, false);
                let bounded = slice.iter().filter(|b| is_nfifo_behavior(b, &xp, &xq, 2)).count();
                std::hint::black_box(bounded)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
