//! E8 — Section 5.2's service levels: blocking vs lossy vs unbounded.
//!
//! Prints the policy comparison table under overload (delivered / lost /
//! masked / peak occupancy), then measures executor throughput per policy.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use polysig_bench::{banner, pipe};
use polysig_gals::runtime::{ComponentSpec, GalsExecutor};
use polysig_gals::ChannelPolicy;
use polysig_sim::{PeriodicInputs, ScenarioGenerator};
use polysig_tagged::{SigName, ValueType};

fn executor(policy: ChannelPolicy, horizon: usize) -> GalsExecutor {
    let env = PeriodicInputs::new("a", ValueType::Int, 1, 0).generate(horizon);
    let mut caps = BTreeMap::new();
    caps.insert(SigName::from("x"), 2);
    GalsExecutor::new(
        &pipe(),
        vec![
            ComponentSpec::periodic("P", 1).with_environment(env),
            ComponentSpec::periodic("Q", 3), // consumer at 1/3 rate: overload
        ],
        policy,
        &caps,
    )
    .unwrap()
}

fn bench(c: &mut Criterion) {
    banner("E8 / service levels", "policies under 3× overload, capacity 2");
    eprintln!(
        "{:>10} | {:>8} | {:>9} | {:>6} | {:>6} | {:>13}",
        "policy", "produced", "delivered", "lost", "masked", "peak occupancy"
    );
    let horizon = 120;
    for policy in [ChannelPolicy::Unbounded, ChannelPolicy::Lossy, ChannelPolicy::Blocking] {
        let mut ex = executor(policy, horizon);
        let run = ex.run(horizon as u64).unwrap();
        let stats = run.channel_stats[&SigName::from("x")];
        let produced = run.flow("P", &"x".into()).len();
        let delivered = run.flow("Q", &"x".into()).len();
        eprintln!(
            "{policy:>10} | {produced:>8} | {delivered:>9} | {:>6} | {:>6} | {:>13}",
            stats.drops, run.masked["P"], stats.max_occupancy,
        );
    }

    let mut group = c.benchmark_group("policies");
    group.throughput(Throughput::Elements(horizon as u64));
    for policy in [ChannelPolicy::Unbounded, ChannelPolicy::Lossy, ChannelPolicy::Blocking] {
        group.bench_with_input(
            BenchmarkId::new("executor_120_instants", policy.to_string()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut ex = executor(policy, horizon);
                    std::hint::black_box(ex.run(horizon as u64).unwrap().horizon)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
