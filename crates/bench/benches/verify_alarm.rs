//! E7 — Section 5.2's verification step: model-checking "no alarm".
//!
//! Prints the state-space table (reachable states / transitions / verdict
//! per buffer depth under a rate-constrained environment), then measures
//! checking cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use polysig_bench::{banner, pipe};
use polysig_gals::{desynchronize, DesyncOptions};
use polysig_tagged::Value;
use polysig_verify::alphabet::Letter;
use polysig_verify::{check, Alphabet, Backend, CheckOptions, EnvAutomaton, Property};

/// The w-writes-then-w-reads frame environment.
fn frame(w: usize) -> Vec<Letter> {
    let mut seq = Vec::new();
    for i in 0..w {
        let mut l = Letter::new();
        l.insert("tick".into(), Value::TRUE);
        l.insert("a".into(), Value::Int(i as i64 + 1));
        seq.push(l);
    }
    for _ in 0..w {
        let mut l = Letter::new();
        l.insert("tick".into(), Value::TRUE);
        l.insert("x_rd".into(), Value::TRUE);
        seq.push(l);
    }
    seq
}

fn run_check(size: usize, w: usize, threads: usize) -> polysig_verify::CheckResult {
    let d = desynchronize(&pipe(), &DesyncOptions::with_size(size)).unwrap();
    let seq = frame(w);
    let mut alphabet = Alphabet::from_letters(seq.clone()).unwrap();
    let env = EnvAutomaton::cycle(&mut alphabet, &seq);
    check(
        &d.program,
        &alphabet,
        &Property::never_true("x_alarm"),
        &CheckOptions { env: Some(env), threads, ..Default::default() },
    )
    .unwrap()
}

fn run_bmc(size: usize, w: usize, depth: usize) -> polysig_verify::CheckResult {
    let d = desynchronize(&pipe(), &DesyncOptions::with_size(size)).unwrap();
    let seq = frame(w);
    let mut alphabet = Alphabet::from_letters(seq.clone()).unwrap();
    let env = EnvAutomaton::cycle(&mut alphabet, &seq);
    check(
        &d.program,
        &alphabet,
        &Property::never_true("x_alarm"),
        &CheckOptions { env: Some(env), backend: Backend::Bmc { depth }, ..Default::default() },
    )
    .unwrap()
}

fn bench(c: &mut Criterion) {
    banner("E7 / Section 5.2", "alarm reachability vs buffer depth (2-write frames)");
    eprintln!("{:>6} | {:>8} | {:>12} | verdict", "depth", "states", "transitions");
    for size in 1..=5usize {
        let r = run_check(size, 2, 1);
        eprintln!(
            "{size:>6} | {:>8} | {:>12} | {}",
            r.states_explored,
            r.transitions,
            if r.holds { "alarm unreachable" } else { "ALARM REACHABLE" }
        );
    }

    let mut group = c.benchmark_group("verify");
    // sequential path (threads = 1): comparable with the pre-parallel
    // baseline sections
    for size in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("check_frame2", size), &size, |b, _| {
            b.iter(|| std::hint::black_box(run_check(size, 2, 1).states_explored))
        });
    }
    for w in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::new("check_depth3_framew", w), &w, |b, _| {
            b.iter(|| std::hint::black_box(run_check(3, w, 1).states_explored))
        });
    }
    // symbolic backend on the same fixtures: encode + CDCL solve replaces
    // explicit enumeration, so the cost profile is formula size, not state
    // count
    group.bench_function("bmc_frame2", |b| b.iter(|| std::hint::black_box(run_bmc(2, 2, 4).holds)));
    group.bench_function("bmc_pipe8", |b| b.iter(|| std::hint::black_box(run_bmc(3, 2, 8).holds)));
    // layer-parallel exploration at fixed worker counts
    for threads in [2usize, 4] {
        for size in [2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("check_frame2_par{threads}"), size),
                &size,
                |b, _| b.iter(|| std::hint::black_box(run_check(size, 2, threads).states_explored)),
            );
        }
        for w in [2usize, 3] {
            group.bench_with_input(
                BenchmarkId::new(format!("check_depth3_framew_par{threads}"), w),
                &w,
                |b, _| b.iter(|| std::hint::black_box(run_check(3, w, threads).states_explored)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
