//! E6 — Section 5.2: the buffer-size estimation loop.
//!
//! Prints the convergence table — iterations and final size versus
//! workload burstiness and rate mismatch — then measures the loop's cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use polysig_analyze::{prove_bounds, ProveOptions};
use polysig_bench::{banner, pipe};
use polysig_gals::estimate::{
    estimate_buffer_sizes, estimate_buffer_sizes_ensemble, EstimationOptions,
};
use polysig_sim::generator::master_clock;
use polysig_sim::{BurstyInputs, PeriodicInputs, Scenario, ScenarioGenerator};
use polysig_tagged::ValueType;

/// Shared workload parameters: every measured id below drives the
/// two-process pipe for `STEPS` reactions with writer bursts every
/// `PERIOD` instants (starting at instant 0) and a reader enabled every
/// `READ_PERIOD` instants. `estimation/full_loop/{burst}` runs one loop on
/// one such scenario; `estimation/ensemble_par/{threads}` runs the
/// *ensemble* entry point over the three scenarios `burst ∈ ENSEMBLE_BURSTS`
/// — its workload is the sum of the three sequential ids, so
/// `ensemble_par/1` is comparable with `full_loop/2 + full_loop/4 +
/// full_loop/8`, not with any single one.
const STEPS: usize = 80;
const PERIOD: usize = 16;
const READ_PERIOD: usize = 2;
const ENSEMBLE_BURSTS: [usize; 3] = [2, 4, 8];

fn bursty_env(steps: usize, burst: usize, period: usize, read_period: usize) -> Scenario {
    BurstyInputs::new("a", ValueType::Int, burst, period)
        .generate(steps)
        .zip_union(&PeriodicInputs::new("x_rd", ValueType::Bool, read_period, 0).generate(steps))
        .zip_union(&master_clock("tick", steps))
}

fn bench(c: &mut Criterion) {
    banner("E6 / Section 5.2", "estimation convergence vs burstiness");
    eprintln!("{:>6} | {:>10} | {:>10}", "burst", "iterations", "final size");
    for burst in [1usize, 2, 4, 6, 8] {
        let env = bursty_env(STEPS, burst, PERIOD, READ_PERIOD);
        let report = estimate_buffer_sizes(&pipe(), &env, &EstimationOptions::default()).unwrap();
        assert!(report.converged);
        eprintln!(
            "{burst:>6} | {:>10} | {:>10}",
            report.iterations(),
            report.size_of(&"x".into()).unwrap()
        );
    }

    banner("E6 / Section 5.2", "estimation convergence vs rate mismatch");
    eprintln!("{:>12} | {:>10} | {:>10}", "read period", "iterations", "final size");
    for read_period in [1usize, 2, 3, 4] {
        let env = polysig_bench::pipe_env(24, 1, read_period);
        let report = estimate_buffer_sizes(&pipe(), &env, &EstimationOptions::default()).unwrap();
        assert!(report.converged);
        eprintln!(
            "{read_period:>12} | {:>10} | {:>10}",
            report.iterations(),
            report.size_of(&"x".into()).unwrap()
        );
    }

    let mut group = c.benchmark_group("estimation");
    for burst in ENSEMBLE_BURSTS {
        let env = bursty_env(STEPS, burst, PERIOD, READ_PERIOD);
        group.bench_with_input(BenchmarkId::new("full_loop", burst), &burst, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    estimate_buffer_sizes(&pipe(), &env, &EstimationOptions::default())
                        .unwrap()
                        .iterations(),
                )
            })
        });
    }
    // the statically warm-started loop: bounds proven by the analyzer seed
    // the estimation as `proven` depths, skipping growth rounds. The
    // warm-started report must stay bit-identical to the cold one apart
    // from the provenance column — asserted here so the bench can never
    // silently measure a differently-converging loop.
    {
        let burst = 8usize;
        let env = bursty_env(STEPS, burst, PERIOD, READ_PERIOD);
        let cold = estimate_buffer_sizes(&pipe(), &env, &EstimationOptions::default()).unwrap();
        let bounds = prove_bounds(&pipe(), &env, &ProveOptions::default());
        let proven = bounds.warm_start();
        assert!(!proven.is_empty(), "the bursty pipe workload must be statically provable");
        let warm_opts = EstimationOptions { proven, ..Default::default() };
        let warm = estimate_buffer_sizes(&pipe(), &env, &warm_opts).unwrap();
        assert_eq!(warm.final_sizes, cold.final_sizes);
        assert_eq!(warm.converged, cold.converged);
        assert!(
            warm.iterations() < cold.iterations(),
            "warm start must skip rounds ({} vs {})",
            warm.iterations(),
            cold.iterations()
        );
        eprintln!(
            "full_loop_static_warm: cold {} rounds, warm {} rounds (burst {burst})",
            cold.iterations(),
            warm.iterations()
        );
        group.bench_function("full_loop_static_warm", |b| {
            b.iter(|| {
                std::hint::black_box(
                    estimate_buffer_sizes(&pipe(), &env, &warm_opts).unwrap().iterations(),
                )
            })
        });
    }
    // the scenario-ensemble entry point: independent per-scenario loops
    // fanned across workers. One iteration runs all three `full_loop`
    // scenarios, so the 1-thread id measures the sum of the sequential
    // workloads (plus ensemble dispatch); higher thread counts measure the
    // fan-out's scaling on that same fixed workload.
    let ensemble: Vec<Scenario> =
        ENSEMBLE_BURSTS.iter().map(|&b| bursty_env(STEPS, b, PERIOD, READ_PERIOD)).collect();
    for threads in [1usize, 2, 4] {
        let opts = EstimationOptions { threads, ..Default::default() };
        group.bench_with_input(BenchmarkId::new("ensemble_par", threads), &threads, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    estimate_buffer_sizes_ensemble(&pipe(), &ensemble, &opts)
                        .unwrap()
                        .reports
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
