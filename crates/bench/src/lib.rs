//! Shared helpers for the experiment benches.
//!
//! Each bench regenerates one experiment of EXPERIMENTS.md: it first prints
//! the experiment's series/rows (the "table" the paper's methodology would
//! report), then measures the operation with criterion.

use polysig_lang::{parse_program, Program};
use polysig_sim::generator::master_clock;
use polysig_sim::{PeriodicInputs, Scenario, ScenarioGenerator};
use polysig_tagged::ValueType;

/// The canonical two-component pipe used across experiments.
pub fn pipe() -> Program {
    parse_program(
        "process P { input a: int; output x: int; x := a; } \
         process Q { input x: int; output y: int; y := x; }",
    )
    .expect("pipe parses")
}

/// An environment for the desynchronized pipe: writes every
/// `write_period`, reads every `read_period`, master tick throughout.
pub fn pipe_env(steps: usize, write_period: usize, read_period: usize) -> Scenario {
    PeriodicInputs::new("a", ValueType::Int, write_period, 0)
        .generate(steps)
        .zip_union(&PeriodicInputs::new("x_rd", ValueType::Bool, read_period, 0).generate(steps))
        .zip_union(&master_clock("tick", steps))
}

/// Prints one experiment header line.
pub fn banner(experiment: &str, what: &str) {
    eprintln!("\n=== {experiment}: {what} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build() {
        assert_eq!(pipe().components.len(), 2);
        assert_eq!(pipe_env(10, 2, 3).len(), 10);
    }
}
