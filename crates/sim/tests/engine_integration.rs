//! Integration tests of the constructive engine on richer programs:
//! nested merges, constant anchoring, boolean circuitry, determinism and
//! multi-component wiring.

use polysig_lang::parse_program;
use polysig_sim::{Scenario, SimError, Simulator};
use polysig_tagged::{SigName, Value};

fn sim(src: &str) -> Simulator {
    Simulator::for_program(&parse_program(src).unwrap()).unwrap()
}

fn flow(run: &polysig_sim::Run, name: &str) -> Vec<Value> {
    run.flow(&SigName::from(name))
}

#[test]
fn if_then_else_encoding() {
    // the classic mux: out = a when c default b (both branches anchored)
    let mut s = sim("process Mux { input a: int, b: int, c: bool; output o: int; \
         o := (a when c) default b; }");
    let run = s
        .run(
            &Scenario::new()
                .on("a", Value::Int(1))
                .on("b", Value::Int(2))
                .on("c", Value::TRUE)
                .tick()
                .on("a", Value::Int(3))
                .on("b", Value::Int(4))
                .on("c", Value::FALSE)
                .tick()
                .on("b", Value::Int(5))
                .tick(),
        )
        .unwrap();
    assert_eq!(flow(&run, "o"), vec![Value::Int(1), Value::Int(4), Value::Int(5)]);
}

#[test]
fn bool_to_int_encoding_via_when_cascade() {
    // (1 when c) default (0 when not c): present exactly at c's instants
    let mut s = sim("process B2I { input c: bool; output o: int; \
         o := (1 when c) default (0 when (not c)); }");
    let run = s
        .run(
            &Scenario::new()
                .on("c", Value::TRUE)
                .tick()
                .on("c", Value::FALSE)
                .tick()
                .tick()
                .on("c", Value::TRUE)
                .tick(),
        )
        .unwrap();
    assert_eq!(flow(&run, "o"), vec![Value::Int(1), Value::Int(0), Value::Int(1)]);
    assert_eq!(run.presence(&"o".into()), vec![0, 1, 3]);
}

#[test]
fn toggler_state_machine() {
    let mut s = sim("process Toggle { input tick: bool; output t: bool; \
         t := not ((pre false t) when tick); t ^= tick; }");
    let mut scenario = Scenario::new();
    for _ in 0..5 {
        scenario = scenario.on("tick", Value::TRUE).tick();
    }
    let run = s.run(&scenario).unwrap();
    assert_eq!(
        flow(&run, "t"),
        vec![Value::TRUE, Value::FALSE, Value::TRUE, Value::FALSE, Value::TRUE]
    );
}

#[test]
fn three_stage_instantaneous_pipeline_in_one_reaction() {
    // values flow through three components within one instant
    let mut s = sim("process A { input a: int; output x: int; x := a + 1; } \
         process B { input x: int; output y: int; y := x * 10; } \
         process C { input y: int; output z: int; z := y - 5; }");
    let run = s.run(&Scenario::new().on("a", Value::Int(3)).tick()).unwrap();
    assert_eq!(flow(&run, "z"), vec![Value::Int(35)]);
}

#[test]
fn feedback_across_components_through_pre() {
    // A feeds B; B's previous output feeds back into A — legal because the
    // loop goes through a pre
    let mut s = sim("process A { input a: int, fb: int; output x: int; x := a + (pre 0 fb); } \
         process B { input x: int; output fb: int; fb := x * 2; }");
    let run = s
        .run(
            &Scenario::new()
                .on("a", Value::Int(1))
                .tick()
                .on("a", Value::Int(1))
                .tick()
                .on("a", Value::Int(1))
                .tick(),
        )
        .unwrap();
    // x: 1, 1+2=3, 1+6=7 ; fb: 2, 6, 14
    assert_eq!(flow(&run, "x"), vec![Value::Int(1), Value::Int(3), Value::Int(7)]);
    assert_eq!(flow(&run, "fb"), vec![Value::Int(2), Value::Int(6), Value::Int(14)]);
}

#[test]
fn simulation_is_deterministic() {
    let src = "process D { input a: int, c: bool; output o: int; \
               o := ((a when c) default (pre 0 o)) + 1; o ^= a; }";
    let scenario = Scenario::new()
        .on("a", Value::Int(5))
        .on("c", Value::TRUE)
        .tick()
        .on("a", Value::Int(6))
        .tick()
        .on("a", Value::Int(7))
        .on("c", Value::FALSE)
        .tick();
    let mut s1 = sim(src);
    let mut s2 = sim(src);
    let r1 = s1.run(&scenario).unwrap();
    let r2 = s2.run(&scenario).unwrap();
    assert_eq!(r1.behavior, r2.behavior);
}

#[test]
fn comparison_chain_and_negation() {
    let mut s = sim("process Cmp { input a: int, b: int; output lt: bool, ge: bool, n: int; \
         lt := a < b; ge := a >= b; n := -a; }");
    let run = s.run(&Scenario::new().on("a", Value::Int(2)).on("b", Value::Int(5)).tick()).unwrap();
    assert_eq!(flow(&run, "lt"), vec![Value::TRUE]);
    assert_eq!(flow(&run, "ge"), vec![Value::FALSE]);
    assert_eq!(flow(&run, "n"), vec![Value::Int(-2)]);
}

#[test]
fn error_when_condition_clock_strictly_smaller() {
    // o := a when c with c absent while a present: o is absent — fine.
    // but o := a + (a when c) mixes clocks → runtime clock mismatch
    let mut s = sim("process M { input a: int, c: bool; output o: int; o := a + (a when c); }");
    let ok = s.run(&Scenario::new().on("a", Value::Int(1)).on("c", Value::TRUE).tick());
    assert!(ok.is_ok());
    let err =
        s.run(&Scenario::new().on("a", Value::Int(1)).on("c", Value::FALSE).tick()).unwrap_err();
    assert!(matches!(err, SimError::ClockMismatch { .. }));
}

#[test]
fn silent_scenario_produces_silent_behavior() {
    let mut s = sim("process S { input a: int; output o: int; o := a * a; }");
    let run = s.run(&Scenario::new().silence(10)).unwrap();
    assert_eq!(run.events, 0);
    assert!(run.behavior.is_silent());
}

#[test]
fn local_name_collision_between_components_is_disambiguated() {
    // both components use a local named `tmp` — the merged reactor must not
    // alias them
    let mut s = sim("process A { input a: int; output x: int; local tmp: int; \
         tmp := a * 2; x := tmp + 1; } \
         process B { input x: int; output y: int; local tmp: int; \
         tmp := x * 10; y := tmp + 2; }");
    let run = s.run(&Scenario::new().on("a", Value::Int(1)).tick()).unwrap();
    assert_eq!(flow(&run, "x"), vec![Value::Int(3)]);
    assert_eq!(flow(&run, "y"), vec![Value::Int(32)]);
}

#[test]
fn clock_of_composes_with_logic() {
    // presence detector: fired when either input ticks
    let mut s = sim("process P { input a: int, b: int, tick: bool; output any: bool; \
         any := ((^a) default (^b)) default (false when tick); }");
    let run = s
        .run(
            &Scenario::new()
                .on("tick", Value::TRUE)
                .on("a", Value::Int(1))
                .tick()
                .on("tick", Value::TRUE)
                .on("b", Value::Int(2))
                .tick()
                .on("tick", Value::TRUE)
                .tick(),
        )
        .unwrap();
    assert_eq!(flow(&run, "any"), vec![Value::TRUE, Value::TRUE, Value::FALSE]);
}

#[test]
fn static_scheduling_reduces_fixpoint_passes() {
    // a 4-deep instantaneous chain written in reverse declaration order: the
    // naive fixpoint needs ~one pass per level, the scheduled one converges
    // in a constant number of passes
    let src = "process Chain { input a: int; output d: int; local b: int, c: int, e: int; \
               d := e + 1; e := c + 1; c := b + 1; b := a + 1; }";
    let program = parse_program(src).unwrap();
    let scenario = {
        let mut s = Scenario::new();
        for i in 0..20 {
            s = s.on("a", Value::Int(i)).tick();
        }
        s
    };

    let mut scheduled = polysig_sim::Reactor::for_program(&program).unwrap();
    let mut naive = polysig_sim::Reactor::for_program_unscheduled(&program).unwrap();
    for step in scenario.iter() {
        let a = scheduled.react(step).unwrap();
        let b = naive.react(step).unwrap();
        assert_eq!(a, b, "scheduling must not change behavior");
    }
    assert!(
        scheduled.passes() < naive.passes(),
        "scheduled {} vs naive {} passes",
        scheduled.passes(),
        naive.passes()
    );
}
