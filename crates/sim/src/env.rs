//! Dense, index-addressed signal environments.
//!
//! A [`DenseEnv`] is the hot-path representation of "which signals are
//! present this instant, with what values": one slot per interned signal,
//! addressed by [`SigId`]. It replaces `BTreeMap<SigName, Value>` in every
//! per-instant loop; the map form survives only at API boundaries
//! (scenarios, reports, counterexamples), converted once per run rather
//! than once per instant.

use polysig_tagged::{SigId, Value};

/// One instant's signal values, slot-addressed by [`SigId`].
///
/// ```
/// use polysig_sim::DenseEnv;
/// use polysig_tagged::{SigId, Value};
///
/// let mut env = DenseEnv::new(3);
/// env.set(SigId(1), Value::Int(7));
/// assert_eq!(env.get(SigId(1)), Some(Value::Int(7)));
/// assert_eq!(env.get(SigId(0)), None);
/// assert_eq!(env.iter().count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DenseEnv {
    slots: Vec<Option<Value>>,
    /// Cached number of present slots (maintained by every mutation, so
    /// [`DenseEnv::present_count`] is O(1) on the hot path).
    present: usize,
}

impl DenseEnv {
    /// An environment with `len` empty slots.
    pub fn new(len: usize) -> Self {
        DenseEnv { slots: vec![None; len], present: 0 }
    }

    /// Number of slots (the interner's signal count, not the present count).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` iff there are no slots at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Clears every slot and resizes to `len`, reusing the allocation.
    pub fn reset(&mut self, len: usize) {
        self.slots.clear();
        self.slots.resize(len, None);
        self.present = 0;
    }

    /// Marks `id` present with `value`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range for this environment.
    #[inline]
    pub fn set(&mut self, id: SigId, value: Value) {
        if self.slots[id.index()].replace(value).is_none() {
            self.present += 1;
        }
    }

    /// Marks `id` absent.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range for this environment.
    #[inline]
    pub fn unset(&mut self, id: SigId) {
        if self.slots[id.index()].take().is_some() {
            self.present -= 1;
        }
    }

    /// The value at `id`, or `None` when absent (out-of-range ids are
    /// absent, so a smaller environment can be probed with a larger
    /// interner's ids).
    #[inline]
    pub fn get(&self, id: SigId) -> Option<Value> {
        self.slots.get(id.index()).copied().flatten()
    }

    /// `true` iff `id` is present.
    #[inline]
    pub fn is_present(&self, id: SigId) -> bool {
        self.get(id).is_some()
    }

    /// Number of present signals (O(1): the count is maintained by every
    /// mutation).
    pub fn present_count(&self) -> usize {
        self.present
    }

    /// Iterates the present `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (SigId, Value)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| s.map(|v| (SigId(i as u32), v)))
    }

    /// Makes `self` an exact copy of `other`, reusing this environment's
    /// allocation — the clone-free way to load a precomputed input step
    /// into a reusable reaction buffer (one `memcpy`-shaped slice copy
    /// instead of a per-present-bit `set` loop).
    pub fn assign_from(&mut self, other: &DenseEnv) {
        self.slots.clear();
        self.slots.extend_from_slice(&other.slots);
        self.present = other.present;
    }
}

impl FromIterator<(SigId, Value)> for DenseEnv {
    /// Builds an environment just large enough for the highest id seen.
    fn from_iter<I: IntoIterator<Item = (SigId, Value)>>(iter: I) -> Self {
        let mut env = DenseEnv::default();
        for (id, value) in iter {
            if id.index() >= env.slots.len() {
                env.slots.resize(id.index() + 1, None);
            }
            env.set(id, value);
        }
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_unset_roundtrip() {
        let mut env = DenseEnv::new(4);
        assert!(env.iter().next().is_none());
        env.set(SigId(2), Value::TRUE);
        env.set(SigId(0), Value::Int(-1));
        assert_eq!(
            env.iter().collect::<Vec<_>>(),
            vec![(SigId(0), Value::Int(-1)), (SigId(2), Value::TRUE)]
        );
        assert_eq!(env.present_count(), 2);
        env.unset(SigId(2));
        assert_eq!(env.get(SigId(2)), None);
    }

    #[test]
    fn reset_reuses_and_resizes() {
        let mut env = DenseEnv::new(2);
        env.set(SigId(1), Value::Int(5));
        env.reset(5);
        assert_eq!(env.len(), 5);
        assert_eq!(env.present_count(), 0);
        assert_eq!(env.get(SigId(1)), None);
    }

    #[test]
    fn out_of_range_probes_read_as_absent() {
        let env = DenseEnv::new(1);
        assert_eq!(env.get(SigId(9)), None);
        assert!(!env.is_present(SigId(9)));
    }

    #[test]
    fn present_count_survives_every_mutation() {
        let mut env = DenseEnv::new(3);
        env.set(SigId(0), Value::Int(1));
        env.set(SigId(0), Value::Int(2)); // overwrite: still one present
        assert_eq!(env.present_count(), 1);
        env.unset(SigId(1)); // already absent: no underflow
        assert_eq!(env.present_count(), 1);
        env.unset(SigId(0));
        assert_eq!(env.present_count(), 0);
        env.set(SigId(2), Value::Int(3));
        assert_eq!(env.present_count(), 1);
        env.reset(2);
        assert_eq!(env.present_count(), 0);
    }

    #[test]
    fn assign_from_copies_slots_and_count() {
        let mut src = DenseEnv::new(4);
        src.set(SigId(1), Value::Int(9));
        src.set(SigId(3), Value::TRUE);
        let mut dst = DenseEnv::new(2);
        dst.set(SigId(0), Value::Int(-1));
        dst.assign_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.present_count(), 2);
        // reuse after assigning from a smaller env shrinks correctly
        let empty = DenseEnv::new(1);
        dst.assign_from(&empty);
        assert_eq!(dst.len(), 1);
        assert_eq!(dst.present_count(), 0);
    }

    #[test]
    fn from_iter_sizes_to_highest_id() {
        let env: DenseEnv = [(SigId(3), Value::TRUE)].into_iter().collect();
        assert_eq!(env.len(), 4);
        assert_eq!(env.get(SigId(3)), Some(Value::TRUE));
    }
}
