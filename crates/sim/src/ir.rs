//! Compiled expression IR: signal references resolved to dense indices and
//! every `pre` given a register id.

use polysig_lang::{Binop, Expr, Unop};
use polysig_tagged::Value;

/// A compiled expression. Mirrors [`polysig_lang::Expr`] with dense signal
/// indices and explicit `pre` register ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CExpr {
    /// A signal read, by dense index.
    Var(usize),
    /// A constant (ubiquitous clock).
    Const(Value),
    /// A delay with its register id.
    Pre {
        /// Index into the reactor's register file.
        reg: usize,
        /// The delayed expression.
        body: Box<CExpr>,
    },
    /// Sampling.
    When {
        /// The sampled expression.
        body: Box<CExpr>,
        /// The boolean condition.
        cond: Box<CExpr>,
    },
    /// Deterministic merge.
    Default {
        /// Preferred branch.
        left: Box<CExpr>,
        /// Fallback branch.
        right: Box<CExpr>,
    },
    /// Unary pointwise operator.
    Unary {
        /// The operator.
        op: Unop,
        /// The operand.
        arg: Box<CExpr>,
    },
    /// Binary synchronous pointwise operator.
    Binary {
        /// The operator.
        op: Binop,
        /// Left operand.
        left: Box<CExpr>,
        /// Right operand.
        right: Box<CExpr>,
    },
}

impl CExpr {
    /// `true` iff the expression contains a `pre` anywhere — equations
    /// without one own no registers, so the post-reaction register-update
    /// walk can skip them entirely.
    pub fn has_pre(&self) -> bool {
        match self {
            CExpr::Var(_) | CExpr::Const(_) => false,
            CExpr::Pre { .. } => true,
            CExpr::When { body: left, cond: right }
            | CExpr::Default { left, right }
            | CExpr::Binary { left, right, .. } => left.has_pre() || right.has_pre(),
            CExpr::Unary { arg, .. } => arg.has_pre(),
        }
    }
}

/// Compiles an AST expression, resolving names through `index_of` and
/// allocating a register (recording its initial value in `registers`) for
/// every `pre`.
pub fn compile(
    e: &Expr,
    index_of: &impl Fn(&polysig_tagged::SigName) -> usize,
    registers: &mut Vec<Value>,
) -> CExpr {
    match e {
        Expr::Var(x) => CExpr::Var(index_of(x)),
        Expr::Const(v) => CExpr::Const(*v),
        Expr::Pre { init, body } => {
            let reg = registers.len();
            registers.push(*init);
            CExpr::Pre { reg, body: Box::new(compile(body, index_of, registers)) }
        }
        Expr::When { body, cond } => CExpr::When {
            body: Box::new(compile(body, index_of, registers)),
            cond: Box::new(compile(cond, index_of, registers)),
        },
        Expr::Default { left, right } => CExpr::Default {
            left: Box::new(compile(left, index_of, registers)),
            right: Box::new(compile(right, index_of, registers)),
        },
        Expr::Unary { op, arg } => {
            CExpr::Unary { op: *op, arg: Box::new(compile(arg, index_of, registers)) }
        }
        Expr::Binary { op, left, right } => CExpr::Binary {
            op: *op,
            left: Box::new(compile(left, index_of, registers)),
            right: Box::new(compile(right, index_of, registers)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_lang::parse_expr;

    #[test]
    fn compile_allocates_registers_in_order() {
        let e = parse_expr("(pre 0 x) + (pre 7 y)").unwrap();
        let mut regs = Vec::new();
        let c = compile(&e, &|_| 0, &mut regs);
        assert_eq!(regs, vec![Value::Int(0), Value::Int(7)]);
        match c {
            CExpr::Binary { left, right, .. } => {
                assert!(matches!(*left, CExpr::Pre { reg: 0, .. }));
                assert!(matches!(*right, CExpr::Pre { reg: 1, .. }));
            }
            other => panic!("expected binary, got {other:?}"),
        }
    }

    #[test]
    fn compile_resolves_names() {
        let e = parse_expr("a default b").unwrap();
        let mut regs = Vec::new();
        let c = compile(&e, &|n| if n.as_str() == "a" { 10 } else { 20 }, &mut regs);
        match c {
            CExpr::Default { left, right } => {
                assert_eq!(*left, CExpr::Var(10));
                assert_eq!(*right, CExpr::Var(20));
            }
            other => panic!("expected default, got {other:?}"),
        }
    }
}
