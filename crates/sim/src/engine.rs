//! High-level simulation driver: runs a scenario and records the resulting
//! tagged-model behavior.

use polysig_lang::{Component, Program};
use polysig_tagged::{Behavior, SigName, Tag, Value};

use crate::env::DenseEnv;
use crate::error::SimError;
use crate::reactor::{Reactor, ReactorState};
use crate::scenario::Scenario;

/// The result of running a scenario.
#[derive(Debug, Clone)]
pub struct Run {
    /// The recorded behavior: every declared signal's trace, with one tag
    /// per reaction (reactions where a signal is absent simply do not appear
    /// on its chain).
    pub behavior: Behavior,
    /// Number of reactions executed.
    pub steps: usize,
    /// Total events produced.
    pub events: usize,
}

impl Run {
    /// The value flow of one signal (convenience accessor).
    pub fn flow(&self, name: &SigName) -> Vec<Value> {
        self.behavior.trace(name).map(|t| t.values()).unwrap_or_default()
    }

    /// Presence instants of one signal as 0-based reaction indices.
    pub fn presence(&self, name: &SigName) -> Vec<usize> {
        self.behavior
            .trace(name)
            .map(|t| t.tags().map(|tag| tag.as_u64() as usize - 1).collect())
            .unwrap_or_default()
    }
}

/// A reusable simulator: a [`Reactor`] plus trace recording.
///
/// ```
/// use polysig_lang::parse_program;
/// use polysig_sim::{Scenario, Simulator};
/// use polysig_tagged::Value;
///
/// let p = parse_program("process P { input a: int; output x: int; x := a + a; }")?;
/// let mut sim = Simulator::for_program(&p)?;
/// let run = sim.run(&Scenario::new().on("a", Value::Int(2)).tick())?;
/// assert_eq!(run.flow(&"x".into()), vec![Value::Int(4)]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    reactor: Reactor,
}

impl Simulator {
    /// Elaborates a program.
    ///
    /// # Errors
    ///
    /// Surfaces resolution and type errors.
    pub fn for_program(p: &Program) -> Result<Simulator, SimError> {
        Ok(Simulator { reactor: Reactor::for_program(p)? })
    }

    /// Elaborates a single component.
    ///
    /// # Errors
    ///
    /// Surfaces resolution and type errors.
    pub fn for_component(c: &Component) -> Result<Simulator, SimError> {
        Ok(Simulator { reactor: Reactor::for_component(c)? })
    }

    /// Access to the underlying reactor (state inspection, stepping).
    pub fn reactor(&self) -> &Reactor {
        &self.reactor
    }

    /// Mutable access to the underlying reactor.
    pub fn reactor_mut(&mut self) -> &mut Reactor {
        &mut self.reactor
    }

    /// Runs a scenario from the current state, recording a behavior. The
    /// reactor state advances; call [`Simulator::reset`] to start over.
    ///
    /// The scenario's name-keyed steps are converted to [`DenseEnv`]s once,
    /// up front; the per-reaction loop then drives
    /// [`Reactor::react_dense`] and never touches a name-keyed map.
    /// (Consequently, a scenario mentioning an undeclared name is rejected
    /// before any reaction executes.)
    ///
    /// # Errors
    ///
    /// Stops at the first reaction error (see [`SimError`]).
    pub fn run(&mut self, scenario: &Scenario) -> Result<Run, SimError> {
        let start = self.reactor.steps_taken();
        let names = self.reactor.signal_names().to_vec();
        let mut behavior = Behavior::new();
        for name in &names {
            behavior.declare(name.clone());
        }
        let n = self.reactor.signal_count();
        let mut dense_steps: Vec<DenseEnv> = Vec::with_capacity(scenario.len());
        for inputs in scenario.iter() {
            let mut env = DenseEnv::new(n);
            for (name, value) in inputs {
                let Some(id) = self.reactor.sig_id(name) else {
                    return Err(SimError::NotAnInput { name: name.clone() });
                };
                env.set(id, *value);
            }
            dense_steps.push(env);
        }
        let mut events = 0usize;
        for (k, env) in dense_steps.iter().enumerate() {
            let present = self.reactor.react_dense(env)?;
            let tag = Tag::new((start + k) as u64 + 1);
            for (id, value) in present.iter() {
                behavior.push_event(names[id.index()].clone(), tag, value);
                events += 1;
            }
        }
        Ok(Run { behavior, steps: scenario.len(), events })
    }

    /// Resets the program state.
    pub fn reset(&mut self) {
        self.reactor.reset();
    }

    /// Captures a resumable split point: the current reactor state together
    /// with the behavior recorded so far (`recorded` must be the [`Run`]
    /// that brought the simulator to its current state).
    ///
    /// # Panics
    ///
    /// Panics if `recorded.steps` disagrees with the reactor's step counter
    /// — the checkpoint would pair a state with somebody else's prefix.
    pub fn checkpoint(&self, recorded: &Run) -> SimCheckpoint {
        let state = self.reactor.snapshot();
        assert_eq!(
            recorded.steps,
            state.step(),
            "checkpoint prefix does not match the reactor state"
        );
        SimCheckpoint { state, prefix: recorded.clone() }
    }

    /// Restores a checkpoint and runs `rest` from it, returning the full
    /// run: the checkpoint's prefix followed by the continuation, exactly as
    /// if the whole scenario had been run in one [`Simulator::run`] call.
    ///
    /// # Errors
    ///
    /// Stops at the first reaction error, like [`Simulator::run`].
    pub fn resume(&mut self, cp: &SimCheckpoint, rest: &Scenario) -> Result<Run, SimError> {
        self.reactor.restore(&cp.state);
        let cont = self.run(rest)?;
        // continuation tags start past every prefix tag (the reactor's step
        // counter resumed from the checkpoint), so appending preserves the
        // chain condition
        let mut behavior = cp.prefix.behavior.clone();
        for (name, trace) in cont.behavior.iter() {
            for ev in trace.iter() {
                behavior.push_event(name.clone(), ev.tag(), ev.value());
            }
        }
        Ok(Run {
            behavior,
            steps: cp.prefix.steps + cont.steps,
            events: cp.prefix.events + cont.events,
        })
    }
}

/// A split point of a simulation captured by [`Simulator::checkpoint`]: the
/// reactor state plus the behavior recorded up to it. Feed it back to
/// [`Simulator::resume`] — on the same simulator or a clone sharing the
/// same program — to continue the run without replaying the prefix.
#[derive(Debug, Clone)]
pub struct SimCheckpoint {
    state: ReactorState,
    prefix: Run,
}

impl SimCheckpoint {
    /// Number of reactions the prefix covers.
    pub fn steps(&self) -> usize {
        self.prefix.steps
    }

    /// The prefix run recorded up to the split point.
    pub fn prefix(&self) -> &Run {
        &self.prefix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_lang::parse_program;
    use polysig_tagged::denotation;

    fn sim(src: &str) -> Simulator {
        Simulator::for_program(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn run_records_behavior_with_reaction_tags() {
        let mut s = sim("process P { input a: int; output x: int; x := a; }");
        let run = s
            .run(
                &Scenario::new().on("a", Value::Int(1)).tick().tick().on("a", Value::Int(2)).tick(),
            )
            .unwrap();
        assert_eq!(run.steps, 3);
        assert_eq!(run.flow(&"x".into()), vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(run.presence(&"x".into()), vec![0, 2]);
        assert_eq!(run.events, 4); // a twice, x twice
    }

    #[test]
    fn consecutive_runs_continue_the_state() {
        let mut s =
            sim("process Acc { input tick: bool; output n: int; n := (pre 0 n) + (1 when tick); }");
        let one = Scenario::new().on("tick", Value::TRUE).tick();
        let r1 = s.run(&one).unwrap();
        let r2 = s.run(&one).unwrap();
        assert_eq!(r1.flow(&"n".into()), vec![Value::Int(1)]);
        assert_eq!(r2.flow(&"n".into()), vec![Value::Int(2)]);
        s.reset();
        let r3 = s.run(&one).unwrap();
        assert_eq!(r3.flow(&"n".into()), vec![Value::Int(1)]);
    }

    #[test]
    fn operational_run_matches_denotational_when() {
        // simulator output for `x := a when c` must satisfy Table 1
        let mut s = sim("process P { input a: int, c: bool; output x: int; x := a when c; }");
        let run = s
            .run(
                &Scenario::new()
                    .on("a", Value::Int(1))
                    .on("c", Value::TRUE)
                    .tick()
                    .on("a", Value::Int(2))
                    .on("c", Value::FALSE)
                    .tick()
                    .on("a", Value::Int(3))
                    .on("c", Value::TRUE)
                    .tick(),
            )
            .unwrap();
        let a = run.behavior.trace(&"a".into()).unwrap();
        let c = run.behavior.trace(&"c".into()).unwrap();
        let x = run.behavior.trace(&"x".into()).unwrap();
        assert!(denotation::satisfies_when(x, a, c));
    }

    #[test]
    fn operational_run_matches_denotational_pre_and_default() {
        let mut s = sim("process P { input a: int, b: int; output x: int, y: int; \
             x := pre 0 a; y := a default b; }");
        let run = s
            .run(
                &Scenario::new()
                    .on("a", Value::Int(5))
                    .tick()
                    .on("b", Value::Int(7))
                    .tick()
                    .on("a", Value::Int(9))
                    .on("b", Value::Int(8))
                    .tick(),
            )
            .unwrap();
        let a = run.behavior.trace(&"a".into()).unwrap();
        let b = run.behavior.trace(&"b".into()).unwrap();
        assert!(denotation::satisfies_pre(
            run.behavior.trace(&"x".into()).unwrap(),
            Value::Int(0),
            a
        ));
        assert!(denotation::satisfies_default(run.behavior.trace(&"y".into()).unwrap(), a, b));
    }

    #[test]
    fn checkpoint_resume_matches_oneshot_run() {
        let src = "process Acc { input tick: bool, a: int; output n: int; \
                   n := (pre 0 n) + (a when tick); }";
        let step = |s: Scenario, v: i64| s.on("tick", Value::TRUE).on("a", Value::Int(v)).tick();
        let mut full = Scenario::new();
        let mut head = Scenario::new();
        let mut tail = Scenario::new();
        for (i, v) in [3, 1, 4, 1, 5, 9, 2, 6].into_iter().enumerate() {
            full = step(full, v);
            if i < 3 {
                head = step(head, v);
            } else {
                tail = step(tail, v);
            }
        }

        let mut oneshot = sim(src);
        let want = oneshot.run(&full).unwrap();

        let mut split = sim(src);
        let prefix = split.run(&head).unwrap();
        let cp = split.checkpoint(&prefix);
        let got = split.resume(&cp, &tail).unwrap();

        assert_eq!(got.steps, want.steps);
        assert_eq!(got.events, want.events);
        assert_eq!(got.flow(&"n".into()), want.flow(&"n".into()));
        assert_eq!(got.presence(&"n".into()), want.presence(&"n".into()));

        // the checkpoint is reusable: resume again with a different tail
        let redo = split.resume(&cp, &tail).unwrap();
        assert_eq!(redo.flow(&"n".into()), want.flow(&"n".into()));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn checkpoint_rejects_mismatched_prefix() {
        let mut s = sim("process P { input a: int; output x: int; x := a; }");
        let run = s.run(&Scenario::new().on("a", Value::Int(1)).tick()).unwrap();
        let _ = s.run(&Scenario::new().tick()).unwrap(); // state moved on
        let _ = s.checkpoint(&run);
    }

    #[test]
    fn errors_carry_reaction_index() {
        let mut s = sim("process P { input a: int, b: int; output x: int; x := a + b; }");
        let scenario = Scenario::new()
            .on("a", Value::Int(1))
            .on("b", Value::Int(1))
            .tick()
            .on("a", Value::Int(2))
            .tick();
        let err = s.run(&scenario).unwrap_err();
        match err {
            SimError::ClockMismatch { step, .. } | SimError::Contradiction { step, .. } => {
                assert_eq!(step, 1)
            }
            other => panic!("unexpected error {other}"),
        }
    }
}
