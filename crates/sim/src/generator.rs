//! Scenario generators: periodic, random and bursty input patterns.
//!
//! These model the *environments* of the paper's Section 5.2 methodology:
//! the designer feeds a set of behaviors into the instrumented design to
//! estimate buffer sizes. Rate mismatch, jitter and burstiness are exactly
//! the knobs that drive how much buffering a desynchronized link needs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use polysig_tagged::{SigName, Value, ValueType};

use crate::scenario::Scenario;

/// Something that can produce an input [`Scenario`] of a given length.
pub trait ScenarioGenerator {
    /// Generates a scenario with `steps` reactions.
    fn generate(&self, steps: usize) -> Scenario;
}

/// A strictly periodic input: present every `period` reactions (starting at
/// `phase`), carrying consecutive integers or a constant boolean.
///
/// ```
/// use polysig_sim::{PeriodicInputs, ScenarioGenerator};
/// use polysig_tagged::ValueType;
///
/// let g = PeriodicInputs::new("msgin", ValueType::Int, 2, 0);
/// let s = g.generate(4);
/// assert_eq!(s.len(), 4);
/// assert!(!s.step(0).unwrap().is_empty());
/// assert!(s.step(1).unwrap().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct PeriodicInputs {
    name: SigName,
    ty: ValueType,
    period: usize,
    phase: usize,
}

impl PeriodicInputs {
    /// Creates a periodic generator.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(name: impl Into<SigName>, ty: ValueType, period: usize, phase: usize) -> Self {
        assert!(period > 0, "period must be positive");
        PeriodicInputs { name: name.into(), ty, period, phase }
    }
}

impl ScenarioGenerator for PeriodicInputs {
    fn generate(&self, steps: usize) -> Scenario {
        let mut s = Scenario::new();
        let mut k = 0i64;
        for i in 0..steps {
            let mut step = std::collections::BTreeMap::new();
            if i >= self.phase && (i - self.phase).is_multiple_of(self.period) {
                k += 1;
                let v = match self.ty {
                    ValueType::Int => Value::Int(k),
                    ValueType::Bool => Value::TRUE,
                };
                step.insert(self.name.clone(), v);
            }
            s.push_step(step);
        }
        s
    }
}

/// A Bernoulli input: present with probability `p` each reaction, carrying
/// consecutive integers or a constant boolean. Deterministic for a fixed
/// seed.
#[derive(Debug, Clone)]
pub struct RandomInputs {
    name: SigName,
    ty: ValueType,
    probability: f64,
    seed: u64,
}

impl RandomInputs {
    /// Creates a random generator.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= probability <= 1.0`.
    pub fn new(name: impl Into<SigName>, ty: ValueType, probability: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&probability), "probability must be in [0, 1]");
        RandomInputs { name: name.into(), ty, probability, seed }
    }
}

impl ScenarioGenerator for RandomInputs {
    fn generate(&self, steps: usize) -> Scenario {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut s = Scenario::new();
        let mut k = 0i64;
        for _ in 0..steps {
            let mut step = std::collections::BTreeMap::new();
            if rng.gen_bool(self.probability) {
                k += 1;
                let v = match self.ty {
                    ValueType::Int => Value::Int(k),
                    ValueType::Bool => Value::TRUE,
                };
                step.insert(self.name.clone(), v);
            }
            s.push_step(step);
        }
        s
    }
}

/// A bursty input: `burst_len` consecutive present reactions every
/// `period` reactions — the worst case for buffer sizing, since a burst of
/// writes can pile up before the consumer drains them.
#[derive(Debug, Clone)]
pub struct BurstyInputs {
    name: SigName,
    ty: ValueType,
    burst_len: usize,
    period: usize,
}

impl BurstyInputs {
    /// Creates a bursty generator.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < burst_len <= period`.
    pub fn new(name: impl Into<SigName>, ty: ValueType, burst_len: usize, period: usize) -> Self {
        assert!(burst_len > 0 && burst_len <= period, "need 0 < burst_len <= period");
        BurstyInputs { name: name.into(), ty, burst_len, period }
    }
}

impl ScenarioGenerator for BurstyInputs {
    fn generate(&self, steps: usize) -> Scenario {
        let mut s = Scenario::new();
        let mut k = 0i64;
        for i in 0..steps {
            let mut step = std::collections::BTreeMap::new();
            if i % self.period < self.burst_len {
                k += 1;
                let v = match self.ty {
                    ValueType::Int => Value::Int(k),
                    ValueType::Bool => Value::TRUE,
                };
                step.insert(self.name.clone(), v);
            }
            s.push_step(step);
        }
        s
    }
}

/// Convenience: a boolean `tick` input present at every reaction — the
/// master clock used by the endochronized components in `polysig-gals`.
pub fn master_clock(name: impl Into<SigName>, steps: usize) -> Scenario {
    PeriodicInputs::new(name, ValueType::Bool, 1, 0).generate(steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_counts_events() {
        let s = PeriodicInputs::new("x", ValueType::Int, 3, 1).generate(10);
        let present: Vec<usize> = (0..10).filter(|&i| !s.step(i).unwrap().is_empty()).collect();
        assert_eq!(present, vec![1, 4, 7]);
        // values are consecutive integers
        assert_eq!(s.step(1).unwrap()[&SigName::from("x")], Value::Int(1));
        assert_eq!(s.step(4).unwrap()[&SigName::from("x")], Value::Int(2));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = RandomInputs::new("x", ValueType::Int, 0.5, 42).generate(50);
        let b = RandomInputs::new("x", ValueType::Int, 0.5, 42).generate(50);
        assert_eq!(a, b);
        let c = RandomInputs::new("x", ValueType::Int, 0.5, 43).generate(50);
        assert_ne!(a, c);
    }

    #[test]
    fn random_respects_extremes() {
        let all = RandomInputs::new("x", ValueType::Bool, 1.0, 1).generate(20);
        assert!(all.iter().all(|m| !m.is_empty()));
        let none = RandomInputs::new("x", ValueType::Bool, 0.0, 1).generate(20);
        assert!(none.iter().all(|m| m.is_empty()));
    }

    #[test]
    fn bursty_shapes_bursts() {
        let s = BurstyInputs::new("x", ValueType::Int, 2, 5).generate(10);
        let mask: Vec<bool> = (0..10).map(|i| !s.step(i).unwrap().is_empty()).collect();
        assert_eq!(mask, vec![true, true, false, false, false, true, true, false, false, false]);
    }

    #[test]
    fn master_clock_is_always_on() {
        let s = master_clock("tick", 5);
        assert_eq!(s.len(), 5);
        assert!(s.iter().all(|m| m[&SigName::from("tick")] == Value::TRUE));
    }
}
