//! The compiled static schedule: flat three-address code over dense value
//! slots, and the linear executor that runs it with **zero fixpoint passes**.
//!
//! A [`CompiledComponent`] is produced by `compile::lower` for reaction
//! systems whose clock analysis yields a total evaluation order (the
//! endochronous case of the paper's Theorem 1 — see DESIGN.md §12). The
//! executor walks the op list once per reaction; every operand and result
//! lives in a flat slot array (signal slots first, then interned constants
//! and expression temporaries), so there is no operand stack and no
//! per-reaction clearing: the lowering guarantees statically that every
//! slot is written before it is read and that every signal slot ends the
//! reaction *decided* (absent or present-valued).
//!
//! The slot domain mirrors the interpreter's evaluation lattice *minus*
//! `Unknown`: a compiled schedule decides every operand before it is read,
//! so an anomaly is not an error but a *bail* — the executor aborts, the
//! reaction's scratch state is discarded, and the caller re-runs the
//! interpreter from the identical pre-reaction state. Bailing is always
//! safe (it only costs time), which lets the executor treat every anomaly
//! — contradictory assignments, clock mismatches, runtime type errors,
//! ill-typed or misdirected inputs, non-uniform clock groups — the same
//! way and keeps error strings bit-identical to the interpreter by
//! construction.

use polysig_lang::{Binop, Unop};
use polysig_tagged::{SigId, Value, ValueType};

use crate::env::DenseEnv;

/// A slot's value during a reaction: the interpreter's evaluation lattice
/// without `Unknown` (the lowering proves reads never see an undecided
/// slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// The expression produces no event this reaction.
    Absent,
    /// Present, value not yet determined (only transient: a clock-decided
    /// signal before its own equation ran).
    Unvalued,
    /// Present with this value.
    Present(Value),
    /// A constant: present whenever the context demands, with this value.
    Ubiquitous(Value),
}

impl Flow {
    #[inline(always)]
    fn is_present(self) -> bool {
        matches!(self, Flow::Unvalued | Flow::Present(_))
    }
}

/// Where an op's result goes. A non-`Temp` mode *is* the fused
/// `GuardedAssign`: it commits the final value of a signal's defining
/// equation, bailing unless the result leaves the slot decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Raw store into an expression temporary.
    Temp,
    /// Assign a signal whose presence is *not* pre-decided: the result
    /// itself must be decided (absent or present-valued).
    Guard,
    /// Assign a signal whose presence was decided by [`Op::EvalClock`] or
    /// [`Op::SetClockFrom`]: the result's presence must agree (the
    /// interpreter's join), and a ubiquitous result adapts to that clock.
    GuardAtClock,
}

/// One three-address operation of a compiled schedule. Slot indices cover
/// signals, interned constants and temporaries alike.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Decide the presence of a clock group from its external inputs: if
    /// the (non-empty, presence-uniform) `fold` slots are present, each
    /// slot in `members` becomes unvalued-present, otherwise absent; a
    /// fold whose inputs disagree bails (the group is non-uniform — the
    /// interpreter raises the contradiction). Mirrors the interpreter's
    /// first clock-propagation sweep, where only the seeded inputs are
    /// decided. Members assigned later can only keep this presence (their
    /// clocked guards bail otherwise), so an `EvalClock`ed group needs no
    /// epilogue uniformity check.
    EvalClock {
        /// The group's external inputs (decided at seed time; never
        /// empty).
        fold: Box<[u32]>,
        /// The group's non-input members (undecided before this op).
        members: Box<[u32]>,
    },
    /// Set `dst`'s presence from the witness in `src`: present makes `dst`
    /// unvalued-present, absent makes it absent, ubiquitous bails. Used
    /// when a signal's clock is derived from a sub-expression of its own
    /// right-hand side (e.g. the `1 when tick` branch of an accumulator).
    SetClockFrom {
        /// The defined signal's slot.
        dst: u32,
        /// The witness expression's slot.
        src: u32,
    },
    /// `dst := src` (plain copy / constant reference).
    Mov {
        /// Result destination and guarding.
        m: Mode,
        /// Destination slot.
        dst: u32,
        /// Source slot.
        src: u32,
    },
    /// `dst := pre(body)`: the register's value at the body's clock
    /// (ubiquitous bodies stay ubiquitous, mirroring the interpreter).
    Pre {
        /// Result destination and guarding.
        m: Mode,
        /// Destination slot.
        dst: u32,
        /// Index into the reactor's register file.
        reg: u32,
        /// The delayed body's slot (decides the clock).
        body: u32,
    },
    /// `dst := (pre body) when cond`, fused: the delayed value is sampled
    /// without a round-trip through a temporary (the dominant pattern in
    /// clocked state machines, e.g. `(pre false full) when tick`).
    PreWhen {
        /// Result destination and guarding.
        m: Mode,
        /// Destination slot.
        dst: u32,
        /// Index into the reactor's register file.
        reg: u32,
        /// The delayed body's slot (decides the delay's clock).
        body: u32,
        /// Condition slot.
        cond: u32,
    },
    /// `dst := (op arg) when cond`, fused pointwise-then-sample.
    UnaryWhen {
        /// Result destination and guarding.
        m: Mode,
        /// Destination slot.
        dst: u32,
        /// The operator.
        op: Unop,
        /// Operand slot.
        arg: u32,
        /// Condition slot.
        cond: u32,
    },
    /// `dst := (left op right) when cond`, fused synchronous-then-sample.
    BinaryWhen {
        /// Result destination and guarding.
        m: Mode,
        /// Destination slot.
        dst: u32,
        /// The operator.
        op: Binop,
        /// Left operand slot.
        left: u32,
        /// Right operand slot.
        right: u32,
        /// Condition slot.
        cond: u32,
    },
    /// `dst := body when cond`. Transcribes the interpreter's sampling
    /// rules (absent body wins over a non-bool condition; an unvalued
    /// condition bails).
    When {
        /// Result destination and guarding.
        m: Mode,
        /// Destination slot.
        dst: u32,
        /// Sampled body slot.
        body: u32,
        /// Condition slot.
        cond: u32,
    },
    /// `dst := left default (konst when cond)`, fused: the clocked-
    /// constant fallback idiom (e.g. `... default (false when tick)`)
    /// without a temporary for the sampled constant.
    DefaultConstAt {
        /// Result destination and guarding.
        m: Mode,
        /// Preferred operand slot.
        left: u32,
        /// Destination slot.
        dst: u32,
        /// The fallback constant's (ubiquitous) slot.
        konst: u32,
        /// Condition slot.
        cond: u32,
    },
    /// `dst := left default right` (left wins when present).
    DefaultMerge {
        /// Result destination and guarding.
        m: Mode,
        /// Destination slot.
        dst: u32,
        /// Preferred operand slot.
        left: u32,
        /// Fallback operand slot.
        right: u32,
    },
    /// `dst := op(arg)` pointwise.
    Unary {
        /// Result destination and guarding.
        m: Mode,
        /// Destination slot.
        dst: u32,
        /// The operator.
        op: Unop,
        /// Operand slot.
        arg: u32,
    },
    /// `dst := left op right`, synchronous pointwise. A present/absent
    /// operand mix is a clock mismatch: bail (the interpreter re-run
    /// raises the error).
    Binary {
        /// Result destination and guarding.
        m: Mode,
        /// Destination slot.
        dst: u32,
        /// The operator.
        op: Binop,
        /// Left operand slot.
        left: u32,
        /// Right operand slot.
        right: u32,
    },
    /// Commit `register := slots[src]` into the next-reaction register
    /// file when the re-evaluated `pre` body is present-valued (ubiquitous
    /// bodies never advance a register, exactly like the interpreter's
    /// update walk).
    RegisterShift {
        /// Index into the reactor's register file.
        reg: u32,
        /// The re-evaluated body's slot.
        src: u32,
    },
    /// Several [`Op::RegisterShift`]s in one dispatch (the common trailing
    /// run of a schedule's register updates).
    RegisterShiftN {
        /// `(reg, src)` pairs, applied in order.
        moves: Box<[(u32, u32)]>,
    },
}

/// A lowered reaction system: straight-line guarded three-address code
/// executed once per reaction, with no fixpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledComponent {
    /// Clock-deciding and equation ops, in static schedule order.
    pub ops: Vec<Op>,
    /// Register-update ops, run after the consistency epilogue.
    pub reg_ops: Vec<Op>,
    /// Initial slot image: signal and temporary slots (overwritten before
    /// every read), then interned constants (never written).
    pub init_slots: Box<[Flow]>,
    /// Slots of the external inputs, in id order.
    pub input_slots: Box<[u32]>,
    /// Declared types of the inputs, aligned with `input_slots`.
    pub input_types: Box<[ValueType]>,
    /// Number of signal slots (a prefix of the slot array).
    pub signal_count: u32,
    /// Multi-member clock groups whose uniformity [`Op::EvalClock`] does
    /// not already guarantee, checked in the epilogue.
    pub check_groups: Box<[Box<[u32]>]>,
    /// Clock subset constraints as `(sub, sup)` representative slots:
    /// sub present ⇒ sup present, checked in the epilogue.
    pub check_edges: Box<[(u32, u32)]>,
}

impl CompiledComponent {
    /// Total op count (the lint's "schedule length" metric).
    pub fn op_count(&self) -> usize {
        self.ops.len() + self.reg_ops.len()
    }

    /// Executes one reaction: seeds the inputs from `inputs`, runs the
    /// schedule, checks group consistency, then computes the register
    /// updates.
    ///
    /// On success returns `Ok(ops_executed)` with every signal slot
    /// decided and `new_regs` holding the full next-reaction register file
    /// (swap it in to commit). On a bail returns `Err(ops_executed)`: the
    /// caller must discard `slots` and `new_regs` and re-run the
    /// interpreter — no reactor state has been touched. Scenario anomalies
    /// (a driven non-input, an ill-typed input) bail rather than erroring,
    /// so the interpreter raises the identical error the name-keyed path
    /// always produced.
    pub fn execute(
        &self,
        registers: &[Value],
        inputs: &DenseEnv,
        slots: &mut Vec<Flow>,
        new_regs: &mut Vec<Value>,
    ) -> Result<usize, usize> {
        new_regs.clear();
        new_regs.extend_from_slice(registers);
        if slots.len() != self.init_slots.len() {
            slots.clear();
            slots.extend_from_slice(&self.init_slots);
        }
        // Seed: decide every input slot. Present slots the loop does not
        // visit are misdirected (a driven non-input, or an id beyond this
        // reactor's signals — the interpreter ignores the latter), so any
        // count mismatch bails.
        let mut found = 0usize;
        for (k, &i) in self.input_slots.iter().enumerate() {
            match inputs.get(SigId(i)) {
                Some(v) => {
                    if v.ty() != self.input_types[k] {
                        return Err(0);
                    }
                    found += 1;
                    slots[i as usize] = Flow::Present(v);
                }
                None => slots[i as usize] = Flow::Absent,
            }
        }
        if found != inputs.present_count() {
            return Err(0);
        }

        let mut ops_run = 0usize;
        for op in &self.ops {
            ops_run += 1;
            if !step_op(op, registers, slots, new_regs) {
                return Err(ops_run);
            }
        }
        // Consistency epilogue. Every signal slot is decided by
        // construction (the lowering rejects systems with undefined
        // non-inputs, and every guarded store enforces decidedness), each
        // equation was re-checked against its clock by its guarded store,
        // and `EvalClock`ed groups are uniform by construction — so if the
        // remaining group and subset constraints below also hold, the slot
        // vector is a model of every interpreter rule, and by monotonicity
        // of the constructive fixpoint the interpreter would converge to
        // exactly this vector. Committing it is sound.
        for group in self.check_groups.iter() {
            let first = slots[group[0] as usize].is_present();
            if group.iter().any(|&i| slots[i as usize].is_present() != first) {
                return Err(ops_run);
            }
        }
        for &(sub, sup) in self.check_edges.iter() {
            if slots[sub as usize].is_present() && !slots[sup as usize].is_present() {
                return Err(ops_run);
            }
        }
        for op in &self.reg_ops {
            ops_run += 1;
            if !step_op(op, registers, slots, new_regs) {
                return Err(ops_run);
            }
        }
        Ok(ops_run)
    }
}

/// Commits an op result according to its mode; `false` means bail.
#[inline(always)]
fn store(slots: &mut [Flow], m: Mode, dst: u32, f: Flow) -> bool {
    match m {
        Mode::Temp => {
            slots[dst as usize] = f;
            true
        }
        Mode::Guard => match f {
            Flow::Absent | Flow::Present(_) => {
                slots[dst as usize] = f;
                true
            }
            Flow::Unvalued | Flow::Ubiquitous(_) => false,
        },
        Mode::GuardAtClock => match (slots[dst as usize], f) {
            // the pre-decided clock says present: the result must supply
            // the value (a ubiquitous constant adapts to this clock)
            (Flow::Unvalued, Flow::Present(v) | Flow::Ubiquitous(v)) => {
                slots[dst as usize] = Flow::Present(v);
                true
            }
            // the clock says absent: an absent or ubiquitous result agrees
            (Flow::Absent, Flow::Absent | Flow::Ubiquitous(_)) => true,
            // presence disagreement: the interpreter raises the
            // contradiction
            _ => false,
        },
    }
}

/// The delay's flow: the register's value at the body's clock.
#[inline(always)]
fn pre_flow(body: Flow, reg: Value) -> Flow {
    match body {
        Flow::Absent => Flow::Absent,
        Flow::Unvalued | Flow::Present(_) => Flow::Present(reg),
        Flow::Ubiquitous(_) => Flow::Ubiquitous(reg),
    }
}

/// The sampling `body when cond`; `None` bails (non-bool or unvalued
/// condition — a runtime type error for the interpreter to raise).
#[inline(always)]
fn when_flow(b: Flow, c: Flow) -> Option<Flow> {
    Some(match (b, c) {
        (Flow::Absent, _) | (_, Flow::Absent) => Flow::Absent,
        (_, Flow::Present(Value::Bool(false)) | Flow::Ubiquitous(Value::Bool(false))) => {
            Flow::Absent
        }
        (b, Flow::Present(Value::Bool(true))) => match b {
            // a true condition anchors a constant's clock
            Flow::Ubiquitous(v) => Flow::Present(v),
            other => other,
        },
        (b, Flow::Ubiquitous(Value::Bool(true))) => b,
        (_, Flow::Present(_) | Flow::Ubiquitous(_) | Flow::Unvalued) => return None,
    })
}

/// The pointwise unary `op arg`; `None` bails (runtime type error or
/// overflow — for the interpreter to raise).
#[inline(always)]
fn unary_flow(op: Unop, a: Flow) -> Option<Flow> {
    Some(match op {
        Unop::ClockOf => match a {
            Flow::Absent => Flow::Absent,
            Flow::Present(_) | Flow::Unvalued => Flow::Present(Value::TRUE),
            Flow::Ubiquitous(_) => Flow::Ubiquitous(Value::TRUE),
        },
        Unop::Not | Unop::Neg => {
            let apply = |v: Value| match (op, v) {
                (Unop::Not, Value::Bool(b)) => Some(Value::Bool(!b)),
                (Unop::Neg, Value::Int(i)) => i.checked_neg().map(Value::Int),
                _ => None,
            };
            match a {
                Flow::Present(v) => Flow::Present(apply(v)?),
                Flow::Ubiquitous(v) => Flow::Ubiquitous(apply(v)?),
                other => other,
            }
        }
    })
}

/// The synchronous pointwise `left op right`; `None` bails (a
/// present/absent operand mix is a clock mismatch — the interpreter
/// re-run raises the error — and so are runtime type errors).
#[inline(always)]
fn binary_flow(op: Binop, l: Flow, r: Flow) -> Option<Flow> {
    Some(match (l, r) {
        (Flow::Absent, Flow::Absent) => Flow::Absent,
        (Flow::Absent, Flow::Ubiquitous(_)) | (Flow::Ubiquitous(_), Flow::Absent) => Flow::Absent,
        (Flow::Absent, _) | (_, Flow::Absent) => return None,
        (Flow::Unvalued, _) | (_, Flow::Unvalued) => Flow::Unvalued,
        (Flow::Present(a), Flow::Present(b) | Flow::Ubiquitous(b))
        | (Flow::Ubiquitous(a), Flow::Present(b)) => Flow::Present(op.apply(a, b)?),
        (Flow::Ubiquitous(a), Flow::Ubiquitous(b)) => Flow::Ubiquitous(op.apply(a, b)?),
    })
}

/// Executes one op; `false` means bail.
#[inline(always)]
fn step_op(op: &Op, registers: &[Value], slots: &mut [Flow], new_regs: &mut [Value]) -> bool {
    match op {
        Op::EvalClock { fold, members } => {
            let present = slots[fold[0] as usize].is_present();
            if fold.iter().skip(1).any(|&i| slots[i as usize].is_present() != present) {
                return false;
            }
            let d = if present { Flow::Unvalued } else { Flow::Absent };
            for &m in members.iter() {
                slots[m as usize] = d;
            }
            true
        }
        Op::SetClockFrom { dst, src } => match slots[*src as usize] {
            Flow::Present(_) | Flow::Unvalued => {
                slots[*dst as usize] = Flow::Unvalued;
                true
            }
            Flow::Absent => {
                slots[*dst as usize] = Flow::Absent;
                true
            }
            Flow::Ubiquitous(_) => false,
        },
        Op::Mov { m, dst, src } => {
            let f = slots[*src as usize];
            store(slots, *m, *dst, f)
        }
        Op::Pre { m, dst, reg, body } => {
            let f = pre_flow(slots[*body as usize], registers[*reg as usize]);
            store(slots, *m, *dst, f)
        }
        Op::PreWhen { m, dst, reg, body, cond } => {
            let b = pre_flow(slots[*body as usize], registers[*reg as usize]);
            match when_flow(b, slots[*cond as usize]) {
                Some(f) => store(slots, *m, *dst, f),
                None => false,
            }
        }
        Op::When { m, dst, body, cond } => {
            match when_flow(slots[*body as usize], slots[*cond as usize]) {
                Some(f) => store(slots, *m, *dst, f),
                None => false,
            }
        }
        Op::DefaultConstAt { m, dst, left, konst, cond } => {
            // the sampled fallback is evaluated unconditionally, exactly
            // like the unfused pair (a bad condition bails even when the
            // preferred operand wins)
            let w = match when_flow(slots[*konst as usize], slots[*cond as usize]) {
                Some(f) => f,
                None => return false,
            };
            let f = match slots[*left as usize] {
                Flow::Absent => w,
                l => l,
            };
            store(slots, *m, *dst, f)
        }
        Op::DefaultMerge { m, dst, left, right } => {
            let f = match slots[*left as usize] {
                Flow::Absent => slots[*right as usize],
                l => l,
            };
            store(slots, *m, *dst, f)
        }
        Op::Unary { m, dst, op, arg } => match unary_flow(*op, slots[*arg as usize]) {
            Some(f) => store(slots, *m, *dst, f),
            None => false,
        },
        Op::UnaryWhen { m, dst, op, arg, cond } => {
            let Some(b) = unary_flow(*op, slots[*arg as usize]) else { return false };
            match when_flow(b, slots[*cond as usize]) {
                Some(f) => store(slots, *m, *dst, f),
                None => false,
            }
        }
        Op::Binary { m, dst, op, left, right } => {
            match binary_flow(*op, slots[*left as usize], slots[*right as usize]) {
                Some(f) => store(slots, *m, *dst, f),
                None => false,
            }
        }
        Op::BinaryWhen { m, dst, op, left, right, cond } => {
            let Some(b) = binary_flow(*op, slots[*left as usize], slots[*right as usize]) else {
                return false;
            };
            match when_flow(b, slots[*cond as usize]) {
                Some(f) => store(slots, *m, *dst, f),
                None => false,
            }
        }
        Op::RegisterShift { reg, src } => match slots[*src as usize] {
            Flow::Present(v) => {
                new_regs[*reg as usize] = v;
                true
            }
            Flow::Absent | Flow::Ubiquitous(_) => true,
            Flow::Unvalued => false,
        },
        Op::RegisterShiftN { moves } => {
            for &(reg, src) in moves.iter() {
                match slots[src as usize] {
                    Flow::Present(v) => new_regs[reg as usize] = v,
                    Flow::Absent | Flow::Ubiquitous(_) => {}
                    Flow::Unvalued => return false,
                }
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_clock_folds_absence_over_inputs() {
        let op = Op::EvalClock { fold: vec![0, 1].into(), members: vec![2].into() };

        let mut slots = vec![Flow::Present(Value::TRUE), Flow::Present(Value::TRUE), Flow::Absent];
        assert!(step_op(&op, &[], &mut slots, &mut []));
        assert_eq!(slots[2], Flow::Unvalued);

        let mut slots = vec![Flow::Absent, Flow::Absent, Flow::Unvalued];
        assert!(step_op(&op, &[], &mut slots, &mut []));
        assert_eq!(slots[2], Flow::Absent);

        // disagreeing fold inputs: the group cannot be uniform — bail
        let mut slots = vec![Flow::Present(Value::TRUE), Flow::Absent, Flow::Unvalued];
        assert!(!step_op(&op, &[], &mut slots, &mut []));
    }

    #[test]
    fn guarded_stores_bail_on_contradiction_and_stray_ubiquity() {
        // fresh guard: an undecided (unvalued / ubiquitous) result cannot
        // be committed
        let mut slots = vec![Flow::Absent];
        assert!(!store(&mut slots, Mode::Guard, 0, Flow::Unvalued));
        assert!(!store(&mut slots, Mode::Guard, 0, Flow::Ubiquitous(Value::Int(1))));
        assert!(store(&mut slots, Mode::Guard, 0, Flow::Present(Value::Int(1))));
        assert_eq!(slots[0], Flow::Present(Value::Int(1)));

        // clocked guard: presence must agree with the pre-decided clock
        let mut slots = vec![Flow::Absent];
        assert!(!store(&mut slots, Mode::GuardAtClock, 0, Flow::Present(Value::Int(1))));
        let mut slots = vec![Flow::Unvalued];
        assert!(!store(&mut slots, Mode::GuardAtClock, 0, Flow::Absent));
        // a ubiquitous constant adapts to the clock on both sides
        let mut slots = vec![Flow::Unvalued];
        assert!(store(&mut slots, Mode::GuardAtClock, 0, Flow::Ubiquitous(Value::Int(7))));
        assert_eq!(slots[0], Flow::Present(Value::Int(7)));
        let mut slots = vec![Flow::Absent];
        assert!(store(&mut slots, Mode::GuardAtClock, 0, Flow::Ubiquitous(Value::Int(7))));
        assert_eq!(slots[0], Flow::Absent);
    }

    #[test]
    fn register_shift_ignores_ubiquitous_bodies() {
        let mut regs = vec![Value::Int(0)];
        let mut slots = vec![Flow::Ubiquitous(Value::Int(9))];
        assert!(step_op(&Op::RegisterShift { reg: 0, src: 0 }, &[], &mut slots, &mut regs));
        assert_eq!(regs, vec![Value::Int(0)]);
        let mut slots = vec![Flow::Present(Value::Int(9))];
        assert!(step_op(&Op::RegisterShift { reg: 0, src: 0 }, &[], &mut slots, &mut regs));
        assert_eq!(regs, vec![Value::Int(9)]);
    }

    #[test]
    fn execute_seeds_inputs_and_bails_on_scenario_anomalies() {
        // slots: 0 = input a (int), 1 = output x, 2 = const
        let cc = CompiledComponent {
            ops: vec![Op::Mov { m: Mode::Guard, dst: 1, src: 0 }],
            reg_ops: vec![],
            init_slots: vec![Flow::Absent, Flow::Absent, Flow::Ubiquitous(Value::Int(5))].into(),
            input_slots: vec![0].into(),
            input_types: vec![ValueType::Int].into(),
            signal_count: 2,
            check_groups: vec![vec![0, 1].into()].into(),
            check_edges: vec![].into(),
        };
        let mut slots = Vec::new();
        let mut regs = Vec::new();

        let mut env = DenseEnv::new(2);
        env.set(SigId(0), Value::Int(3));
        assert_eq!(cc.execute(&[], &env, &mut slots, &mut regs), Ok(1));
        assert_eq!(slots[1], Flow::Present(Value::Int(3)));

        // ill-typed input: bail before any op runs
        let mut env = DenseEnv::new(2);
        env.set(SigId(0), Value::TRUE);
        assert_eq!(cc.execute(&[], &env, &mut slots, &mut regs), Err(0));

        // a driven non-input: bail (the interpreter raises NotAnInput)
        let mut env = DenseEnv::new(2);
        env.set(SigId(1), Value::Int(3));
        assert_eq!(cc.execute(&[], &env, &mut slots, &mut regs), Err(0));

        // silent instant: x := a is absent, group uniform
        let env = DenseEnv::new(2);
        assert_eq!(cc.execute(&[], &env, &mut slots, &mut regs), Ok(1));
        assert_eq!(slots[1], Flow::Absent);
    }
}
