//! Per-reaction signal statuses and expression evaluation results.

use std::fmt;

use polysig_tagged::Value;

/// The status of a signal within one reaction of the constructive fixpoint.
///
/// The lattice is `Unknown < {Absent, PresentUnvalued < Present(v)}`:
/// statuses only ever gain information during a reaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Status {
    /// Not yet determined.
    #[default]
    Unknown,
    /// The signal does not tick in this reaction.
    Absent,
    /// The signal ticks, value not yet computed (presence forced by a clock
    /// constraint).
    PresentUnvalued,
    /// The signal ticks with this value.
    Present(Value),
}

impl Status {
    /// `true` iff presence/absence has been decided.
    pub fn is_decided(self) -> bool {
        !matches!(self, Status::Unknown)
    }

    /// `true` iff the signal is known to tick.
    pub fn is_present(self) -> bool {
        matches!(self, Status::Present(_) | Status::PresentUnvalued)
    }

    /// The value, if fully determined.
    pub fn value(self) -> Option<Value> {
        match self {
            Status::Present(v) => Some(v),
            _ => None,
        }
    }

    /// Joins new information into the status.
    ///
    /// Returns `Ok(true)` if the status gained information, `Ok(false)` if
    /// nothing changed, and `Err(())` on a contradiction (present vs absent,
    /// or two different values).
    #[allow(clippy::result_unit_err)]
    pub fn join(&mut self, other: Status) -> Result<bool, ()> {
        use Status::*;
        let merged = match (*self, other) {
            (a, Unknown) => a,
            (Unknown, b) => b,
            (Absent, Absent) => Absent,
            (Absent, _) | (_, Absent) => return Err(()),
            (PresentUnvalued, PresentUnvalued) => PresentUnvalued,
            (PresentUnvalued, Present(v)) | (Present(v), PresentUnvalued) => Present(v),
            (Present(a), Present(b)) => {
                if a == b {
                    Present(a)
                } else {
                    return Err(());
                }
            }
        };
        let changed = merged != *self;
        *self = merged;
        Ok(changed)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::Unknown => write!(f, "?"),
            Status::Absent => write!(f, "⊥"),
            Status::PresentUnvalued => write!(f, "!?"),
            Status::Present(v) => write!(f, "{v}"),
        }
    }
}

/// The result of evaluating an expression under the current statuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalResult {
    /// Not yet determined.
    Unknown,
    /// The expression does not produce an event this reaction.
    Absent,
    /// The expression produces this value.
    Present(Value),
    /// A constant (or derived constant): present *whenever the context
    /// demands*, with this value. Anchored to a concrete clock by `when`,
    /// by a synchronous operator with a concrete operand, or by the
    /// left-hand side's presence.
    Ubiquitous(Value),
}

impl EvalResult {
    /// Converts a signal status to an evaluation result.
    pub fn from_status(s: Status) -> EvalResult {
        match s {
            Status::Unknown | Status::PresentUnvalued => EvalResult::Unknown,
            Status::Absent => EvalResult::Absent,
            Status::Present(v) => EvalResult::Present(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_gains_information_monotonically() {
        let mut s = Status::Unknown;
        assert_eq!(s.join(Status::PresentUnvalued), Ok(true));
        assert_eq!(s.join(Status::PresentUnvalued), Ok(false));
        assert_eq!(s.join(Status::Present(Value::Int(3))), Ok(true));
        assert_eq!(s, Status::Present(Value::Int(3)));
        assert_eq!(s.join(Status::Unknown), Ok(false));
    }

    #[test]
    fn join_detects_contradictions() {
        let mut s = Status::Present(Value::Int(1));
        assert!(s.join(Status::Present(Value::Int(2))).is_err());
        assert!(s.join(Status::Absent).is_err());
        let mut a = Status::Absent;
        assert!(a.join(Status::PresentUnvalued).is_err());
    }

    #[test]
    fn predicates() {
        assert!(!Status::Unknown.is_decided());
        assert!(Status::Absent.is_decided());
        assert!(Status::PresentUnvalued.is_present());
        assert_eq!(Status::Present(Value::TRUE).value(), Some(Value::TRUE));
        assert_eq!(Status::PresentUnvalued.value(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Status::Unknown.to_string(), "?");
        assert_eq!(Status::Absent.to_string(), "⊥");
        assert_eq!(Status::Present(Value::Int(2)).to_string(), "2");
    }

    #[test]
    fn from_status_conversion() {
        assert_eq!(EvalResult::from_status(Status::Absent), EvalResult::Absent);
        assert_eq!(
            EvalResult::from_status(Status::Present(Value::TRUE)),
            EvalResult::Present(Value::TRUE)
        );
        assert_eq!(EvalResult::from_status(Status::PresentUnvalued), EvalResult::Unknown);
    }
}
