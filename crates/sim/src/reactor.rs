//! The constructive reaction engine.
//!
//! A [`Reactor`] elaborates a program into interned signal ids ([`SigId`]),
//! compiled equations, `pre` registers and clock-propagation groups, then
//! executes it one reaction at a time: statuses start [`Status::Unknown`]
//! and the operators' firing rules plus clock constraints are applied until
//! a fixpoint. See the crate docs for the semantic conventions.
//!
//! Two entry points run a reaction:
//!
//! * [`Reactor::react_dense`] — the hot path. Inputs and outputs are
//!   [`DenseEnv`]s addressed by the reactor's own [`SigId`]s; a steady-state
//!   reaction allocates nothing (status, update and output buffers are
//!   reused across calls, names are only materialized on error paths).
//! * [`Reactor::react`] — a compatibility wrapper for name-keyed callers:
//!   it converts a `BTreeMap<SigName, Value>` through the interner, runs
//!   [`Reactor::react_dense`], and renders the result back to names.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use polysig_lang::clock::analyze_component;
use polysig_lang::{Binop, Component, Program, Statement, Unop};
use polysig_tagged::{Interner, SigId, SigName, Value, ValueType};

use crate::compile::{lower, LowerInput};
use crate::env::DenseEnv;
use crate::error::SimError;
use crate::ir::{compile, CExpr};
use crate::schedule::{CompiledComponent, Flow};
use crate::status::Status;

/// Result of evaluating an expression, extended with "present but value not
/// yet known" (needed to close feedback loops through `pre`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Unknown,
    Absent,
    PresentUnvalued,
    Present(Value),
    Ubiquitous(Value),
}

impl Ev {
    fn of_status(s: Status) -> Ev {
        match s {
            Status::Unknown => Ev::Unknown,
            Status::Absent => Ev::Absent,
            Status::PresentUnvalued => Ev::PresentUnvalued,
            Status::Present(v) => Ev::Present(v),
        }
    }
}

/// Reusable per-reaction buffers; taken out of the reactor for the duration
/// of a reaction so the fixpoint can borrow `self` freely.
#[derive(Debug, Clone, Default)]
struct Scratch {
    status: Vec<Status>,
    updates: Vec<(usize, Value)>,
    /// Next-reaction register file for the compiled executor (swapped in
    /// on success, discarded on a bail).
    new_regs: Vec<Value>,
    /// `eq_done[i]` = equation `i`'s result is final for this reaction;
    /// later fixpoint passes skip it.
    eq_done: Vec<bool>,
    /// Slot array for the compiled executor (sized and re-seeded by
    /// `CompiledComponent::execute`; persists across reactions).
    slots: Vec<Flow>,
}

/// How a reaction executes: through the lowered static schedule, or through
/// the constructive fixpoint interpreter. Chosen once at build time.
#[derive(Debug, Clone)]
enum ExecPlan {
    /// Straight-line guarded bytecode with zero fixpoint passes; any
    /// runtime anomaly bails to the interpreter for this one reaction.
    Compiled(Arc<CompiledComponent>),
    /// The constructive fixpoint.
    Interpreted,
}

/// Build-time choice of execution plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CompileMode {
    /// Compile when a static schedule exists, unless `POLYSIG_COMPILE`
    /// turns compilation off.
    Auto,
    /// Never compile (forced interpretation).
    Never,
    /// Compile when a static schedule exists, ignoring the environment
    /// override.
    Always,
}

/// `true` unless the `POLYSIG_COMPILE` environment variable disables
/// compilation (read per [`Reactor`] build, so tests and CI can toggle it).
fn compile_enabled() -> bool {
    compile_enabled_from(std::env::var("POLYSIG_COMPILE").ok().as_deref())
}

/// Pure core of the `POLYSIG_COMPILE` switch: `off`, `0` and `false`
/// disable compilation; anything else — including unset — enables it.
fn compile_enabled_from(value: Option<&str>) -> bool {
    !matches!(value, Some("off" | "0" | "false"))
}

/// A captured execution state of a [`Reactor`]: the `pre` register file
/// plus the step counter. See [`Reactor::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReactorState {
    registers: Box<[Value]>,
    step: usize,
}

impl ReactorState {
    /// Builds a state from raw parts — for callers that assemble a state
    /// from pieces of other snapshots (e.g. the estimation loop's
    /// warm-start transplant, which splices per-component register spans
    /// across reactors with different layouts).
    pub fn new(registers: impl Into<Box<[Value]>>, step: usize) -> ReactorState {
        ReactorState { registers: registers.into(), step }
    }

    /// The captured `pre` register file.
    pub fn registers(&self) -> &[Value] {
        &self.registers
    }

    /// The captured step counter.
    pub fn step(&self) -> usize {
        self.step
    }
}

/// An elaborated, executable program.
#[derive(Debug, Clone)]
pub struct Reactor {
    /// `SigName ↔ SigId` table; ids are dense indices in declaration order.
    interner: Interner,
    types: Vec<ValueType>,
    /// The program's external inputs, in id order.
    input_ids: Vec<SigId>,
    /// `is_input[id] == true` iff the signal is an external input.
    is_input: Vec<bool>,
    equations: Vec<(usize, CExpr)>,
    /// `eq_has_pre[i]` = equation `i` owns at least one `pre` register (the
    /// register-update walk skips the others).
    eq_has_pre: Vec<bool>,
    /// Per source component, the contiguous register span `(name, start,
    /// len)` its `pre`s occupy — registers are allocated in component ×
    /// statement order, so a component's state is one slice of the file.
    register_spans: Vec<(String, usize, usize)>,
    /// Clock-equality groups (from sync constraints and the clock calculus).
    groups: Vec<Vec<usize>>,
    /// Indices into `groups` with ≥ 2 members — the only ones whose sweep
    /// can ever decide a signal.
    prop_groups: Vec<usize>,
    /// `(sub, sup)` group pairs: sub's clock ⊆ sup's clock.
    subset_edges: BTreeSet<(usize, usize)>,
    /// Build-time execution plan: a lowered static schedule when the clock
    /// analysis yields a total order, the interpreter otherwise.
    plan: ExecPlan,
    registers: Vec<Value>,
    initial_registers: Vec<Value>,
    step: usize,
    /// Cumulative fixpoint passes across reactions (scheduling statistics).
    passes: usize,
    /// Cumulative equation evaluations across reactions — `evals / passes`
    /// shows how much of each pass the decided-equation skip saves.
    evals: usize,
    scratch: Scratch,
    /// Last reaction's outputs (the buffer `react_dense` hands back).
    out_env: DenseEnv,
    /// Input-conversion buffer for the name-keyed `react` wrapper.
    in_env: DenseEnv,
}

impl Reactor {
    /// Elaborates a single component.
    ///
    /// # Errors
    ///
    /// Returns resolution or type errors from the language passes.
    pub fn for_component(c: &Component) -> Result<Reactor, SimError> {
        Reactor::for_program(&Program::single(c.clone()))
    }

    /// Elaborates a program (all components merged into one synchronous
    /// reaction system; shared names connect them).
    ///
    /// # Errors
    ///
    /// Returns resolution or type errors from the language passes.
    pub fn for_program(p: &Program) -> Result<Reactor, SimError> {
        Reactor::build(p, true, CompileMode::Auto)
    }

    /// Like [`Reactor::for_program`] but always interprets, even when a
    /// static schedule exists — the reference side of the
    /// compiled/interpreted differential oracles, and the behavior every
    /// reactor gets under `POLYSIG_COMPILE=off`.
    ///
    /// # Errors
    ///
    /// Returns resolution or type errors from the language passes.
    pub fn for_program_interpreted(p: &Program) -> Result<Reactor, SimError> {
        Reactor::build(p, true, CompileMode::Never)
    }

    /// Like [`Reactor::for_program`] but attempts to lower a static
    /// schedule regardless of the `POLYSIG_COMPILE` override; when no
    /// schedule exists the reactor silently falls back to the interpreter
    /// (check [`Reactor::is_compiled`]).
    ///
    /// # Errors
    ///
    /// Returns resolution or type errors from the language passes.
    pub fn for_program_compiled(p: &Program) -> Result<Reactor, SimError> {
        Reactor::build(p, true, CompileMode::Always)
    }

    /// Like [`Reactor::for_program`] but *without* the static equation
    /// scheduling — the naive fixpoint evaluates equations in declaration
    /// order and needs more passes to converge. Exists for the
    /// `sim_scheduling` ablation; behavior is identical. Never compiled
    /// (the lowering requires the schedule).
    pub fn for_program_unscheduled(p: &Program) -> Result<Reactor, SimError> {
        Reactor::build(p, false, CompileMode::Never)
    }

    fn build(p: &Program, schedule: bool, mode: CompileMode) -> Result<Reactor, SimError> {
        let disambiguated = disambiguate_locals(p);
        let p: &Program = &disambiguated;
        polysig_lang::resolve::resolve_program(p)?;
        polysig_lang::types::check_program(p)?;

        // intern all declared names; ids are dense indices in declaration
        // order, so a SigId doubles as a slot-vector index everywhere below
        let mut interner = Interner::new();
        let mut types: Vec<ValueType> = Vec::new();
        for c in &p.components {
            for d in &c.decls {
                let before = interner.len();
                let id = interner.intern(&d.name);
                if id.index() == before {
                    types.push(d.ty);
                }
            }
        }

        let mut input_ids: Vec<SigId> = p
            .external_inputs()
            .iter()
            .map(|n| interner.lookup(n).expect("external input is declared"))
            .collect();
        input_ids.sort_unstable();
        input_ids.dedup();
        let mut is_input = vec![false; interner.len()];
        for &id in &input_ids {
            is_input[id.index()] = true;
        }

        let idx = |n: &SigName| interner.lookup(n).expect("resolved name is declared").index();

        // compile equations, allocating registers; record each component's
        // contiguous register span for cross-layout state transplants
        let mut registers: Vec<Value> = Vec::new();
        let mut equations: Vec<(usize, CExpr)> = Vec::new();
        let mut register_spans: Vec<(String, usize, usize)> = Vec::new();
        for c in &p.components {
            let span_start = registers.len();
            for stmt in &c.stmts {
                if let Statement::Eq(eq) = stmt {
                    let rhs = compile(&eq.rhs, &|n| idx(n), &mut registers);
                    equations.push((idx(&eq.lhs), rhs));
                }
            }
            register_spans.push((c.name.clone(), span_start, registers.len() - span_start));
        }

        // clock groups: union-find over indices, seeded by each component's
        // clock analysis (which already folds in sync constraints)
        let mut parent: Vec<usize> = (0..interner.len()).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let r = find(parent, parent[i]);
                parent[i] = r;
            }
            parent[i]
        }
        let union = |parent: &mut Vec<usize>, a: usize, b: usize| {
            let ra = find(parent, a);
            let rb = find(parent, b);
            if ra != rb {
                parent[ra] = rb;
            }
        };
        let mut sig_subset: BTreeSet<(usize, usize)> = BTreeSet::new();
        for c in &p.components {
            let analysis = analyze_component(c);
            for class in &analysis.classes {
                for w in class.members.windows(2) {
                    union(&mut parent, idx(&w[0]), idx(&w[1]));
                }
            }
            for (sub, sup) in analysis.edges() {
                let sm = &analysis.classes[sub].members;
                let pm = &analysis.classes[sup].members;
                if let (Some(a), Some(b)) = (sm.first(), pm.first()) {
                    sig_subset.insert((idx(a), idx(b)));
                }
            }
        }

        // groups from union-find roots
        let mut root_to_group: BTreeMap<usize, usize> = BTreeMap::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut group_of = vec![0usize; interner.len()];
        for (i, slot) in group_of.iter_mut().enumerate() {
            let r = find(&mut parent, i);
            let g = *root_to_group.entry(r).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[g].push(i);
            *slot = g;
        }
        let subset_edges: BTreeSet<(usize, usize)> = sig_subset
            .into_iter()
            .map(|(a, b)| (group_of[a], group_of[b]))
            .filter(|(a, b)| a != b)
            .collect();
        // a singleton group can never propagate anything — joining a signal
        // with itself is a no-op — so the per-pass sweep only visits groups
        // with at least two members
        let prop_groups: Vec<usize> =
            groups.iter().enumerate().filter(|(_, g)| g.len() > 1).map(|(i, _)| i).collect();

        // statically schedule the equations: evaluating each signal after
        // its instantaneous dependencies lets most reactions converge in a
        // single fixpoint pass (the classic Signal compilation step; the
        // `sim_scheduling` ablation bench measures the win)
        let (equations, acyclic) =
            if schedule { schedule_equations(equations, p, &interner) } else { (equations, false) };
        let eq_has_pre: Vec<bool> = equations.iter().map(|(_, rhs)| rhs.has_pre()).collect();

        // lower a static schedule when the clock analysis plus the acyclic
        // equation order admit one; failure is never an error — the
        // interpreter remains the (equivalent) fallback
        let want_compile = match mode {
            CompileMode::Never => false,
            CompileMode::Always => true,
            CompileMode::Auto => compile_enabled(),
        };
        let plan = if want_compile && acyclic {
            match lower(&LowerInput {
                signal_count: interner.len(),
                is_input: &is_input,
                types: &types,
                equations: &equations,
                groups: &groups,
                subset_edges: &subset_edges,
            }) {
                Some(cc) => ExecPlan::Compiled(Arc::new(cc)),
                None => ExecPlan::Interpreted,
            }
        } else {
            ExecPlan::Interpreted
        };

        let n = interner.len();
        Ok(Reactor {
            interner,
            types,
            input_ids,
            is_input,
            equations,
            eq_has_pre,
            register_spans,
            groups,
            prop_groups,
            subset_edges,
            plan,
            initial_registers: registers.clone(),
            registers,
            step: 0,
            passes: 0,
            evals: 0,
            scratch: Scratch::default(),
            out_env: DenseEnv::new(n),
            in_env: DenseEnv::new(n),
        })
    }

    /// Cumulative number of fixpoint passes executed since the last reset —
    /// `passes / steps_taken` is the average convergence cost per reaction.
    /// A reaction executed by the compiled static schedule counts as
    /// exactly one pass (it runs linearly, with no fixpoint); a compiled
    /// attempt that bails contributes only the interpreter re-run's passes.
    pub fn passes(&self) -> usize {
        self.passes
    }

    /// Cumulative work counter since the last reset. Under interpretation
    /// this counts equation right-hand-side evaluations (decided equations
    /// are skipped, so it undershoots `passes * equation_count`); under the
    /// compiled plan it counts **bytecode ops executed** instead — a
    /// deliberate unit change, since ops are the compiled path's unit of
    /// work. A bailed compiled attempt contributes both its ops and the
    /// interpreter re-run's evaluations.
    pub fn evals(&self) -> usize {
        self.evals
    }

    /// `true` when reactions dispatch through a compiled static schedule
    /// (individual reactions may still bail to the interpreter; results
    /// are identical either way).
    pub fn is_compiled(&self) -> bool {
        matches!(self.plan, ExecPlan::Compiled(_))
    }

    /// Total op count of the compiled static schedule, when one exists —
    /// the `polysig-lint` schedule-existence note reports this.
    pub fn compiled_op_count(&self) -> Option<usize> {
        match &self.plan {
            ExecPlan::Compiled(cc) => Some(cc.op_count()),
            ExecPlan::Interpreted => None,
        }
    }

    /// The lowered static schedule, when this reactor executes one. The
    /// symbolic checker transcribes it into a transition relation — the
    /// schedule *is* the program's exact per-reaction semantics (bails
    /// included), so encoding it symbolically needs no second lowering.
    pub fn compiled_schedule(&self) -> Option<&CompiledComponent> {
        match &self.plan {
            ExecPlan::Compiled(cc) => Some(cc),
            ExecPlan::Interpreted => None,
        }
    }

    /// The signal-name table; ids are dense indices in declaration order.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The id of a declared signal name, if any.
    pub fn sig_id(&self, name: impl AsRef<str>) -> Option<SigId> {
        self.interner.lookup(name)
    }

    /// Number of declared signals (the slot count of every [`DenseEnv`]
    /// this reactor consumes or produces).
    pub fn signal_count(&self) -> usize {
        self.interner.len()
    }

    /// The program's external input ids, in id order.
    pub fn input_ids(&self) -> &[SigId] {
        &self.input_ids
    }

    /// The program's external input names.
    pub fn input_names(&self) -> Vec<SigName> {
        self.input_ids.iter().map(|&id| self.interner.name(id).clone()).collect()
    }

    /// All signal names, in id order.
    pub fn signal_names(&self) -> &[SigName] {
        self.interner.names()
    }

    /// Number of `pre` registers.
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// Current values of the `pre` registers (the program state).
    pub fn registers(&self) -> &[Value] {
        &self.registers
    }

    /// Per source component, the contiguous `(name, start, len)` register
    /// span its `pre`s occupy. Registers are allocated in component ×
    /// statement order, so two reactors that share a component (by name and
    /// definition) can splice each other's state span-by-span — the
    /// estimation loop's warm start relies on this.
    pub fn register_spans(&self) -> &[(String, usize, usize)] {
        &self.register_spans
    }

    /// Initial values of the `pre` registers.
    pub fn initial_registers(&self) -> &[Value] {
        &self.initial_registers
    }

    /// Overwrites the program state (used by the model checker to explore
    /// arbitrary states).
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from [`Reactor::register_count`].
    pub fn set_registers(&mut self, regs: &[Value]) {
        assert_eq!(regs.len(), self.registers.len(), "register file size mismatch");
        self.registers.copy_from_slice(regs);
    }

    /// Resets state and step counter.
    pub fn reset(&mut self) {
        self.registers.copy_from_slice(&self.initial_registers);
        self.step = 0;
        self.passes = 0;
        self.evals = 0;
    }

    /// Captures the mutable execution state — registers and step counter —
    /// without copying the (immutable, shareable) compiled program. Much
    /// cheaper than cloning the whole reactor; the explicit-state checkers
    /// use it to park and revisit exploration states.
    pub fn snapshot(&self) -> ReactorState {
        ReactorState { registers: self.registers.clone().into_boxed_slice(), step: self.step }
    }

    /// Restores a state captured by [`Reactor::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot came from a reactor with a different register
    /// file size.
    pub fn restore(&mut self, state: &ReactorState) {
        self.set_registers(&state.registers);
        self.step = state.step;
    }

    /// Number of reactions executed since the last reset.
    pub fn steps_taken(&self) -> usize {
        self.step
    }

    /// Executes one reaction on dense environments — the hot path.
    ///
    /// `inputs` is addressed by this reactor's [`SigId`]s: a present slot
    /// supplies an external input for this instant, an empty slot means the
    /// input is absent (slots beyond [`Reactor::signal_count`] are ignored).
    /// Returns the borrowed output environment: every signal present in the
    /// reaction, with its value. The buffer is reused by the next reaction,
    /// so copy out anything that must survive.
    ///
    /// A steady-state call performs no heap allocation; signal names are
    /// only materialized when constructing an error.
    ///
    /// When a static schedule was lowered at build time (see
    /// [`Reactor::is_compiled`]) the reaction executes it linearly with no
    /// fixpoint passes, bailing to the interpreter on any anomaly —
    /// outputs, registers and error strings are bit-identical either way.
    ///
    /// # Errors
    ///
    /// See [`SimError`]: non-input driven, type mismatch, undetermined
    /// clocks, contradictions.
    pub fn react_dense(&mut self, inputs: &DenseEnv) -> Result<&DenseEnv, SimError> {
        // Compiled fast path, straight off the fields (no scratch
        // juggling): `Ok` is definitive and commits below; `Err` means the
        // executor bailed — nothing was committed, and the interpreter
        // re-runs from the identical pre-reaction state. Bailed ops still
        // count toward `evals` (the re-run adds its own).
        if let ExecPlan::Compiled(cc) = &self.plan {
            let run = cc.execute(
                &self.registers,
                inputs,
                &mut self.scratch.slots,
                &mut self.scratch.new_regs,
            );
            match run {
                Ok(ops_run) => {
                    self.evals += ops_run;
                    self.passes += 1;
                    std::mem::swap(&mut self.registers, &mut self.scratch.new_regs);
                    self.step += 1;
                    let n = self.interner.len();
                    self.out_env.reset(n);
                    for (i, f) in self.scratch.slots[..n].iter().enumerate() {
                        if let Flow::Present(v) = f {
                            self.out_env.set(SigId(i as u32), *v);
                        }
                    }
                    return Ok(&self.out_env);
                }
                Err(ops_run) => self.evals += ops_run,
            }
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = self.react_interpreted(inputs, &mut scratch);
        self.scratch = scratch;
        result.map(|()| &self.out_env)
    }

    /// Executes one reaction on name-keyed maps — the compatibility
    /// boundary over [`Reactor::react_dense`].
    ///
    /// `inputs` maps *external input* names to values for inputs present
    /// this instant; inputs not mentioned are absent. Returns the signals
    /// present in the reaction with their values, in declaration (id)
    /// order.
    ///
    /// # Errors
    ///
    /// See [`SimError`]: non-input driven, type mismatch, undetermined
    /// clocks, contradictions.
    pub fn react(
        &mut self,
        inputs: &BTreeMap<SigName, Value>,
    ) -> Result<Vec<(SigName, Value)>, SimError> {
        let mut env = std::mem::take(&mut self.in_env);
        env.reset(self.interner.len());
        let mut unknown: Option<SigName> = None;
        for (name, value) in inputs {
            match self.interner.lookup(name) {
                Some(id) => env.set(id, *value),
                None => {
                    unknown = Some(name.clone());
                    break;
                }
            }
        }
        let result = match unknown {
            Some(name) => Err(SimError::NotAnInput { name }),
            None => self.react_dense(&env).map(|_| ()),
        };
        self.in_env = env;
        result?;
        Ok(self.out_env.iter().map(|(id, v)| (self.interner.name(id).clone(), v)).collect())
    }

    /// Seeds the interpreter's per-reaction statuses: present slots drive
    /// inputs, every other input is absent this instant. The compiled
    /// executor seeds its own slots and *bails* on the anomalies this
    /// method turns into errors, so the errors below are raised by exactly
    /// one path either way.
    fn seed_inputs(&self, inputs: &DenseEnv, status: &mut Vec<Status>) -> Result<(), SimError> {
        let n = self.interner.len();
        status.clear();
        status.resize(n, Status::Unknown);
        for (i, slot) in status.iter_mut().enumerate() {
            match inputs.get(SigId(i as u32)) {
                Some(value) => {
                    if !self.is_input[i] {
                        return Err(SimError::NotAnInput { name: self.sig_name(i) });
                    }
                    if value.ty() != self.types[i] {
                        return Err(SimError::InputType {
                            name: self.sig_name(i),
                            expected: self.types[i],
                            found: value.ty(),
                        });
                    }
                    *slot = Status::Present(value);
                }
                None => {
                    if self.is_input[i] {
                        *slot = Status::Absent;
                    }
                }
            }
        }
        Ok(())
    }

    /// The constructive fixpoint; `scratch` is taken out of `self` so the
    /// loop below can borrow `self` immutably while mutating statuses.
    fn react_interpreted(
        &mut self,
        inputs: &DenseEnv,
        scratch: &mut Scratch,
    ) -> Result<(), SimError> {
        let step = self.step;
        let n = self.interner.len();
        self.seed_inputs(inputs, &mut scratch.status)?;
        let status = &mut scratch.status;

        // seed clock propagation: with the inputs decided, the sync groups
        // (and subset edges) already fix the presence of most derived
        // signals — deciding them *before* the first equation sweep lets
        // that sweep produce values instead of Unknowns, typically saving a
        // whole fixpoint pass per reaction
        self.propagate_clocks(status, step)?;

        // constructive fixpoint
        let eq_done = &mut scratch.eq_done;
        eq_done.clear();
        eq_done.resize(self.equations.len(), false);
        loop {
            self.passes += 1;
            let mut changed = false;
            let mut all_done = true;
            for (ei, (lhs, rhs)) in self.equations.iter().enumerate() {
                if eq_done[ei] {
                    continue;
                }
                self.evals += 1;
                let result = self.eval(rhs, status, *lhs, step)?;
                let joined = match result {
                    Ev::Unknown => Status::Unknown,
                    Ev::Absent => Status::Absent,
                    Ev::PresentUnvalued => Status::PresentUnvalued,
                    Ev::Present(v) => Status::Present(v),
                    Ev::Ubiquitous(v) => {
                        // constants adapt to the defined signal's clock
                        match status[*lhs] {
                            Status::Present(_) | Status::PresentUnvalued => Status::Present(v),
                            _ => Status::Unknown,
                        }
                    }
                };
                changed |= join_status(status, *lhs, joined, step, &self.interner)?;
                // statuses only move up the lattice and registers are fixed
                // within a reaction, so evaluation is monotone: a decided
                // result (or a ubiquitous one joined against a decided lhs)
                // can never change — later passes skip the equation
                eq_done[ei] = match result {
                    Ev::Present(_) | Ev::Absent => true,
                    Ev::Ubiquitous(_) => {
                        matches!(status[*lhs], Status::Present(_) | Status::Absent)
                    }
                    Ev::Unknown | Ev::PresentUnvalued => false,
                };
                all_done &= eq_done[ei];
            }
            // every equation is final and every status is fully decided:
            // statuses only move up the lattice, so neither another sweep
            // nor clock propagation has anything left to do — skip the
            // confirming pass entirely
            if all_done && status.iter().all(|s| matches!(s, Status::Absent | Status::Present(_))) {
                break;
            }
            changed |= self.propagate_clocks(status, step)?;
            if !changed {
                break;
            }
        }

        // everything must be decided and valued
        if status.iter().any(|s| matches!(s, Status::Unknown | Status::PresentUnvalued)) {
            let signals: Vec<SigName> = status
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, Status::Unknown | Status::PresentUnvalued))
                .map(|(i, _)| self.sig_name(i))
                .collect();
            return Err(SimError::UndeterminedClock { step, signals });
        }

        // advance registers: a `pre` advances when its body is present
        let updates = &mut scratch.updates;
        updates.clear();
        for (ei, (lhs, rhs)) in self.equations.iter().enumerate() {
            if !self.eq_has_pre[ei] {
                continue;
            }
            self.collect_register_updates(rhs, status, *lhs, step, updates)?;
        }
        for &(reg, v) in updates.iter() {
            self.registers[reg] = v;
        }
        self.step += 1;

        self.out_env.reset(n);
        for (i, s) in status.iter().enumerate() {
            if let Some(v) = s.value() {
                self.out_env.set(SigId(i as u32), v);
            }
        }
        Ok(())
    }

    /// One sweep of clock-group and subset-edge propagation over the
    /// statuses; returns whether anything changed. Only `Unknown` slots are
    /// ever joined, so a sweep can never contradict a decided signal.
    fn propagate_clocks(&self, status: &mut [Status], step: usize) -> Result<bool, SimError> {
        let mut changed = false;
        // clock-group propagation: presence/absence is shared
        for group in self.prop_groups.iter().map(|&g| &self.groups[g]) {
            let mut decided: Option<Status> = None;
            for &i in group {
                match status[i] {
                    Status::Absent => decided = Some(Status::Absent),
                    Status::Present(_) | Status::PresentUnvalued => {
                        if decided != Some(Status::Absent) {
                            decided = Some(Status::PresentUnvalued);
                        }
                    }
                    Status::Unknown => {}
                }
            }
            if let Some(d) = decided {
                for &i in group {
                    if status[i] == Status::Unknown {
                        changed |= join_status(status, i, d, step, &self.interner)?;
                    }
                }
            }
        }
        // subset edges: sub present ⇒ sup present; sup absent ⇒ sub absent
        for &(sub, sup) in &self.subset_edges {
            let sub_present = self.groups[sub].iter().any(|&i| status[i].is_present());
            let sup_absent = self.groups[sup].iter().any(|&i| status[i] == Status::Absent);
            if sub_present {
                for &i in &self.groups[sup] {
                    if status[i] == Status::Unknown {
                        changed |=
                            join_status(status, i, Status::PresentUnvalued, step, &self.interner)?;
                    }
                }
            }
            if sup_absent {
                for &i in &self.groups[sub] {
                    if status[i] == Status::Unknown {
                        changed |= join_status(status, i, Status::Absent, step, &self.interner)?;
                    }
                }
            }
        }
        Ok(changed)
    }

    /// Materializes a signal's name for an error; never on the happy path.
    #[cold]
    fn sig_name(&self, signal: usize) -> SigName {
        self.interner.names()[signal].clone()
    }

    /// Evaluates a compiled expression under the current statuses.
    fn eval(
        &self,
        e: &CExpr,
        status: &[Status],
        signal: usize,
        step: usize,
    ) -> Result<Ev, SimError> {
        Ok(match e {
            CExpr::Var(i) => Ev::of_status(status[*i]),
            CExpr::Const(v) => Ev::Ubiquitous(*v),
            CExpr::Pre { reg, body } => match self.eval(body, status, signal, step)? {
                Ev::Unknown => Ev::Unknown,
                Ev::Absent => Ev::Absent,
                Ev::PresentUnvalued | Ev::Present(_) => Ev::Present(self.registers[*reg]),
                Ev::Ubiquitous(_) => Ev::Ubiquitous(self.registers[*reg]),
            },
            CExpr::When { body, cond } => {
                let b = self.eval(body, status, signal, step)?;
                let c = self.eval(cond, status, signal, step)?;
                match (b, c) {
                    (Ev::Absent, _) => Ev::Absent,
                    (_, Ev::Absent) => Ev::Absent,
                    (_, Ev::Present(Value::Bool(false))) => Ev::Absent,
                    (_, Ev::Ubiquitous(Value::Bool(false))) => Ev::Absent,
                    (b, Ev::Present(Value::Bool(true))) => match b {
                        // a true condition anchors a constant's clock
                        Ev::Ubiquitous(v) => Ev::Present(v),
                        other => other,
                    },
                    (b, Ev::Ubiquitous(Value::Bool(true))) => b,
                    (_, Ev::Present(_)) | (_, Ev::Ubiquitous(_)) => {
                        return Err(SimError::ValueType { step, signal: self.sig_name(signal) })
                    }
                    (_, Ev::Unknown | Ev::PresentUnvalued) => Ev::Unknown,
                }
            }
            CExpr::Default { left, right } => {
                let l = self.eval(left, status, signal, step)?;
                match l {
                    Ev::Present(v) => Ev::Present(v),
                    Ev::Ubiquitous(v) => Ev::Ubiquitous(v),
                    Ev::PresentUnvalued => Ev::PresentUnvalued,
                    Ev::Absent => self.eval(right, status, signal, step)?,
                    Ev::Unknown => {
                        // presence is monotone: if the fallback is already
                        // known present, the merge is present (value TBD)
                        match self.eval(right, status, signal, step)? {
                            Ev::Present(_) | Ev::PresentUnvalued => Ev::PresentUnvalued,
                            _ => Ev::Unknown,
                        }
                    }
                }
            }
            CExpr::Unary { op, arg } => {
                let a = self.eval(arg, status, signal, step)?;
                match op {
                    Unop::ClockOf => match a {
                        Ev::Absent => Ev::Absent,
                        Ev::Present(_) | Ev::PresentUnvalued => Ev::Present(Value::TRUE),
                        Ev::Ubiquitous(_) => Ev::Ubiquitous(Value::TRUE),
                        Ev::Unknown => Ev::Unknown,
                    },
                    Unop::Not | Unop::Neg => {
                        let f = |v: Value| -> Result<Value, SimError> {
                            match (op, v) {
                                (Unop::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                                (Unop::Neg, Value::Int(i)) => Ok(Value::Int(-i)),
                                _ => {
                                    Err(SimError::ValueType { step, signal: self.sig_name(signal) })
                                }
                            }
                        };
                        match a {
                            Ev::Present(v) => Ev::Present(f(v)?),
                            Ev::Ubiquitous(v) => Ev::Ubiquitous(f(v)?),
                            other => other,
                        }
                    }
                }
            }
            CExpr::Binary { op, left, right } => {
                let l = self.eval(left, status, signal, step)?;
                let r = self.eval(right, status, signal, step)?;
                self.eval_binary(*op, l, r, signal, step)?
            }
        })
    }

    fn eval_binary(
        &self,
        op: Binop,
        l: Ev,
        r: Ev,
        signal: usize,
        step: usize,
    ) -> Result<Ev, SimError> {
        use Ev::*;
        Ok(match (l, r) {
            (Absent, Absent) => Absent,
            (Absent, Ubiquitous(_)) | (Ubiquitous(_), Absent) => Absent,
            (Absent, Present(_) | PresentUnvalued) | (Present(_) | PresentUnvalued, Absent) => {
                return Err(SimError::ClockMismatch { step, signal: self.sig_name(signal) })
            }
            // synchronous operands share one clock: a decided side decides
            // the other (this is what lets `pre` feedback loops converge)
            (Absent, Unknown) | (Unknown, Absent) => Absent,
            (Unknown, Present(_) | PresentUnvalued) | (Present(_) | PresentUnvalued, Unknown) => {
                PresentUnvalued
            }
            (Unknown, _) | (_, Unknown) => Unknown,
            (PresentUnvalued, _) | (_, PresentUnvalued) => PresentUnvalued,
            (Present(a), Present(b))
            | (Present(a), Ubiquitous(b))
            | (Ubiquitous(a), Present(b)) => Present(
                op.apply(a, b)
                    .ok_or_else(|| SimError::ValueType { step, signal: self.sig_name(signal) })?,
            ),
            (Ubiquitous(a), Ubiquitous(b)) => Ubiquitous(
                op.apply(a, b)
                    .ok_or_else(|| SimError::ValueType { step, signal: self.sig_name(signal) })?,
            ),
        })
    }

    /// Collects `pre` register updates after a decided reaction.
    fn collect_register_updates(
        &self,
        e: &CExpr,
        status: &[Status],
        signal: usize,
        step: usize,
        out: &mut Vec<(usize, Value)>,
    ) -> Result<(), SimError> {
        match e {
            CExpr::Var(_) | CExpr::Const(_) => Ok(()),
            CExpr::Pre { reg, body } => {
                if let Ev::Present(v) = self.eval(body, status, signal, step)? {
                    out.push((*reg, v));
                }
                self.collect_register_updates(body, status, signal, step, out)
            }
            CExpr::When { body, cond } => {
                self.collect_register_updates(body, status, signal, step, out)?;
                self.collect_register_updates(cond, status, signal, step, out)
            }
            CExpr::Default { left, right } | CExpr::Binary { left, right, .. } => {
                self.collect_register_updates(left, status, signal, step, out)?;
                self.collect_register_updates(right, status, signal, step, out)
            }
            CExpr::Unary { arg, .. } => {
                self.collect_register_updates(arg, status, signal, step, out)
            }
        }
    }
}

/// Orders the compiled equations so that each signal's equation comes after
/// the equations of its instantaneous dependencies (merged across
/// components). Cyclic programs (which the language layer rejects for
/// single components but a merged program could theoretically exhibit via
/// clock feedback) keep their original order — the fixpoint still handles
/// them, just in more passes.
fn schedule_equations(
    equations: Vec<(usize, CExpr)>,
    p: &Program,
    interner: &Interner,
) -> (Vec<(usize, CExpr)>, bool) {
    use std::collections::BTreeSet;
    let n = interner.len();
    let idx = |n: &SigName| interner.lookup(n).expect("resolved name is declared").index();
    // instantaneous deps per defined index, as dense adjacency over SigIds
    let mut is_defined = vec![false; n];
    for (lhs, _) in &equations {
        is_defined[*lhs] = true;
    }
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut vars = BTreeSet::new();
    for c in &p.components {
        for eq in c.equations() {
            vars.clear();
            eq.rhs.collect_instant_vars(&mut vars);
            let lhs = idx(&eq.lhs);
            // only deps on *defined* signals can delay an equation; inputs
            // are always decided before the first sweep
            deps[lhs].extend(vars.iter().map(&idx).filter(|&d| is_defined[d]));
        }
    }
    // Kahn's algorithm over the defined signals only, queue-based: O(V + E)
    let mut indegree = vec![0usize; n];
    let mut rdeps: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (lhs, ds) in deps.iter().enumerate() {
        for &d in ds {
            indegree[lhs] += 1;
            rdeps[d].push(lhs);
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| is_defined[i] && indegree[i] == 0).collect();
    let mut rank = vec![usize::MAX; n];
    let mut next_rank = 0usize;
    let mut head = 0;
    while head < queue.len() {
        let i = queue[head];
        head += 1;
        rank[i] = next_rank;
        next_rank += 1;
        for &r in &rdeps[i] {
            indegree[r] -= 1;
            if indegree[r] == 0 {
                queue.push(r);
            }
        }
    }
    if queue.len() < is_defined.iter().filter(|&&d| d).count() {
        // cycle: keep the original order (and report it, so no static
        // schedule is lowered over a cyclic order)
        return (equations, false);
    }
    let mut scheduled = equations;
    scheduled.sort_by_key(|(lhs, _)| rank[*lhs]);
    (scheduled, true)
}

/// Renames component locals whose names collide with declarations in other
/// components to `<component>.<name>`: in the merged reaction system, two
/// components' private state must never alias (shared inputs/outputs keep
/// their names — that sharing is the wiring).
fn disambiguate_locals(p: &Program) -> Cow<'_, Program> {
    use std::collections::btree_map::Entry;
    let mut owners: BTreeMap<SigName, usize> = BTreeMap::new();
    for c in &p.components {
        for d in &c.decls {
            match owners.entry(d.name.clone()) {
                Entry::Vacant(e) => {
                    e.insert(1);
                }
                Entry::Occupied(mut e) => *e.get_mut() += 1,
            }
        }
    }
    // collision-free programs (the common case — and every program the
    // estimation loop compiles) are passed through without cloning
    let clashes = |c: &polysig_lang::Component| {
        c.decls.iter().any(|d| {
            d.role == polysig_lang::Role::Local && owners.get(&d.name).copied().unwrap_or(0) > 1
        })
    };
    if !p.components.iter().any(clashes) {
        return Cow::Borrowed(p);
    }
    let mut out = p.clone();
    for c in &mut out.components {
        let colliding: Vec<SigName> = c
            .decls
            .iter()
            .filter(|d| {
                d.role == polysig_lang::Role::Local && owners.get(&d.name).copied().unwrap_or(0) > 1
            })
            .map(|d| d.name.clone())
            .collect();
        for l in colliding {
            let fresh = SigName::from(format!("{}.{}", c.name, l));
            *c = c.rename_signal(&l, &fresh);
        }
    }
    Cow::Owned(out)
}

fn join_status(
    status: &mut [Status],
    i: usize,
    new: Status,
    step: usize,
    interner: &Interner,
) -> Result<bool, SimError> {
    let old = status[i];
    status[i].join(new).map_err(|()| SimError::Contradiction {
        step,
        name: interner.names()[i].clone(),
        old,
        new,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_lang::parse_program;

    fn reactor(src: &str) -> Reactor {
        Reactor::for_program(&parse_program(src).unwrap()).unwrap()
    }

    fn present(inputs: &[(&str, Value)]) -> BTreeMap<SigName, Value> {
        inputs.iter().map(|(n, v)| (SigName::from(*n), *v)).collect()
    }

    #[test]
    fn snapshot_restore_round_trips_execution_state() {
        let mut r = reactor(
            "process Acc { input tick: bool; output n: int; n := (pre 0 n) + (1 when tick); }",
        );
        r.react(&present(&[("tick", Value::TRUE)])).unwrap();
        let parked = r.snapshot();
        r.react(&present(&[("tick", Value::TRUE)])).unwrap();
        assert_ne!(r.snapshot(), parked);
        r.restore(&parked);
        assert_eq!(r.snapshot(), parked);
        assert_eq!(r.steps_taken(), 1);
        // replaying from the restored state reproduces the same reaction
        let out = r.react(&present(&[("tick", Value::TRUE)])).unwrap();
        let n = out.iter().find(|(name, _)| name.as_str() == "n").unwrap().1;
        assert_eq!(n, Value::Int(2));
    }

    #[test]
    fn identity_passes_values_through() {
        let mut r = reactor("process P { input a: int; output x: int; x := a; }");
        let out = r.react(&present(&[("a", Value::Int(5))])).unwrap();
        assert_eq!(out, vec![("a".into(), Value::Int(5)), ("x".into(), Value::Int(5))]);
        // absent input → silent reaction
        let out = r.react(&present(&[])).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn accumulator_with_pre_feedback() {
        let mut r = reactor(
            "process Acc { input tick: bool; output n: int; n := (pre 0 n) + (1 when tick); }",
        );
        for expected in 1..=3 {
            let out = r.react(&present(&[("tick", Value::TRUE)])).unwrap();
            let n = out.iter().find(|(name, _)| name.as_str() == "n").unwrap().1;
            assert_eq!(n, Value::Int(expected));
        }
        // a silent instant does not advance the accumulator
        r.react(&present(&[])).unwrap();
        let out = r.react(&present(&[("tick", Value::TRUE)])).unwrap();
        assert_eq!(out.iter().find(|(n, _)| n.as_str() == "n").unwrap().1, Value::Int(4));
    }

    #[test]
    fn when_filters_by_condition_value() {
        let mut r = reactor("process P { input a: int, c: bool; output x: int; x := a when c; }");
        let out = r.react(&present(&[("a", Value::Int(1)), ("c", Value::TRUE)])).unwrap();
        assert!(out.iter().any(|(n, v)| n.as_str() == "x" && *v == Value::Int(1)));
        let out = r.react(&present(&[("a", Value::Int(2)), ("c", Value::FALSE)])).unwrap();
        assert!(!out.iter().any(|(n, _)| n.as_str() == "x"));
        let out = r.react(&present(&[("a", Value::Int(3))])).unwrap();
        assert!(!out.iter().any(|(n, _)| n.as_str() == "x"));
    }

    #[test]
    fn default_prefers_left() {
        let mut r = reactor("process P { input a: int, b: int; output x: int; x := a default b; }");
        let out = r.react(&present(&[("a", Value::Int(1)), ("b", Value::Int(2))])).unwrap();
        assert!(out.iter().any(|(n, v)| n.as_str() == "x" && *v == Value::Int(1)));
        let out = r.react(&present(&[("b", Value::Int(2))])).unwrap();
        assert!(out.iter().any(|(n, v)| n.as_str() == "x" && *v == Value::Int(2)));
    }

    #[test]
    fn pre_register_advances_only_on_body_ticks() {
        let mut r = reactor("process P { input a: int; output x: int; x := pre 9 a; }");
        let out = r.react(&present(&[("a", Value::Int(1))])).unwrap();
        assert!(out.iter().any(|(n, v)| n.as_str() == "x" && *v == Value::Int(9)));
        r.react(&present(&[])).unwrap();
        let out = r.react(&present(&[("a", Value::Int(2))])).unwrap();
        assert!(out.iter().any(|(n, v)| n.as_str() == "x" && *v == Value::Int(1)));
    }

    #[test]
    fn state_loop_with_sync_constraint() {
        // classic register at an explicit master clock
        let mut r = reactor(
            "process P { input tick: bool, set: int; output s: int; \
             s := set default (pre 0 s); s ^= tick; }",
        );
        let out = r.react(&present(&[("tick", Value::TRUE), ("set", Value::Int(7))])).unwrap();
        assert!(out.iter().any(|(n, v)| n.as_str() == "s" && *v == Value::Int(7)));
        let out = r.react(&present(&[("tick", Value::TRUE)])).unwrap();
        assert!(out.iter().any(|(n, v)| n.as_str() == "s" && *v == Value::Int(7)));
    }

    #[test]
    fn free_clock_is_rejected() {
        // s's clock is unconstrained when `set` is absent
        let mut r =
            reactor("process P { input set: int; output s: int; s := set default (pre 0 s); }");
        let err = r.react(&present(&[])).unwrap_err();
        assert!(matches!(err, SimError::UndeterminedClock { .. }));
    }

    #[test]
    fn clock_mismatch_detected_dynamically() {
        let mut r = reactor("process P { input a: int, b: int; output x: int; x := a + b; }");
        let err = r.react(&present(&[("a", Value::Int(1))])).unwrap_err();
        // class propagation forces b present; scenario says absent
        assert!(matches!(err, SimError::ClockMismatch { .. } | SimError::Contradiction { .. }));
    }

    #[test]
    fn scenario_type_checked() {
        let mut r = reactor("process P { input a: int; output x: int; x := a; }");
        let err = r.react(&present(&[("a", Value::TRUE)])).unwrap_err();
        assert!(matches!(err, SimError::InputType { .. }));
    }

    #[test]
    fn driving_non_input_rejected() {
        let mut r = reactor("process P { input a: int; output x: int; x := a; }");
        let err = r.react(&present(&[("x", Value::Int(1))])).unwrap_err();
        assert!(matches!(err, SimError::NotAnInput { .. }));
    }

    #[test]
    fn driving_undeclared_name_rejected() {
        let mut r = reactor("process P { input a: int; output x: int; x := a; }");
        let err = r.react(&present(&[("ghost", Value::Int(1))])).unwrap_err();
        assert!(matches!(err, SimError::NotAnInput { name } if name.as_str() == "ghost"));
    }

    #[test]
    fn two_components_share_signals() {
        let mut r = reactor(
            "process A { input a: int; output x: int; x := a + 1; } \
             process B { input x: int; output y: int; y := x * 2; }",
        );
        let out = r.react(&present(&[("a", Value::Int(3))])).unwrap();
        assert!(out.iter().any(|(n, v)| n.as_str() == "y" && *v == Value::Int(8)));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut r = reactor(
            "process Acc { input tick: bool; output n: int; n := (pre 0 n) + (1 when tick); }",
        );
        r.react(&present(&[("tick", Value::TRUE)])).unwrap();
        assert_eq!(r.steps_taken(), 1);
        r.reset();
        assert_eq!(r.steps_taken(), 0);
        let out = r.react(&present(&[("tick", Value::TRUE)])).unwrap();
        assert!(out.iter().any(|(n, v)| n.as_str() == "n" && *v == Value::Int(1)));
    }

    #[test]
    fn clock_of_yields_true_at_operand_instants() {
        let mut r = reactor(
            "process P { input a: int, tick: bool; output k: bool; \
             k := (^a) default (false when tick); }",
        );
        let out = r.react(&present(&[("a", Value::Int(1)), ("tick", Value::TRUE)])).unwrap();
        assert!(out.iter().any(|(n, v)| n.as_str() == "k" && *v == Value::TRUE));
        let out = r.react(&present(&[("tick", Value::TRUE)])).unwrap();
        assert!(out.iter().any(|(n, v)| n.as_str() == "k" && *v == Value::FALSE));
    }

    #[test]
    fn registers_are_inspectable_and_settable() {
        let mut r = reactor("process P { input a: int; output x: int; x := pre 0 a; }");
        assert_eq!(r.register_count(), 1);
        r.set_registers(&[Value::Int(42)]);
        let out = r.react(&present(&[("a", Value::Int(1))])).unwrap();
        assert!(out.iter().any(|(n, v)| n.as_str() == "x" && *v == Value::Int(42)));
        assert_eq!(r.registers(), &[Value::Int(1)]);
    }

    #[test]
    fn dense_and_name_keyed_paths_agree() {
        let src =
            "process Acc { input tick: bool; output n: int; n := (pre 0 n) + (1 when tick); }";
        let mut by_name = reactor(src);
        let mut by_id = reactor(src);
        let tick = by_id.sig_id("tick").unwrap();
        for instant in 0..6 {
            let mut env = DenseEnv::new(by_id.signal_count());
            let mut map = BTreeMap::new();
            if instant % 3 != 2 {
                env.set(tick, Value::TRUE);
                map.insert(SigName::from("tick"), Value::TRUE);
            }
            let named = by_name.react(&map).unwrap();
            let dense = by_id.react_dense(&env).unwrap();
            let rendered: Vec<(SigName, Value)> =
                dense.iter().map(|(id, v)| (by_name.interner().name(id).clone(), v)).collect();
            assert_eq!(named, rendered);
        }
        assert_eq!(by_name.registers(), by_id.registers());
    }

    #[test]
    fn endochronous_programs_get_a_compiled_plan() {
        // the fig2 one-place buffer: every clock is rooted in the inputs
        let src = "process OnePlaceBuffer {
            input msgin: int, rd: bool, tick: bool;
            output msgout: int, full: bool;
            local inw: bool, rdw: bool, fullprev: bool, data: int;
            sync tick, full, data;
            inw := (^msgin) default (false when tick);
            rdw := (rd when rd) default (false when tick);
            fullprev := (pre false full) when tick;
            msgout := (pre 0 data) when (rdw and fullprev);
            full := (fullprev and (not rdw)) or inw;
            data := (msgin when inw) default ((pre 0 data) when tick);
        }";
        let r = Reactor::for_program_compiled(&parse_program(src).unwrap()).unwrap();
        assert!(r.is_compiled());
        assert!(r.compiled_op_count().unwrap() > 0);
    }

    #[test]
    fn free_clock_program_falls_back_to_the_interpreter() {
        // s's clock is not derivable from the inputs: lowering must fail
        // gracefully (no error) and leave the interpreter in charge
        let src = "process P { input set: int; output s: int; s := set default (pre 0 s); }";
        let mut r = Reactor::for_program_compiled(&parse_program(src).unwrap()).unwrap();
        assert!(!r.is_compiled());
        assert_eq!(r.compiled_op_count(), None);
        // and execution still behaves exactly like the plain reactor
        let out = r.react(&present(&[("set", Value::Int(3))])).unwrap();
        assert!(out.iter().any(|(n, v)| n.as_str() == "s" && *v == Value::Int(3)));
    }

    #[test]
    fn forced_interpretation_never_compiles() {
        let src =
            "process Acc { input tick: bool; output n: int; n := (pre 0 n) + (1 when tick); }";
        let p = parse_program(src).unwrap();
        assert!(Reactor::for_program_compiled(&p).unwrap().is_compiled());
        assert!(!Reactor::for_program_interpreted(&p).unwrap().is_compiled());
        assert!(!Reactor::for_program_unscheduled(&p).unwrap().is_compiled());
    }

    #[test]
    fn compile_env_switch_values() {
        assert!(compile_enabled_from(None));
        assert!(compile_enabled_from(Some("on")));
        assert!(compile_enabled_from(Some("")));
        assert!(!compile_enabled_from(Some("off")));
        assert!(!compile_enabled_from(Some("0")));
        assert!(!compile_enabled_from(Some("false")));
    }

    #[test]
    fn compiled_and_interpreted_agree_instant_by_instant() {
        let src = "process Mix {
            input tick: bool, set: int;
            output s: int, parity: bool;
            s := set default (pre 0 s);
            s ^= tick;
            parity := (pre false parity) /= (true when tick);
        }";
        let p = parse_program(src).unwrap();
        let mut compiled = Reactor::for_program_compiled(&p).unwrap();
        let mut interp = Reactor::for_program_interpreted(&p).unwrap();
        assert!(compiled.is_compiled());
        for instant in 0..12 {
            let mut inputs = Vec::new();
            if instant % 3 != 2 {
                inputs.push(("tick", Value::TRUE));
            }
            if instant % 4 == 1 && instant % 3 != 2 {
                inputs.push(("set", Value::Int(instant)));
            }
            let env = present(&inputs);
            assert_eq!(compiled.react(&env).unwrap(), interp.react(&env).unwrap());
            assert_eq!(compiled.registers(), interp.registers());
            assert_eq!(compiled.snapshot(), interp.snapshot());
        }
        // one compiled reaction = one pass, with ops (not rhs evals) as
        // the work unit
        assert_eq!(compiled.passes(), 12);
        assert!(compiled.evals() > 0);
    }

    #[test]
    fn compiled_plan_reproduces_interpreter_errors_exactly() {
        // a + b with b absent: the executor bails and the interpreter
        // re-run raises the identical error
        let src = "process P { input a: int, b: int; output x: int; x := a + b; }";
        let p = parse_program(src).unwrap();
        let mut compiled = Reactor::for_program_compiled(&p).unwrap();
        let mut interp = Reactor::for_program_interpreted(&p).unwrap();
        assert!(compiled.is_compiled());
        let env = present(&[("a", Value::Int(1))]);
        let ce = compiled.react(&env).unwrap_err();
        let ie = interp.react(&env).unwrap_err();
        assert_eq!(ce.to_string(), ie.to_string());
        // scenario errors too (shared seeding)
        let env = present(&[("x", Value::Int(1))]);
        assert_eq!(
            compiled.react(&env).unwrap_err().to_string(),
            interp.react(&env).unwrap_err().to_string()
        );
        let env = present(&[("a", Value::TRUE)]);
        assert_eq!(
            compiled.react(&env).unwrap_err().to_string(),
            interp.react(&env).unwrap_err().to_string()
        );
    }

    #[test]
    fn dense_output_buffer_is_rewritten_each_reaction() {
        let mut r = reactor("process P { input a: int; output x: int; x := a; }");
        let a = r.sig_id("a").unwrap();
        let x = r.sig_id("x").unwrap();
        let mut env = DenseEnv::new(r.signal_count());
        env.set(a, Value::Int(1));
        assert_eq!(r.react_dense(&env).unwrap().get(x), Some(Value::Int(1)));
        env.unset(a);
        assert_eq!(r.react_dense(&env).unwrap().present_count(), 0);
    }
}
