//! Input scenarios: which inputs tick, with which values, at each reaction.

use std::collections::BTreeMap;

use polysig_tagged::{SigName, Value};

/// A finite input scenario: one map of present inputs per reaction.
///
/// Built fluently: [`Scenario::on`] stages a present input for the reaction
/// being built, [`Scenario::tick`] closes it (an empty staged reaction means
/// "all inputs absent").
///
/// ```
/// use polysig_sim::Scenario;
/// use polysig_tagged::Value;
///
/// let s = Scenario::new()
///     .on("a", Value::Int(1))
///     .tick() // reaction 0: a present
///     .tick() // reaction 1: silence
///     .on("a", Value::Int(2))
///     .on("b", Value::Bool(true))
///     .tick(); // reaction 2: a and b present
/// assert_eq!(s.len(), 3);
/// assert!(s.step(1).unwrap().is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Scenario {
    steps: Vec<BTreeMap<SigName, Value>>,
    staged: BTreeMap<SigName, Value>,
}

impl Scenario {
    /// Creates an empty scenario.
    pub fn new() -> Self {
        Scenario::default()
    }

    /// Stages input `name` present with `value` for the reaction being
    /// built.
    #[must_use]
    pub fn on(mut self, name: impl Into<SigName>, value: Value) -> Self {
        self.staged.insert(name.into(), value);
        self
    }

    /// Closes the reaction being built (possibly with no inputs present).
    #[must_use]
    pub fn tick(mut self) -> Self {
        let staged = std::mem::take(&mut self.staged);
        self.steps.push(staged);
        self
    }

    /// Appends `n` silent reactions.
    #[must_use]
    pub fn silence(mut self, n: usize) -> Self {
        assert!(self.staged.is_empty(), "close the staged reaction with tick() first");
        for _ in 0..n {
            self.steps.push(BTreeMap::new());
        }
        self
    }

    /// Appends an already-built reaction.
    pub fn push_step(&mut self, step: BTreeMap<SigName, Value>) {
        self.steps.push(step);
    }

    /// Number of reactions.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` iff the scenario has no reactions.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The inputs present at reaction `i`.
    pub fn step(&self, i: usize) -> Option<&BTreeMap<SigName, Value>> {
        self.steps.get(i)
    }

    /// Iterates over the reactions.
    pub fn iter(&self) -> impl Iterator<Item = &BTreeMap<SigName, Value>> + '_ {
        self.steps.iter()
    }

    /// Concatenates two scenarios.
    #[must_use]
    pub fn then(mut self, other: Scenario) -> Scenario {
        assert!(self.staged.is_empty() && other.staged.is_empty(), "unclosed staged reaction");
        self.steps.extend(other.steps);
        self
    }

    /// Merges two scenarios instant-by-instant (union of present inputs; the
    /// result has the longer length). Useful to drive different inputs from
    /// independently generated patterns.
    ///
    /// # Panics
    ///
    /// Panics if both scenarios drive the same input at the same reaction
    /// with different values.
    #[must_use]
    pub fn zip_union(self, other: &Scenario) -> Scenario {
        assert!(self.staged.is_empty(), "unclosed staged reaction");
        let len = self.steps.len().max(other.steps.len());
        let mut steps = Vec::with_capacity(len);
        for i in 0..len {
            let mut m = self.steps.get(i).cloned().unwrap_or_default();
            if let Some(o) = other.steps.get(i) {
                for (k, v) in o {
                    if let Some(prev) = m.insert(k.clone(), *v) {
                        assert_eq!(prev, *v, "conflicting values for `{k}` at reaction {i}");
                    }
                }
            }
            steps.push(m);
        }
        Scenario { steps, staged: BTreeMap::new() }
    }
}

impl Scenario {
    /// Parses the plain-text scenario format: one reaction per line, each a
    /// whitespace-separated list of `name=value` events (`true`/`false` for
    /// booleans, decimal integers otherwise); blank content means a silent
    /// reaction; `#` starts a comment.
    ///
    /// ```text
    /// # write then read
    /// tick=true msgin=3
    /// tick=true
    /// tick=true rd=true
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn from_text(text: &str) -> Result<Scenario, String> {
        let mut s = Scenario::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if raw.trim().starts_with('#') && line.is_empty() {
                continue; // pure comment line, no reaction
            }
            // a fully empty line is a silent reaction
            let mut step = BTreeMap::new();
            for token in line.split_whitespace() {
                let (name, value) = token.split_once('=').ok_or_else(|| {
                    format!("line {}: expected name=value, got `{token}`", lineno + 1)
                })?;
                let v = match value {
                    "true" => Value::Bool(true),
                    "false" => Value::Bool(false),
                    other => Value::Int(other.parse::<i64>().map_err(|_| {
                        format!(
                            "line {}: `{other}` is neither a boolean nor an integer",
                            lineno + 1
                        )
                    })?),
                };
                step.insert(SigName::from(name), v);
            }
            s.push_step(step);
        }
        Ok(s)
    }

    /// Renders the scenario in the [`Scenario::from_text`] format
    /// (round-trips exactly).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for step in &self.steps {
            let mut first = true;
            for (name, value) in step {
                if !first {
                    out.push(' ');
                }
                out.push_str(&format!("{name}={value}"));
                first = false;
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trips() {
        let s = Scenario::new()
            .on("tick", Value::TRUE)
            .on("msgin", Value::Int(-3))
            .tick()
            .tick()
            .on("rd", Value::FALSE)
            .tick();
        let text = s.to_text();
        let parsed = Scenario::from_text(&text).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn text_parses_comments_and_silence() {
        let s = Scenario::from_text(
            "# a comment line\ntick=true msgin=3\n\ntick=true rd=true # trailing\n",
        )
        .unwrap();
        assert_eq!(s.len(), 3);
        assert!(s.step(1).unwrap().is_empty());
        assert_eq!(s.step(2).unwrap()[&SigName::from("rd")], Value::TRUE);
    }

    #[test]
    fn text_rejects_malformed_tokens() {
        assert!(Scenario::from_text("novalue\n").unwrap_err().contains("line 1"));
        assert!(Scenario::from_text("x=maybe\n").unwrap_err().contains("neither"));
    }

    #[test]
    fn builder_stages_and_ticks() {
        let s = Scenario::new().on("a", Value::Int(1)).on("b", Value::TRUE).tick().tick();
        assert_eq!(s.len(), 2);
        assert_eq!(s.step(0).unwrap().len(), 2);
        assert!(s.step(1).unwrap().is_empty());
        assert!(s.step(2).is_none());
    }

    #[test]
    fn silence_appends_empty_steps() {
        let s = Scenario::new().silence(3);
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|m| m.is_empty()));
    }

    #[test]
    fn then_concatenates() {
        let a = Scenario::new().on("x", Value::Int(1)).tick();
        let b = Scenario::new().on("x", Value::Int(2)).tick();
        let c = a.then(b);
        assert_eq!(c.len(), 2);
        assert_eq!(c.step(1).unwrap()[&SigName::from("x")], Value::Int(2));
    }

    #[test]
    fn zip_union_merges_by_instant() {
        let a = Scenario::new().on("x", Value::Int(1)).tick().tick();
        let b = Scenario::new().tick().on("y", Value::Int(2)).tick().on("y", Value::Int(3)).tick();
        let c = a.zip_union(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.step(0).unwrap().len(), 1);
        assert_eq!(c.step(1).unwrap()[&SigName::from("y")], Value::Int(2));
        assert_eq!(c.step(2).unwrap()[&SigName::from("y")], Value::Int(3));
    }

    #[test]
    #[should_panic(expected = "conflicting values")]
    fn zip_union_rejects_conflicts() {
        let a = Scenario::new().on("x", Value::Int(1)).tick();
        let b = Scenario::new().on("x", Value::Int(2)).tick();
        let _ = a.zip_union(&b);
    }
}
