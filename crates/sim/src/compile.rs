//! Lowering a scheduled reaction system to a [`CompiledComponent`].
//!
//! The lowering succeeds exactly when the clock analysis plus the static
//! equation schedule yield a *total order* in which every signal's presence
//! and value can be decided by a single linear sweep — the operational
//! content of endochrony (Theorem 1): the clock hierarchy is rooted in the
//! inputs, so no micro-step fixpoint is required. Each equation gets its
//! presence from one of three sources, tried in order:
//!
//! 1. **Direct** — every signal the right-hand side reads is already
//!    decided, so evaluating it decides the left-hand side too.
//! 2. **Group fold** — the left-hand side's clock group contains an external
//!    input, so an [`Op::EvalClock`] decides its presence up front (the
//!    compiled mirror of the interpreter's first propagation sweep).
//! 3. **Structural clock** — a sub-expression of the right-hand side that
//!    avoids the (still undecided) left-hand side witnesses its presence:
//!    e.g. for `n := (pre 0 n) + (1 when tick)` the `1 when tick` branch is
//!    evaluated first and [`Op::SetClockFrom`] transfers its presence to
//!    `n`, exactly as the interpreter's synchronous-operand rule would.
//!
//! If any equation fits none of these (or the schedule is cyclic, a signal
//! is defined twice, or a non-input signal has no defining equation at
//! all), `lower` returns `None` and the reactor keeps the interpreter —
//! lowering failure is never an error, only a lost optimization. The
//! static admissibility predicates below are deliberately conservative:
//! they reject any equation whose compiled evaluation *could* hit an
//! undecided or unvalued operand at runtime, so a lowered schedule bails
//! only on genuinely ill-clocked reactions (which the interpreter then
//! reports identically). Rejecting undefined non-inputs also makes the
//! executor's "every signal slot decided" invariant a static fact, so no
//! runtime scan is needed.
//!
//! Expressions are flattened to three-address code: every sub-expression
//! result lives in a dedicated temporary slot, constants are interned once
//! into read-only ubiquitous slots, and the last op of each equation
//! carries the guarded-assign mode committing the left-hand side.

use std::collections::BTreeSet;

use polysig_tagged::{Value, ValueType};

use crate::ir::CExpr;
use crate::schedule::{CompiledComponent, Flow, Mode, Op};

/// Everything the lowering needs from an elaborated reactor.
pub(crate) struct LowerInput<'a> {
    /// Number of declared signals (dense slot count).
    pub signal_count: usize,
    /// `is_input[id]` — the signal is an external input.
    pub is_input: &'a [bool],
    /// Declared type per signal (seeding type-checks inputs).
    pub types: &'a [ValueType],
    /// Compiled equations in static schedule order (must be acyclic).
    pub equations: &'a [(usize, CExpr)],
    /// Clock-equality groups over dense indices.
    pub groups: &'a [Vec<usize>],
    /// `(sub, sup)` group-index pairs: sub's clock ⊆ sup's clock.
    pub subset_edges: &'a BTreeSet<(usize, usize)>,
}

/// Lowers a scheduled reaction system; `None` when no static total order
/// exists (the caller falls back to the interpreter).
pub(crate) fn lower(inp: &LowerInput<'_>) -> Option<CompiledComponent> {
    let n = inp.signal_count;
    let mut lw = Lowerer {
        value: inp.is_input.to_vec(),
        presence: inp.is_input.to_vec(),
        init_slots: vec![Flow::Absent; n],
        consts: Vec::new(),
        ops: Vec::new(),
    };

    // phase A: groups anchored by an input decide all their members up
    // front, mirroring the interpreter's first clock-propagation sweep.
    // `EvalClock` checks its fold's uniformity itself and every member's
    // guarded assign preserves the decided presence, so anchored groups
    // need no epilogue uniformity check.
    let mut anchored = vec![false; inp.groups.len()];
    for (g, group) in inp.groups.iter().enumerate() {
        let fold: Vec<u32> =
            group.iter().filter(|&&i| inp.is_input[i]).map(|&i| i as u32).collect();
        if fold.is_empty() {
            continue;
        }
        let members: Vec<u32> =
            group.iter().filter(|&&i| !inp.is_input[i]).map(|&i| i as u32).collect();
        if members.is_empty() {
            // an all-input group is still uniform-checked by the fold
            if fold.len() > 1 {
                anchored[g] = true;
                lw.ops.push(Op::EvalClock { fold: fold.into(), members: members.into() });
            }
            continue;
        }
        for &m in &members {
            lw.presence[m as usize] = true;
        }
        anchored[g] = true;
        lw.ops.push(Op::EvalClock { fold: fold.into(), members: members.into() });
    }

    // phase B: one (witness +) evaluate-and-assign block per equation, in
    // schedule order
    let mut defined = vec![false; n];
    for (lhs, rhs) in inp.equations {
        let lhs = *lhs;
        // inputs with equations and double definitions would need join
        // machinery the linear schedule does not have
        if inp.is_input[lhs] || defined[lhs] {
            return None;
        }
        defined[lhs] = true;
        if !lw.admissible(rhs) {
            if lw.presence[lhs] {
                return None;
            }
            // structural clock: derive the presence from a decidable
            // sub-expression, then re-check admissibility with the
            // left-hand side's presence known
            let (witness, ubiquitous) = lw.clock_plan(rhs)?;
            if ubiquitous {
                return None;
            }
            lw.ops.push(Op::SetClockFrom { dst: lhs as u32, src: witness });
            lw.presence[lhs] = true;
            if !lw.admissible(rhs) {
                return None;
            }
        }
        // a possibly-ubiquitous result needs an already-decided clock to
        // anchor to
        if maybe_ubiquitous(rhs) && !lw.presence[lhs] {
            return None;
        }
        let m = if lw.presence[lhs] { Mode::GuardAtClock } else { Mode::Guard };
        lw.emit(rhs, m, lhs as u32);
        lw.value[lhs] = true;
        lw.presence[lhs] = true;
    }

    // a non-input the equations never define would stay undecided at
    // runtime (the interpreter's UndeterminedClock error): no schedule
    if (0..n).any(|i| !inp.is_input[i] && !lw.value[i]) {
        return None;
    }

    // phase C: register updates, re-evaluating each `pre` body in the
    // interpreter's collection order (everything is decided by now, so no
    // static admissibility applies)
    let split = lw.ops.len();
    for (_, rhs) in inp.equations {
        if rhs.has_pre() {
            lw.emit_register_updates(rhs);
        }
    }
    let reg_ops = coalesce_register_shifts(lw.ops.split_off(split));

    let input_slots: Box<[u32]> = (0..n).filter(|&i| inp.is_input[i]).map(|i| i as u32).collect();
    let input_types: Box<[ValueType]> =
        input_slots.iter().map(|&i| inp.types[i as usize]).collect();
    // epilogue checks: uniformity for multi-member groups `EvalClock` does
    // not cover, and every subset edge (by group representative — groups
    // are uniform once checked, so one member stands for all)
    let check_groups: Box<[Box<[u32]>]> = inp
        .groups
        .iter()
        .enumerate()
        .filter(|&(g, group)| !anchored[g] && group.len() > 1)
        .map(|(_, group)| group.iter().map(|&i| i as u32).collect())
        .collect();
    let discharged = discharged_edges(inp);
    let check_edges: Box<[(u32, u32)]> = inp
        .subset_edges
        .iter()
        .filter(|e| !discharged.contains(e))
        .map(|&(sub, sup)| (inp.groups[sub][0] as u32, inp.groups[sup][0] as u32))
        .collect();
    Some(CompiledComponent {
        ops: lw.ops,
        reg_ops,
        init_slots: lw.init_slots.into(),
        input_slots,
        input_types,
        signal_count: n as u32,
        check_groups,
        check_edges,
    })
}

/// Emission state: what is decided so far, the growing slot image and op
/// stream.
struct Lowerer {
    /// `value[i]` — slot `i`'s value is decided when read.
    value: Vec<bool>,
    /// `presence[i]` — slot `i`'s presence is decided when read.
    presence: Vec<bool>,
    /// Initial slot image (constants preloaded, everything else absent).
    init_slots: Vec<Flow>,
    /// Interned constants: value → slot.
    consts: Vec<(Value, u32)>,
    /// The op stream.
    ops: Vec<Op>,
}

impl Lowerer {
    /// A fresh expression temporary.
    fn temp(&mut self) -> u32 {
        self.init_slots.push(Flow::Absent);
        (self.init_slots.len() - 1) as u32
    }

    /// The read-only slot holding `v` as a ubiquitous constant.
    fn konst(&mut self, v: Value) -> u32 {
        if let Some(&(_, s)) = self.consts.iter().find(|&&(w, _)| w == v) {
            return s;
        }
        self.init_slots.push(Flow::Ubiquitous(v));
        let s = (self.init_slots.len() - 1) as u32;
        self.consts.push((v, s));
        s
    }

    /// The slot holding `e`'s value: signals and constants read in place,
    /// anything compound is evaluated into a temporary.
    fn operand(&mut self, e: &CExpr) -> u32 {
        match e {
            CExpr::Var(i) => *i as u32,
            CExpr::Const(v) => self.konst(*v),
            _ => {
                let t = self.temp();
                self.emit(e, Mode::Temp, t);
                t
            }
        }
    }

    /// Emits the evaluation of `e` with the root op storing into `dst`
    /// under `m` (the guarded-assign fusion point).
    fn emit(&mut self, e: &CExpr, m: Mode, dst: u32) {
        match e {
            CExpr::Var(i) => self.ops.push(Op::Mov { m, dst, src: *i as u32 }),
            CExpr::Const(v) => {
                let src = self.konst(*v);
                self.ops.push(Op::Mov { m, dst, src });
            }
            CExpr::Pre { reg, body } => {
                let body = self.operand(body);
                self.ops.push(Op::Pre { m, dst, reg: *reg as u32, body });
            }
            CExpr::When { body, cond } => match body.as_ref() {
                // the clocked-state idiom `(pre x) when c` fuses into one
                // op, as do sampled pointwise operators
                CExpr::Pre { reg, body: delayed } => {
                    let body = self.operand(delayed);
                    let cond = self.operand(cond);
                    self.ops.push(Op::PreWhen { m, dst, reg: *reg as u32, body, cond });
                }
                CExpr::Unary { op, arg } => {
                    let arg = self.operand(arg);
                    let cond = self.operand(cond);
                    self.ops.push(Op::UnaryWhen { m, dst, op: *op, arg, cond });
                }
                CExpr::Binary { op, left, right } => {
                    let left = self.operand(left);
                    let right = self.operand(right);
                    let cond = self.operand(cond);
                    self.ops.push(Op::BinaryWhen { m, dst, op: *op, left, right, cond });
                }
                _ => {
                    let body = self.operand(body);
                    let cond = self.operand(cond);
                    self.ops.push(Op::When { m, dst, body, cond });
                }
            },
            CExpr::Default { left, right } => {
                // the clocked-constant fallback `x default (k when c)`
                // fuses into one op
                if let CExpr::When { body, cond } = right.as_ref() {
                    if let CExpr::Const(v) = body.as_ref() {
                        let konst = self.konst(*v);
                        let left = self.operand(left);
                        let cond = self.operand(cond);
                        self.ops.push(Op::DefaultConstAt { m, dst, left, konst, cond });
                        return;
                    }
                }
                let left = self.operand(left);
                let right = self.operand(right);
                self.ops.push(Op::DefaultMerge { m, dst, left, right });
            }
            CExpr::Unary { op, arg } => {
                let arg = self.operand(arg);
                self.ops.push(Op::Unary { m, dst, op: *op, arg });
            }
            CExpr::Binary { op, left, right } => {
                let left = self.operand(left);
                let right = self.operand(right);
                self.ops.push(Op::Binary { m, dst, op: *op, left, right });
            }
        }
    }

    /// A signal readable during lowering: value known, or at least
    /// presence.
    fn readable(&self, i: usize) -> bool {
        self.value[i] || self.presence[i]
    }

    /// The equation can be compiled as-is: all reads decidable, no
    /// unvalued result can escape to the assignment or a condition.
    fn admissible(&self, e: &CExpr) -> bool {
        self.derivable(e) && self.conds_ok(e) && !self.maybe_unvalued(e)
    }

    /// Every signal the expression reads is readable.
    fn derivable(&self, e: &CExpr) -> bool {
        match e {
            CExpr::Var(i) => self.readable(*i),
            CExpr::Const(_) => true,
            CExpr::Pre { body, .. } => self.derivable(body),
            CExpr::When { body, cond } => self.derivable(body) && self.derivable(cond),
            CExpr::Default { left, right } | CExpr::Binary { left, right, .. } => {
                self.derivable(left) && self.derivable(right)
            }
            CExpr::Unary { arg, .. } => self.derivable(arg),
        }
    }

    /// Could the expression evaluate to an *unvalued* (present, value
    /// unknown) result? `pre` and `^` erase unvaluedness; everything else
    /// propagates it.
    fn maybe_unvalued(&self, e: &CExpr) -> bool {
        match e {
            CExpr::Var(i) => !self.value[*i],
            CExpr::Const(_) | CExpr::Pre { .. } => false,
            CExpr::When { body, .. } => self.maybe_unvalued(body),
            CExpr::Default { left, right } | CExpr::Binary { left, right, .. } => {
                self.maybe_unvalued(left) || self.maybe_unvalued(right)
            }
            CExpr::Unary { op, arg } => match op {
                polysig_lang::Unop::ClockOf => false,
                polysig_lang::Unop::Not | polysig_lang::Unop::Neg => self.maybe_unvalued(arg),
            },
        }
    }

    /// Every `when` condition in the tree evaluates to a *valued* result
    /// (an unvalued condition would make the executor bail every
    /// reaction).
    fn conds_ok(&self, e: &CExpr) -> bool {
        match e {
            CExpr::Var(_) | CExpr::Const(_) => true,
            CExpr::Pre { body, .. } => self.conds_ok(body),
            CExpr::When { body, cond } => {
                self.conds_ok(body) && self.conds_ok(cond) && !self.maybe_unvalued(cond)
            }
            CExpr::Default { left, right } | CExpr::Binary { left, right, .. } => {
                self.conds_ok(left) && self.conds_ok(right)
            }
            CExpr::Unary { arg, .. } => self.conds_ok(arg),
        }
    }

    /// Emits a *presence witness* for `e` — an expression over already
    /// readable signals whose presence equals `e`'s — returning its slot
    /// plus whether the witness could be ubiquitous at runtime (which
    /// would make it useless). Ops emitted for a failed branch are rolled
    /// back.
    fn clock_plan(&mut self, e: &CExpr) -> Option<(u32, bool)> {
        match e {
            CExpr::Var(i) => self.readable(*i).then_some((*i as u32, false)),
            CExpr::Const(v) => Some((self.konst(*v), true)),
            // a delay and a pointwise unary keep their operand's clock
            CExpr::Pre { body, .. } => self.clock_plan(body),
            CExpr::Unary { arg, .. } => self.clock_plan(arg),
            CExpr::When { body, cond } => {
                let mark = self.ops.len();
                let (b, body_ubiq) = self.clock_plan(body)?;
                if !(self.derivable(cond) && self.conds_ok(cond) && !self.maybe_unvalued(cond)) {
                    self.ops.truncate(mark);
                    return None;
                }
                let c = self.operand(cond);
                let t = self.temp();
                self.ops.push(Op::When { m: Mode::Temp, dst: t, body: b, cond: c });
                Some((t, body_ubiq && maybe_ubiquitous(cond)))
            }
            CExpr::Default { left, right } => {
                let mark = self.ops.len();
                let Some((l, lu)) = self.clock_plan(left) else {
                    self.ops.truncate(mark);
                    return None;
                };
                let Some((r, ru)) = self.clock_plan(right) else {
                    self.ops.truncate(mark);
                    return None;
                };
                let t = self.temp();
                self.ops.push(Op::DefaultMerge { m: Mode::Temp, dst: t, left: l, right: r });
                Some((t, lu || ru))
            }
            // synchronous operands share one clock: either side witnesses
            // it; prefer one that can never be ubiquitous
            CExpr::Binary { left, right, .. } => {
                let mark = self.ops.len();
                if let Some((s, false)) = self.clock_plan(left) {
                    return Some((s, false));
                }
                self.ops.truncate(mark);
                if let Some((s, false)) = self.clock_plan(right) {
                    return Some((s, false));
                }
                self.ops.truncate(mark);
                if let Some(p) = self.clock_plan(left) {
                    return Some(p);
                }
                self.ops.truncate(mark);
                self.clock_plan(right)
            }
        }
    }

    /// Emits register updates for every `pre` in `e`, in the interpreter's
    /// collection order: a `pre`'s own update (re-evaluating its body)
    /// comes before the updates of `pre`s nested inside that body.
    fn emit_register_updates(&mut self, e: &CExpr) {
        match e {
            CExpr::Var(_) | CExpr::Const(_) => {}
            CExpr::Pre { reg, body } => {
                let src = self.operand(body);
                self.ops.push(Op::RegisterShift { reg: *reg as u32, src });
                self.emit_register_updates(body);
            }
            CExpr::When { body, cond } => {
                self.emit_register_updates(body);
                self.emit_register_updates(cond);
            }
            CExpr::Default { left, right } | CExpr::Binary { left, right, .. } => {
                self.emit_register_updates(left);
                self.emit_register_updates(right);
            }
            CExpr::Unary { arg, .. } => self.emit_register_updates(arg),
        }
    }
}

/// Merges each run of consecutive [`Op::RegisterShift`]s into one
/// [`Op::RegisterShiftN`] dispatch (order preserved).
fn coalesce_register_shifts(ops: Vec<Op>) -> Vec<Op> {
    let mut out: Vec<Op> = Vec::with_capacity(ops.len());
    let mut run: Vec<(u32, u32)> = Vec::new();
    let flush = |out: &mut Vec<Op>, run: &mut Vec<(u32, u32)>| match run.len() {
        0 => {}
        1 => {
            let (reg, src) = run.pop().unwrap();
            out.push(Op::RegisterShift { reg, src });
        }
        _ => out.push(Op::RegisterShiftN { moves: std::mem::take(run).into() }),
    };
    for op in ops {
        if let Op::RegisterShift { reg, src } = op {
            run.push((reg, src));
        } else {
            flush(&mut out, &mut run);
            out.push(op);
        }
    }
    flush(&mut out, &mut run);
    out
}

/// Could the expression evaluate to a *ubiquitous* (context-clocked
/// constant) result?
fn maybe_ubiquitous(e: &CExpr) -> bool {
    match e {
        CExpr::Var(_) => false,
        CExpr::Const(_) => true,
        CExpr::Pre { body, .. } => maybe_ubiquitous(body),
        CExpr::When { body, cond } => maybe_ubiquitous(body) && maybe_ubiquitous(cond),
        CExpr::Default { left, right } => maybe_ubiquitous(left) || maybe_ubiquitous(right),
        CExpr::Binary { left, right, .. } => maybe_ubiquitous(left) && maybe_ubiquitous(right),
        CExpr::Unary { arg, .. } => maybe_ubiquitous(arg),
    }
}

/// Signals whose presence is implied whenever `e`'s compiled result is
/// non-absent (`Present`, `Unvalued`, or `Ubiquitous`) on a run that
/// commits (does not bail). Structural induction over the op semantics in
/// [`crate::schedule`]:
///
/// * `Var` — a present read is a present signal;
/// * `Const` — ubiquitous, implies nothing;
/// * `Pre` — `pre_flow` is non-absent exactly when its body is (an
///   `Unvalued` body still yields `Present(reg)`);
/// * `When` — `when_flow` is non-absent only when the sampled body is
///   non-absent *and* the condition is non-absent (and true);
/// * `Default` — the merge is non-absent when either branch is, so only
///   the branches' *common* implications survive;
/// * `Binary`/`Unary` — a non-absent pointwise result needs every operand
///   non-absent (a present/absent mix bails, absent/ubiquitous is absent).
fn presence_uppers(e: &CExpr, acc: &mut BTreeSet<usize>) {
    match e {
        CExpr::Var(i) => {
            acc.insert(*i);
        }
        CExpr::Const(_) => {}
        CExpr::Pre { body, .. } => presence_uppers(body, acc),
        CExpr::When { body, cond } => {
            presence_uppers(body, acc);
            presence_uppers(cond, acc);
        }
        CExpr::Default { left, right } => {
            let mut l = BTreeSet::new();
            let mut r = BTreeSet::new();
            presence_uppers(left, &mut l);
            presence_uppers(right, &mut r);
            acc.extend(l.intersection(&r));
        }
        CExpr::Binary { left, right, .. } => {
            presence_uppers(left, acc);
            presence_uppers(right, acc);
        }
        CExpr::Unary { arg, .. } => presence_uppers(arg, acc),
    }
}

/// Signals whose presence *forces* `e`'s compiled result non-absent on a
/// run that commits. The dual of [`presence_uppers`], and deliberately
/// weaker:
///
/// * `When` implies nothing — the condition may be absent or false while
///   the body ticks;
/// * `Default` propagates the right branch only when the left cannot
///   evaluate ubiquitous: for `x := (5 when c) default y` the left branch
///   can come back `Ubiquitous(5)` and adapt to an *absent* `x` while `y`
///   is present, so `y ⊆ x` must stay a runtime check.
fn presence_lowers(e: &CExpr, acc: &mut BTreeSet<usize>) {
    match e {
        CExpr::Var(i) => {
            acc.insert(*i);
        }
        CExpr::Const(_) => {}
        CExpr::Pre { body, .. } => presence_lowers(body, acc),
        CExpr::When { .. } => {}
        CExpr::Default { left, right } => {
            presence_lowers(left, acc);
            if !maybe_ubiquitous(left) {
                presence_lowers(right, acc);
            }
        }
        CExpr::Binary { left, right, .. } => {
            presence_lowers(left, acc);
            presence_lowers(right, acc);
        }
        CExpr::Unary { arg, .. } => presence_lowers(arg, acc),
    }
}

/// Subset edges (group-index pairs) the compiled equations enforce
/// operationally, making their epilogue re-check redundant.
///
/// For an equation `lhs := rhs` committed through `Guard`/`GuardAtClock`:
///
/// * every `u ∈ presence_uppers(rhs)`: a present `lhs` means `rhs`
///   evaluated non-absent (`Guard` stores the result directly;
///   `GuardAtClock` bails on a present/absent disagreement and only lets
///   `Ubiquitous` adapt, which also implies the uppers) — so
///   `lhs ⊆ u` holds on every committing run, discharging the edge
///   `(group(lhs), group(u))`;
/// * every `s ∈ presence_lowers(rhs)`: a present `s` forces the result
///   non-absent, and a non-absent result commits `lhs` present (`Guard`
///   rejects `Unvalued` roots statically via `admissible`; `GuardAtClock`
///   bails when the predetermined clock says absent) — so `s ⊆ lhs`
///   holds, discharging `(group(s), group(lhs))`.
///
/// Lifting slot pairs to group pairs is sound because the epilogue checks
/// group uniformity *before* edges and anchored groups are uniform by
/// `EvalClock` construction: on any committing run every group member
/// agrees with its representative.
fn discharged_edges(inp: &LowerInput<'_>) -> BTreeSet<(usize, usize)> {
    let mut group_of = vec![usize::MAX; inp.signal_count];
    for (g, group) in inp.groups.iter().enumerate() {
        for &i in group {
            group_of[i] = g;
        }
    }
    let mut discharged = BTreeSet::new();
    for (lhs, rhs) in inp.equations {
        let lg = group_of[*lhs];
        if lg == usize::MAX {
            continue;
        }
        let mut ups = BTreeSet::new();
        presence_uppers(rhs, &mut ups);
        for u in ups {
            if group_of[u] != usize::MAX {
                discharged.insert((lg, group_of[u]));
            }
        }
        let mut lows = BTreeSet::new();
        presence_lowers(rhs, &mut lows);
        for s in lows {
            if group_of[s] != usize::MAX {
                discharged.insert((group_of[s], lg));
            }
        }
    }
    discharged
}

#[cfg(test)]
mod tests {
    use super::*;

    // slots: 0 = input a (int), 1 = output x (int)
    fn two_sig_input() -> (Vec<bool>, Vec<ValueType>, Vec<Vec<usize>>) {
        (vec![true, false], vec![ValueType::Int, ValueType::Int], vec![vec![0, 1]])
    }

    #[test]
    fn direct_equation_lowers_without_witness() {
        let (is_input, types, groups) = two_sig_input();
        let equations = vec![(1usize, CExpr::Var(0))];
        let cc = lower(&LowerInput {
            signal_count: 2,
            is_input: &is_input,
            types: &types,
            equations: &equations,
            groups: &groups,
            subset_edges: &BTreeSet::new(),
        })
        .expect("x := a lowers");
        // EvalClock for the shared group, then a clocked guarded copy
        assert!(matches!(cc.ops[0], Op::EvalClock { .. }));
        assert!(cc
            .ops
            .iter()
            .any(|o| matches!(o, Op::Mov { m: Mode::GuardAtClock, dst: 1, src: 0 })));
        assert!(cc.reg_ops.is_empty());
        assert_eq!(cc.input_slots.as_ref(), &[0]);
        assert_eq!(cc.input_types.as_ref(), &[ValueType::Int]);
    }

    #[test]
    fn self_feedback_gets_a_structural_clock() {
        // n := (pre 0 n) + (1 when tick); groups: {tick}, {n} (no shared
        // input group, so the `1 when tick` branch must witness n's clock)
        let equations = vec![(
            1usize,
            CExpr::Binary {
                op: polysig_lang::Binop::Add,
                left: Box::new(CExpr::Pre { reg: 0, body: Box::new(CExpr::Var(1)) }),
                right: Box::new(CExpr::When {
                    body: Box::new(CExpr::Const(Value::Int(1))),
                    cond: Box::new(CExpr::Var(0)),
                }),
            },
        )];
        let cc = lower(&LowerInput {
            signal_count: 2,
            is_input: &[true, false],
            types: &[ValueType::Bool, ValueType::Int],
            equations: &equations,
            groups: &[vec![0], vec![1]],
            subset_edges: &BTreeSet::new(),
        })
        .expect("accumulator lowers via a structural clock");
        assert!(cc.ops.iter().any(|o| matches!(o, Op::SetClockFrom { dst: 1, .. })));
        assert!(cc.reg_ops.iter().any(|o| matches!(o, Op::RegisterShift { reg: 0, .. })));
        // the interned constant slot is preloaded as ubiquitous
        assert!(cc.init_slots.iter().any(|f| matches!(f, Flow::Ubiquitous(Value::Int(1)))));
    }

    #[test]
    fn free_clock_fails_to_lower() {
        // s := set default (pre 0 s): s's clock is not derivable from
        // decided signals (slot 0 = input set, slot 1 = s, own group)
        let equations = vec![(
            1usize,
            CExpr::Default {
                left: Box::new(CExpr::Var(0)),
                right: Box::new(CExpr::Pre { reg: 0, body: Box::new(CExpr::Var(1)) }),
            },
        )];
        assert!(lower(&LowerInput {
            signal_count: 2,
            is_input: &[true, false],
            types: &[ValueType::Int, ValueType::Int],
            equations: &equations,
            groups: &[vec![0], vec![1]],
            subset_edges: &BTreeSet::new(),
        })
        .is_none());
    }

    #[test]
    fn double_definition_fails_to_lower() {
        let (is_input, types, groups) = two_sig_input();
        let equations = vec![(1usize, CExpr::Var(0)), (1usize, CExpr::Var(0))];
        assert!(lower(&LowerInput {
            signal_count: 2,
            is_input: &is_input,
            types: &types,
            equations: &equations,
            groups: &groups,
            subset_edges: &BTreeSet::new(),
        })
        .is_none());
    }

    #[test]
    fn bare_constant_equation_fails_without_an_anchor() {
        // x := 5 with x in its own inputless group: nothing anchors the
        // constant's clock
        let equations = vec![(1usize, CExpr::Const(Value::Int(5)))];
        assert!(lower(&LowerInput {
            signal_count: 2,
            is_input: &[true, false],
            types: &[ValueType::Int, ValueType::Int],
            equations: &equations,
            groups: &[vec![0], vec![1]],
            subset_edges: &BTreeSet::new(),
        })
        .is_none());
        // but with x sharing the input's group, the fold anchors it
        let (is_input, types, groups) = two_sig_input();
        assert!(lower(&LowerInput {
            signal_count: 2,
            is_input: &is_input,
            types: &types,
            equations: &equations,
            groups: &groups,
            subset_edges: &BTreeSet::new(),
        })
        .is_some());
    }

    #[test]
    fn direct_copy_discharges_both_subset_edges() {
        // x := a with a and x in separate groups and both edges asserted:
        // the guarded copy enforces a ⊆ x and x ⊆ a operationally, so the
        // epilogue re-check is fused away entirely
        let equations = vec![(1usize, CExpr::Var(0))];
        let edges: BTreeSet<(usize, usize)> = [(0, 1), (1, 0)].into_iter().collect();
        let cc = lower(&LowerInput {
            signal_count: 2,
            is_input: &[true, false],
            types: &[ValueType::Int, ValueType::Int],
            equations: &equations,
            groups: &[vec![0], vec![1]],
            subset_edges: &edges,
        })
        .expect("x := a lowers");
        assert!(cc.check_edges.is_empty(), "both edges statically discharged");
    }

    #[test]
    fn when_keeps_the_sub_edge_it_cannot_enforce() {
        // x := a when c (slots: 0 = a, 1 = c, 2 = x): a present does NOT
        // force x present (c may be absent or false), so a ⊆ x must stay a
        // runtime check; x ⊆ a and x ⊆ c are enforced by the evaluation
        let equations = vec![(
            2usize,
            CExpr::When { body: Box::new(CExpr::Var(0)), cond: Box::new(CExpr::Var(1)) },
        )];
        let edges: BTreeSet<(usize, usize)> = [(0, 2), (2, 0), (2, 1)].into_iter().collect();
        let cc = lower(&LowerInput {
            signal_count: 3,
            is_input: &[true, true, false],
            types: &[ValueType::Int, ValueType::Bool, ValueType::Int],
            equations: &equations,
            groups: &[vec![0], vec![1], vec![2]],
            subset_edges: &edges,
        })
        .expect("x := a when c lowers");
        assert_eq!(cc.check_edges.as_ref(), &[(0, 2)], "only a ⊆ x survives");
    }

    #[test]
    fn ubiquitous_default_branch_keeps_the_edge() {
        // x := (5 when true) default y (slots: 0 = y, 1 = t anchoring x's
        // group, 2 = x): the left branch can evaluate Ubiquitous(5) and
        // adapt to an absent x while y is present, so y ⊆ x must stay a
        // runtime check — the `maybe_ubiquitous` guard in presence_lowers
        let equations = vec![(
            2usize,
            CExpr::Default {
                left: Box::new(CExpr::When {
                    body: Box::new(CExpr::Const(Value::Int(5))),
                    cond: Box::new(CExpr::Const(Value::Bool(true))),
                }),
                right: Box::new(CExpr::Var(0)),
            },
        )];
        let edges: BTreeSet<(usize, usize)> = [(0, 1)].into_iter().collect();
        let cc = lower(&LowerInput {
            signal_count: 3,
            is_input: &[true, true, false],
            types: &[ValueType::Int, ValueType::Bool, ValueType::Int],
            equations: &equations,
            groups: &[vec![0], vec![1, 2]],
            subset_edges: &edges,
        })
        .expect("anchored ubiquitous default lowers");
        assert_eq!(cc.check_edges.len(), 1, "y ⊆ x stays: left branch may be ubiquitous");

        // flipped merge: y default (5 when true) — now a present y forces
        // x present (the left branch is never ubiquitous), discharging it
        let equations = vec![(
            2usize,
            CExpr::Default {
                left: Box::new(CExpr::Var(0)),
                right: Box::new(CExpr::When {
                    body: Box::new(CExpr::Const(Value::Int(5))),
                    cond: Box::new(CExpr::Const(Value::Bool(true))),
                }),
            },
        )];
        let cc = lower(&LowerInput {
            signal_count: 3,
            is_input: &[true, true, false],
            types: &[ValueType::Int, ValueType::Bool, ValueType::Int],
            equations: &equations,
            groups: &[vec![0], vec![1, 2]],
            subset_edges: &edges,
        })
        .expect("flipped default lowers");
        assert!(cc.check_edges.is_empty(), "y ⊆ x discharged by the non-ubiquitous left");
    }

    #[test]
    fn undefined_non_input_fails_to_lower() {
        // slot 2 is a local no equation ever defines: the interpreter
        // would report UndeterminedClock, so no static schedule exists
        let equations = vec![(1usize, CExpr::Var(0))];
        assert!(lower(&LowerInput {
            signal_count: 3,
            is_input: &[true, false, false],
            types: &[ValueType::Int, ValueType::Int, ValueType::Int],
            equations: &equations,
            groups: &[vec![0, 1, 2]],
            subset_edges: &BTreeSet::new(),
        })
        .is_none());
    }
}
