//! Simulator errors.

use std::fmt;

use polysig_tagged::SigName;

use crate::status::Status;

/// Errors raised during elaboration or execution of a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A static language error surfaced during elaboration.
    Lang(polysig_lang::LangError),
    /// The scenario drives a signal that is not an external input.
    NotAnInput {
        /// The offending name.
        name: SigName,
    },
    /// The scenario provides a value of the wrong type for an input.
    InputType {
        /// The offending input.
        name: SigName,
        /// What the declaration says.
        expected: polysig_tagged::ValueType,
        /// What the scenario provided.
        found: polysig_tagged::ValueType,
    },
    /// After the constructive fixpoint, a signal's presence is still
    /// undetermined: the program has a free clock the scenario did not pin
    /// down (the polychronous analogue of a causality error).
    UndeterminedClock {
        /// Reaction index (0-based).
        step: usize,
        /// The undetermined signals.
        signals: Vec<SigName>,
    },
    /// Two constraints force contradictory statuses on a signal.
    Contradiction {
        /// Reaction index (0-based).
        step: usize,
        /// The signal.
        name: SigName,
        /// Status already established.
        old: Status,
        /// Status that clashed with it.
        new: Status,
    },
    /// A synchronous operator received one present and one absent operand
    /// (a clock mismatch the static calculus could not rule out).
    ClockMismatch {
        /// Reaction index (0-based).
        step: usize,
        /// The equation's left-hand side.
        signal: SigName,
    },
    /// A runtime type error (e.g. `+` over booleans) — impossible for
    /// programs accepted by the type checker.
    ValueType {
        /// Reaction index (0-based).
        step: usize,
        /// The equation's left-hand side.
        signal: SigName,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Lang(e) => write!(f, "{e}"),
            SimError::NotAnInput { name } => {
                write!(f, "scenario drives `{name}`, which is not an external input")
            }
            SimError::InputType { name, expected, found } => {
                write!(f, "input `{name}` expects {expected}, scenario provided {found}")
            }
            SimError::UndeterminedClock { step, signals } => {
                write!(f, "reaction {step}: undetermined clock for ")?;
                for (i, s) in signals.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "`{s}`")?;
                }
                write!(f, " (free clock not pinned by the scenario)")
            }
            SimError::Contradiction { step, name, old, new } => {
                write!(f, "reaction {step}: contradictory statuses for `{name}`: {old} vs {new}")
            }
            SimError::ClockMismatch { step, signal } => {
                write!(f, "reaction {step}: clock mismatch in equation for `{signal}`")
            }
            SimError::ValueType { step, signal } => {
                write!(f, "reaction {step}: runtime type error in equation for `{signal}`")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Lang(e) => Some(e),
            _ => None,
        }
    }
}

impl From<polysig_lang::LangError> for SimError {
    fn from(e: polysig_lang::LangError) -> Self {
        SimError::Lang(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        let errs: Vec<SimError> = vec![
            SimError::NotAnInput { name: "x".into() },
            SimError::InputType {
                name: "x".into(),
                expected: polysig_tagged::ValueType::Int,
                found: polysig_tagged::ValueType::Bool,
            },
            SimError::UndeterminedClock { step: 3, signals: vec!["a".into(), "b".into()] },
            SimError::Contradiction {
                step: 0,
                name: "x".into(),
                old: Status::Absent,
                new: Status::PresentUnvalued,
            },
            SimError::ClockMismatch { step: 1, signal: "x".into() },
            SimError::ValueType { step: 2, signal: "x".into() },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn wraps_lang_errors() {
        let lang =
            polysig_lang::LangError::UndeclaredSignal { component: "C".into(), name: "x".into() };
        let sim: SimError = lang.clone().into();
        assert_eq!(sim.to_string(), lang.to_string());
        assert!(std::error::Error::source(&sim).is_some());
    }
}
