//! # `polysig-sim` — constructive simulator for polychronous Signal programs
//!
//! Executes the programs of `polysig-lang` reaction by reaction. Within one
//! reaction every signal starts *unknown* and the primitive operators' firing
//! rules are applied monotonically until a fixpoint: a signal ends up
//! *absent* or *present with a value* (constructive semantics). A reaction
//! that leaves a signal's presence undetermined is rejected — such a program
//! has a free clock the environment did not pin down, the polychronous
//! counterpart of a causality error.
//!
//! The environment is a [`Scenario`]: per reaction, which input signals are
//! present and with which values. [`generator`] builds periodic, random and
//! bursty scenarios for the paper's experiments. Execution records a
//! [`polysig_tagged::Behavior`], connecting the operational semantics to the
//! denotational layer — the test-suite checks every run against the Table-1
//! denotations.
//!
//! ## Example
//!
//! ```
//! use polysig_lang::parse_program;
//! use polysig_sim::{Scenario, Simulator};
//! use polysig_tagged::Value;
//!
//! let program = parse_program(
//!     "process Acc { input tick: bool; output n: int; \
//!      n := (pre 0 n) + (1 when tick); }",
//! )?;
//! let scenario = Scenario::new()
//!     .on("tick", Value::Bool(true))
//!     .tick()
//!     .on("tick", Value::Bool(true))
//!     .tick();
//! let mut sim = Simulator::for_program(&program)?;
//! let run = sim.run(&scenario)?;
//! let n = run.behavior.trace(&"n".into()).unwrap();
//! assert_eq!(n.values(), vec![Value::Int(1), Value::Int(2)]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compile;
pub mod engine;
pub mod env;
pub mod error;
pub mod generator;
pub mod ir;
pub mod reactor;
pub mod scenario;
pub mod schedule;
pub mod status;

pub use engine::{Run, SimCheckpoint, Simulator};
pub use env::DenseEnv;
pub use error::SimError;
pub use generator::{BurstyInputs, PeriodicInputs, RandomInputs, ScenarioGenerator};
pub use reactor::{Reactor, ReactorState};
pub use scenario::Scenario;
pub use status::Status;
