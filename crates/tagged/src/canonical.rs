//! Canonical forms under stretching and relaxation.
//!
//! Stretching (Definition 2) changes the time scale of a behavior while
//! preserving causal order and event synchronization. Two behaviors are
//! stretch-equivalent iff a common "compressed" ancestor exists; for finite
//! prefixes that ancestor is unique: renumber the union of used tags to
//! `1..=k` in order. [`stretch_canonical`] computes it, so
//! *stretch-equivalence is equality of canonical forms* — the workhorse of
//! every equivalence check in the crate.
//!
//! Relaxation (Definition 4) additionally forgets inter-signal
//! synchronization; its canonical form [`flow_canonical`] keeps only the
//! per-signal value sequences (the *flows*).

use std::collections::BTreeMap;

use crate::behavior::Behavior;
use crate::flow::FlowClass;
use crate::tag::Tag;

/// Computes the canonical representative of a behavior's stretch-equivalence
/// class: tags are renumbered to `1..=k` preserving order and co-occurrence.
///
/// ```
/// use polysig_tagged::{stretch_canonical, Behavior, Value};
///
/// let mut sparse = Behavior::new();
/// sparse.push_event("x", 10, Value::Int(1));
/// sparse.push_event("x", 99, Value::Int(2));
///
/// let mut dense = Behavior::new();
/// dense.push_event("x", 1, Value::Int(1));
/// dense.push_event("x", 2, Value::Int(2));
///
/// assert_eq!(stretch_canonical(&sparse), dense);
/// ```
pub fn stretch_canonical(behavior: &Behavior) -> Behavior {
    let tags = behavior.all_tags();
    let map: BTreeMap<Tag, Tag> =
        tags.iter().enumerate().map(|(i, t)| (*t, Tag::new(i as u64 + 1))).collect();
    let mut out = Behavior::new();
    for (name, trace) in behavior.iter() {
        let retagged = trace
            .retag(|t| map[&t])
            .expect("order-preserving renumbering keeps chains strictly increasing");
        out.insert_trace(name.clone(), retagged);
    }
    out
}

/// Computes the canonical representative of a behavior's flow-equivalence
/// class: the per-signal value sequences (Definition 4 forgets
/// synchronization between distinct signals).
///
/// ```
/// use polysig_tagged::{flow_canonical, Behavior, Value};
///
/// let mut a = Behavior::new();
/// a.push_event("x", 1, Value::Int(1));
/// a.push_event("y", 1, Value::Int(9)); // synchronous with x
///
/// let mut b = Behavior::new();
/// b.push_event("x", 1, Value::Int(1));
/// b.push_event("y", 5, Value::Int(9)); // later than x — same flows
///
/// assert_eq!(flow_canonical(&a), flow_canonical(&b));
/// ```
pub fn flow_canonical(behavior: &Behavior) -> FlowClass {
    FlowClass::of(behavior)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn b(evts: &[(&str, u64, i64)]) -> Behavior {
        let mut out = Behavior::new();
        for &(name, tag, v) in evts {
            out.push_event(name, tag, Value::Int(v));
        }
        out
    }

    #[test]
    fn canonical_is_idempotent() {
        let x = b(&[("x", 3, 1), ("y", 3, 2), ("x", 7, 3)]);
        let c = stretch_canonical(&x);
        assert_eq!(stretch_canonical(&c), c);
    }

    #[test]
    fn canonical_preserves_synchronization() {
        let x = b(&[("x", 3, 1), ("y", 3, 2)]);
        let c = stretch_canonical(&x);
        // both events must still share a tag
        assert_eq!(c.all_tags().len(), 1);
        assert_eq!(c.all_tags()[0], Tag::new(1));
    }

    #[test]
    fn canonical_distinguishes_desynchronized_events() {
        let sync = b(&[("x", 1, 1), ("y", 1, 2)]);
        let split = b(&[("x", 1, 1), ("y", 2, 2)]);
        assert_ne!(stretch_canonical(&sync), stretch_canonical(&split));
        // ...but the flows agree
        assert_eq!(flow_canonical(&sync), flow_canonical(&split));
    }

    #[test]
    fn canonical_keeps_silent_variables() {
        let mut x = b(&[("x", 4, 1)]);
        x.declare("quiet");
        let c = stretch_canonical(&x);
        assert_eq!(c.var_count(), 2);
        assert!(c.trace(&"quiet".into()).unwrap().is_empty());
    }

    #[test]
    fn flow_canonical_orders_per_signal() {
        let interleaved = b(&[("x", 1, 1), ("y", 2, 10), ("x", 3, 2)]);
        let flows = flow_canonical(&interleaved);
        assert_eq!(flows.values(&"x".into()).unwrap(), &[Value::Int(1), Value::Int(2)]);
        assert_eq!(flows.values(&"y".into()).unwrap(), &[Value::Int(10)]);
    }
}
