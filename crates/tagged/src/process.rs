//! Processes: sets of behaviors over a common variable set (Definition 1).
//!
//! The paper works with stretch-closed, generally infinite sets of infinite
//! behaviors. [`Process`] is the finite-prefix counterpart: a finite set of
//! behaviors stored *in canonical form* (one representative per
//! stretch-equivalence class), so that set operations implement "equality up
//! to stretching" — exactly what Lemma 1 licenses for Signal programs.

use std::collections::BTreeSet;
use std::fmt;

use crate::behavior::Behavior;
use crate::canonical::stretch_canonical;
use crate::error::TaggedError;
use crate::stretch::stretch_equivalent;
use crate::value::SigName;

/// A finite set of behaviors over a common variable set, quotiented by
/// stretching.
///
/// ```
/// use polysig_tagged::{Behavior, Process, Value};
///
/// let mut b = Behavior::new();
/// b.push_event("x", 5, Value::Int(1));
/// let mut p = Process::over([ "x".into() ]);
/// p.insert(b.clone()).unwrap();
///
/// // membership is up to stretching
/// let mut later = Behavior::new();
/// later.push_event("x", 99, Value::Int(1));
/// assert!(p.contains(&later));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Process {
    vars: BTreeSet<SigName>,
    behaviors: BTreeSet<Behavior>,
}

impl Process {
    /// Creates an empty process over the given variables.
    pub fn over(vars: impl IntoIterator<Item = SigName>) -> Self {
        Process { vars: vars.into_iter().collect(), behaviors: BTreeSet::new() }
    }

    /// Creates a process from behaviors; all must range over the same
    /// variables.
    ///
    /// # Errors
    ///
    /// Returns [`TaggedError::VariableMismatch`] when a behavior's variables
    /// differ from the first behavior's.
    pub fn from_behaviors(
        behaviors: impl IntoIterator<Item = Behavior>,
    ) -> Result<Self, TaggedError> {
        let mut iter = behaviors.into_iter();
        let Some(first) = iter.next() else {
            return Ok(Process::over([]));
        };
        let mut p = Process::over(first.var_set());
        p.insert(first)?;
        for b in iter {
            p.insert(b)?;
        }
        Ok(p)
    }

    /// The variable set — the paper's `vars(P)`.
    pub fn vars(&self) -> &BTreeSet<SigName> {
        &self.vars
    }

    /// Adds a behavior (canonicalized) to the process.
    ///
    /// # Errors
    ///
    /// Returns [`TaggedError::VariableMismatch`] if the behavior does not
    /// range over `vars(P)`. A behavior may omit a declared variable only by
    /// declaring it silent; callers should [`Behavior::declare`] silent
    /// variables explicitly.
    pub fn insert(&mut self, behavior: Behavior) -> Result<bool, TaggedError> {
        let mut behavior = behavior;
        // Auto-declare silent variables so processes are easy to build.
        for v in &self.vars {
            behavior.declare(v.clone());
        }
        if behavior.var_set() != self.vars {
            return Err(TaggedError::VariableMismatch {
                expected: self.vars.iter().cloned().collect(),
                found: behavior.vars().cloned().collect(),
            });
        }
        Ok(self.behaviors.insert(stretch_canonical(&behavior)))
    }

    /// Number of stretch-equivalence classes in the process.
    pub fn len(&self) -> usize {
        self.behaviors.len()
    }

    /// `true` iff the process has no behaviors (the empty process, not to be
    /// confused with the process containing only the silent behavior).
    pub fn is_empty(&self) -> bool {
        self.behaviors.is_empty()
    }

    /// Iterates over canonical representatives.
    pub fn iter(&self) -> impl Iterator<Item = &Behavior> + '_ {
        self.behaviors.iter()
    }

    /// Membership up to stretching.
    pub fn contains(&self, behavior: &Behavior) -> bool {
        if behavior.var_set() != self.vars {
            // tolerate behaviors that just forgot to declare silent vars
            let mut padded = behavior.clone();
            for v in &self.vars {
                padded.declare(v.clone());
            }
            if padded.var_set() != self.vars {
                return false;
            }
            return self.behaviors.contains(&stretch_canonical(&padded));
        }
        self.behaviors.contains(&stretch_canonical(behavior))
    }

    /// Projection `P|var` (element-wise).
    pub fn restrict_to(&self, vars: impl IntoIterator<Item = SigName> + Clone) -> Process {
        let keep: BTreeSet<SigName> = vars.into_iter().collect();
        let mut out = Process::over(self.vars.intersection(&keep).cloned());
        for b in &self.behaviors {
            out.insert(b.restrict_to(keep.iter().cloned()))
                .expect("projection keeps variables consistent");
        }
        out
    }

    /// Hiding `P\var` (element-wise).
    pub fn hide(&self, vars: impl IntoIterator<Item = SigName>) -> Process {
        let drop: BTreeSet<SigName> = vars.into_iter().collect();
        let mut out = Process::over(self.vars.difference(&drop).cloned());
        for b in &self.behaviors {
            out.insert(b.hide(drop.iter().cloned())).expect("hiding keeps variables consistent");
        }
        out
    }

    /// Renaming `P[y/x]` (Definition 5, element-wise).
    ///
    /// # Errors
    ///
    /// Fails if `x` is not a variable or `y` is not fresh.
    pub fn rename(&self, x: &SigName, y: &SigName) -> Result<Process, TaggedError> {
        if !self.vars.contains(x) {
            return Err(TaggedError::RenameSourceMissing { source: x.clone() });
        }
        if self.vars.contains(y) {
            return Err(TaggedError::RenameTargetExists { target: y.clone() });
        }
        let mut vars = self.vars.clone();
        vars.remove(x);
        vars.insert(y.clone());
        let mut out = Process::over(vars);
        for b in &self.behaviors {
            out.insert(b.rename(x, y)?)?;
        }
        Ok(out)
    }

    /// Process equality up to stretching (the paper's `P = Q` between
    /// stretch closures): same variables and same canonical behavior sets.
    pub fn equivalent(&self, other: &Process) -> bool {
        self.vars == other.vars && self.behaviors == other.behaviors
    }

    /// `true` iff every behavior of `self` belongs to `other` (up to
    /// stretching).
    pub fn subset_of(&self, other: &Process) -> bool {
        self.vars == other.vars && self.behaviors.is_subset(&other.behaviors)
    }

    /// Checks that every stored representative really is canonical and that
    /// two distinct representatives are never stretch-equivalent — the
    /// internal invariant backing [`Process::equivalent`].
    pub fn check_invariants(&self) -> bool {
        let all_canonical =
            self.behaviors.iter().all(|b| &stretch_canonical(b) == b && b.var_set() == self.vars);
        let all_distinct = self
            .behaviors
            .iter()
            .enumerate()
            .all(|(i, b)| self.behaviors.iter().skip(i + 1).all(|c| !stretch_equivalent(b, c)));
        all_canonical && all_distinct
    }
}

impl fmt::Display for Process {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "process over {{{}}} with {} behavior(s):",
            self.vars.iter().map(|v| v.as_str()).collect::<Vec<_>>().join(", "),
            self.behaviors.len()
        )?;
        for (i, b) in self.behaviors.iter().enumerate() {
            writeln!(f, "-- behavior {i} --")?;
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn b(evts: &[(&str, u64, i64)]) -> Behavior {
        let mut out = Behavior::new();
        for &(name, tag, v) in evts {
            out.push_event(name, tag, Value::Int(v));
        }
        out
    }

    #[test]
    fn insert_canonicalizes_and_dedups() {
        let mut p = Process::over(["x".into()]);
        assert!(p.insert(b(&[("x", 5, 1)])).unwrap());
        // stretch-equivalent duplicate is not re-inserted
        assert!(!p.insert(b(&[("x", 77, 1)])).unwrap());
        assert_eq!(p.len(), 1);
        assert!(p.check_invariants());
    }

    #[test]
    fn insert_rejects_foreign_variables() {
        let mut p = Process::over(["x".into()]);
        let err = p.insert(b(&[("y", 1, 1)])).unwrap_err();
        assert!(matches!(err, TaggedError::VariableMismatch { .. }));
    }

    #[test]
    fn silent_variables_are_auto_declared() {
        let mut p = Process::over(["x".into(), "y".into()]);
        p.insert(b(&[("x", 1, 1)])).unwrap();
        assert_eq!(p.len(), 1);
        let stored = p.iter().next().unwrap();
        assert!(stored.trace(&"y".into()).unwrap().is_empty());
    }

    #[test]
    fn contains_is_up_to_stretching() {
        let mut p = Process::over(["x".into()]);
        p.insert(b(&[("x", 1, 1), ("x", 2, 2)])).unwrap();
        assert!(p.contains(&b(&[("x", 10, 1), ("x", 30, 2)])));
        assert!(!p.contains(&b(&[("x", 10, 2), ("x", 30, 1)])));
    }

    #[test]
    fn projection_and_hiding() {
        let mut p = Process::over(["x".into(), "y".into()]);
        p.insert(b(&[("x", 1, 1), ("y", 2, 2)])).unwrap();
        let px = p.restrict_to(["x".into()]);
        assert_eq!(px.vars().len(), 1);
        assert!(px.contains(&b(&[("x", 1, 1)])));
        let py = p.hide(["x".into()]);
        assert!(py.contains(&b(&[("y", 1, 2)])));
    }

    #[test]
    fn renaming_round_trips() {
        let mut p = Process::over(["x".into()]);
        p.insert(b(&[("x", 1, 7)])).unwrap();
        let q = p.rename(&"x".into(), &"z".into()).unwrap();
        assert!(q.contains(&b(&[("z", 1, 7)])));
        let back = q.rename(&"z".into(), &"x".into()).unwrap();
        assert!(back.equivalent(&p));
    }

    #[test]
    fn equivalence_and_subset() {
        let mut p = Process::over(["x".into()]);
        p.insert(b(&[("x", 1, 1)])).unwrap();
        let mut q = p.clone();
        q.insert(b(&[("x", 1, 2)])).unwrap();
        assert!(p.subset_of(&q));
        assert!(!q.subset_of(&p));
        assert!(!p.equivalent(&q));
    }

    #[test]
    fn from_behaviors_checks_consistency() {
        let ok = Process::from_behaviors([b(&[("x", 1, 1)]), b(&[("x", 1, 2)])]).unwrap();
        assert_eq!(ok.len(), 2);
        let err = Process::from_behaviors([b(&[("x", 1, 1)]), b(&[("y", 1, 2)])]);
        assert!(err.is_err());
    }

    #[test]
    fn lemma1_shape_all_signal_denotations_are_stretch_closed() {
        // A process built from canonical forms contains each class's every
        // stretching by construction of `contains` — spot-check the claim.
        let mut p = Process::over(["x".into(), "y".into()]);
        p.insert(b(&[("x", 1, 1), ("y", 1, 5)])).unwrap();
        for scale in [1u64, 3, 10] {
            assert!(p.contains(&b(&[("x", scale, 1), ("y", scale, 5)])));
        }
    }
}
