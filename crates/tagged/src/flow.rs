//! Relaxation and flow-equivalence (Definition 4).
//!
//! Relaxation stretches each signal of a behavior *independently*, which may
//! break inter-signal synchronization; flow-equivalence keeps only the value
//! sequence carried by each signal. This is the equivalence preserved by
//! asynchronous communication media and the one in which the paper's
//! Theorems 1 and 2 are stated.

use std::collections::BTreeMap;
use std::fmt;

use crate::behavior::Behavior;
use crate::value::{SigName, Value};

/// The flow-equivalence class of a behavior: each signal's value sequence,
/// with synchronization between signals forgotten.
///
/// ```
/// use polysig_tagged::{Behavior, FlowClass, Value};
///
/// let mut b = Behavior::new();
/// b.push_event("x", 1, Value::Int(1));
/// b.push_event("x", 2, Value::Int(2));
/// let f = FlowClass::of(&b);
/// assert_eq!(f.values(&"x".into()).unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowClass {
    flows: BTreeMap<SigName, Vec<Value>>,
}

impl FlowClass {
    /// Computes the flow class of a behavior.
    pub fn of(behavior: &Behavior) -> Self {
        FlowClass {
            flows: behavior.iter().map(|(name, trace)| (name.clone(), trace.values())).collect(),
        }
    }

    /// The value sequence of a signal, if the signal is a variable.
    pub fn values(&self, name: &SigName) -> Option<&[Value]> {
        self.flows.get(name).map(Vec::as_slice)
    }

    /// Iterates over `(name, flow)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&SigName, &[Value])> + '_ {
        self.flows.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Variables covered by this flow class.
    pub fn vars(&self) -> impl Iterator<Item = &SigName> + '_ {
        self.flows.keys()
    }

    /// `true` iff for every signal, `self`'s flow is a prefix of `other`'s.
    ///
    /// Useful when comparing a consumer-side prefix against a producer-side
    /// flow while messages are still in flight.
    pub fn is_prefix_of(&self, other: &FlowClass) -> bool {
        self.flows.iter().all(|(name, flow)| {
            other.flows.get(name).is_some_and(|longer| {
                longer.len() >= flow.len() && &longer[..flow.len()] == flow.as_slice()
            })
        })
    }
}

impl fmt::Display for FlowClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, flow) in &self.flows {
            write!(f, "{name}: ")?;
            for (i, v) in flow.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Checks Definition 4 directly: is `c` a relaxation of `b`?
///
/// `b ⊑ c` iff `vars(b) = vars(c)` and for every variable `x`, `c|{x}` is a
/// stretching of `b|{x}`. Since single-signal stretching can only delay
/// events while preserving the value sequence, this reduces to equal flows
/// with per-event delay `t_b(x_i) ≤ t_c(x_i)`.
pub fn is_relaxation_of(b: &Behavior, c: &Behavior) -> bool {
    if b.var_set() != c.var_set() {
        return false;
    }
    b.iter().all(|(name, tb)| {
        let tc = c.trace(name).expect("var sets equal");
        tb.len() == tc.len()
            && tb
                .iter()
                .zip(tc.iter())
                .all(|(eb, ec)| eb.value() == ec.value() && eb.tag() <= ec.tag())
    })
}

/// Flow-equivalence `b ≈ c` (Definition 4): some behavior relaxes into both,
/// i.e. the per-signal value sequences coincide.
///
/// ```
/// use polysig_tagged::{flow_equivalent, Behavior, Value};
///
/// let mut sync = Behavior::new();
/// sync.push_event("x", 1, Value::Int(1));
/// sync.push_event("y", 1, Value::Int(2));
///
/// let mut skewed = Behavior::new();
/// skewed.push_event("y", 1, Value::Int(2));
/// skewed.push_event("x", 3, Value::Int(1));
///
/// assert!(flow_equivalent(&sync, &skewed));
/// ```
pub fn flow_equivalent(b: &Behavior, c: &Behavior) -> bool {
    b.var_set() == c.var_set() && FlowClass::of(b) == FlowClass::of(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(evts: &[(&str, u64, i64)]) -> Behavior {
        let mut out = Behavior::new();
        for &(name, tag, v) in evts {
            out.push_event(name, tag, Value::Int(v));
        }
        out
    }

    #[test]
    fn relaxation_allows_independent_delays() {
        let tight = b(&[("x", 1, 1), ("y", 1, 2)]);
        let loose = b(&[("x", 2, 1), ("y", 5, 2)]);
        assert!(is_relaxation_of(&tight, &loose));
        assert!(!is_relaxation_of(&loose, &tight));
    }

    #[test]
    fn relaxation_preserves_per_signal_order_and_values() {
        let a = b(&[("x", 1, 1), ("x", 2, 2)]);
        let swapped = b(&[("x", 1, 2), ("x", 2, 1)]);
        assert!(!is_relaxation_of(&a, &swapped));
    }

    #[test]
    fn flow_equivalence_forgets_synchronization() {
        let sync = b(&[("x", 1, 1), ("y", 1, 2)]);
        let seq = b(&[("y", 1, 2), ("x", 2, 1)]);
        assert!(flow_equivalent(&sync, &seq));
        // but stretch-equivalence does not
        assert!(!crate::stretch::stretch_equivalent(&sync, &seq));
    }

    #[test]
    fn flow_equivalence_distinguishes_flows() {
        let a = b(&[("x", 1, 1)]);
        let c = b(&[("x", 1, 2)]);
        assert!(!flow_equivalent(&a, &c));
        let longer = b(&[("x", 1, 1), ("x", 2, 2)]);
        assert!(!flow_equivalent(&a, &longer));
    }

    #[test]
    fn stretch_equivalence_implies_flow_equivalence() {
        let a = b(&[("x", 1, 1), ("y", 3, 2)]);
        let c = b(&[("x", 10, 1), ("y", 30, 2)]);
        assert!(crate::stretch::stretch_equivalent(&a, &c));
        assert!(flow_equivalent(&a, &c));
    }

    #[test]
    fn prefix_check() {
        let short = FlowClass::of(&b(&[("x", 1, 1)]));
        let long = FlowClass::of(&b(&[("x", 1, 1), ("x", 2, 2)]));
        assert!(short.is_prefix_of(&long));
        assert!(!long.is_prefix_of(&short));
        assert!(short.is_prefix_of(&short));
    }

    #[test]
    fn display_flows() {
        let f = FlowClass::of(&b(&[("x", 1, 1), ("x", 2, 2)]));
        assert!(f.to_string().contains("x: 1 2"));
    }
}
