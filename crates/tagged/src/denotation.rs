//! Denotations of the primitive Signal equations (Table 1).
//!
//! For each primitive this module provides both a *generator* (the primitives
//! are deterministic functions of their argument traces, so the denotation of
//! an equation is computable) and a *checker* that validates an alleged
//! output trace against the set-theoretic definition of Table 1. The
//! simulator in `polysig-sim` is validated against these functions.

use crate::signal::SignalTrace;
use crate::value::Value;

/// Denotation of `x = pre val y` (Table 1, first row): `x` is synchronous
/// with `y`, carries `val` at `y`'s first tag and afterwards `y`'s previous
/// value.
///
/// ```
/// use polysig_tagged::denotation::eval_pre;
/// use polysig_tagged::{SignalTrace, Tag, Value};
///
/// let mut y = SignalTrace::new();
/// y.push(Tag::new(1), Value::Int(10)).unwrap();
/// y.push(Tag::new(4), Value::Int(20)).unwrap();
///
/// let x = eval_pre(Value::Int(0), &y);
/// assert_eq!(x.values(), vec![Value::Int(0), Value::Int(10)]);
/// assert_eq!(x.tags().collect::<Vec<_>>(), y.tags().collect::<Vec<_>>());
/// ```
pub fn eval_pre(init: Value, y: &SignalTrace) -> SignalTrace {
    let mut out = SignalTrace::new();
    let mut prev = init;
    for e in y.iter() {
        out.push(e.tag(), prev).expect("y is a chain");
        prev = e.value();
    }
    out
}

/// Checks Table 1's `pre` denotation: is `x` a legal output for
/// `x = pre init y`?
pub fn satisfies_pre(x: &SignalTrace, init: Value, y: &SignalTrace) -> bool {
    x == &eval_pre(init, y)
}

/// Denotation of `x = y when z` (Table 1, second row): `x` ticks exactly when
/// `y` ticks *and* `z` ticks with value `true`, carrying `y`'s value.
///
/// ```
/// use polysig_tagged::denotation::eval_when;
/// use polysig_tagged::{SignalTrace, Tag, Value};
///
/// let mut y = SignalTrace::new();
/// y.push(Tag::new(1), Value::Int(10)).unwrap();
/// y.push(Tag::new(2), Value::Int(20)).unwrap();
/// let mut z = SignalTrace::new();
/// z.push(Tag::new(2), Value::Bool(true)).unwrap();
///
/// let x = eval_when(&y, &z);
/// assert_eq!(x.values(), vec![Value::Int(20)]);
/// ```
pub fn eval_when(y: &SignalTrace, z: &SignalTrace) -> SignalTrace {
    let mut out = SignalTrace::new();
    for e in y.iter() {
        if z.value_at(e.tag()) == Some(Value::TRUE) {
            out.push(e.tag(), e.value()).expect("y is a chain");
        }
    }
    out
}

/// Checks Table 1's `when` denotation.
pub fn satisfies_when(x: &SignalTrace, y: &SignalTrace, z: &SignalTrace) -> bool {
    x == &eval_when(y, z)
}

/// Denotation of `x = y default z` (Table 1, third row): `x` ticks when `y`
/// or `z` ticks, preferring `y`'s value when both do.
///
/// ```
/// use polysig_tagged::denotation::eval_default;
/// use polysig_tagged::{SignalTrace, Tag, Value};
///
/// let mut y = SignalTrace::new();
/// y.push(Tag::new(2), Value::Int(10)).unwrap();
/// let mut z = SignalTrace::new();
/// z.push(Tag::new(1), Value::Int(-1)).unwrap();
/// z.push(Tag::new(2), Value::Int(-2)).unwrap();
///
/// let x = eval_default(&y, &z);
/// assert_eq!(x.values(), vec![Value::Int(-1), Value::Int(10)]);
/// ```
pub fn eval_default(y: &SignalTrace, z: &SignalTrace) -> SignalTrace {
    let mut tags: Vec<crate::tag::Tag> = y.tags().chain(z.tags()).collect();
    tags.sort_unstable();
    tags.dedup();
    let mut out = SignalTrace::new();
    for t in tags {
        let v = y.value_at(t).or_else(|| z.value_at(t)).expect("t came from y or z");
        out.push(t, v).expect("tags sorted and deduped");
    }
    out
}

/// Checks Table 1's `default` denotation.
pub fn satisfies_default(x: &SignalTrace, y: &SignalTrace, z: &SignalTrace) -> bool {
    x == &eval_default(y, z)
}

/// Denotation of a synchronous pointwise operator `x = f(y₁, …, yₙ)`: all
/// arguments must be synchronous (identical tag chains); `x` ticks with them
/// carrying `f` of the argument values.
///
/// Returns `None` when the arguments are not synchronous (a clock violation)
/// or when `f` itself fails (e.g. a type error), mirroring the paper's
/// assumption that `f` "performs a computation on synchronously available
/// arguments".
pub fn eval_app(
    args: &[&SignalTrace],
    mut f: impl FnMut(&[Value]) -> Option<Value>,
) -> Option<SignalTrace> {
    let Some(first) = args.first() else {
        return Some(SignalTrace::new());
    };
    let tags: Vec<crate::tag::Tag> = first.tags().collect();
    for a in args {
        if a.tags().collect::<Vec<_>>() != tags {
            return None;
        }
    }
    let mut out = SignalTrace::new();
    for (i, t) in tags.iter().enumerate() {
        let row: Vec<Value> =
            args.iter().map(|a| a.get(i).expect("synchronized lengths").value()).collect();
        out.push(*t, f(&row)?).expect("tags are a chain");
    }
    Some(out)
}

/// Checks the pointwise-operator denotation.
pub fn satisfies_app(
    x: &SignalTrace,
    args: &[&SignalTrace],
    f: impl FnMut(&[Value]) -> Option<Value>,
) -> bool {
    eval_app(args, f).as_ref() == Some(x)
}

/// Denotation of the paper's clock shorthand `^x` = `true when (x == x)`: a
/// boolean `true` at exactly the tags of `x`.
pub fn eval_clock(x: &SignalTrace) -> SignalTrace {
    let mut out = SignalTrace::new();
    for e in x.iter() {
        out.push(e.tag(), Value::TRUE).expect("x is a chain");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::Tag;

    fn tr(pairs: &[(u64, Value)]) -> SignalTrace {
        let mut s = SignalTrace::new();
        for &(t, v) in pairs {
            s.push(Tag::new(t), v).unwrap();
        }
        s
    }

    fn ints(pairs: &[(u64, i64)]) -> SignalTrace {
        tr(&pairs.iter().map(|&(t, v)| (t, Value::Int(v))).collect::<Vec<_>>())
    }

    fn bools(pairs: &[(u64, bool)]) -> SignalTrace {
        tr(&pairs.iter().map(|&(t, v)| (t, Value::Bool(v))).collect::<Vec<_>>())
    }

    #[test]
    fn pre_shifts_by_one_with_initial_value() {
        let y = ints(&[(1, 10), (3, 20), (9, 30)]);
        let x = eval_pre(Value::Int(0), &y);
        assert_eq!(x.values(), vec![Value::Int(0), Value::Int(10), Value::Int(20)]);
        assert!(satisfies_pre(&x, Value::Int(0), &y));
        assert!(!satisfies_pre(&y, Value::Int(0), &y));
    }

    #[test]
    fn pre_of_empty_is_empty() {
        let y = SignalTrace::new();
        assert!(eval_pre(Value::Int(0), &y).is_empty());
    }

    #[test]
    fn when_filters_on_true_condition() {
        let y = ints(&[(1, 10), (2, 20), (3, 30)]);
        let z = bools(&[(1, false), (3, true), (4, true)]);
        let x = eval_when(&y, &z);
        assert_eq!(x.values(), vec![Value::Int(30)]);
        assert_eq!(x.get(0).unwrap().tag(), Tag::new(3));
        assert!(satisfies_when(&x, &y, &z));
    }

    #[test]
    fn when_requires_condition_presence() {
        // z absent at y's tags → x never ticks
        let y = ints(&[(1, 10)]);
        let z = bools(&[(2, true)]);
        assert!(eval_when(&y, &z).is_empty());
    }

    #[test]
    fn default_is_left_biased_union() {
        let y = ints(&[(2, 10), (4, 40)]);
        let z = ints(&[(1, -1), (2, -2)]);
        let x = eval_default(&y, &z);
        assert_eq!(x.values(), vec![Value::Int(-1), Value::Int(10), Value::Int(40)]);
        assert!(satisfies_default(&x, &y, &z));
    }

    #[test]
    fn default_with_empty_argument_is_identity() {
        let y = ints(&[(1, 1)]);
        let empty = SignalTrace::new();
        assert_eq!(eval_default(&y, &empty), y);
        assert_eq!(eval_default(&empty, &y), y);
    }

    #[test]
    fn app_requires_synchronous_arguments() {
        let y = ints(&[(1, 1), (2, 2)]);
        let z = ints(&[(1, 10), (2, 20)]);
        let sum =
            eval_app(&[&y, &z], |vs| Some(Value::Int(vs[0].as_int()? + vs[1].as_int()?))).unwrap();
        assert_eq!(sum.values(), vec![Value::Int(11), Value::Int(22)]);

        let skewed = ints(&[(1, 10), (3, 20)]);
        assert!(eval_app(&[&y, &skewed], |vs| Some(vs[0])).is_none());
    }

    #[test]
    fn app_propagates_operator_failure() {
        let y = bools(&[(1, true)]);
        // integer addition over a boolean fails
        assert!(eval_app(&[&y], |vs| Some(Value::Int(vs[0].as_int()? + 1))).is_none());
    }

    #[test]
    fn app_of_no_arguments_is_empty() {
        assert!(eval_app(&[], |_| Some(Value::TRUE)).unwrap().is_empty());
    }

    #[test]
    fn clock_is_true_at_signal_tags() {
        let x = ints(&[(1, 5), (7, 6)]);
        let c = eval_clock(&x);
        assert_eq!(c.values(), vec![Value::TRUE, Value::TRUE]);
        assert_eq!(c.tags().collect::<Vec<_>>(), x.tags().collect::<Vec<_>>());
    }

    #[test]
    fn satisfies_app_checker() {
        let y = ints(&[(1, 2)]);
        let x = ints(&[(1, 4)]);
        assert!(satisfies_app(&x, &[&y], |vs| { Some(Value::Int(vs[0].as_int()? * 2)) }));
    }
}
