//! Events: tag/value pairs (the paper's `ε = T × V`).

use std::fmt;

use crate::tag::Tag;
use crate::value::Value;

/// A single event of a signal: a [`Value`] observed at a [`Tag`].
///
/// ```
/// use polysig_tagged::{Event, Tag, Value};
/// let e = Event::new(Tag::new(2), Value::Int(7));
/// assert_eq!(e.tag(), Tag::new(2));
/// assert_eq!(e.value(), Value::Int(7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Event {
    tag: Tag,
    value: Value,
}

impl Event {
    /// Creates an event.
    pub fn new(tag: Tag, value: Value) -> Self {
        Event { tag, value }
    }

    /// The time of the event — the paper's `t(e)`.
    pub fn tag(&self) -> Tag {
        self.tag
    }

    /// The value carried by the event.
    pub fn value(&self) -> Value {
        self.value
    }

    /// Returns a copy of this event moved to a different tag (used when
    /// stretching or canonicalizing behaviors).
    pub fn at(&self, tag: Tag) -> Event {
        Event { tag, value: self.value }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.value, self.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = Event::new(Tag::new(5), Value::Bool(true));
        assert_eq!(e.tag().as_u64(), 5);
        assert_eq!(e.value(), Value::TRUE);
    }

    #[test]
    fn retag_preserves_value() {
        let e = Event::new(Tag::new(1), Value::Int(3));
        let moved = e.at(Tag::new(9));
        assert_eq!(moved.tag(), Tag::new(9));
        assert_eq!(moved.value(), Value::Int(3));
    }

    #[test]
    fn order_is_tag_major() {
        let early = Event::new(Tag::new(1), Value::Int(100));
        let late = Event::new(Tag::new(2), Value::Int(-100));
        assert!(early < late);
    }

    #[test]
    fn display() {
        let e = Event::new(Tag::new(4), Value::Int(2));
        assert_eq!(e.to_string(), "2@t4");
    }
}
