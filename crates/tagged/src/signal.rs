//! Signal traces: discrete chains of events (Definition 1).
//!
//! A signal `s : T ⇀ V` is a partial function over a discrete, well-founded
//! chain of tags. [`SignalTrace`] stores the finite prefix of such a chain as
//! a strictly tag-increasing event vector.

use std::fmt;

use crate::event::Event;
use crate::tag::Tag;
use crate::value::Value;

/// A finite prefix of a signal: strictly tag-increasing events.
///
/// ```
/// use polysig_tagged::{SignalTrace, Tag, Value};
///
/// let mut s = SignalTrace::new();
/// s.push(Tag::new(1), Value::Int(10)).unwrap();
/// s.push(Tag::new(3), Value::Int(20)).unwrap();
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.value_at(Tag::new(3)), Some(Value::Int(20)));
/// assert_eq!(s.value_at(Tag::new(2)), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalTrace {
    events: Vec<Event>,
}

impl SignalTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        SignalTrace { events: Vec::new() }
    }

    /// Creates a trace from events that are already strictly tag-increasing.
    ///
    /// Returns `None` if the chain condition is violated.
    pub fn from_events(events: Vec<Event>) -> Option<Self> {
        for w in events.windows(2) {
            if w[0].tag() >= w[1].tag() {
                return None;
            }
        }
        Some(SignalTrace { events })
    }

    /// Appends an event; its tag must be strictly greater than the last one.
    ///
    /// # Errors
    ///
    /// Returns the offending tags when monotonicity would be violated.
    pub fn push(&mut self, tag: Tag, value: Value) -> Result<(), (Tag, Tag)> {
        if let Some(last) = self.events.last() {
            if last.tag() >= tag {
                return Err((last.tag(), tag));
            }
        }
        self.events.push(Event::new(tag, value));
        Ok(())
    }

    /// Number of events in the prefix (the paper's `|s|` for finite chains).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff the signal never ticks in this prefix.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The `i`-th event (0-based; the paper writes `s_i` 1-based).
    pub fn get(&self, i: usize) -> Option<Event> {
        self.events.get(i).copied()
    }

    /// Iterates over events in tag order.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.events.iter().copied()
    }

    /// The tags at which the signal is present — the paper's `tags(s)`.
    pub fn tags(&self) -> impl Iterator<Item = Tag> + '_ {
        self.events.iter().map(Event::tag)
    }

    /// The value sequence of the signal, forgetting tags (the *flow*).
    pub fn values(&self) -> Vec<Value> {
        self.events.iter().map(Event::value).collect()
    }

    /// The value at a given tag, if the signal is present there.
    pub fn value_at(&self, tag: Tag) -> Option<Value> {
        self.events.binary_search_by_key(&tag, Event::tag).ok().map(|i| self.events[i].value())
    }

    /// `true` iff the signal ticks at `tag`.
    pub fn is_present_at(&self, tag: Tag) -> bool {
        self.value_at(tag).is_some()
    }

    /// Number of events with tag `<= t` — the paper's `|[s]_t|`.
    pub fn count_up_to(&self, t: Tag) -> usize {
        self.events.partition_point(|e| e.tag() <= t)
    }

    /// The last event, if any.
    pub fn last(&self) -> Option<Event> {
        self.events.last().copied()
    }

    /// Sub-chain `s_{i..i+n}` of at most `n` events starting at index `i`.
    pub fn window(&self, i: usize, n: usize) -> &[Event] {
        let end = (i + n).min(self.events.len());
        if i >= self.events.len() {
            &[]
        } else {
            &self.events[i..end]
        }
    }

    /// Returns a copy whose tags are replaced by `f(tag)`; `f` must be
    /// strictly monotone or the result is `None`.
    pub fn retag(&self, mut f: impl FnMut(Tag) -> Tag) -> Option<SignalTrace> {
        let events: Vec<Event> = self.events.iter().map(|e| e.at(f(e.tag()))).collect();
        SignalTrace::from_events(events)
    }
}

impl FromIterator<Event> for SignalTrace {
    /// Collects events into a trace.
    ///
    /// # Panics
    ///
    /// Panics if the events are not strictly tag-increasing.
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        SignalTrace::from_events(iter.into_iter().collect())
            .expect("events must be strictly tag-increasing")
    }
}

impl Extend<Event> for SignalTrace {
    fn extend<I: IntoIterator<Item = Event>>(&mut self, iter: I) {
        for e in iter {
            self.push(e.tag(), e.value()).expect("extended events must be strictly tag-increasing");
        }
    }
}

impl fmt::Display for SignalTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(pairs: &[(u64, i64)]) -> SignalTrace {
        let mut s = SignalTrace::new();
        for &(t, v) in pairs {
            s.push(Tag::new(t), Value::Int(v)).unwrap();
        }
        s
    }

    #[test]
    fn push_enforces_strict_monotonicity() {
        let mut s = trace(&[(1, 10)]);
        assert_eq!(s.push(Tag::new(1), Value::Int(11)), Err((Tag::new(1), Tag::new(1))));
        assert_eq!(s.push(Tag::new(0), Value::Int(11)), Err((Tag::new(1), Tag::new(0))));
        assert!(s.push(Tag::new(2), Value::Int(11)).is_ok());
    }

    #[test]
    fn from_events_rejects_bad_chains() {
        let good =
            vec![Event::new(Tag::new(1), Value::Int(1)), Event::new(Tag::new(2), Value::Int(2))];
        assert!(SignalTrace::from_events(good).is_some());
        let bad =
            vec![Event::new(Tag::new(2), Value::Int(1)), Event::new(Tag::new(2), Value::Int(2))];
        assert!(SignalTrace::from_events(bad).is_none());
    }

    #[test]
    fn value_at_and_presence() {
        let s = trace(&[(1, 10), (4, 40)]);
        assert_eq!(s.value_at(Tag::new(4)), Some(Value::Int(40)));
        assert!(!s.is_present_at(Tag::new(2)));
        assert!(s.is_present_at(Tag::new(1)));
    }

    #[test]
    fn count_up_to_matches_paper_prefix_notation() {
        let s = trace(&[(1, 1), (3, 2), (5, 3)]);
        assert_eq!(s.count_up_to(Tag::new(0)), 0);
        assert_eq!(s.count_up_to(Tag::new(1)), 1);
        assert_eq!(s.count_up_to(Tag::new(4)), 2);
        assert_eq!(s.count_up_to(Tag::new(100)), 3);
    }

    #[test]
    fn values_gives_the_flow() {
        let s = trace(&[(2, 7), (9, 8)]);
        assert_eq!(s.values(), vec![Value::Int(7), Value::Int(8)]);
    }

    #[test]
    fn window_clamps() {
        let s = trace(&[(1, 1), (2, 2), (3, 3)]);
        assert_eq!(s.window(1, 5).len(), 2);
        assert_eq!(s.window(3, 1).len(), 0);
        assert_eq!(s.window(0, 2)[1].value(), Value::Int(2));
    }

    #[test]
    fn retag_requires_monotone_map() {
        let s = trace(&[(1, 1), (2, 2)]);
        let shifted = s.retag(|t| Tag::new(t.as_u64() + 10)).unwrap();
        assert_eq!(shifted.get(0).unwrap().tag(), Tag::new(11));
        // collapsing map breaks the chain
        assert!(s.retag(|_| Tag::new(5)).is_none());
    }

    #[test]
    fn display_lists_events() {
        let s = trace(&[(1, 10)]);
        assert_eq!(s.to_string(), "[10@t1]");
    }

    #[test]
    fn collect_and_extend() {
        let s: SignalTrace = vec![Event::new(Tag::new(1), Value::Int(4))].into_iter().collect();
        let mut s2 = s.clone();
        s2.extend([Event::new(Tag::new(8), Value::Int(5))]);
        assert_eq!(s2.len(), 2);
        assert_eq!(s.len(), 1);
    }
}
