//! Error type for tagged-model operations.

use std::fmt;

use crate::tag::Tag;
use crate::value::SigName;

/// Errors raised when constructing or combining tagged-model objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaggedError {
    /// An event was pushed at a tag not strictly after the last event of the
    /// signal's chain (chains must be discrete and well-founded, Def. 1).
    NonMonotoneTag {
        /// The signal whose chain was violated.
        signal: SigName,
        /// Tag of the last event already in the chain.
        last: Tag,
        /// Offending tag.
        pushed: Tag,
    },
    /// Behaviors combined in a process did not range over the same variables
    /// (a process is a set of behaviors over a *common* set of names).
    VariableMismatch {
        /// Variables of the process.
        expected: Vec<SigName>,
        /// Variables of the offending behavior.
        found: Vec<SigName>,
    },
    /// A renaming target already exists in the behavior (Definition 5
    /// requires the new name to be fresh).
    RenameTargetExists {
        /// The non-fresh target name.
        target: SigName,
    },
    /// A renaming source is not a variable of the behavior.
    RenameSourceMissing {
        /// The missing source name.
        source: SigName,
    },
}

impl fmt::Display for TaggedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaggedError::NonMonotoneTag { signal, last, pushed } => write!(
                f,
                "event pushed on signal `{signal}` at {pushed} does not follow last event at {last}"
            ),
            TaggedError::VariableMismatch { expected, found } => write!(
                f,
                "behavior variables {found:?} do not match process variables {expected:?}"
            ),
            TaggedError::RenameTargetExists { target } => {
                write!(f, "rename target `{target}` is not fresh in the behavior")
            }
            TaggedError::RenameSourceMissing { source } => {
                write!(f, "rename source `{source}` is not a variable of the behavior")
            }
        }
    }
}

impl std::error::Error for TaggedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = TaggedError::NonMonotoneTag {
            signal: SigName::from("x"),
            last: Tag::new(4),
            pushed: Tag::new(4),
        };
        let msg = e.to_string();
        assert!(msg.contains("x"));
        assert!(msg.contains("t4"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<TaggedError>();
    }
}
