//! Behaviors: partial maps from signal names to traces (Definition 1).
//!
//! A behavior `b : X ⇀ S` assigns a [`SignalTrace`] to each of its variables.
//! Projection (`b|var`), hiding (`b\var`) and renaming (`b[y/x]`,
//! Definition 5) are provided as methods.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::error::TaggedError;
use crate::signal::SignalTrace;
use crate::tag::Tag;
use crate::value::{SigName, Value};

/// A finite-prefix behavior over a set of signal names.
///
/// ```
/// use polysig_tagged::{Behavior, SigName, Value};
///
/// let mut b = Behavior::new();
/// b.push_event("x", 1, Value::Int(1));
/// b.push_event("y", 1, Value::Bool(true)); // synchronous with x's event
/// b.push_event("x", 2, Value::Int(2));
///
/// let only_x = b.restrict_to([SigName::from("x")]);
/// assert_eq!(only_x.vars().count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Behavior {
    signals: BTreeMap<SigName, SignalTrace>,
}

impl Behavior {
    /// Creates an empty behavior (no variables).
    pub fn new() -> Self {
        Behavior { signals: BTreeMap::new() }
    }

    /// Declares a variable with an empty trace if not present. A signal that
    /// never ticks is still part of `vars(b)`.
    pub fn declare(&mut self, name: impl Into<SigName>) {
        self.signals.entry(name.into()).or_default();
    }

    /// Adds an event on `name` at instant `tag` (declaring the variable if
    /// needed).
    ///
    /// # Panics
    ///
    /// Panics if the tag does not strictly follow the signal's last event —
    /// use [`Behavior::try_push_event`] for a fallible variant.
    pub fn push_event(&mut self, name: impl Into<SigName>, tag: impl Into<Tag>, value: Value) {
        self.try_push_event(name, tag, value).expect("non-monotone tag pushed on behavior");
    }

    /// Fallible variant of [`Behavior::push_event`].
    ///
    /// # Errors
    ///
    /// Returns [`TaggedError::NonMonotoneTag`] when the tag does not strictly
    /// follow the last event of the signal.
    pub fn try_push_event(
        &mut self,
        name: impl Into<SigName>,
        tag: impl Into<Tag>,
        value: Value,
    ) -> Result<(), TaggedError> {
        let name = name.into();
        let tag = tag.into();
        let trace = self.signals.entry(name.clone()).or_default();
        trace.push(tag, value).map_err(|(last, pushed)| TaggedError::NonMonotoneTag {
            signal: name,
            last,
            pushed,
        })
    }

    /// Inserts (or replaces) a whole trace for a variable.
    pub fn insert_trace(&mut self, name: impl Into<SigName>, trace: SignalTrace) {
        self.signals.insert(name.into(), trace);
    }

    /// The variables of the behavior — the paper's `vars(b)`.
    pub fn vars(&self) -> impl Iterator<Item = &SigName> + '_ {
        self.signals.keys()
    }

    /// The variables as an owned set.
    pub fn var_set(&self) -> BTreeSet<SigName> {
        self.signals.keys().cloned().collect()
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.signals.len()
    }

    /// The trace of one variable, if declared.
    pub fn trace(&self, name: &SigName) -> Option<&SignalTrace> {
        self.signals.get(name)
    }

    /// Iterates over `(name, trace)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&SigName, &SignalTrace)> + '_ {
        self.signals.iter()
    }

    /// Total number of events across all signals.
    pub fn event_count(&self) -> usize {
        self.signals.values().map(SignalTrace::len).sum()
    }

    /// Projection `b|var`: restricts the domain to the given variables.
    /// Variables not present in the behavior are ignored.
    pub fn restrict_to(&self, vars: impl IntoIterator<Item = SigName>) -> Behavior {
        let keep: BTreeSet<SigName> = vars.into_iter().collect();
        Behavior {
            signals: self
                .signals
                .iter()
                .filter(|(k, _)| keep.contains(*k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Hiding `b\var`: removes the given variables from the domain (the
    /// paper's dual of projection).
    pub fn hide(&self, vars: impl IntoIterator<Item = SigName>) -> Behavior {
        let drop: BTreeSet<SigName> = vars.into_iter().collect();
        Behavior {
            signals: self
                .signals
                .iter()
                .filter(|(k, _)| !drop.contains(*k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Renaming `b[y/x]` (Definition 5): replaces variable `x` by the fresh
    /// name `y`.
    ///
    /// # Errors
    ///
    /// Fails if `x` is not a variable of the behavior or `y` is not fresh.
    pub fn rename(&self, x: &SigName, y: &SigName) -> Result<Behavior, TaggedError> {
        if !self.signals.contains_key(x) {
            return Err(TaggedError::RenameSourceMissing { source: x.clone() });
        }
        if self.signals.contains_key(y) {
            return Err(TaggedError::RenameTargetExists { target: y.clone() });
        }
        let mut signals = self.signals.clone();
        let trace = signals.remove(x).expect("checked above");
        signals.insert(y.clone(), trace);
        Ok(Behavior { signals })
    }

    /// All tags used anywhere in the behavior, in increasing order.
    pub fn all_tags(&self) -> Vec<Tag> {
        let mut tags: BTreeSet<Tag> = BTreeSet::new();
        for trace in self.signals.values() {
            tags.extend(trace.tags());
        }
        tags.into_iter().collect()
    }

    /// The value of `name` at `tag`, if present.
    pub fn value_at(&self, name: &SigName, tag: Tag) -> Option<Value> {
        self.signals.get(name).and_then(|s| s.value_at(tag))
    }

    /// `true` iff no signal ever ticks.
    pub fn is_silent(&self) -> bool {
        self.signals.values().all(SignalTrace::is_empty)
    }

    /// Merges another behavior over *disjoint* variables into this one.
    ///
    /// # Panics
    ///
    /// Panics if the variable sets overlap; use composition operators for
    /// overlapping merges.
    pub fn union_disjoint(&self, other: &Behavior) -> Behavior {
        let mut signals = self.signals.clone();
        for (k, v) in &other.signals {
            let prev = signals.insert(k.clone(), v.clone());
            assert!(prev.is_none(), "union_disjoint called with shared variable {k}");
        }
        Behavior { signals }
    }
}

impl fmt::Display for Behavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, trace) in &self.signals {
            writeln!(f, "{name}: {trace}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Behavior {
        let mut b = Behavior::new();
        b.push_event("x", 1, Value::Int(1));
        b.push_event("x", 3, Value::Int(2));
        b.push_event("y", 2, Value::Bool(true));
        b.declare("z");
        b
    }

    #[test]
    fn vars_include_silent_signals() {
        let b = sample();
        let vars: Vec<String> = b.vars().map(|v| v.to_string()).collect();
        assert_eq!(vars, vec!["x", "y", "z"]);
    }

    #[test]
    fn try_push_event_reports_non_monotone() {
        let mut b = sample();
        let err = b.try_push_event("x", 3, Value::Int(9)).unwrap_err();
        assert!(matches!(err, TaggedError::NonMonotoneTag { .. }));
    }

    #[test]
    fn restrict_and_hide_are_dual() {
        let b = sample();
        let x = SigName::from("x");
        let proj = b.restrict_to([x.clone()]);
        let hid = b.hide([x.clone()]);
        assert_eq!(proj.var_count(), 1);
        assert_eq!(hid.var_count(), 2);
        assert!(proj.trace(&x).is_some());
        assert!(hid.trace(&x).is_none());
    }

    #[test]
    fn rename_moves_trace() {
        let b = sample();
        let x = SigName::from("x");
        let w = SigName::from("w");
        let r = b.rename(&x, &w).unwrap();
        assert!(r.trace(&x).is_none());
        assert_eq!(r.trace(&w).unwrap().len(), 2);
    }

    #[test]
    fn rename_requires_freshness_and_presence() {
        let b = sample();
        let x = SigName::from("x");
        let y = SigName::from("y");
        let nope = SigName::from("nope");
        assert!(matches!(b.rename(&x, &y), Err(TaggedError::RenameTargetExists { .. })));
        assert!(matches!(
            b.rename(&nope, &SigName::from("w")),
            Err(TaggedError::RenameSourceMissing { .. })
        ));
    }

    #[test]
    fn all_tags_is_sorted_union() {
        let b = sample();
        let tags: Vec<u64> = b.all_tags().into_iter().map(Tag::as_u64).collect();
        assert_eq!(tags, vec![1, 2, 3]);
    }

    #[test]
    fn union_disjoint_merges() {
        let b = sample();
        let mut c = Behavior::new();
        c.push_event("w", 5, Value::Int(0));
        let u = b.union_disjoint(&c);
        assert_eq!(u.var_count(), 4);
    }

    #[test]
    #[should_panic(expected = "shared variable")]
    fn union_disjoint_panics_on_overlap() {
        let b = sample();
        let mut c = Behavior::new();
        c.push_event("x", 5, Value::Int(0));
        let _ = b.union_disjoint(&c);
    }

    #[test]
    fn event_count_sums() {
        assert_eq!(sample().event_count(), 3);
    }

    #[test]
    fn silent_behavior() {
        let mut b = Behavior::new();
        b.declare("a");
        assert!(b.is_silent());
        b.push_event("a", 1, Value::Int(0));
        assert!(!b.is_silent());
    }
}
