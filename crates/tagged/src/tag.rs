//! Logical time tags (Definition 1 of the paper).
//!
//! The paper draws tags from a partially ordered set `T`. For finite trace
//! prefixes a totally ordered `u64` suffices: only the *relative* order of
//! tags inside one behavior is ever observable, and the stretching relation
//! (Definition 2) quotients absolute tag values away — see
//! [`crate::canonical::stretch_canonical`].

use std::fmt;

/// A logical time stamp.
///
/// Tags order events within a behavior. Two events in *different* signals of
/// the same behavior are synchronous iff they carry the same tag.
///
/// ```
/// use polysig_tagged::Tag;
/// assert!(Tag::new(1) < Tag::new(2));
/// assert_eq!(Tag::new(3).as_u64(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tag(u64);

impl Tag {
    /// The smallest tag.
    pub const ZERO: Tag = Tag(0);

    /// Creates a tag from a raw instant number.
    pub fn new(t: u64) -> Self {
        Tag(t)
    }

    /// Returns the raw instant number.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The immediately following tag.
    ///
    /// # Panics
    ///
    /// Panics on `u64` overflow, which cannot occur for realistic traces.
    pub fn next(self) -> Tag {
        Tag(self.0.checked_add(1).expect("tag overflow"))
    }
}

impl From<u64> for Tag {
    fn from(t: u64) -> Self {
        Tag(t)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_instant_numbers() {
        assert!(Tag::new(0) < Tag::new(1));
        assert!(Tag::new(7) > Tag::new(3));
        assert_eq!(Tag::new(5), Tag::new(5));
    }

    #[test]
    fn next_increments() {
        assert_eq!(Tag::ZERO.next(), Tag::new(1));
        assert_eq!(Tag::new(41).next().as_u64(), 42);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Tag::new(9).to_string(), "t9");
    }

    #[test]
    fn from_u64_round_trips() {
        let t: Tag = 17u64.into();
        assert_eq!(t.as_u64(), 17);
    }
}
