//! Stretching and stretch-equivalence (Definition 2).
//!
//! `b ≤ c` ("c is a stretching of b") iff a monotone bijection `f` on tags
//! with `t ≤ f(t)` maps every event of `b` onto the corresponding event of
//! `c`, preserving per-signal tag sets and values. Stretch-equivalence
//! `b ≍ c` holds iff some `d` stretches into both; for finite prefixes this
//! is equivalent to equality of canonical forms (see
//! [`crate::canonical::stretch_canonical`]), and the two implementations are
//! cross-checked in the test-suite.

use crate::behavior::Behavior;
use crate::canonical::stretch_canonical;
use crate::instant::Instant;

/// Checks Definition 2 directly: is `c` a stretching of `b`?
///
/// Requires `vars(b) = vars(c)`, identical instant structure (same number of
/// instants, same signals and values at the i-th instant) and the *delay
/// direction* `t ≤ f(t)`: the i-th instant of `c` may not be earlier than the
/// i-th instant of `b`.
///
/// ```
/// use polysig_tagged::{is_stretching_of, Behavior, Value};
///
/// let mut b = Behavior::new();
/// b.push_event("x", 1, Value::Int(1));
/// let mut c = Behavior::new();
/// c.push_event("x", 8, Value::Int(1));
///
/// assert!(is_stretching_of(&b, &c)); // c delays b
/// assert!(!is_stretching_of(&c, &b)); // b would need to move c earlier
/// ```
pub fn is_stretching_of(b: &Behavior, c: &Behavior) -> bool {
    if b.var_set() != c.var_set() {
        return false;
    }
    let bi = Instant::instants_of(b);
    let ci = Instant::instants_of(c);
    if bi.len() != ci.len() {
        return false;
    }
    bi.iter().zip(ci.iter()).all(|(x, y)| x.pattern() == y.pattern() && x.tag() <= y.tag())
}

/// Stretch-equivalence `b ≍ c` (Definition 2): equality up to time-scale
/// changes that preserve causal order and synchronization.
///
/// Implemented as equality of canonical forms, which coincides with the
/// existence of a common behavior `d` with `d ≤ b` and `d ≤ c` on finite
/// prefixes (the canonical form itself is such a `d`).
///
/// ```
/// use polysig_tagged::{stretch_equivalent, Behavior, Value};
///
/// let mut a = Behavior::new();
/// a.push_event("x", 2, Value::Int(1));
/// a.push_event("y", 2, Value::Int(5));
///
/// let mut b = Behavior::new();
/// b.push_event("x", 7, Value::Int(1));
/// b.push_event("y", 7, Value::Int(5));
///
/// assert!(stretch_equivalent(&a, &b));
/// ```
pub fn stretch_equivalent(b: &Behavior, c: &Behavior) -> bool {
    b.var_set() == c.var_set() && stretch_canonical(b) == stretch_canonical(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn b(evts: &[(&str, u64, i64)]) -> Behavior {
        let mut out = Behavior::new();
        for &(name, tag, v) in evts {
            out.push_event(name, tag, Value::Int(v));
        }
        out
    }

    #[test]
    fn stretching_requires_same_vars() {
        let x = b(&[("x", 1, 1)]);
        let y = b(&[("y", 1, 1)]);
        assert!(!is_stretching_of(&x, &y));
        assert!(!stretch_equivalent(&x, &y));
    }

    #[test]
    fn stretching_is_reflexive() {
        let x = b(&[("x", 1, 1), ("y", 2, 2)]);
        assert!(is_stretching_of(&x, &x));
    }

    #[test]
    fn stretching_preserves_synchronization() {
        // x and y synchronous in b, desynchronized in c: not a stretching.
        let sync = b(&[("x", 1, 1), ("y", 1, 2)]);
        let split = b(&[("x", 1, 1), ("y", 2, 2)]);
        assert!(!is_stretching_of(&sync, &split));
        assert!(!stretch_equivalent(&sync, &split));
    }

    #[test]
    fn stretching_respects_delay_direction() {
        let early = b(&[("x", 1, 1), ("x", 2, 2)]);
        let late = b(&[("x", 5, 1), ("x", 9, 2)]);
        assert!(is_stretching_of(&early, &late));
        assert!(!is_stretching_of(&late, &early));
        // equivalence is symmetric regardless
        assert!(stretch_equivalent(&early, &late));
        assert!(stretch_equivalent(&late, &early));
    }

    #[test]
    fn stretching_distinguishes_values() {
        let a = b(&[("x", 1, 1)]);
        let c = b(&[("x", 1, 2)]);
        assert!(!is_stretching_of(&a, &c));
        assert!(!stretch_equivalent(&a, &c));
    }

    #[test]
    fn stretching_distinguishes_order() {
        let ab = b(&[("x", 1, 1), ("y", 2, 2)]);
        let ba = b(&[("y", 1, 2), ("x", 2, 1)]);
        assert!(!stretch_equivalent(&ab, &ba));
    }

    #[test]
    fn canonical_form_is_minimal_stretching() {
        let x = b(&[("x", 4, 1), ("y", 9, 2)]);
        let canon = crate::canonical::stretch_canonical(&x);
        assert!(is_stretching_of(&canon, &x));
        assert!(stretch_equivalent(&canon, &x));
    }
}
