//! Semantic FIFO-channel specifications (Definitions 8 and 9, Lemma 2).
//!
//! * [`is_afifo_behavior`] — membership in the *unbounded* asynchronous FIFO
//!   `AFifo x→y` (Definition 8): the output carries the input's value
//!   sequence (a prefix of it on finite trace prefixes, for messages still in
//!   flight), each delivery at-or-after its emission.
//! * [`is_nfifo_behavior`] — membership in the *bounded* `nFifo` (Definition
//!   9): additionally, at every point in time the number of writes exceeds
//!   the number of reads by at most `n`.
//! * [`lemma2_bound_holds`] — the rate-matching side condition of Lemma 2:
//!   the consumer's `i`-th read happens no later than the producer's
//!   `(i+n)`-th write, which is exactly what prevents overflow of an
//!   `n`-place buffer.
//! * [`afifo_process_for_flow`] — generates the finite slice of the `AFifo`
//!   process for a fixed input flow, used to validate Theorem 1 by explicit
//!   enumeration.

use crate::behavior::Behavior;
use crate::process::Process;
use crate::signal::SignalTrace;
use crate::tag::Tag;
use crate::value::{SigName, Value};

/// Checks membership of `b` in the unbounded FIFO process `AFifo x→y`
/// (Definition 8) on a finite prefix.
///
/// Requires `vars(b) = {x, y}`; the value sequence of `y` must be a prefix
/// of the value sequence of `x` (equal flows once all messages are
/// delivered) and the `i`-th delivery may not precede the `i`-th emission
/// (`t(y_i) ≥ t(x_i)`, same-instant passthrough allowed).
///
/// ```
/// use polysig_tagged::{is_afifo_behavior, Behavior, Value};
///
/// let mut b = Behavior::new();
/// b.push_event("x", 1, Value::Int(1));
/// b.push_event("y", 2, Value::Int(1));
/// assert!(is_afifo_behavior(&b, &"x".into(), &"y".into()));
/// ```
pub fn is_afifo_behavior(b: &Behavior, x: &SigName, y: &SigName) -> bool {
    if b.var_set() != [x.clone(), y.clone()].into_iter().collect() {
        return false;
    }
    let (Some(xs), Some(ys)) = (b.trace(x), b.trace(y)) else {
        return false;
    };
    if ys.len() > xs.len() {
        return false;
    }
    ys.iter().enumerate().all(|(i, read)| {
        let write = xs.get(i).expect("ys.len() <= xs.len()");
        read.value() == write.value() && read.tag() >= write.tag()
    })
}

/// Checks membership of `b` in the bounded FIFO process `nFifo x→y`
/// (Definition 9): `AFifo` membership plus the occupancy bound
/// `|[b(x)]_t| ≤ n + |[b(y)]_t|` at every tag `t`.
///
/// ```
/// use polysig_tagged::{is_nfifo_behavior, Behavior, Value};
///
/// let mut b = Behavior::new();
/// b.push_event("x", 1, Value::Int(1));
/// b.push_event("x", 2, Value::Int(2));
/// b.push_event("y", 3, Value::Int(1));
/// assert!(is_nfifo_behavior(&b, &"x".into(), &"y".into(), 2));
/// assert!(!is_nfifo_behavior(&b, &"x".into(), &"y".into(), 1));
/// ```
pub fn is_nfifo_behavior(b: &Behavior, x: &SigName, y: &SigName, n: usize) -> bool {
    if !is_afifo_behavior(b, x, y) {
        return false;
    }
    let xs = b.trace(x).expect("checked by is_afifo_behavior");
    let ys = b.trace(y).expect("checked by is_afifo_behavior");
    b.all_tags().into_iter().all(|t| xs.count_up_to(t) <= n + ys.count_up_to(t))
}

/// The rate-matching side condition of Lemma 2 between a producer-side and a
/// consumer-side view of the same variable: for every `i`, if the producer's
/// `(i+n)`-th write exists, the consumer's `i`-th read exists and happens at
/// or before it (`t(reader_i) ≤ t(writer_{i+n})`).
///
/// This is precisely the condition under which an `n`-place buffer between
/// the two never overflows.
pub fn lemma2_bound_holds(writer: &SignalTrace, reader: &SignalTrace, n: usize) -> bool {
    (0..writer.len()).all(|j| {
        // j is the index of a write; when j >= n, read j - n must have
        // happened at or before this write.
        if j < n {
            return true;
        }
        let i = j - n;
        match (reader.get(i), writer.get(j)) {
            (Some(read), Some(write)) => read.tag() <= write.tag(),
            (None, Some(_)) => false,
            _ => true,
        }
    })
}

/// Generates the finite slice of the `AFifo x→y` process for one fixed input
/// flow: every canonical interleaving of the write chain and a read chain
/// delivering a prefix of it, with each read at-or-after its write.
///
/// Used to validate Theorem 1: the right-hand side composes components with
/// this process under `∥s`.
///
/// With `complete_delivery`, only behaviors where every written value is also
/// read are produced (the infinite-behavior reading of Definition 8).
pub fn afifo_process_for_flow(
    x: &SigName,
    y: &SigName,
    flow: &[Value],
    complete_delivery: bool,
) -> Process {
    let mut out = Process::over([x.clone(), y.clone()]);
    let min_reads = if complete_delivery { flow.len() } else { 0 };
    for reads in min_reads..=flow.len() {
        let mut prefix: Vec<(bool, usize)> = Vec::new(); // (is_write, index)
        enumerate_fifo_timings(flow.len(), reads, 0, 0, &mut prefix, &mut |schedule| {
            let b = schedule_to_behavior(x, y, flow, schedule);
            out.insert(b).expect("fifo behaviors range over {x, y}");
        });
    }
    out
}

/// Recursively enumerates schedules: sequences of steps, each step doing a
/// write, a read, or both simultaneously, with reads never overtaking
/// writes.
fn enumerate_fifo_timings(
    writes: usize,
    reads: usize,
    w: usize,
    r: usize,
    prefix: &mut Vec<(bool, usize)>,
    emit: &mut impl FnMut(&[(bool, usize)]),
) {
    if w == writes && r == reads {
        emit(prefix);
        return;
    }
    // The step encoding: (true, k) = instant with write k only;
    // (false, k) = instant with read k only; a simultaneous write+read pair
    // is encoded as a write immediately followed by a read at the same
    // *schedule slot*, which `schedule_to_behavior` detects via sentinel
    // usize::MAX marking. To keep things simple we enumerate three step
    // kinds explicitly below.
    if w < writes {
        prefix.push((true, w));
        enumerate_fifo_timings(writes, reads, w + 1, r, prefix, emit);
        prefix.pop();
    }
    if r < reads && r < w {
        prefix.push((false, r));
        enumerate_fifo_timings(writes, reads, w, r + 1, prefix, emit);
        prefix.pop();
    }
    // simultaneous write w and read r (same-instant passthrough needs r == w;
    // simultaneous write with an *older* pending read is also a single
    // instant doing both)
    if w < writes && r < reads && r <= w {
        prefix.push((true, usize::MAX)); // marker: next read shares the instant
        prefix.push((false, r));
        enumerate_fifo_timings(writes, reads, w + 1, r + 1, prefix, emit);
        prefix.pop();
        prefix.pop();
    }
}

fn schedule_to_behavior(
    x: &SigName,
    y: &SigName,
    flow: &[Value],
    schedule: &[(bool, usize)],
) -> Behavior {
    let mut b = Behavior::new();
    b.declare(x.clone());
    b.declare(y.clone());
    let mut tag = Tag::ZERO;
    let mut w = 0usize;
    let mut i = 0usize;
    while i < schedule.len() {
        let (is_write, idx) = schedule[i];
        tag = tag.next();
        if is_write && idx == usize::MAX {
            // simultaneous write + read instant
            b.push_event(x.clone(), tag, flow[w]);
            let (_, r) = schedule[i + 1];
            b.push_event(y.clone(), tag, flow[r]);
            w += 1;
            i += 2;
        } else if is_write {
            b.push_event(x.clone(), tag, flow[w]);
            w += 1;
            i += 1;
        } else {
            b.push_event(y.clone(), tag, flow[idx]);
            i += 1;
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beh(evts: &[(&str, u64, i64)]) -> Behavior {
        let mut out = Behavior::new();
        for &(name, tag, v) in evts {
            out.push_event(name, tag, Value::Int(v));
        }
        out
    }

    fn x() -> SigName {
        "x".into()
    }
    fn y() -> SigName {
        "y".into()
    }

    #[test]
    fn afifo_accepts_delayed_delivery() {
        let b = beh(&[("x", 1, 1), ("x", 2, 2), ("y", 3, 1), ("y", 4, 2)]);
        assert!(is_afifo_behavior(&b, &x(), &y()));
    }

    #[test]
    fn afifo_accepts_same_instant_passthrough() {
        let b = beh(&[("x", 1, 1), ("y", 1, 1)]);
        assert!(is_afifo_behavior(&b, &x(), &y()));
    }

    #[test]
    fn afifo_accepts_in_flight_prefix() {
        let b = beh(&[("x", 1, 1), ("x", 2, 2), ("y", 3, 1)]);
        assert!(is_afifo_behavior(&b, &x(), &y()));
    }

    #[test]
    fn afifo_rejects_reordering_and_invention() {
        // reordered values
        let swapped = beh(&[("x", 1, 1), ("x", 2, 2), ("y", 3, 2), ("y", 4, 1)]);
        assert!(!is_afifo_behavior(&swapped, &x(), &y()));
        // read before write
        let early = beh(&[("y", 1, 1), ("x", 2, 1)]);
        assert!(!is_afifo_behavior(&early, &x(), &y()));
        // more reads than writes
        let invent = beh(&[("x", 1, 1), ("y", 2, 1), ("y", 3, 1)]);
        assert!(!is_afifo_behavior(&invent, &x(), &y()));
    }

    #[test]
    fn afifo_requires_exact_variable_set() {
        let mut b = beh(&[("x", 1, 1), ("y", 2, 1)]);
        b.declare("z");
        assert!(!is_afifo_behavior(&b, &x(), &y()));
    }

    #[test]
    fn nfifo_occupancy_bound() {
        // three writes before any read: needs n >= 3
        let b =
            beh(&[("x", 1, 1), ("x", 2, 2), ("x", 3, 3), ("y", 4, 1), ("y", 5, 2), ("y", 6, 3)]);
        assert!(is_nfifo_behavior(&b, &x(), &y(), 3));
        assert!(!is_nfifo_behavior(&b, &x(), &y(), 2));
        // alternate write/read: 1-place buffer suffices
        let alt = beh(&[("x", 1, 1), ("y", 2, 1), ("x", 3, 2), ("y", 4, 2)]);
        assert!(is_nfifo_behavior(&alt, &x(), &y(), 1));
    }

    #[test]
    fn nfifo_same_instant_counts_as_handover() {
        let b = beh(&[("x", 1, 1), ("y", 1, 1), ("x", 2, 2), ("y", 2, 2)]);
        // at each tag: writes == reads, so occupancy bound 1 holds
        assert!(is_nfifo_behavior(&b, &x(), &y(), 1));
    }

    #[test]
    fn lemma2_bound() {
        // writer at 1,2,3; reader at 2,3 — reads lag exactly one write
        let b = beh(&[("x", 1, 1), ("x", 2, 2), ("x", 3, 3), ("y", 2, 1), ("y", 3, 2)]);
        let w = b.trace(&x()).unwrap();
        let r = b.trace(&y()).unwrap();
        assert!(lemma2_bound_holds(w, r, 1));
        // with n = 0 the reader would need to read at-or-before every write
        assert!(!lemma2_bound_holds(w, r, 0));
    }

    #[test]
    fn lemma2_bound_fails_when_reads_missing() {
        let b = beh(&[("x", 1, 1), ("x", 2, 2), ("x", 3, 3)]);
        let w = b.trace(&x()).unwrap();
        let empty = SignalTrace::new();
        assert!(!lemma2_bound_holds(w, &empty, 2));
        assert!(lemma2_bound_holds(w, &empty, 3));
    }

    #[test]
    fn generated_afifo_slice_members_satisfy_spec() {
        let flow = vec![Value::Int(1), Value::Int(2)];
        let p = afifo_process_for_flow(&x(), &y(), &flow, false);
        assert!(!p.is_empty());
        for b in p.iter() {
            assert!(is_afifo_behavior(b, &x(), &y()), "not an AFifo behavior:\n{b}");
        }
    }

    #[test]
    fn generated_afifo_slice_is_exhaustive_for_tiny_flow() {
        let flow = vec![Value::Int(7)];
        let p = afifo_process_for_flow(&x(), &y(), &flow, false);
        // one write; schedules: write only; write then read; write+read same
        // instant → 3 canonical behaviors
        assert_eq!(p.len(), 3);
        let complete = afifo_process_for_flow(&x(), &y(), &flow, true);
        assert_eq!(complete.len(), 2);
    }

    #[test]
    fn generated_complete_slices_deliver_everything() {
        let flow = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        let p = afifo_process_for_flow(&x(), &y(), &flow, true);
        for b in p.iter() {
            assert_eq!(b.trace(&y()).unwrap().len(), flow.len());
        }
    }
}
