//! Event values and signal names.
//!
//! The paper takes event values from a set `V` of integers and booleans;
//! [`Value`] mirrors that exactly. [`SigName`] is a cheaply clonable,
//! interned-by-sharing signal name (the set `X` of the paper).

use std::fmt;
use std::sync::Arc;

/// A value carried by an event: the paper's `V` = booleans ∪ integers.
///
/// ```
/// use polysig_tagged::Value;
/// let v = Value::Int(3);
/// assert_eq!(v.as_int(), Some(3));
/// assert_eq!(v.ty(), polysig_tagged::ValueType::Int);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A boolean value (used for clocks, `when` conditions, flags).
    Bool(bool),
    /// An integer value (message payloads, counters).
    Int(i64),
}

impl Value {
    /// The boolean `true`.
    pub const TRUE: Value = Value::Bool(true);
    /// The boolean `false`.
    pub const FALSE: Value = Value::Bool(false);

    /// Returns the contained boolean, if this is a [`Value::Bool`].
    #[inline]
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(b),
            Value::Int(_) => None,
        }
    }

    /// Returns the contained integer, if this is a [`Value::Int`].
    #[inline]
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            Value::Bool(_) => None,
        }
    }

    /// Returns the runtime type of the value.
    #[inline]
    pub fn ty(self) -> ValueType {
        match self {
            Value::Bool(_) => ValueType::Bool,
            Value::Int(_) => ValueType::Int,
        }
    }

    /// `true` iff this is `Bool(true)`.
    pub fn is_true(self) -> bool {
        self == Value::TRUE
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

/// The type of a [`Value`], used by the type checker in `polysig-lang`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValueType {
    /// Boolean signals.
    Bool,
    /// Integer signals.
    Int,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Bool => write!(f, "bool"),
            ValueType::Int => write!(f, "int"),
        }
    }
}

/// A signal name (a member of the paper's name set `X`).
///
/// Internally an `Arc<str>`, so clones are cheap and names can be shared
/// freely across behaviors, programs and reports.
///
/// ```
/// use polysig_tagged::SigName;
/// let x = SigName::from("msgin");
/// assert_eq!(x.as_str(), "msgin");
/// assert_eq!(x.to_string(), "msgin");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SigName(Arc<str>);

impl SigName {
    /// Creates a signal name.
    pub fn new(name: impl AsRef<str>) -> Self {
        SigName(Arc::from(name.as_ref()))
    }

    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns a derived name with the given suffix appended, used when
    /// desynchronization introduces fresh per-component copies (`x_P`, `x_Q`
    /// in Theorem 1).
    pub fn suffixed(&self, suffix: &str) -> SigName {
        SigName(Arc::from(format!("{}{}", self.0, suffix)))
    }
}

impl From<&str> for SigName {
    fn from(s: &str) -> Self {
        SigName::new(s)
    }
}

impl From<String> for SigName {
    fn from(s: String) -> Self {
        SigName(Arc::from(s))
    }
}

impl AsRef<str> for SigName {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

// `Arc<str>` hashes/compares as the pointed-to `str`, so borrowing a
// `SigName` as `&str` satisfies the `Borrow` contract — this is what lets
// name-keyed maps be probed by `&str` without allocating a temporary.
impl std::borrow::Borrow<str> for SigName {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for SigName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Bool(true).as_int(), None);
        assert_eq!(Value::Int(-4).as_int(), Some(-4));
        assert_eq!(Value::Int(-4).as_bool(), None);
    }

    #[test]
    fn value_types() {
        assert_eq!(Value::TRUE.ty(), ValueType::Bool);
        assert_eq!(Value::Int(0).ty(), ValueType::Int);
        assert!(Value::TRUE.is_true());
        assert!(!Value::FALSE.is_true());
        assert!(!Value::Int(1).is_true());
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(9i64), Value::Int(9));
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::Int(12).to_string(), "12");
        assert_eq!(ValueType::Bool.to_string(), "bool");
        assert_eq!(ValueType::Int.to_string(), "int");
    }

    #[test]
    fn signame_equality_and_order() {
        let a = SigName::from("a");
        let b = SigName::from("b");
        let a2 = SigName::new(String::from("a"));
        assert_eq!(a, a2);
        assert!(a < b);
    }

    #[test]
    fn signame_suffixed() {
        let x = SigName::from("x");
        assert_eq!(x.suffixed("_p").as_str(), "x_p");
    }
}
