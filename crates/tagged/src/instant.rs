//! Instant view of behaviors.
//!
//! An *instant* groups every event of a behavior that shares one tag. The
//! sequence of instants of a behavior is exactly what stretching
//! (Definition 2) preserves, which makes it the natural representation for
//! canonical forms and for interleaving-based composition.

use std::collections::BTreeMap;
use std::fmt;

use crate::behavior::Behavior;
use crate::tag::Tag;
use crate::value::{SigName, Value};

/// One synchronous instant: the set of signals present at a tag, with their
/// values.
///
/// ```
/// use polysig_tagged::{Behavior, Instant, Value};
///
/// let mut b = Behavior::new();
/// b.push_event("x", 4, Value::Int(1));
/// b.push_event("y", 4, Value::Bool(true));
/// let instants = Instant::instants_of(&b);
/// assert_eq!(instants.len(), 1);
/// assert_eq!(instants[0].arity(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant {
    tag: Tag,
    events: BTreeMap<SigName, Value>,
}

impl Instant {
    /// Creates an empty instant at a tag.
    pub fn new(tag: Tag) -> Self {
        Instant { tag, events: BTreeMap::new() }
    }

    /// The instant's tag.
    pub fn tag(&self) -> Tag {
        self.tag
    }

    /// Adds or replaces the value of a signal at this instant.
    pub fn set(&mut self, name: impl Into<SigName>, value: Value) {
        self.events.insert(name.into(), value);
    }

    /// The value of a signal at this instant, if present.
    pub fn value(&self, name: &SigName) -> Option<Value> {
        self.events.get(name).copied()
    }

    /// `true` iff the signal is present at this instant.
    pub fn is_present(&self, name: &SigName) -> bool {
        self.events.contains_key(name)
    }

    /// Number of signals present at this instant.
    pub fn arity(&self) -> usize {
        self.events.len()
    }

    /// `true` iff no signal is present.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&SigName, Value)> + '_ {
        self.events.iter().map(|(k, v)| (k, *v))
    }

    /// The *synchronization pattern*: which signals tick, ignoring tag. Two
    /// instants with equal patterns and values are interchangeable under
    /// stretching.
    pub fn pattern(&self) -> &BTreeMap<SigName, Value> {
        &self.events
    }

    /// Returns this instant moved to another tag.
    pub fn at(&self, tag: Tag) -> Instant {
        Instant { tag, events: self.events.clone() }
    }

    /// Restricts the instant to the given variables; may become empty.
    pub fn restrict_to(&self, keep: &std::collections::BTreeSet<SigName>) -> Instant {
        Instant {
            tag: self.tag,
            events: self
                .events
                .iter()
                .filter(|(k, _)| keep.contains(*k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }

    /// Merges two instants over disjoint signal sets into one (used by
    /// synchronous composition when aligning component instants).
    ///
    /// Returns `None` if the instants disagree on a shared signal's value;
    /// shared signals with equal values merge fine.
    pub fn merge(&self, other: &Instant, tag: Tag) -> Option<Instant> {
        let mut events = self.events.clone();
        for (k, v) in &other.events {
            if let Some(prev) = events.insert(k.clone(), *v) {
                if prev != *v {
                    return None;
                }
            }
        }
        Some(Instant { tag, events })
    }

    /// Decomposes a behavior into its sequence of instants, in tag order.
    pub fn instants_of(behavior: &Behavior) -> Vec<Instant> {
        let mut map: BTreeMap<Tag, Instant> = BTreeMap::new();
        for (name, trace) in behavior.iter() {
            for event in trace.iter() {
                map.entry(event.tag())
                    .or_insert_with(|| Instant::new(event.tag()))
                    .set(name.clone(), event.value());
            }
        }
        map.into_values().collect()
    }

    /// Rebuilds a behavior from a sequence of instants (tags must be strictly
    /// increasing). `declared` lists variables that must exist even if they
    /// never tick.
    ///
    /// # Panics
    ///
    /// Panics if instants are not strictly tag-increasing.
    pub fn behavior_of(
        instants: &[Instant],
        declared: impl IntoIterator<Item = SigName>,
    ) -> Behavior {
        let mut b = Behavior::new();
        for name in declared {
            b.declare(name);
        }
        for inst in instants {
            for (name, value) in inst.iter() {
                b.push_event(name.clone(), inst.tag(), value);
            }
        }
        b
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.tag)?;
        for (i, (name, value)) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}={value}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Behavior {
        let mut b = Behavior::new();
        b.push_event("x", 1, Value::Int(1));
        b.push_event("y", 1, Value::Bool(false));
        b.push_event("x", 3, Value::Int(2));
        b
    }

    #[test]
    fn decompose_groups_by_tag() {
        let instants = Instant::instants_of(&sample());
        assert_eq!(instants.len(), 2);
        assert_eq!(instants[0].arity(), 2);
        assert_eq!(instants[1].arity(), 1);
        assert_eq!(instants[0].value(&SigName::from("y")), Some(Value::Bool(false)));
    }

    #[test]
    fn round_trip_behavior() {
        let b = sample();
        let instants = Instant::instants_of(&b);
        let rebuilt = Instant::behavior_of(&instants, b.var_set());
        assert_eq!(rebuilt, b);
    }

    #[test]
    fn merge_disjoint_and_agreeing() {
        let mut a = Instant::new(Tag::new(1));
        a.set("x", Value::Int(1));
        let mut c = Instant::new(Tag::new(2));
        c.set("y", Value::Int(2));
        let m = a.merge(&c, Tag::new(5)).unwrap();
        assert_eq!(m.tag(), Tag::new(5));
        assert_eq!(m.arity(), 2);

        let mut agree = Instant::new(Tag::new(2));
        agree.set("x", Value::Int(1));
        assert!(a.merge(&agree, Tag::new(1)).is_some());

        let mut clash = Instant::new(Tag::new(2));
        clash.set("x", Value::Int(9));
        assert!(a.merge(&clash, Tag::new(1)).is_none());
    }

    #[test]
    fn restrict_drops_other_signals() {
        let instants = Instant::instants_of(&sample());
        let keep: std::collections::BTreeSet<SigName> = [SigName::from("y")].into();
        let r = instants[0].restrict_to(&keep);
        assert_eq!(r.arity(), 1);
        assert!(r.is_present(&SigName::from("y")));
    }

    #[test]
    fn display_mentions_signals() {
        let instants = Instant::instants_of(&sample());
        let s = instants[0].to_string();
        assert!(s.contains("x=1"));
        assert!(s.contains("y=false"));
    }
}
