//! A fast, non-cryptographic hasher for trusted keys.
//!
//! The explicit-state checkers probe a visited-map once per transition and
//! the interner hashes every name lookup at elaboration time; both operate
//! on keys the program itself produced, so SipHash's DoS resistance is pure
//! overhead there. [`FxHasher`] reimplements the classic `FxHash` mix used
//! by rustc (multiply by a golden-ratio-derived odd constant after a
//! rotate-xor): one multiply per word, no finalization, excellent
//! distribution on the short register-file and name keys this workspace
//! hashes. Do **not** use it on attacker-controlled keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `std::collections::HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `std::collections::HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// The zero-sized build-hasher producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// 2^64 / φ, forced odd — the classic Fibonacci-hashing multiplier.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc `FxHash` word mixer. One state word; each input word is
/// folded in with `rotate-xor-multiply`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_keys_hash_equal() {
        assert_eq!(hash_of(&(vec![1i64, 2, 3], 7u32)), hash_of(&(vec![1i64, 2, 3], 7u32)));
        assert_eq!(hash_of(&"signal_name"), hash_of(&"signal_name"));
    }

    #[test]
    fn tail_bytes_and_length_matter() {
        // short strings differing only in the tail must not collide via the
        // zero-padding; the length tag in the top byte disambiguates
        assert_ne!(hash_of(&"a"), hash_of(&"a\0"));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
    }

    #[test]
    fn works_as_a_map_hasher() {
        let mut m: FxHashMap<(Vec<i64>, u32), usize> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((vec![i as i64, -(i as i64)], i), i as usize);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&(vec![i as i64, -(i as i64)], i)), Some(&(i as usize)));
        }
        let mut s: FxHashSet<&str> = FxHashSet::default();
        s.insert("x");
        assert!(s.contains("x"));
    }
}
