//! Interned signal identifiers: the dense-index side of [`SigName`].
//!
//! Execution hot paths (the constructive simulator, the explicit-state
//! checker, the GALS runtimes) address signals by [`SigId`] — a `u32` index
//! into an append-only [`Interner`] — so per-instant work never touches a
//! string or a name-keyed map. [`SigName`]s remain the API-boundary
//! representation (parser, CLI, reports, VCD); the interner is the bridge,
//! built once per program/reactor and shared via its handle.

use std::fmt;

use crate::hash::FxHashMap;
use crate::value::SigName;

/// A dense, interner-scoped signal identifier.
///
/// Ids are assigned consecutively from zero in interning order, so a
/// `SigId` doubles as an index into any per-signal slot vector sized by
/// [`Interner::len`]. Ids from different interners must not be mixed; they
/// are plain indices and carry no provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SigId(pub u32);

impl SigId {
    /// The id as a slot-vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SigId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An append-only `SigName ↔ SigId` table.
///
/// ```
/// use polysig_tagged::{Interner, SigName};
/// let mut interner = Interner::new();
/// let x = interner.intern("x");
/// let y = interner.intern(&SigName::from("y"));
/// assert_eq!(interner.intern("x"), x);           // idempotent
/// assert_eq!(interner.lookup("y"), Some(y));
/// assert_eq!(interner.name(x).as_str(), "x");
/// assert_eq!(interner.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<SigName>,
    ids: FxHashMap<SigName, SigId>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns a name, returning its existing id when already known.
    ///
    /// # Panics
    ///
    /// Panics on the (absurd) 2^32nd distinct name.
    pub fn intern(&mut self, name: impl AsRef<str>) -> SigId {
        let name = name.as_ref();
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = SigId(u32::try_from(self.names.len()).expect("interner overflow"));
        let name = SigName::from(name);
        self.names.push(name.clone());
        self.ids.insert(name, id);
        id
    }

    /// The id of an already-interned name, without inserting.
    ///
    /// Lookup by `&str` is allocation-free (`SigName: Borrow<str>`).
    pub fn lookup(&self, name: impl AsRef<str>) -> Option<SigId> {
        self.ids.get(name.as_ref()).copied()
    }

    /// The name behind an id.
    ///
    /// # Panics
    ///
    /// Panics when `id` was not produced by this interner.
    #[inline]
    pub fn name(&self, id: SigId) -> &SigName {
        &self.names[id.index()]
    }

    /// All interned names, in id order (so `names()[i]` has `SigId(i)`).
    pub fn names(&self) -> &[SigName] {
        &self.names
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (SigId, &SigName)> {
        self.names.iter().enumerate().map(|(i, n)| (SigId(i as u32), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_append_only_and_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_eq!(a, SigId(0));
        assert_eq!(b, SigId(1));
        assert_eq!(i.intern("a"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(i.names(), &[SigName::from("a"), SigName::from("b")]);
    }

    #[test]
    fn lookup_does_not_insert() {
        let mut i = Interner::new();
        i.intern("x");
        assert_eq!(i.lookup("x"), Some(SigId(0)));
        assert_eq!(i.lookup("y"), None);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iteration_matches_id_order() {
        let mut i = Interner::new();
        for n in ["c", "a", "b"] {
            i.intern(n);
        }
        let pairs: Vec<(SigId, &str)> = i.iter().map(|(id, n)| (id, n.as_str())).collect();
        assert_eq!(pairs, vec![(SigId(0), "c"), (SigId(1), "a"), (SigId(2), "b")]);
    }
}
