//! Parallel composition operators (Definitions 3, 6 and 7).
//!
//! All three operators are implemented as *generators* on finite processes:
//! they enumerate every canonical behavior of the composite, which makes
//! exhaustive validation of the paper's Theorem 1 possible on small models.
//!
//! * [`sync_compose`] — synchronous composition `P ∥s Q` (Definition 3):
//!   shared signals must carry identical event chains; private instants of
//!   the two components interleave freely (including coinciding), because
//!   Signal processes are stretch-closed (Lemma 1).
//! * [`async_compose`] — asynchronous composition `P ∥a Q` (Definition 6):
//!   each component's *private* instant structure is preserved up to
//!   stretching, while shared signals only keep their value *flows*; shared
//!   events are re-timed arbitrarily.
//! * [`causal_async_compose`] — asynchronous *causal* composition
//!   `P ∥→,a Q` (Definition 7): as `∥a`, but every shared variable has a
//!   declared producer, the composite keeps the shared events synchronized
//!   with the producer's instants, and a consumer instant that reads the
//!   `i`-th value may never precede the instant that wrote it.
//!
//! ## Finite-prefix conventions
//!
//! The paper's definitions quantify over infinite behaviors. On finite
//! prefixes we adopt (and test) these conventions, documented in DESIGN.md:
//!
//! * `∥a` requires shared flows to be *equal* (Definition 6 is symmetric).
//! * `∥→,a` allows the consumer's observed flow to be a *prefix* of the
//!   producer's flow: messages may still be in flight at the end of the
//!   prefix. With complete delivery the two operators' flow conditions
//!   coincide.
//!
//! All generators are exponential in the number of instants — they exist for
//! validation on small models, not for large-scale simulation (that is
//! `polysig-sim`'s and `polysig-gals`'s job).

use std::collections::{BTreeMap, BTreeSet};

use crate::behavior::Behavior;
use crate::instant::Instant;
use crate::process::Process;
use crate::signal::SignalTrace;
use crate::tag::Tag;
use crate::value::{SigName, Value};

/// Which side of a composition produces a shared variable (Definition 7's
/// `P →x Q` / `Q →x P`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CausalOrder {
    /// The left process writes the variable, the right one reads it.
    LeftProduces,
    /// The right process writes the variable, the left one reads it.
    RightProduces,
}

/// Synchronous parallel composition `P ∥s Q` (Definition 3).
///
/// Enumerates all canonical behaviors `d` over `vars(P) ∪ vars(Q)` such that
/// `d|vars(P) ∈ P` and `d|vars(Q) ∈ Q` (both up to stretching, which is
/// exact for Signal programs by Lemma 1).
///
/// ```
/// use polysig_tagged::{sync_compose, Behavior, Process, Value};
///
/// let mut p = Process::over(["x".into()]);
/// let mut bx = Behavior::new();
/// bx.push_event("x", 1, Value::Int(1));
/// p.insert(bx).unwrap();
///
/// let mut q = Process::over(["y".into()]);
/// let mut by = Behavior::new();
/// by.push_event("y", 1, Value::Int(2));
/// q.insert(by).unwrap();
///
/// let pq = sync_compose(&p, &q);
/// // x before y, y before x, or simultaneous: three interleavings
/// assert_eq!(pq.len(), 3);
/// ```
pub fn sync_compose(p: &Process, q: &Process) -> Process {
    let shared: BTreeSet<SigName> = p.vars().intersection(q.vars()).cloned().collect();
    let all_vars: BTreeSet<SigName> = p.vars().union(q.vars()).cloned().collect();
    let mut out = Process::over(all_vars.iter().cloned());
    for b in p.iter() {
        for c in q.iter() {
            let bi = Instant::instants_of(b);
            let ci = Instant::instants_of(c);
            let mut acc = Vec::new();
            merge_sync(&bi, &ci, &shared, &mut Vec::new(), &mut acc);
            for seq in acc {
                let d = instants_to_behavior(&seq, all_vars.iter().cloned());
                out.insert(d).expect("composite ranges over union of vars");
            }
        }
    }
    out
}

/// Recursive enumeration of synchronized merges for [`sync_compose`].
///
/// At each step we may (a) emit the next left instant alone if it touches no
/// shared signal, (b) emit the next right instant alone under the same
/// condition, or (c) merge the two next instants when their shared-signal
/// events agree exactly.
fn merge_sync(
    left: &[Instant],
    right: &[Instant],
    shared: &BTreeSet<SigName>,
    prefix: &mut Vec<Instant>,
    acc: &mut Vec<Vec<Instant>>,
) {
    if left.is_empty() && right.is_empty() {
        acc.push(prefix.clone());
        return;
    }
    let touches_shared = |i: &Instant| i.iter().any(|(name, _)| shared.contains(name));
    if let Some((head, rest)) = left.split_first() {
        if !touches_shared(head) {
            prefix.push(head.at(Tag::new(prefix.len() as u64 + 1)));
            merge_sync(rest, right, shared, prefix, acc);
            prefix.pop();
        }
    }
    if let Some((head, rest)) = right.split_first() {
        if !touches_shared(head) {
            prefix.push(head.at(Tag::new(prefix.len() as u64 + 1)));
            merge_sync(left, rest, shared, prefix, acc);
            prefix.pop();
        }
    }
    if let (Some((lh, lrest)), Some((rh, rrest))) = (left.split_first(), right.split_first()) {
        if shared_agree(lh, rh, shared) {
            if let Some(merged) = lh.merge(rh, Tag::new(prefix.len() as u64 + 1)) {
                prefix.push(merged);
                merge_sync(lrest, rrest, shared, prefix, acc);
                prefix.pop();
            }
        }
    }
}

/// Shared-signal agreement for merging two instants in `∥s`: every shared
/// signal is present on one side iff it is present on the other, with equal
/// values.
fn shared_agree(a: &Instant, b: &Instant, shared: &BTreeSet<SigName>) -> bool {
    shared.iter().all(|s| a.value(s) == b.value(s))
}

fn instants_to_behavior(seq: &[Instant], declared: impl IntoIterator<Item = SigName>) -> Behavior {
    // drop empty instants (hiding may have emptied them upstream)
    let filtered: Vec<Instant> = seq
        .iter()
        .filter(|i| !i.is_empty())
        .enumerate()
        .map(|(k, i)| i.at(Tag::new(k as u64 + 1)))
        .collect();
    Instant::behavior_of(&filtered, declared)
}

/// One side (or shared-variable chain) participating in an asynchronous
/// merge: an ordered instant sequence plus, per instant, the read indices it
/// carries for each consumed shared variable.
struct AsyncSeq {
    instants: Vec<Instant>,
    /// `reads[k][v] = i` — the `k`-th instant consumes the `i`-th (0-based)
    /// value of shared variable `v`.
    reads: Vec<BTreeMap<SigName, usize>>,
    /// `writes[k][v] = i` — the `k`-th instant produces the `i`-th value of
    /// shared variable `v`.
    writes: Vec<BTreeMap<SigName, usize>>,
}

impl AsyncSeq {
    fn stripped(
        behavior: &Behavior,
        produced: &BTreeSet<SigName>,
        consumed: &BTreeSet<SigName>,
        keep_produced_events: bool,
    ) -> AsyncSeq {
        let mut write_idx: BTreeMap<SigName, usize> = BTreeMap::new();
        let mut read_idx: BTreeMap<SigName, usize> = BTreeMap::new();
        let mut instants = Vec::new();
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for inst in Instant::instants_of(behavior) {
            let mut kept = Instant::new(inst.tag());
            let mut r = BTreeMap::new();
            let mut w = BTreeMap::new();
            for (name, value) in inst.iter() {
                if consumed.contains(name) {
                    let i = read_idx.entry(name.clone()).or_insert(0);
                    r.insert(name.clone(), *i);
                    *i += 1;
                } else if produced.contains(name) {
                    let i = write_idx.entry(name.clone()).or_insert(0);
                    w.insert(name.clone(), *i);
                    *i += 1;
                    if keep_produced_events {
                        kept.set(name.clone(), value);
                    }
                } else {
                    kept.set(name.clone(), value);
                }
            }
            // an instant that carried only stripped events still counts as a
            // synchronization point of the component only if it kept events
            // or carries read/write bookkeeping; fully empty rows vanish.
            if !kept.is_empty() || !r.is_empty() || !w.is_empty() {
                instants.push(kept);
                reads.push(r);
                writes.push(w);
            }
        }
        AsyncSeq { instants, reads, writes }
    }

    fn len(&self) -> usize {
        self.instants.len()
    }
}

/// Asynchronous parallel composition `P ∥a Q` (Definition 6).
///
/// Shared flows must be identical on both sides; shared events are detached
/// from both components and re-timed arbitrarily (each shared variable keeps
/// its own value order). Private instant structures are preserved up to
/// stretching.
pub fn async_compose(p: &Process, q: &Process) -> Process {
    let shared: BTreeSet<SigName> = p.vars().intersection(q.vars()).cloned().collect();
    let all_vars: BTreeSet<SigName> = p.vars().union(q.vars()).cloned().collect();
    let mut out = Process::over(all_vars.iter().cloned());
    for b in p.iter() {
        for c in q.iter() {
            // Definition 6: equal flows on every shared variable.
            if !shared.iter().all(|s| flow_of(b, s) == flow_of(c, s)) {
                continue;
            }
            let left = AsyncSeq::stripped(b, &shared, &BTreeSet::new(), false);
            let right = AsyncSeq::stripped(c, &shared, &BTreeSet::new(), false);
            let mut seqs = vec![left, right];
            // one detached chain per shared variable
            for s in &shared {
                seqs.push(detached_chain(s, &flow_of(b, s)));
            }
            enumerate_async(&seqs, &all_vars, &mut out, /*causal*/ false);
        }
    }
    out
}

/// Asynchronous *causal* parallel composition `P ∥→,a Q` (Definition 7).
///
/// `orders` must name a producer for every shared variable. Shared events
/// stay synchronized with the producer's instants; the consumer's `i`-th
/// read of a variable may not be scheduled before its `i`-th write, and the
/// consumer's observed flow must be a prefix of the producer's flow
/// (messages may be in flight at the end of a finite prefix).
///
/// # Panics
///
/// Panics if a shared variable has no declared causal order.
pub fn causal_async_compose(
    p: &Process,
    q: &Process,
    orders: &BTreeMap<SigName, CausalOrder>,
) -> Process {
    let shared: BTreeSet<SigName> = p.vars().intersection(q.vars()).cloned().collect();
    for s in &shared {
        assert!(orders.contains_key(s), "shared variable {s} has no causal order");
    }
    let left_produced: BTreeSet<SigName> =
        shared.iter().filter(|s| orders[*s] == CausalOrder::LeftProduces).cloned().collect();
    let right_produced: BTreeSet<SigName> =
        shared.iter().filter(|s| orders[*s] == CausalOrder::RightProduces).cloned().collect();
    let all_vars: BTreeSet<SigName> = p.vars().union(q.vars()).cloned().collect();
    let mut out = Process::over(all_vars.iter().cloned());
    for b in p.iter() {
        for c in q.iter() {
            // consumer flow must be a prefix of producer flow
            let flows_ok = left_produced.iter().all(|s| is_prefix(&flow_of(c, s), &flow_of(b, s)))
                && right_produced.iter().all(|s| is_prefix(&flow_of(b, s), &flow_of(c, s)));
            if !flows_ok {
                continue;
            }
            let left = AsyncSeq::stripped(b, &left_produced, &right_produced, true);
            let right = AsyncSeq::stripped(c, &right_produced, &left_produced, true);
            enumerate_async(&[left, right], &all_vars, &mut out, /*causal*/ true);
        }
    }
    out
}

fn flow_of(b: &Behavior, s: &SigName) -> Vec<Value> {
    b.trace(s).map(SignalTrace::values).unwrap_or_default()
}

fn is_prefix(shorter: &[Value], longer: &[Value]) -> bool {
    shorter.len() <= longer.len() && &longer[..shorter.len()] == shorter
}

/// Builds a detached single-variable chain for `∥a`: each event is its own
/// instant, writing successive values of the shared variable.
fn detached_chain(name: &SigName, flow: &[Value]) -> AsyncSeq {
    let mut instants = Vec::new();
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for (i, v) in flow.iter().enumerate() {
        let mut inst = Instant::new(Tag::new(i as u64 + 1));
        inst.set(name.clone(), *v);
        instants.push(inst);
        reads.push(BTreeMap::new());
        let mut w = BTreeMap::new();
        w.insert(name.clone(), i);
        writes.push(w);
    }
    AsyncSeq { instants, reads, writes }
}

/// Enumerates every interleaving-with-coincidence of the given sequences and
/// inserts the resulting canonical behaviors into `out`.
///
/// When `causal` is set, an instant that reads index `i` of a variable can
/// only be scheduled once `i + 1` writes of that variable have been placed
/// (writes in the same step count, modeling same-instant passthrough).
fn enumerate_async(
    seqs: &[AsyncSeq],
    all_vars: &BTreeSet<SigName>,
    out: &mut Process,
    causal: bool,
) {
    let mut positions = vec![0usize; seqs.len()];
    let mut writes_placed: BTreeMap<SigName, usize> = BTreeMap::new();
    let mut prefix: Vec<Instant> = Vec::new();
    recurse_async(seqs, &mut positions, &mut writes_placed, &mut prefix, all_vars, out, causal);
}

fn recurse_async(
    seqs: &[AsyncSeq],
    positions: &mut Vec<usize>,
    writes_placed: &mut BTreeMap<SigName, usize>,
    prefix: &mut Vec<Instant>,
    all_vars: &BTreeSet<SigName>,
    out: &mut Process,
    causal: bool,
) {
    let available: Vec<usize> = (0..seqs.len()).filter(|&k| positions[k] < seqs[k].len()).collect();
    if available.is_empty() {
        let d = instants_to_behavior(prefix, all_vars.iter().cloned());
        out.insert(d).expect("composite ranges over union of vars");
        return;
    }
    // every nonempty subset of available heads may fire simultaneously
    let n = available.len();
    for mask in 1u32..(1 << n) {
        let chosen: Vec<usize> =
            (0..n).filter(|i| mask & (1 << i) != 0).map(|i| available[i]).collect();
        // compute writes contributed by this step
        let mut step_writes: BTreeMap<SigName, usize> = BTreeMap::new();
        for &k in &chosen {
            for v in seqs[k].writes[positions[k]].keys() {
                *step_writes.entry(v.clone()).or_insert(0) += 1;
            }
        }
        if causal {
            // check all reads in the step against writes placed so far plus
            // this step's writes (same-instant passthrough allowed)
            let ok = chosen.iter().all(|&k| {
                seqs[k].reads[positions[k]].iter().all(|(v, &i)| {
                    let placed = writes_placed.get(v).copied().unwrap_or(0)
                        + step_writes.get(v).copied().unwrap_or(0);
                    placed > i
                })
            });
            if !ok {
                continue;
            }
        }
        // merge chosen heads into one instant
        let tag = Tag::new(prefix.len() as u64 + 1);
        let mut merged = Instant::new(tag);
        let mut conflict = false;
        for &k in &chosen {
            match merged.merge(&seqs[k].instants[positions[k]], tag) {
                Some(m) => merged = m,
                None => {
                    conflict = true;
                    break;
                }
            }
        }
        if conflict {
            continue;
        }
        // apply
        for &k in &chosen {
            positions[k] += 1;
        }
        for (v, n) in &step_writes {
            *writes_placed.entry(v.clone()).or_insert(0) += n;
        }
        prefix.push(merged);

        recurse_async(seqs, positions, writes_placed, prefix, all_vars, out, causal);

        prefix.pop();
        for (v, n) in &step_writes {
            *writes_placed.get_mut(v).expect("present") -= n;
        }
        for &k in &chosen {
            positions[k] -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn beh(evts: &[(&str, u64, i64)]) -> Behavior {
        let mut out = Behavior::new();
        for &(name, tag, v) in evts {
            out.push_event(name, tag, Value::Int(v));
        }
        out
    }

    fn proc_of(vars: &[&str], behaviors: &[&[(&str, u64, i64)]]) -> Process {
        let mut p = Process::over(vars.iter().map(|v| SigName::from(*v)));
        for b in behaviors {
            p.insert(beh(b)).unwrap();
        }
        p
    }

    #[test]
    fn sync_disjoint_vars_enumerates_interleavings() {
        let p = proc_of(&["x"], &[&[("x", 1, 1)]]);
        let q = proc_of(&["y"], &[&[("y", 1, 2)]]);
        let pq = sync_compose(&p, &q);
        // x<y, y<x, x=y
        assert_eq!(pq.len(), 3);
        assert!(pq.contains(&beh(&[("x", 1, 1), ("y", 1, 2)])));
        assert!(pq.contains(&beh(&[("x", 1, 1), ("y", 2, 2)])));
        assert!(pq.contains(&beh(&[("y", 1, 2), ("x", 2, 1)])));
    }

    #[test]
    fn sync_shared_vars_must_agree() {
        let p = proc_of(&["x"], &[&[("x", 1, 1)]]);
        let q = proc_of(&["x"], &[&[("x", 1, 1)]]);
        let pq = sync_compose(&p, &q);
        assert_eq!(pq.len(), 1);

        let q_bad = proc_of(&["x"], &[&[("x", 1, 9)]]);
        let none = sync_compose(&p, &q_bad);
        assert!(none.is_empty());
    }

    #[test]
    fn sync_shared_var_with_private_context() {
        // P emits x then a; Q sees x then emits b. x must align.
        let p = proc_of(&["x", "a"], &[&[("x", 1, 5), ("a", 2, 0)]]);
        let q = proc_of(&["x", "b"], &[&[("x", 1, 5), ("b", 2, 0)]]);
        let pq = sync_compose(&p, &q);
        // x aligned; a and b interleave after x: a<b, b<a, a=b → 3
        assert_eq!(pq.len(), 3);
        for d in pq.iter() {
            // x must be the first instant in every composite
            assert_eq!(d.trace(&"x".into()).unwrap().get(0).unwrap().tag(), Tag::new(1));
        }
    }

    #[test]
    fn sync_projection_recovers_components() {
        let p = proc_of(&["x", "a"], &[&[("x", 1, 5), ("a", 2, 0)]]);
        let q = proc_of(&["x", "b"], &[&[("x", 1, 5), ("b", 1, 0)]]);
        let pq = sync_compose(&p, &q);
        assert!(!pq.is_empty());
        for d in pq.iter() {
            assert!(p.contains(&d.restrict_to(["x".into(), "a".into()])));
            assert!(q.contains(&d.restrict_to(["x".into(), "b".into()])));
        }
    }

    #[test]
    fn async_requires_equal_flows() {
        let p = proc_of(&["x"], &[&[("x", 1, 1)]]);
        let q_match = proc_of(&["x"], &[&[("x", 3, 1)]]);
        let q_clash = proc_of(&["x"], &[&[("x", 3, 2)]]);
        assert!(!async_compose(&p, &q_match).is_empty());
        assert!(async_compose(&p, &q_clash).is_empty());
    }

    #[test]
    fn async_forgets_synchronization_with_private_events() {
        // P: x synchronous with a. Q: only x.
        let p = proc_of(&["x", "a"], &[&[("x", 1, 5), ("a", 1, 0)]]);
        let q = proc_of(&["x"], &[&[("x", 1, 5)]]);
        let pq = async_compose(&p, &q);
        // the detached x may land before, on, or after the private instant
        // {a}: three canonical forms
        assert_eq!(pq.len(), 3);
        assert!(pq.contains(&beh(&[("x", 1, 5), ("a", 2, 0)])));
        assert!(pq.contains(&beh(&[("x", 1, 5), ("a", 1, 0)])));
        assert!(pq.contains(&beh(&[("a", 1, 0), ("x", 2, 5)])));
    }

    #[test]
    fn corollary1_sync_equals_async_on_disjoint_vars() {
        // Corollary 1 of the paper.
        let p = proc_of(&["x"], &[&[("x", 1, 1), ("x", 2, 2)]]);
        let q = proc_of(&["y"], &[&[("y", 1, 7)]]);
        let s = sync_compose(&p, &q);
        let a = async_compose(&p, &q);
        assert!(s.equivalent(&a), "∥s = ∥a for disjoint variables");
    }

    #[test]
    fn causal_keeps_reads_after_writes() {
        // P writes x once (synchronously with nothing else);
        // Q reads x and then emits b in the same instant as the read.
        let p = proc_of(&["x"], &[&[("x", 1, 5)]]);
        let q = proc_of(&["x", "b"], &[&[("x", 1, 5), ("b", 1, 0)]]);
        let mut orders = BTreeMap::new();
        orders.insert(SigName::from("x"), CausalOrder::LeftProduces);
        let pq = causal_async_compose(&p, &q, &orders);
        // composite: {x} then {b}, or {x,b} merged (same-instant passthrough);
        // b strictly before x is forbidden by causality.
        assert_eq!(pq.len(), 2);
        assert!(pq.contains(&beh(&[("x", 1, 5), ("b", 2, 0)])));
        assert!(pq.contains(&beh(&[("x", 1, 5), ("b", 1, 0)])));
        assert!(!pq.contains(&beh(&[("b", 1, 0), ("x", 2, 5)])));
    }

    #[test]
    fn causal_allows_in_flight_messages() {
        // producer wrote twice, consumer has only read once so far
        let p = proc_of(&["x"], &[&[("x", 1, 1), ("x", 2, 2)]]);
        let q = proc_of(&["x", "b"], &[&[("x", 1, 1), ("b", 2, 0)]]);
        let mut orders = BTreeMap::new();
        orders.insert(SigName::from("x"), CausalOrder::LeftProduces);
        let pq = causal_async_compose(&p, &q, &orders);
        assert!(!pq.is_empty());
        // every composite carries the full producer flow
        for d in pq.iter() {
            assert_eq!(d.trace(&"x".into()).unwrap().values(), vec![Value::Int(1), Value::Int(2)]);
        }
    }

    #[test]
    fn causal_rejects_non_prefix_consumer_flow() {
        let p = proc_of(&["x"], &[&[("x", 1, 1)]]);
        let q = proc_of(&["x"], &[&[("x", 1, 9)]]);
        let mut orders = BTreeMap::new();
        orders.insert(SigName::from("x"), CausalOrder::LeftProduces);
        assert!(causal_async_compose(&p, &q, &orders).is_empty());
    }

    #[test]
    fn causal_is_contained_in_async_after_hiding_timing() {
        // With complete delivery, every causal composite's flows appear in
        // the plain asynchronous composition as well.
        let p = proc_of(&["x", "a"], &[&[("x", 1, 1), ("a", 2, 0)]]);
        let q = proc_of(&["x", "b"], &[&[("x", 1, 1), ("b", 2, 0)]]);
        let mut orders = BTreeMap::new();
        orders.insert(SigName::from("x"), CausalOrder::LeftProduces);
        let causal = causal_async_compose(&p, &q, &orders);
        let plain = async_compose(&p, &q);
        assert!(!causal.is_empty());
        for d in causal.iter() {
            assert!(plain.contains(d), "causal behavior missing from ∥a:\n{d}");
        }
    }

    #[test]
    fn corollary2_causal_equals_async_on_disjoint_vars() {
        let p = proc_of(&["x"], &[&[("x", 1, 1)]]);
        let q = proc_of(&["y"], &[&[("y", 1, 7), ("y", 2, 8)]]);
        let causal = causal_async_compose(&p, &q, &BTreeMap::new());
        let plain = async_compose(&p, &q);
        assert!(causal.equivalent(&plain), "∥→,a = ∥a for disjoint variables");
    }

    #[test]
    #[should_panic(expected = "no causal order")]
    fn causal_requires_declared_orders() {
        let p = proc_of(&["x"], &[&[("x", 1, 1)]]);
        let q = proc_of(&["x"], &[&[("x", 1, 1)]]);
        let _ = causal_async_compose(&p, &q, &BTreeMap::new());
    }

    #[test]
    fn empty_processes_compose_to_empty() {
        let p = Process::over(["x".into()]);
        let q = proc_of(&["y"], &[&[("y", 1, 1)]]);
        assert!(sync_compose(&p, &q).is_empty());
        assert!(async_compose(&p, &q).is_empty());
    }
}
