//! # `polysig-tagged` — the tagged (polychronous) model of computation
//!
//! This crate implements the denotational substrate of the Signal language as
//! used in *"Modeling and Validating Globally Asynchronous Design in
//! Synchronous Frameworks"* (Mousavi, Le Guernic, Talpin, Shukla, Basten —
//! DATE 2004), Section 3:
//!
//! * [`Tag`]s — logical time stamps forming a chain per signal,
//! * [`Value`]s and [`Event`]s — what a signal carries at a tag,
//! * [`SignalTrace`]s — discrete chains of events (Definition 1),
//! * [`Behavior`]s — partial maps from signal names to traces,
//! * [`Process`]es — finite sets of behaviors over a common variable set,
//! * the denotations of the primitive Signal equations (Table 1),
//! * *stretching* and *stretch-equivalence* (Definition 2),
//! * *relaxation* and *flow-equivalence* (Definition 4),
//! * synchronous, asynchronous, and asynchronous-causal parallel composition
//!   (Definitions 3, 6 and 7),
//! * the semantic FIFO-channel specifications `AFifo` and `nFifo`
//!   (Definitions 8 and 9) together with the rate-matching side conditions of
//!   Lemma 2.
//!
//! Everything here works on **finite trace prefixes**: the paper's statements
//! about infinite reactive behaviors are validated on finite prefixes by the
//! higher layers (`polysig-sim`, `polysig-gals`, `polysig-verify`).
//!
//! ## Example
//!
//! ```
//! use polysig_tagged::{Behavior, SigName, Value};
//!
//! // A behavior where `x` ticks twice and `y` once, interleaved.
//! let mut b = Behavior::new();
//! b.push_event("x", 1, Value::Int(10));
//! b.push_event("y", 2, Value::Bool(true));
//! b.push_event("x", 3, Value::Int(20));
//!
//! let x = SigName::from("x");
//! assert_eq!(b.trace(&x).unwrap().len(), 2);
//! assert_eq!(b.vars().count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod canonical;
pub mod compose;
pub mod denotation;
pub mod error;
pub mod event;
pub mod fifo_spec;
pub mod flow;
pub mod hash;
pub mod instant;
pub mod intern;
pub mod process;
pub mod signal;
pub mod stretch;
pub mod tag;
pub mod value;

pub use behavior::Behavior;
pub use canonical::{flow_canonical, stretch_canonical};
pub use compose::{async_compose, causal_async_compose, sync_compose, CausalOrder};
pub use error::TaggedError;
pub use event::Event;
pub use fifo_spec::{is_afifo_behavior, is_nfifo_behavior, lemma2_bound_holds};
pub use flow::{flow_equivalent, is_relaxation_of, FlowClass};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use instant::Instant;
pub use intern::{Interner, SigId};
pub use process::Process;
pub use signal::SignalTrace;
pub use stretch::{is_stretching_of, stretch_equivalent};
pub use tag::Tag;
pub use value::{SigName, Value, ValueType};
