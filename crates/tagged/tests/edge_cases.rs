//! Edge-case coverage for the tagged layer: empty and degenerate inputs to
//! every operator, and the corners of the equivalence checks.

use std::collections::BTreeMap;

use polysig_tagged::{
    async_compose, causal_async_compose, flow_equivalent, is_afifo_behavior, stretch_canonical,
    stretch_equivalent, sync_compose, Behavior, CausalOrder, Instant, Process, SigName, Tag, Value,
};

fn beh(evts: &[(&str, u64, i64)]) -> Behavior {
    let mut out = Behavior::new();
    for &(name, tag, v) in evts {
        out.push_event(name, tag, Value::Int(v));
    }
    out
}

#[test]
fn silent_behaviors_are_equivalent_to_each_other() {
    let mut a = Behavior::new();
    a.declare("x");
    let mut b = Behavior::new();
    b.declare("x");
    assert!(stretch_equivalent(&a, &b));
    assert!(flow_equivalent(&a, &b));
    assert_eq!(stretch_canonical(&a), a);
}

#[test]
fn composing_with_the_silent_process_interleaves_nothing() {
    let mut p = Process::over(["x".into()]);
    p.insert(beh(&[("x", 1, 1)])).unwrap();
    let mut silent = Process::over(["y".into()]);
    silent.insert(Behavior::new()).unwrap();
    let s = sync_compose(&p, &silent);
    assert_eq!(s.len(), 1);
    let d = s.iter().next().unwrap();
    assert_eq!(d.trace(&"x".into()).unwrap().len(), 1);
    assert!(d.trace(&"y".into()).unwrap().is_empty());
}

#[test]
fn hiding_everything_leaves_one_silent_class() {
    let mut p = Process::over(["x".into(), "y".into()]);
    p.insert(beh(&[("x", 1, 1), ("y", 2, 2)])).unwrap();
    p.insert(beh(&[("y", 1, 2), ("x", 2, 1)])).unwrap();
    let hidden = p.hide(["x".into(), "y".into()]);
    // all behaviors collapse to the empty behavior over no variables
    assert_eq!(hidden.len(), 1);
    assert!(hidden.vars().is_empty());
}

#[test]
fn projection_to_nothing_is_the_silent_process() {
    let mut p = Process::over(["x".into()]);
    p.insert(beh(&[("x", 1, 1)])).unwrap();
    let nothing = p.restrict_to(std::iter::empty::<SigName>());
    assert_eq!(nothing.len(), 1);
    assert!(nothing.iter().next().unwrap().var_count() == 0);
}

#[test]
fn composing_identical_processes_over_same_vars_is_intersection_like() {
    // P ∥s P over fully shared variables: every behavior must agree with
    // itself — result is P again
    let mut p = Process::over(["x".into()]);
    p.insert(beh(&[("x", 1, 1), ("x", 2, 2)])).unwrap();
    let pp = sync_compose(&p, &p);
    assert!(pp.equivalent(&p));
}

#[test]
fn async_compose_with_self_preserves_flows() {
    let mut p = Process::over(["x".into()]);
    p.insert(beh(&[("x", 1, 1), ("x", 2, 2)])).unwrap();
    let pp = async_compose(&p, &p);
    // one shared variable with equal flows: the composite re-times it but
    // keeps the flow
    assert!(!pp.is_empty());
    for d in pp.iter() {
        assert_eq!(d.trace(&"x".into()).unwrap().values(), vec![Value::Int(1), Value::Int(2)]);
    }
}

#[test]
fn causal_compose_empty_flow_channel() {
    // producer never writes; consumer never reads: composition is just the
    // private interleavings
    let mut p = Process::over(["x".into(), "a".into()]);
    p.insert(beh(&[("a", 1, 0)])).unwrap();
    let mut q = Process::over(["x".into(), "b".into()]);
    q.insert(beh(&[("b", 1, 0)])).unwrap();
    let mut orders = BTreeMap::new();
    orders.insert(SigName::from("x"), CausalOrder::LeftProduces);
    let c = causal_async_compose(&p, &q, &orders);
    assert_eq!(c.len(), 3); // a<b, b<a, a=b
    for d in c.iter() {
        assert!(d.trace(&"x".into()).unwrap().is_empty());
    }
}

#[test]
fn afifo_membership_edge_cases() {
    let x = SigName::from("x");
    let y = SigName::from("y");
    // completely silent channel is a valid AFifo behavior
    let mut silent = Behavior::new();
    silent.declare(x.clone());
    silent.declare(y.clone());
    assert!(is_afifo_behavior(&silent, &x, &y));
    // read strictly at the write instant is allowed; before is not
    let same = beh(&[("x", 5, 9), ("y", 5, 9)]);
    assert!(is_afifo_behavior(&same, &x, &y));
}

#[test]
fn instants_of_empty_behavior() {
    let mut b = Behavior::new();
    b.declare("x");
    assert!(Instant::instants_of(&b).is_empty());
    let rebuilt = Instant::behavior_of(&[], b.var_set());
    assert_eq!(rebuilt, b);
}

#[test]
fn canonical_form_of_single_instant_starts_at_one() {
    let b = beh(&[("x", 77, 5)]);
    let c = stretch_canonical(&b);
    assert_eq!(c.all_tags(), vec![Tag::new(1)]);
}

#[test]
fn large_tag_values_do_not_overflow_canonicalization() {
    let mut b = Behavior::new();
    b.push_event("x", u64::MAX - 1, Value::Int(1));
    let c = stretch_canonical(&b);
    assert_eq!(c.all_tags(), vec![Tag::new(1)]);
}

#[test]
fn process_insert_is_idempotent_across_stretchings() {
    let mut p = Process::over(["x".into(), "y".into()]);
    for scale in 1..=5u64 {
        p.insert(beh(&[("x", scale, 1), ("y", 2 * scale, 2)])).unwrap();
    }
    assert_eq!(p.len(), 1, "all stretchings are one class");
    assert!(p.check_invariants());
}
