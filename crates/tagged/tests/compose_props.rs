//! Property-based laws of the composition operators and FIFO slices.
//!
//! These are the algebraic facts the paper's proofs lean on, checked over
//! randomized small processes: commutativity of `∥s` and `∥a`,
//! idempotence-style projection laws, the Corollary 1/2 coincidences on
//! disjoint variables, and soundness of every generated composite (its
//! projections belong to the operands).

use proptest::prelude::*;

use polysig_tagged::{
    async_compose, causal_async_compose, fifo_spec::afifo_process_for_flow, is_afifo_behavior,
    stretch_canonical, sync_compose, Behavior, CausalOrder, Process, SigName, Tag, Value,
};

/// A random behavior over the given variable names, ≤ 4 instants.
fn arb_behavior(vars: &'static [&'static str]) -> impl Strategy<Value = Behavior> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::option::of(0i64..3), vars.len()),
        0..4,
    )
    .prop_map(move |rows| {
        let mut b = Behavior::new();
        for v in vars {
            b.declare(*v);
        }
        for (i, row) in rows.into_iter().enumerate() {
            for (k, cell) in row.into_iter().enumerate() {
                if let Some(v) = cell {
                    b.push_event(vars[k], Tag::new(i as u64 + 1), Value::Int(v));
                }
            }
        }
        b
    })
}

/// A random process with 1–2 behaviors over the given variables.
fn arb_process(vars: &'static [&'static str]) -> impl Strategy<Value = Process> {
    proptest::collection::vec(arb_behavior(vars), 1..3).prop_map(move |bs| {
        let mut p = Process::over(vars.iter().map(|v| SigName::from(*v)));
        for b in bs {
            p.insert(b).unwrap();
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `P ∥s Q = Q ∥s P` (as canonical behavior sets).
    #[test]
    fn sync_compose_commutes(p in arb_process(&["x", "a"]), q in arb_process(&["x", "b"])) {
        let pq = sync_compose(&p, &q);
        let qp = sync_compose(&q, &p);
        prop_assert!(pq.equivalent(&qp));
    }

    /// Every behavior of `P ∥s Q` projects back into P and Q.
    #[test]
    fn sync_compose_projections_sound(
        p in arb_process(&["x", "a"]),
        q in arb_process(&["x", "b"]),
    ) {
        let pq = sync_compose(&p, &q);
        for d in pq.iter() {
            prop_assert!(p.contains(&d.restrict_to([SigName::from("x"), SigName::from("a")])));
            prop_assert!(q.contains(&d.restrict_to([SigName::from("x"), SigName::from("b")])));
        }
    }

    /// Corollary 1: on disjoint variables, `∥s = ∥a`.
    #[test]
    fn corollary1_random(p in arb_process(&["a"]), q in arb_process(&["b"])) {
        let s = sync_compose(&p, &q);
        let a = async_compose(&p, &q);
        prop_assert!(s.equivalent(&a));
    }

    /// Corollary 2: on disjoint variables, `∥→,a = ∥a`.
    #[test]
    fn corollary2_random(p in arb_process(&["a"]), q in arb_process(&["b"])) {
        let causal = causal_async_compose(&p, &q, &Default::default());
        let plain = async_compose(&p, &q);
        prop_assert!(causal.equivalent(&plain));
    }

    /// `∥a` commutes.
    #[test]
    fn async_compose_commutes(p in arb_process(&["x", "a"]), q in arb_process(&["x", "b"])) {
        let pq = async_compose(&p, &q);
        let qp = async_compose(&q, &p);
        prop_assert!(pq.equivalent(&qp));
    }

    /// Every causal composite preserves the producer's shared flow, and its
    /// private projections stay (flow-)faithful to some operand behavior.
    #[test]
    fn causal_composites_sound(
        p in arb_process(&["x", "a"]),
        q in arb_process(&["x", "b"]),
    ) {
        let mut orders = std::collections::BTreeMap::new();
        orders.insert(SigName::from("x"), CausalOrder::LeftProduces);
        let c = causal_async_compose(&p, &q, &orders);
        for d in c.iter() {
            let flow = d.trace(&"x".into()).unwrap().values();
            // the composite's x-flow is exactly some P-behavior's x-flow
            prop_assert!(p.iter().any(|b| b.trace(&"x".into()).unwrap().values() == flow));
            // the P-private projection (with x) is stretch-equivalent to a
            // member of P — x stays anchored at the producer
            let proj = d.restrict_to([SigName::from("x"), SigName::from("a")]);
            prop_assert!(p.contains(&proj), "producer projection escaped P:\n{proj}");
        }
    }

    /// Every behavior in a generated AFifo slice satisfies the Definition-8
    /// predicate, and the slice is closed under canonicalization.
    #[test]
    fn afifo_slice_sound(flow in proptest::collection::vec(0i64..3, 0..4)) {
        let xp = SigName::from("w");
        let xq = SigName::from("r");
        let values: Vec<Value> = flow.iter().map(|&v| Value::Int(v)).collect();
        let slice = afifo_process_for_flow(&xp, &xq, &values, false);
        for b in slice.iter() {
            prop_assert!(is_afifo_behavior(b, &xp, &xq));
            prop_assert_eq!(&stretch_canonical(b), b);
        }
        // complete-delivery slices are subsets
        let complete = afifo_process_for_flow(&xp, &xq, &values, true);
        prop_assert!(complete.subset_of(&slice) || values.is_empty());
    }

    /// Hiding after composition equals composing pre-hidden processes when
    /// the hidden variables are private to one side.
    #[test]
    fn hide_commutes_with_sync_compose_on_private_vars(
        p in arb_process(&["x", "a"]),
        q in arb_process(&["x", "b"]),
    ) {
        let b_name = SigName::from("b");
        let left = sync_compose(&p, &q).hide([b_name.clone()]);
        let right = sync_compose(&p, &q.hide([b_name.clone()]));
        // hiding q's private b before composing yields the same set
        prop_assert!(left.equivalent(&right));
    }
}
