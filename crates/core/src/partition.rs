//! Identifying the explicit data dependencies of a program (Definition 7).
//!
//! A program's components are wired by shared names: a signal that is an
//! output of one component and an input of another is an explicit data
//! dependency `P →x Q` with `P` its single producer (the single-writer rule
//! is enforced by `polysig_lang::resolve`). [`channels_of_program`] lists
//! them, ready to be cut by the desynchronization transformation.

use polysig_lang::{Program, Role};
use polysig_tagged::{SigName, ValueType};

use crate::error::GalsError;

/// One explicit data dependency: producer component, consumer components,
/// the shared signal and its type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSpec {
    /// The shared signal (the `x` of `P →x Q`).
    pub signal: SigName,
    /// Name of the producing component.
    pub producer: String,
    /// Names of the consuming components (the paper assumes a single
    /// consumer per channel; multi-consumer signals must go through explicit
    /// fork components, and are rejected by [`channels_of_program`]).
    pub consumer: String,
    /// The value type carried.
    pub ty: ValueType,
}

/// Lists every cross-component data dependency of the program.
///
/// # Errors
///
/// * [`GalsError::MultiConsumer`] if a shared signal is read by more than
///   one component (the paper's single-producer/single-consumer restriction;
///   use explicit copy/fork components for fan-out);
/// * [`GalsError::Lang`] if the program does not resolve.
pub fn channels_of_program(p: &Program) -> Result<Vec<ChannelSpec>, GalsError> {
    polysig_lang::resolve::resolve_program(p)?;
    let mut out = Vec::new();
    for producer in &p.components {
        for decl in producer.signals_with_role(Role::Output) {
            let consumers: Vec<&str> = p
                .components
                .iter()
                .filter(|c| {
                    c.name != producer.name
                        && c.decl(&decl.name).is_some_and(|d| d.role == Role::Input)
                })
                .map(|c| c.name.as_str())
                .collect();
            match consumers.as_slice() {
                [] => {}
                [single] => out.push(ChannelSpec {
                    signal: decl.name.clone(),
                    producer: producer.name.clone(),
                    consumer: (*single).to_string(),
                    ty: decl.ty,
                }),
                many => {
                    return Err(GalsError::MultiConsumer {
                        signal: decl.name.clone(),
                        consumers: many.iter().map(|s| s.to_string()).collect(),
                    })
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_lang::parse_program;

    #[test]
    fn finds_directed_channels() {
        let p = parse_program(
            "process A { input a: int; output x: int; x := a + 1; } \
             process B { input x: int; output y: int; y := x * 2; } \
             process C { input y: int; output z: bool; z := y > 0; }",
        )
        .unwrap();
        let chans = channels_of_program(&p).unwrap();
        assert_eq!(chans.len(), 2);
        assert_eq!(chans[0].signal.as_str(), "x");
        assert_eq!(chans[0].producer, "A");
        assert_eq!(chans[0].consumer, "B");
        assert_eq!(chans[1].signal.as_str(), "y");
        assert_eq!(chans[1].ty, ValueType::Int);
    }

    #[test]
    fn bidirectional_links_are_two_channels() {
        // x flows A→B, k flows B→A (no instantaneous cycle: k goes through pre)
        let p = parse_program(
            "process A { input a: int, k: int; output x: int; x := a + (pre 0 k); } \
             process B { input x: int; output k: int; k := x * 2; }",
        )
        .unwrap();
        let chans = channels_of_program(&p).unwrap();
        assert_eq!(chans.len(), 2);
        let dirs: Vec<(&str, &str)> =
            chans.iter().map(|c| (c.producer.as_str(), c.consumer.as_str())).collect();
        assert!(dirs.contains(&("A", "B")));
        assert!(dirs.contains(&("B", "A")));
    }

    #[test]
    fn rejects_multi_consumer_channels() {
        let p = parse_program(
            "process A { input a: int; output x: int; x := a; } \
             process B { input x: int; output y: int; y := x; } \
             process C { input x: int; output z: int; z := x; }",
        )
        .unwrap();
        let err = channels_of_program(&p).unwrap_err();
        assert!(matches!(err, GalsError::MultiConsumer { .. }));
    }

    #[test]
    fn single_component_has_no_channels() {
        let p = parse_program("process A { input a: int; output x: int; x := a; }").unwrap();
        assert!(channels_of_program(&p).unwrap().is_empty());
    }
}
