//! Analytic (simulation-free) buffer bounds for periodic environments.
//!
//! The paper's conclusion lists "constructive algorithms … to make the
//! buffer size estimation and proof automatic" as future work. For the
//! periodic and bursty environment classes the workload generators produce,
//! the worst-case backlog — and hence the sufficient buffer size — is
//! computable in closed form over one hyperperiod. [`periodic_bound`] and
//! [`bursty_bound`] implement that; the test-suite and the
//! `buffer_estimation` bench confirm they agree with (and upper-bound) the
//! simulation-based Section-5.2 loop.

/// A periodic activation pattern: one event every `period` instants,
/// starting at `phase`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodicRate {
    /// Distance between events (≥ 1).
    pub period: usize,
    /// First event instant.
    pub phase: usize,
}

impl PeriodicRate {
    /// Events in `0..t` (the cumulative count the bounds below integrate;
    /// public so the static rate prover can replay the same arithmetic).
    pub fn count_until(&self, t: usize) -> usize {
        if t <= self.phase {
            0
        } else {
            (t - self.phase - 1) / self.period + 1
        }
    }
}

/// Worst-case backlog (writes minus reads, cumulative maximum) of a
/// periodic writer against a periodic reader over `horizon` instants —
/// the exact buffer size the Section-5.2 loop converges to for this
/// environment. A write occupies a place for at least the instant it lands
/// (the chain hands over *through storage*, Definition 9's discipline), so
/// reads are counted up to the *previous* instant: matched 1:1 rates need
/// one place, not zero.
pub fn periodic_bound(writer: PeriodicRate, reader: PeriodicRate, horizon: usize) -> usize {
    let mut max_backlog = 0usize;
    for t in 1..=horizon {
        let writes = writer.count_until(t);
        let reads = reader.count_until(t.saturating_sub(1)).min(writes);
        max_backlog = max_backlog.max(writes - reads);
    }
    max_backlog
}

/// Worst-case backlog of a bursty writer (`burst` consecutive writes every
/// `burst_period`) against a periodic reader.
pub fn bursty_bound(
    burst: usize,
    burst_period: usize,
    reader: PeriodicRate,
    horizon: usize,
) -> usize {
    assert!(burst <= burst_period, "burst cannot exceed its period");
    let mut max_backlog = 0usize;
    let mut writes = 0usize;
    for t in 1..=horizon {
        let i = t - 1;
        if i % burst_period < burst {
            writes += 1;
        }
        let reads = reader.count_until(t.saturating_sub(1)).min(writes);
        max_backlog = max_backlog.max(writes - reads);
    }
    max_backlog
}

/// The long-run stability condition: a finite buffer only exists when the
/// writer's rate does not exceed the reader's (Lemma 2 fails for every `n`
/// otherwise). Returns `None` when unstable, else the steady-state bound
/// over one hyperperiod.
pub fn steady_state_bound(writer: PeriodicRate, reader: PeriodicRate) -> Option<usize> {
    if reader.period > writer.period {
        return None;
    }
    let hyper = lcm(writer.period, reader.period);
    // two hyperperiods cover the transient from the phases
    Some(periodic_bound(writer, reader, 2 * hyper + writer.phase + reader.phase))
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::{estimate_buffer_sizes, EstimationOptions};
    use polysig_lang::parse_program;
    use polysig_sim::generator::master_clock;
    use polysig_sim::{BurstyInputs, PeriodicInputs, ScenarioGenerator};
    use polysig_tagged::ValueType;

    #[test]
    fn matched_rates_need_one_place() {
        let w = PeriodicRate { period: 2, phase: 0 };
        let r = PeriodicRate { period: 2, phase: 1 };
        assert_eq!(periodic_bound(w, r, 40), 1);
        assert_eq!(steady_state_bound(w, r), Some(1));
    }

    #[test]
    fn double_rate_writer_backlog_grows_with_horizon() {
        let w = PeriodicRate { period: 1, phase: 0 };
        let r = PeriodicRate { period: 2, phase: 0 };
        let b10 = periodic_bound(w, r, 10);
        let b20 = periodic_bound(w, r, 20);
        assert!(b20 > b10, "unstable rates accumulate backlog");
        assert_eq!(steady_state_bound(w, r), None);
    }

    #[test]
    fn faster_reader_is_stable() {
        let w = PeriodicRate { period: 3, phase: 0 };
        let r = PeriodicRate { period: 2, phase: 1 };
        let bound = steady_state_bound(w, r).unwrap();
        assert!((1..=2).contains(&bound), "small steady backlog, got {bound}");
    }

    #[test]
    fn bursty_bound_tracks_burst_minus_drain() {
        // 4-bursts every 10, reader every 2: during the 4 burst instants the
        // reader drains ~2, so backlog peaks near 2-3
        let bound = bursty_bound(4, 10, PeriodicRate { period: 2, phase: 0 }, 60);
        assert!((2..=4).contains(&bound), "got {bound}");
        // no reader: bound = burst accumulation over the horizon
        let none = bursty_bound(3, 5, PeriodicRate { period: 1000, phase: 999 }, 10);
        assert_eq!(none, 6); // two bursts land before any read
    }

    /// The analytic bound agrees with the simulation-based estimation loop
    /// on the same periodic environments (the future-work claim, validated).
    #[test]
    fn analytic_bound_matches_estimation_loop() {
        let p = parse_program(
            "process P { input a: int; output x: int; x := a; } \
             process Q { input x: int; output y: int; y := x; }",
        )
        .unwrap();
        for (wp, rp) in [(2usize, 2usize), (3, 2), (2, 1)] {
            let steps = 40;
            let scenario = PeriodicInputs::new("a", ValueType::Int, wp, 0)
                .generate(steps)
                .zip_union(&PeriodicInputs::new("x_rd", ValueType::Bool, rp, 0).generate(steps))
                .zip_union(&master_clock("tick", steps));
            let report =
                estimate_buffer_sizes(&p, &scenario, &EstimationOptions::default()).unwrap();
            assert!(report.converged);
            let estimated = report.size_of(&"x".into()).unwrap();
            let analytic = periodic_bound(
                PeriodicRate { period: wp, phase: 0 },
                PeriodicRate { period: rp, phase: 0 },
                steps,
            );
            // the chain's ripple latency can demand up to a couple of extra
            // places relative to the idealized analytic queue
            assert!(
                estimated >= analytic && estimated <= analytic + 2,
                "write/{wp} read/{rp}: estimated {estimated} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn analytic_bound_matches_estimation_on_bursts() {
        let p = parse_program(
            "process P { input a: int; output x: int; x := a; } \
             process Q { input x: int; output y: int; y := x; }",
        )
        .unwrap();
        let steps = 60;
        let (burst, period, rp) = (4usize, 12usize, 2usize);
        let scenario = BurstyInputs::new("a", ValueType::Int, burst, period)
            .generate(steps)
            .zip_union(&PeriodicInputs::new("x_rd", ValueType::Bool, rp, 0).generate(steps))
            .zip_union(&master_clock("tick", steps));
        let report = estimate_buffer_sizes(&p, &scenario, &EstimationOptions::default()).unwrap();
        assert!(report.converged);
        let estimated = report.size_of(&"x".into()).unwrap();
        let analytic = bursty_bound(burst, period, PeriodicRate { period: rp, phase: 0 }, steps);
        assert!(
            estimated >= analytic && estimated <= analytic + 2,
            "estimated {estimated} vs analytic {analytic}"
        );
    }

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(super::gcd(12, 8), 4);
        assert_eq!(super::lcm(4, 6), 12);
        assert_eq!(super::lcm(1, 7), 7);
    }
}
