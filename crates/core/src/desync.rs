//! The desynchronization transformation (Figure 3, Theorem 1).
//!
//! Given a program of synchronously composed components, every explicit
//! data dependency `P →x Q` is cut: the producer's `x` is renamed to
//! `x_in`, the consumer's to `x_out`, and a FIFO component (Section 5.1's
//! chain of one-place buffers) is inserted between them — exactly the
//! `(P[x_P/x] ∥ Q[x_Q/x]) ∥s nFifo_{x_P→x_Q}` network of Theorems 1 and 2.
//! After the cut the producer and consumer share no variables besides the
//! global master `tick`; their synchronization is carried solely by the
//! channel, so their clocks can be relaxed independently — the GALS model.
//!
//! The consumer's read requests (`x_rd`) become fresh *inputs* of the
//! transformed program: in the synchronous validation model the
//! environment supplies each component's local activation pattern, which is
//! how the paper models unknown relative clock rates inside one synchronous
//! framework.

use std::collections::BTreeMap;

use polysig_lang::{Component, Program};
use polysig_tagged::hash::FxHashMap;
use polysig_tagged::SigName;

use crate::error::GalsError;
use crate::instrument::monitor_component;
use crate::nfifo::nfifo_component;
use crate::partition::{channels_of_program, ChannelSpec};

/// Options for [`desynchronize`].
#[derive(Debug, Clone)]
pub struct DesyncOptions {
    /// Buffer depth per channel; channels not listed use
    /// [`DesyncOptions::default_size`].
    pub sizes: BTreeMap<SigName, usize>,
    /// Depth for channels without an explicit entry.
    pub default_size: usize,
    /// Also insert the Figure-4 monitor (miss counter + max register) per
    /// channel.
    pub instrument: bool,
    /// Reject components classified [`NonDeterministic`] by the endochrony
    /// analysis (`true` by default) — the precondition Theorem 1 needs
    /// before desynchronization preserves flows. Opt out with
    /// [`DesyncOptions::lenient`] to transform such programs anyway, e.g.
    /// when flows are validated dynamically afterwards.
    ///
    /// [`NonDeterministic`]: polysig_lang::Endochrony::NonDeterministic
    pub enforce_endochrony: bool,
}

impl Default for DesyncOptions {
    fn default() -> Self {
        DesyncOptions {
            sizes: BTreeMap::new(),
            default_size: 1,
            instrument: false,
            enforce_endochrony: true,
        }
    }
}

impl DesyncOptions {
    /// Uniform buffer depth, no instrumentation.
    pub fn with_size(n: usize) -> Self {
        DesyncOptions { default_size: n, ..DesyncOptions::default() }
    }

    /// Enables the Figure-4 instrumentation.
    #[must_use]
    pub fn instrumented(mut self) -> Self {
        self.instrument = true;
        self
    }

    /// Sets the depth of one channel.
    #[must_use]
    pub fn size_of(mut self, signal: impl Into<SigName>, n: usize) -> Self {
        self.sizes.insert(signal.into(), n);
        self
    }

    /// Disables the endochrony gate: non-deterministic components are
    /// transformed without complaint.
    #[must_use]
    pub fn lenient(mut self) -> Self {
        self.enforce_endochrony = false;
        self
    }
}

/// One inserted channel: the original dependency plus the generated signal
/// names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelInstance {
    /// The original dependency.
    pub spec: ChannelSpec,
    /// Buffer depth used.
    pub size: usize,
    /// The producer-side signal (`x_P` of Theorem 1).
    pub in_signal: SigName,
    /// The consumer-side signal (`x_Q`).
    pub out_signal: SigName,
    /// The fresh read-request input.
    pub rd_signal: SigName,
    /// The alarm output (true = rejected write).
    pub alarm_signal: SigName,
    /// The ok output (true = accepted write).
    pub ok_signal: SigName,
    /// The occupancy output.
    pub count_signal: SigName,
    /// The stage-1-occupied output (the clock-masking indicator).
    pub full_signal: SigName,
    /// The max-consecutive-miss register (present iff instrumented).
    pub maxmiss_signal: Option<SigName>,
}

/// A desynchronized program: the transformed network plus channel metadata.
#[derive(Debug, Clone)]
pub struct Desynchronized {
    /// The transformed program: renamed components + FIFO components
    /// (+ monitors when instrumented).
    pub program: Program,
    /// One entry per cut dependency.
    pub channels: Vec<ChannelInstance>,
}

impl Desynchronized {
    /// Finds a channel by its original signal name.
    pub fn channel(&self, signal: &SigName) -> Option<&ChannelInstance> {
        self.channels.iter().find(|c| &c.spec.signal == signal)
    }

    /// Builds the channel-driving half of an environment: the master `tick`
    /// at every instant and every channel's read request every
    /// `read_period` instants. Zip it with the producer inputs:
    ///
    /// ```
    /// use polysig_gals::{desynchronize, DesyncOptions};
    /// use polysig_lang::parse_program;
    /// use polysig_sim::{PeriodicInputs, ScenarioGenerator};
    /// use polysig_tagged::ValueType;
    ///
    /// let p = parse_program(
    ///     "process P { input a: int; output x: int; x := a; } \
    ///      process Q { input x: int; output y: int; y := x; }",
    /// )?;
    /// let d = desynchronize(&p, &DesyncOptions::with_size(2))?;
    /// let env = PeriodicInputs::new("a", ValueType::Int, 2, 0)
    ///     .generate(16)
    ///     .zip_union(&d.driver_scenario(16, 2));
    /// assert_eq!(env.len(), 16);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn driver_scenario(&self, steps: usize, read_period: usize) -> polysig_sim::Scenario {
        use polysig_sim::{generator::master_clock, PeriodicInputs, ScenarioGenerator};
        let mut s = master_clock("tick", steps);
        for ch in &self.channels {
            s = s.zip_union(
                &PeriodicInputs::new(
                    ch.rd_signal.clone(),
                    polysig_tagged::ValueType::Bool,
                    read_period,
                    0,
                )
                .generate(steps),
            );
        }
        s
    }
}

/// Applies the desynchronization transformation to every cross-component
/// dependency of `program`.
///
/// # Errors
///
/// * anything [`channels_of_program`] rejects (unresolved program,
///   multi-consumer signals);
/// * [`GalsError::UnknownChannel`] if `options.sizes` names a signal that is
///   not a cross-component dependency;
/// * [`GalsError::NonEndochronous`] if a component has several independent
///   master clocks (Theorem 1's determinism precondition) and
///   [`DesyncOptions::enforce_endochrony`] is set (the default).
///
/// ```
/// use polysig_gals::{desynchronize, DesyncOptions};
/// use polysig_lang::parse_program;
///
/// let p = parse_program(
///     "process P { input a: int; output x: int; x := a + 1; } \
///      process Q { input x: int; output y: int; y := x * 2; }",
/// )?;
/// let d = desynchronize(&p, &DesyncOptions::with_size(2))?;
/// assert_eq!(d.channels.len(), 1);
/// assert_eq!(d.program.components.len(), 3); // P', Q', Fifo_x
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn desynchronize(
    program: &Program,
    options: &DesyncOptions,
) -> Result<Desynchronized, GalsError> {
    if options.enforce_endochrony {
        for c in &program.components {
            if let polysig_lang::Endochrony::NonDeterministic { masters } =
                polysig_lang::classify_endochrony(c)
            {
                return Err(GalsError::NonEndochronous { component: c.name.clone(), masters });
            }
        }
    }
    DesyncCache::new(program, options.instrument)?.build(&options.sizes, options.default_size)
}

/// Builds desynchronized programs for many size maps without re-deriving
/// the shared skeleton.
///
/// [`desynchronize`] derives the channel specs, renames the producer and
/// consumer components and fabricates every FIFO (and monitor) on each
/// call. The Section-5.2 estimation loop calls it once per round with only
/// the FIFO depths changed, so the cache splits the work: the *skeleton* —
/// specs, renamed components, monitors, channel signal names — is derived
/// once at construction, and [`DesyncCache::build`] assembles a round's
/// program from clones, fabricating a FIFO component only for `(channel,
/// depth)` pairs never seen before.
///
/// `build` produces exactly what [`desynchronize`] produces for the same
/// options ([`desynchronize`] is itself a one-shot cache).
///
/// ```
/// use polysig_gals::{desynchronize, DesyncCache, DesyncOptions};
/// use polysig_lang::parse_program;
///
/// let p = parse_program(
///     "process P { input a: int; output x: int; x := a + 1; } \
///      process Q { input x: int; output y: int; y := x * 2; }",
/// )?;
/// let mut cache = DesyncCache::new(&p, false)?;
/// let d2 = cache.build(&[("x".into(), 2)].into(), 1)?;
/// let d3 = cache.build(&[("x".into(), 3)].into(), 1)?;
/// assert_eq!(d2.program, desynchronize(&p, &DesyncOptions::with_size(2))?.program);
/// assert_eq!(d3.channels[0].size, 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DesyncCache {
    /// The transformed program's name (`<original>_gals`).
    name: String,
    /// Renamed original components, in original order.
    skeleton: Vec<Component>,
    /// Channel metadata with the generated signal names; the `size` field
    /// is a placeholder filled in per build.
    channels: Vec<ChannelInstance>,
    /// Insert the Figure-4 monitors?
    instrument: bool,
    /// One monitor per channel (empty when not instrumenting).
    monitors: Vec<Component>,
    /// Memoized FIFO components keyed by `(channel index, depth)`.
    fifos: FxHashMap<(usize, usize), Component>,
    /// `true` iff the source program declares a signal that looks like a
    /// generated channel signal (`<channel>_…`) — see
    /// [`DesyncCache::has_generated_name_collision`].
    name_collision: bool,
}

impl DesyncCache {
    /// Derives the skeleton: channel specs, renamed producer/consumer
    /// components and (when `instrument` is set) the per-channel monitors.
    ///
    /// # Errors
    ///
    /// Anything [`channels_of_program`] rejects (unresolved program,
    /// multi-consumer signals).
    pub fn new(program: &Program, instrument: bool) -> Result<DesyncCache, GalsError> {
        let specs = channels_of_program(program)?;
        let mut components: BTreeMap<String, Component> =
            program.components.iter().map(|c| (c.name.clone(), c.clone())).collect();
        let mut channels = Vec::new();

        for spec in specs {
            let base = spec.signal.as_str();
            let in_signal = SigName::from(format!("{base}_in"));
            let out_signal = SigName::from(format!("{base}_out"));
            let rd_signal = SigName::from(format!("{base}_rd"));

            // rename producer's output x → x_in, consumer's input x → x_out
            let producer = components
                .get(&spec.producer)
                .expect("producer exists by construction")
                .rename_signal(&spec.signal, &in_signal);
            components.insert(spec.producer.clone(), producer);
            let consumer = components
                .get(&spec.consumer)
                .expect("consumer exists by construction")
                .rename_signal(&spec.signal, &out_signal);
            components.insert(spec.consumer.clone(), consumer);

            channels.push(ChannelInstance {
                alarm_signal: SigName::from(format!("{base}_alarm")),
                ok_signal: SigName::from(format!("{base}_ok")),
                count_signal: SigName::from(format!("{base}_count")),
                full_signal: SigName::from(format!("{base}_full")),
                maxmiss_signal: instrument.then(|| SigName::from(format!("{base}_maxmiss"))),
                spec,
                size: 0, // placeholder; every build fills it in
                in_signal,
                out_signal,
                rd_signal,
            });
        }

        let skeleton: Vec<Component> = program
            .components
            .iter()
            .map(|c| components.remove(&c.name).expect("component preserved"))
            .collect();
        let monitors: Vec<Component> = if instrument {
            channels.iter().map(|ch| monitor_component(ch.spec.signal.as_str())).collect()
        } else {
            Vec::new()
        };

        // a source declaration named like a generated channel signal
        // (`x_alarm`, `x_d3`, …) could alias the channel machinery — the
        // estimation loop's warm start refuses to assume prefix equivalence
        // for such programs (conservative: any `<channel>_` prefix counts)
        let name_collision = program.components.iter().flat_map(|c| &c.decls).any(|d| {
            channels.iter().any(|ch| {
                d.name
                    .as_str()
                    .strip_prefix(ch.spec.signal.as_str())
                    .is_some_and(|rest| rest.starts_with('_'))
            })
        });

        Ok(DesyncCache {
            name: format!("{}_gals", program.name),
            skeleton,
            channels,
            instrument,
            monitors,
            fifos: FxHashMap::default(),
            name_collision,
        })
    }

    /// The original signal of every channel, in channel order.
    pub fn signals(&self) -> impl Iterator<Item = &SigName> {
        self.channels.iter().map(|c| &c.spec.signal)
    }

    /// Number of channels the transformation will cut.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// `true` iff the source program declares a name that collides with the
    /// generated channel-signal namespace (`<channel>_…`) — the generated
    /// machinery could then feed back into the source components, voiding
    /// the prefix-equivalence argument the estimation warm start rests on.
    pub fn has_generated_name_collision(&self) -> bool {
        self.name_collision
    }

    /// Assembles the desynchronized program for one size map (channels not
    /// in `sizes` use `default_size`).
    ///
    /// # Errors
    ///
    /// [`GalsError::UnknownChannel`] if `sizes` names a signal that is not
    /// a cut dependency.
    pub fn build(
        &mut self,
        sizes: &BTreeMap<SigName, usize>,
        default_size: usize,
    ) -> Result<Desynchronized, GalsError> {
        for named in sizes.keys() {
            if !self.channels.iter().any(|c| &c.spec.signal == named) {
                return Err(GalsError::UnknownChannel { signal: named.clone() });
            }
        }
        let mut out = Program::new(self.name.clone());
        out.components.extend(self.skeleton.iter().cloned());
        let mut channels = self.channels.clone();
        for (i, ch) in channels.iter_mut().enumerate() {
            ch.size = sizes.get(&ch.spec.signal).copied().unwrap_or(default_size);
            let fifo = self
                .fifos
                .entry((i, ch.size))
                .or_insert_with(|| nfifo_component(ch.spec.signal.as_str(), ch.size));
            out.components.push(fifo.clone());
            if self.instrument {
                out.components.push(self.monitors[i].clone());
            }
        }
        Ok(Desynchronized { program: out, channels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_lang::{parse_program, Role};

    fn sample() -> Program {
        parse_program(
            "process P { input a: int; output x: int; x := a + 1; } \
             process Q { input x: int; output y: int; y := x * 2; }",
        )
        .unwrap()
    }

    #[test]
    fn produces_theorem1_network_structure() {
        let d = desynchronize(&sample(), &DesyncOptions::with_size(2)).unwrap();
        assert_eq!(d.program.components.len(), 3);

        let p = d.program.component("P").unwrap();
        let q = d.program.component("Q").unwrap();
        // producer and consumer no longer share x…
        let shared = d.program.shared_signals("P", "Q");
        assert!(shared.is_empty(), "P' and Q' must be variable-disjoint, got {shared:?}");
        // …they talk only through the FIFO
        assert!(p.decl(&"x_in".into()).is_some_and(|dd| dd.role == Role::Output));
        assert!(q.decl(&"x_out".into()).is_some_and(|dd| dd.role == Role::Input));
        let fifo = d.program.component("Fifo_x").unwrap();
        assert!(fifo.decl(&"x_in".into()).is_some_and(|dd| dd.role == Role::Input));
        assert!(fifo.decl(&"x_out".into()).is_some_and(|dd| dd.role == Role::Output));
    }

    #[test]
    fn transformed_program_still_resolves() {
        let d = desynchronize(&sample(), &DesyncOptions::with_size(1)).unwrap();
        assert!(polysig_lang::resolve::resolve_program(&d.program).is_ok());
        assert!(polysig_lang::types::check_program(&d.program).is_ok());
    }

    #[test]
    fn read_requests_become_external_inputs() {
        let d = desynchronize(&sample(), &DesyncOptions::default()).unwrap();
        let inputs = d.program.external_inputs();
        assert!(inputs.contains("x_rd"));
        assert!(inputs.contains("a"));
        assert!(inputs.contains("tick"));
    }

    #[test]
    fn instrumentation_adds_monitor() {
        let d = desynchronize(&sample(), &DesyncOptions::with_size(1).instrumented()).unwrap();
        assert_eq!(d.program.components.len(), 4);
        assert!(d.program.component("Monitor_x").is_some());
        assert_eq!(d.channels[0].maxmiss_signal.as_ref().map(|s| s.as_str()), Some("x_maxmiss"));
        assert!(polysig_lang::resolve::resolve_program(&d.program).is_ok());
    }

    #[test]
    fn per_channel_sizes_and_lookup() {
        let d = desynchronize(&sample(), &DesyncOptions::default().size_of("x", 5)).unwrap();
        let ch = d.channel(&"x".into()).unwrap();
        assert_eq!(ch.size, 5);
        assert_eq!(ch.rd_signal.as_str(), "x_rd");
        assert!(d.channel(&"nope".into()).is_none());
    }

    #[test]
    fn unknown_channel_in_options_rejected() {
        let err =
            desynchronize(&sample(), &DesyncOptions::default().size_of("ghost", 2)).unwrap_err();
        assert!(matches!(err, GalsError::UnknownChannel { .. }));
    }

    #[test]
    fn cache_builds_match_fresh_desynchronize_exactly() {
        let p = parse_program(
            "process A { input a: int; output x: int; x := a; } \
             process B { input x: int; output y: int; y := x + 1; } \
             process C { input y: int; output z: int; z := y * 2; }",
        )
        .unwrap();
        let mut cache = DesyncCache::new(&p, true).unwrap();
        // several rounds with changing sizes, including a repeat that hits
        // the FIFO memo
        for sizes in [vec![("x", 1), ("y", 1)], vec![("x", 3), ("y", 1)], vec![("x", 3), ("y", 2)]]
        {
            let map: BTreeMap<SigName, usize> =
                sizes.iter().map(|(s, n)| (SigName::from(*s), *n)).collect();
            let opts = DesyncOptions { sizes: map.clone(), instrument: true, ..Default::default() };
            let fresh = desynchronize(&p, &opts).unwrap();
            let cached = cache.build(&map, 1).unwrap();
            assert_eq!(cached.program, fresh.program);
            assert_eq!(cached.channels, fresh.channels);
        }
    }

    #[test]
    fn generated_name_collision_detected() {
        let clean = DesyncCache::new(&sample(), true).unwrap();
        assert!(!clean.has_generated_name_collision());

        // `x_probe` lives inside the generated `x_…` namespace
        let p = parse_program(
            "process P { input a: int; output x: int; local x_probe: int; \
                         x := a + 1; x_probe := x; } \
             process Q { input x: int; output y: int; y := x * 2; }",
        )
        .unwrap();
        let tainted = DesyncCache::new(&p, true).unwrap();
        assert!(tainted.has_generated_name_collision());
    }

    #[test]
    fn chain_of_three_components_gets_two_fifos() {
        let p = parse_program(
            "process A { input a: int; output x: int; x := a; } \
             process B { input x: int; output y: int; y := x + 1; } \
             process C { input y: int; output z: int; z := y * 2; }",
        )
        .unwrap();
        let d = desynchronize(&p, &DesyncOptions::with_size(1)).unwrap();
        assert_eq!(d.channels.len(), 2);
        assert_eq!(d.program.components.len(), 5);
        assert!(d.program.component("Fifo_x").is_some());
        assert!(d.program.component("Fifo_y").is_some());
    }
}
