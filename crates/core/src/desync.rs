//! The desynchronization transformation (Figure 3, Theorem 1).
//!
//! Given a program of synchronously composed components, every explicit
//! data dependency `P →x Q` is cut: the producer's `x` is renamed to
//! `x_in`, the consumer's to `x_out`, and a FIFO component (Section 5.1's
//! chain of one-place buffers) is inserted between them — exactly the
//! `(P[x_P/x] ∥ Q[x_Q/x]) ∥s nFifo_{x_P→x_Q}` network of Theorems 1 and 2.
//! After the cut the producer and consumer share no variables besides the
//! global master `tick`; their synchronization is carried solely by the
//! channel, so their clocks can be relaxed independently — the GALS model.
//!
//! The consumer's read requests (`x_rd`) become fresh *inputs* of the
//! transformed program: in the synchronous validation model the
//! environment supplies each component's local activation pattern, which is
//! how the paper models unknown relative clock rates inside one synchronous
//! framework.

use std::collections::BTreeMap;

use polysig_lang::Program;
use polysig_tagged::SigName;

use crate::error::GalsError;
use crate::instrument::monitor_component;
use crate::nfifo::nfifo_component;
use crate::partition::{channels_of_program, ChannelSpec};

/// Options for [`desynchronize`].
#[derive(Debug, Clone)]
pub struct DesyncOptions {
    /// Buffer depth per channel; channels not listed use
    /// [`DesyncOptions::default_size`].
    pub sizes: BTreeMap<SigName, usize>,
    /// Depth for channels without an explicit entry.
    pub default_size: usize,
    /// Also insert the Figure-4 monitor (miss counter + max register) per
    /// channel.
    pub instrument: bool,
}

impl Default for DesyncOptions {
    fn default() -> Self {
        DesyncOptions { sizes: BTreeMap::new(), default_size: 1, instrument: false }
    }
}

impl DesyncOptions {
    /// Uniform buffer depth, no instrumentation.
    pub fn with_size(n: usize) -> Self {
        DesyncOptions { default_size: n, ..DesyncOptions::default() }
    }

    /// Enables the Figure-4 instrumentation.
    #[must_use]
    pub fn instrumented(mut self) -> Self {
        self.instrument = true;
        self
    }

    /// Sets the depth of one channel.
    #[must_use]
    pub fn size_of(mut self, signal: impl Into<SigName>, n: usize) -> Self {
        self.sizes.insert(signal.into(), n);
        self
    }
}

/// One inserted channel: the original dependency plus the generated signal
/// names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelInstance {
    /// The original dependency.
    pub spec: ChannelSpec,
    /// Buffer depth used.
    pub size: usize,
    /// The producer-side signal (`x_P` of Theorem 1).
    pub in_signal: SigName,
    /// The consumer-side signal (`x_Q`).
    pub out_signal: SigName,
    /// The fresh read-request input.
    pub rd_signal: SigName,
    /// The alarm output (true = rejected write).
    pub alarm_signal: SigName,
    /// The ok output (true = accepted write).
    pub ok_signal: SigName,
    /// The occupancy output.
    pub count_signal: SigName,
    /// The stage-1-occupied output (the clock-masking indicator).
    pub full_signal: SigName,
    /// The max-consecutive-miss register (present iff instrumented).
    pub maxmiss_signal: Option<SigName>,
}

/// A desynchronized program: the transformed network plus channel metadata.
#[derive(Debug, Clone)]
pub struct Desynchronized {
    /// The transformed program: renamed components + FIFO components
    /// (+ monitors when instrumented).
    pub program: Program,
    /// One entry per cut dependency.
    pub channels: Vec<ChannelInstance>,
}

impl Desynchronized {
    /// Finds a channel by its original signal name.
    pub fn channel(&self, signal: &SigName) -> Option<&ChannelInstance> {
        self.channels.iter().find(|c| &c.spec.signal == signal)
    }

    /// Builds the channel-driving half of an environment: the master `tick`
    /// at every instant and every channel's read request every
    /// `read_period` instants. Zip it with the producer inputs:
    ///
    /// ```
    /// use polysig_gals::{desynchronize, DesyncOptions};
    /// use polysig_lang::parse_program;
    /// use polysig_sim::{PeriodicInputs, ScenarioGenerator};
    /// use polysig_tagged::ValueType;
    ///
    /// let p = parse_program(
    ///     "process P { input a: int; output x: int; x := a; } \
    ///      process Q { input x: int; output y: int; y := x; }",
    /// )?;
    /// let d = desynchronize(&p, &DesyncOptions::with_size(2))?;
    /// let env = PeriodicInputs::new("a", ValueType::Int, 2, 0)
    ///     .generate(16)
    ///     .zip_union(&d.driver_scenario(16, 2));
    /// assert_eq!(env.len(), 16);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn driver_scenario(&self, steps: usize, read_period: usize) -> polysig_sim::Scenario {
        use polysig_sim::{generator::master_clock, PeriodicInputs, ScenarioGenerator};
        let mut s = master_clock("tick", steps);
        for ch in &self.channels {
            s = s.zip_union(
                &PeriodicInputs::new(
                    ch.rd_signal.clone(),
                    polysig_tagged::ValueType::Bool,
                    read_period,
                    0,
                )
                .generate(steps),
            );
        }
        s
    }
}

/// Applies the desynchronization transformation to every cross-component
/// dependency of `program`.
///
/// # Errors
///
/// * anything [`channels_of_program`] rejects (unresolved program,
///   multi-consumer signals);
/// * [`GalsError::UnknownChannel`] if `options.sizes` names a signal that is
///   not a cross-component dependency.
///
/// ```
/// use polysig_gals::{desynchronize, DesyncOptions};
/// use polysig_lang::parse_program;
///
/// let p = parse_program(
///     "process P { input a: int; output x: int; x := a + 1; } \
///      process Q { input x: int; output y: int; y := x * 2; }",
/// )?;
/// let d = desynchronize(&p, &DesyncOptions::with_size(2))?;
/// assert_eq!(d.channels.len(), 1);
/// assert_eq!(d.program.components.len(), 3); // P', Q', Fifo_x
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn desynchronize(
    program: &Program,
    options: &DesyncOptions,
) -> Result<Desynchronized, GalsError> {
    let specs = channels_of_program(program)?;
    for named in options.sizes.keys() {
        if !specs.iter().any(|s| &s.signal == named) {
            return Err(GalsError::UnknownChannel { signal: named.clone() });
        }
    }

    let mut out = Program::new(format!("{}_gals", program.name));
    let mut components: BTreeMap<String, polysig_lang::Component> =
        program.components.iter().map(|c| (c.name.clone(), c.clone())).collect();
    let mut channels = Vec::new();

    for spec in specs {
        let n = options.sizes.get(&spec.signal).copied().unwrap_or(options.default_size);
        let base = spec.signal.as_str();
        let in_signal = SigName::from(format!("{base}_in"));
        let out_signal = SigName::from(format!("{base}_out"));
        let rd_signal = SigName::from(format!("{base}_rd"));

        // rename producer's output x → x_in, consumer's input x → x_out
        let producer = components
            .get(&spec.producer)
            .expect("producer exists by construction")
            .rename_signal(&spec.signal, &in_signal);
        components.insert(spec.producer.clone(), producer);
        let consumer = components
            .get(&spec.consumer)
            .expect("consumer exists by construction")
            .rename_signal(&spec.signal, &out_signal);
        components.insert(spec.consumer.clone(), consumer);

        channels.push(ChannelInstance {
            alarm_signal: SigName::from(format!("{base}_alarm")),
            ok_signal: SigName::from(format!("{base}_ok")),
            count_signal: SigName::from(format!("{base}_count")),
            full_signal: SigName::from(format!("{base}_full")),
            maxmiss_signal: options.instrument.then(|| SigName::from(format!("{base}_maxmiss"))),
            spec,
            size: n,
            in_signal,
            out_signal,
            rd_signal,
        });
    }

    // original components (renamed), in original order
    for c in &program.components {
        out.components.push(components.remove(&c.name).expect("component preserved"));
    }
    // one FIFO (and optionally one monitor) per channel
    for ch in &channels {
        out.components.push(nfifo_component(ch.spec.signal.as_str(), ch.size));
        if options.instrument {
            out.components.push(monitor_component(ch.spec.signal.as_str()));
        }
    }

    Ok(Desynchronized { program: out, channels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_lang::{parse_program, Role};

    fn sample() -> Program {
        parse_program(
            "process P { input a: int; output x: int; x := a + 1; } \
             process Q { input x: int; output y: int; y := x * 2; }",
        )
        .unwrap()
    }

    #[test]
    fn produces_theorem1_network_structure() {
        let d = desynchronize(&sample(), &DesyncOptions::with_size(2)).unwrap();
        assert_eq!(d.program.components.len(), 3);

        let p = d.program.component("P").unwrap();
        let q = d.program.component("Q").unwrap();
        // producer and consumer no longer share x…
        let shared = d.program.shared_signals("P", "Q");
        assert!(shared.is_empty(), "P' and Q' must be variable-disjoint, got {shared:?}");
        // …they talk only through the FIFO
        assert!(p.decl(&"x_in".into()).is_some_and(|dd| dd.role == Role::Output));
        assert!(q.decl(&"x_out".into()).is_some_and(|dd| dd.role == Role::Input));
        let fifo = d.program.component("Fifo_x").unwrap();
        assert!(fifo.decl(&"x_in".into()).is_some_and(|dd| dd.role == Role::Input));
        assert!(fifo.decl(&"x_out".into()).is_some_and(|dd| dd.role == Role::Output));
    }

    #[test]
    fn transformed_program_still_resolves() {
        let d = desynchronize(&sample(), &DesyncOptions::with_size(1)).unwrap();
        assert!(polysig_lang::resolve::resolve_program(&d.program).is_ok());
        assert!(polysig_lang::types::check_program(&d.program).is_ok());
    }

    #[test]
    fn read_requests_become_external_inputs() {
        let d = desynchronize(&sample(), &DesyncOptions::default()).unwrap();
        let inputs = d.program.external_inputs();
        assert!(inputs.contains("x_rd"));
        assert!(inputs.contains("a"));
        assert!(inputs.contains("tick"));
    }

    #[test]
    fn instrumentation_adds_monitor() {
        let d = desynchronize(&sample(), &DesyncOptions::with_size(1).instrumented()).unwrap();
        assert_eq!(d.program.components.len(), 4);
        assert!(d.program.component("Monitor_x").is_some());
        assert_eq!(d.channels[0].maxmiss_signal.as_ref().map(|s| s.as_str()), Some("x_maxmiss"));
        assert!(polysig_lang::resolve::resolve_program(&d.program).is_ok());
    }

    #[test]
    fn per_channel_sizes_and_lookup() {
        let d = desynchronize(&sample(), &DesyncOptions::default().size_of("x", 5)).unwrap();
        let ch = d.channel(&"x".into()).unwrap();
        assert_eq!(ch.size, 5);
        assert_eq!(ch.rd_signal.as_str(), "x_rd");
        assert!(d.channel(&"nope".into()).is_none());
    }

    #[test]
    fn unknown_channel_in_options_rejected() {
        let err =
            desynchronize(&sample(), &DesyncOptions::default().size_of("ghost", 2)).unwrap_err();
        assert!(matches!(err, GalsError::UnknownChannel { .. }));
    }

    #[test]
    fn chain_of_three_components_gets_two_fifos() {
        let p = parse_program(
            "process A { input a: int; output x: int; x := a; } \
             process B { input x: int; output y: int; y := x + 1; } \
             process C { input y: int; output z: int; z := y * 2; }",
        )
        .unwrap();
        let d = desynchronize(&p, &DesyncOptions::with_size(1)).unwrap();
        assert_eq!(d.channels.len(), 2);
        assert_eq!(d.program.components.len(), 5);
        assert!(d.program.component("Fifo_x").is_some());
        assert!(d.program.component("Fifo_y").is_some());
    }
}
