//! Section 5.2: iterative buffer-size estimation.
//!
//! "Designers can start with a set of behaviors and a rough guess of the
//! needed buffer size and use the instrumented FIFO network to find the
//! right estimation … by simulating the behavior of the design for a given
//! environment, observing the values in the counters, incrementing the
//! buffer size by these values, and iterating the simulation till no alarm
//! is raised."
//!
//! [`estimate_buffer_sizes`] runs exactly that loop: desynchronize with the
//! current sizes and the Figure-4 instrumentation, simulate the given
//! environment, read each channel's max-consecutive-miss register and alarm
//! count, grow the buffers, and repeat until a run raises no alarm (or a
//! cap is hit).
//!
//! ## The incremental engine
//!
//! Consecutive rounds differ only in FIFO depths, so by default
//! ([`EstimationOptions::incremental`]) the loop avoids repeating work the
//! rounds share:
//!
//! * the desynchronization skeleton is derived once per loop via
//!   [`DesyncCache`] and each round's network assembled from clones;
//! * each round compiles straight to a [`Reactor`] and is measured on dense
//!   per-instant environments — alarms and miss registers are read off the
//!   reaction outputs directly, skipping the full trace recording a
//!   [`Simulator`] run would do;
//! * compiled rounds are memoized by their depth vector, so an ensemble
//!   worker revisiting the same sizes (every scenario starts at the same
//!   depths) reuses the compiled reactor;
//! * when a round only *grew* buffers, the next round resumes from the
//!   instant of the earliest write attempt on any grown channel instead of
//!   replaying the whole prefix — see `DESIGN.md` §9 for the soundness
//!   argument and the conditions that force a cold start.
//!
//! The incremental engine is observationally identical to the plain loop
//! (`incremental: false`): same [`EstimationReport`], field for field — the
//! differential suite in `tests/differential.rs` holds it to that.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use polysig_lang::Program;
use polysig_sim::{DenseEnv, Reactor, ReactorState, Scenario, SimError, Simulator};
use polysig_tagged::hash::FxHashMap;
use polysig_tagged::{SigId, SigName, Value};

use crate::desync::{desynchronize, DesyncCache, DesyncOptions, Desynchronized};
use crate::error::GalsError;
use crate::nfifo::fifo_component_name;

/// How to grow a channel that missed writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GrowthPolicy {
    /// Grow by the max-consecutive-miss register (the paper's rule).
    #[default]
    ByMaxMiss,
    /// Double the size (classic geometric growth — an ablation point).
    Doubling,
}

/// Options for the estimation loop.
#[derive(Debug, Clone)]
pub struct EstimationOptions {
    /// Starting depth for every channel.
    pub initial_size: usize,
    /// Give up after this many simulate-grow rounds.
    pub max_iterations: usize,
    /// Give up when any channel would exceed this depth.
    pub max_size: usize,
    /// Growth rule.
    pub growth: GrowthPolicy,
    /// Worker threads for [`estimate_buffer_sizes_ensemble`] (a single
    /// loop is inherently sequential round-to-round, so
    /// [`estimate_buffer_sizes`] ignores this). Per-scenario results are
    /// identical for every value. Defaults to the detected parallelism
    /// (`POLYSIG_TEST_THREADS` overrides it).
    pub threads: usize,
    /// Use the incremental engine (cached desynchronization, dense
    /// measurement, warm-started rounds — see the module docs). The report
    /// is identical either way; `false` forces the plain
    /// desynchronize-simulate-grow loop, kept as the reference
    /// implementation the differential tests compare against.
    pub incremental: bool,
    /// Statically proven sufficient depths (the `polysig-analyze` rate-bound
    /// prover's output, via `StaticBounds::warm_start`). A proven channel
    /// starts at its proven depth (clamped to ≥ 1) instead of
    /// [`EstimationOptions::initial_size`] and is reported with
    /// [`Provenance::Static`]; when *every* channel is proven the loop
    /// returns without simulating a single round. A proven channel that
    /// still alarms — a wrong proof — is grown like any other and its
    /// provenance flips to [`Provenance::Dynamic`] (the safety valve).
    pub proven: BTreeMap<SigName, usize>,
}

impl Default for EstimationOptions {
    fn default() -> Self {
        EstimationOptions {
            initial_size: 1,
            max_iterations: 32,
            max_size: 4096,
            growth: GrowthPolicy::ByMaxMiss,
            threads: crossbeam::pool::default_threads(),
            incremental: true,
            proven: BTreeMap::new(),
        }
    }
}

/// Where a channel's final depth came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Found (or corrected) by the simulate-and-grow loop.
    Dynamic,
    /// Supplied via [`EstimationOptions::proven`] and never contradicted by
    /// a simulated round.
    Static,
}

/// One simulate-and-measure round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EstimationIteration {
    /// Sizes used in this round.
    pub sizes: BTreeMap<SigName, usize>,
    /// Alarm-true events observed per channel.
    pub alarms: BTreeMap<SigName, usize>,
    /// Final value of each channel's max-consecutive-miss register.
    pub max_miss: BTreeMap<SigName, usize>,
}

impl EstimationIteration {
    /// `true` iff no channel raised an alarm.
    pub fn is_clean(&self) -> bool {
        self.alarms.values().all(|&n| n == 0)
    }
}

/// The outcome of the estimation loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EstimationReport {
    /// `true` iff the last round raised no alarm.
    pub converged: bool,
    /// Every round, in order (the last one is the clean run when
    /// converged).
    pub history: Vec<EstimationIteration>,
    /// The sizes of the final round.
    pub final_sizes: BTreeMap<SigName, usize>,
    /// Where each channel's final depth came from: [`Provenance::Static`]
    /// for depths taken on faith from [`EstimationOptions::proven`] and
    /// never contradicted, [`Provenance::Dynamic`] for everything the loop
    /// itself established.
    pub provenance: BTreeMap<SigName, Provenance>,
}

impl EstimationReport {
    /// Number of simulate-grow rounds executed.
    pub fn iterations(&self) -> usize {
        self.history.len()
    }

    /// The estimated size of one channel.
    pub fn size_of(&self, signal: &SigName) -> Option<usize> {
        self.final_sizes.get(signal).copied()
    }
}

/// Runs the Section-5.2 estimation loop for `program` under the environment
/// `scenario` (which must drive the *desynchronized* program's inputs: the
/// original external inputs, each channel's `<x>_rd` read pattern, and the
/// master `tick`).
///
/// # Errors
///
/// Surfaces transformation and simulation errors. A loop that hits the
/// iteration or size cap returns `Ok` with `converged == false` — inspect
/// the report's history to see the divergence.
///
/// ```
/// use polysig_gals::estimate::{estimate_buffer_sizes, EstimationOptions};
/// use polysig_lang::parse_program;
/// use polysig_sim::{PeriodicInputs, ScenarioGenerator};
/// use polysig_tagged::ValueType;
///
/// // producer emits every tick, consumer reads every 2nd tick: any finite
/// // buffer eventually overflows on a long run, but on a short run the
/// // loop finds the size covering the backlog.
/// let p = parse_program(
///     "process P { input a: int; output x: int; x := a; } \
///      process Q { input x: int; output y: int; y := x; }",
/// )?;
/// let steps = 8;
/// let scenario = PeriodicInputs::new("a", ValueType::Int, 1, 0)
///     .generate(steps)
///     .zip_union(&PeriodicInputs::new("x_rd", ValueType::Bool, 2, 1).generate(steps))
///     .zip_union(&polysig_sim::generator::master_clock("tick", steps));
/// let report = estimate_buffer_sizes(&p, &scenario, &EstimationOptions::default())?;
/// assert!(report.converged);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn estimate_buffer_sizes(
    program: &Program,
    scenario: &Scenario,
    options: &EstimationOptions,
) -> Result<EstimationReport, GalsError> {
    if options.incremental {
        estimate_with_ctx(&mut EstimationCtx::new(program)?, scenario, options)
    } else {
        estimate_cold(program, scenario, options)
    }
}

/// A reusable estimation handle: the desynchronization skeleton
/// ([`DesyncCache`]) and the compiled-round memo survive across calls, so
/// a server estimating the same program under many scenarios pays the
/// skeleton derivation once. Each call observes exactly what a fresh
/// [`estimate_buffer_sizes`] call would — the incremental engine's
/// round-for-round equivalence contract (fuzzed by the `EstimateEquiv`
/// and `ServeEquiv` oracles) is what makes the reuse invisible.
pub struct Estimator {
    program: Program,
    ctx: EstimationCtx,
}

impl Estimator {
    /// Derives the skeleton for `program`.
    ///
    /// # Errors
    ///
    /// Surfaces the desynchronization errors [`DesyncCache::new`] raises.
    pub fn new(program: &Program) -> Result<Estimator, GalsError> {
        Ok(Estimator { program: program.clone(), ctx: EstimationCtx::new(program)? })
    }

    /// Runs one Section-5.2 estimation, reusing the cached skeleton when
    /// `options.incremental` (the default); a non-incremental request
    /// falls through to the cold reference loop.
    ///
    /// # Errors
    ///
    /// As [`estimate_buffer_sizes`].
    pub fn estimate(
        &mut self,
        scenario: &Scenario,
        options: &EstimationOptions,
    ) -> Result<EstimationReport, GalsError> {
        if options.incremental {
            estimate_with_ctx(&mut self.ctx, scenario, options)
        } else {
            estimate_cold(&self.program, scenario, options)
        }
    }
}

/// Per-channel starting depths paired with where each one came from.
type SeededSizes = (BTreeMap<SigName, usize>, BTreeMap<SigName, Provenance>);

/// Seeds every channel's starting depth and provenance: proven channels use
/// their proven depth (≥ 1) and start `Static`, the rest use
/// `options.initial_size` and start `Dynamic`.
///
/// # Errors
///
/// [`GalsError::UnknownChannel`] if `options.proven` names a signal that is
/// not a channel.
fn seed_sizes<'a>(
    channels: impl Iterator<Item = &'a SigName>,
    options: &EstimationOptions,
) -> Result<SeededSizes, GalsError> {
    let initial = options.initial_size.max(1);
    let mut sizes = BTreeMap::new();
    let mut provenance = BTreeMap::new();
    for c in channels {
        match options.proven.get(c) {
            Some(&d) => {
                sizes.insert(c.clone(), d.max(1));
                provenance.insert(c.clone(), Provenance::Static);
            }
            None => {
                sizes.insert(c.clone(), initial);
                provenance.insert(c.clone(), Provenance::Dynamic);
            }
        }
    }
    if let Some(bad) = options.proven.keys().find(|k| !sizes.contains_key(*k)) {
        return Err(GalsError::UnknownChannel { signal: bad.clone() });
    }
    Ok((sizes, provenance))
}

/// `true` iff every channel (and there is at least one) was seeded from a
/// static proof — the loop can skip simulation entirely.
fn all_proven(provenance: &BTreeMap<SigName, Provenance>) -> bool {
    !provenance.is_empty() && provenance.values().all(|&p| p == Provenance::Static)
}

/// The reference loop: desynchronize from scratch and simulate through a
/// [`Simulator`] every round. The incremental engine must match this
/// observation for observation.
fn estimate_cold(
    program: &Program,
    scenario: &Scenario,
    options: &EstimationOptions,
) -> Result<EstimationReport, GalsError> {
    // the size-1 probe that discovers the channels is built instrumented:
    // when the loop starts at depth 1 (the default) it *is* round 1's
    // transform, so it is reused rather than discarded
    let probe = desynchronize(
        program,
        &DesyncOptions {
            sizes: BTreeMap::new(),
            default_size: 1,
            instrument: true,
            enforce_endochrony: false,
        },
    )?;
    let (mut sizes, mut provenance) =
        seed_sizes(probe.channels.iter().map(|c| &c.spec.signal), options)?;
    if all_proven(&provenance) {
        return Ok(EstimationReport {
            converged: true,
            history: Vec::new(),
            final_sizes: sizes,
            provenance,
        });
    }
    let mut probe = sizes.values().all(|&s| s == 1).then_some(probe);

    let mut history = Vec::new();
    for _ in 0..options.max_iterations {
        let d = match probe.take() {
            Some(d) => d,
            None => desynchronize(
                program,
                &DesyncOptions {
                    sizes: sizes.clone(),
                    default_size: 1,
                    instrument: true,
                    enforce_endochrony: false,
                },
            )?,
        };
        let iteration = measure(&d, scenario, &sizes)?;
        let clean = iteration.is_clean();
        let max_miss = iteration.max_miss.clone();
        history.push(iteration);
        if clean {
            return Ok(EstimationReport {
                converged: true,
                final_sizes: sizes,
                history,
                provenance,
            });
        }
        // grow the channels that missed; a proven channel that alarms loses
        // its static provenance (the proof was wrong for this environment)
        let mut capped = false;
        for (signal, miss) in &max_miss {
            if *miss == 0 {
                continue;
            }
            let size = sizes.get_mut(signal).expect("channel seeded");
            *size = match options.growth {
                GrowthPolicy::ByMaxMiss => *size + miss,
                GrowthPolicy::Doubling => (*size * 2).max(*size + 1),
            };
            provenance.insert(signal.clone(), Provenance::Dynamic);
            if *size > options.max_size {
                capped = true;
            }
        }
        if capped {
            return Ok(EstimationReport {
                converged: false,
                final_sizes: sizes,
                history,
                provenance,
            });
        }
    }
    Ok(EstimationReport { converged: false, final_sizes: sizes, history, provenance })
}

/// Dense signal ids of one channel's observables, resolved against a
/// compiled round's interner (ids are *not* stable across rounds: deeper
/// FIFOs intern extra stage signals).
struct ChannelIds {
    /// The producer-side write signal (`x_in`) — a write attempt is this
    /// signal being present.
    in_id: SigId,
    /// The alarm output (true = rejected write).
    alarm_id: SigId,
    /// The max-consecutive-miss register output.
    maxmiss_id: SigId,
}

/// One fully-elaborated round: the desynchronized network compiled to a
/// reactor, plus each channel's signal ids.
struct CompiledRound {
    reactor: Reactor,
    ids: Vec<ChannelIds>,
}

/// What one measured round observed, in channel order.
struct RoundObs {
    /// Alarm-true events per channel.
    alarms: Vec<usize>,
    /// Final max-consecutive-miss register value per channel.
    max_miss: Vec<usize>,
    /// Per channel: the instant of its first write attempt together with
    /// the register file as it stood *before* that instant (`None` = the
    /// channel never saw a write). The next round resumes from the earliest
    /// of these over its grown channels.
    first_write: Vec<Option<(usize, Box<[Value]>)>>,
}

/// The donor state a warm start transplants from: the previous round's
/// depth vector, register layout and first-write records. Spans and initial
/// values are copied out of the previous reactor so the donor stays valid
/// even if the compiled-round cache evicts it.
struct PrevRound {
    key: Vec<usize>,
    spans: Vec<(String, usize, usize)>,
    initial: Vec<Value>,
    first_write: Vec<Option<(usize, Box<[Value]>)>>,
}

/// A planned warm start for one round.
struct WarmPlan {
    /// First instant to actually simulate; `[0, start)` is inherited.
    start: usize,
    /// The new reactor's register file at `start`, transplanted from the
    /// donor.
    registers: Box<[Value]>,
    /// First-write records for channels that already wrote inside the
    /// shared prefix, their snapshots re-expressed in the new layout.
    carried: Vec<Option<(usize, Box<[Value]>)>>,
}

/// Compiled rounds kept per context before the memo is wholesale cleared.
/// Estimation loops visit few distinct depth vectors (an ensemble worker
/// revisits mostly the early ones), so a small bound with dumb eviction is
/// plenty — the bound only guards pathological non-converging ensembles.
const MAX_COMPILED_ROUNDS: usize = 64;

/// Per-loop (or per-ensemble-worker) state of the incremental engine.
struct EstimationCtx {
    cache: DesyncCache,
    /// Channel signals, fixing the channel order all dense vectors use.
    signals: Vec<SigName>,
    /// `Fifo_<x>` component name per channel (the register spans to swap on
    /// growth).
    fifo_names: Vec<String>,
    /// Compiled rounds memoized by depth vector (in `signals` order).
    compiled: FxHashMap<Vec<usize>, CompiledRound>,
    /// Warm starts allowed? False when the source program declares names in
    /// the generated channel namespace — such a program could read the
    /// channel machinery, voiding the prefix-equivalence argument.
    warm_ok: bool,
}

impl EstimationCtx {
    fn new(program: &Program) -> Result<EstimationCtx, GalsError> {
        let cache = DesyncCache::new(program, true)?;
        let signals: Vec<SigName> = cache.signals().cloned().collect();
        let fifo_names = signals.iter().map(|s| fifo_component_name(s.as_str())).collect();
        let warm_ok = !cache.has_generated_name_collision();
        Ok(EstimationCtx { cache, signals, fifo_names, compiled: FxHashMap::default(), warm_ok })
    }

    /// The compiled round for one depth vector, building it on a miss.
    fn round(
        &mut self,
        sizes: &BTreeMap<SigName, usize>,
        key: &[usize],
    ) -> Result<&mut CompiledRound, GalsError> {
        if !self.compiled.contains_key(key) {
            if self.compiled.len() >= MAX_COMPILED_ROUNDS {
                self.compiled.clear();
            }
            let d = self.cache.build(sizes, 1)?;
            let reactor = Reactor::for_program(&d.program)?;
            let ids = d
                .channels
                .iter()
                .map(|ch| {
                    let id = |s: &SigName| {
                        reactor.sig_id(s.as_str()).expect("channel signal is interned")
                    };
                    ChannelIds {
                        in_id: id(&ch.in_signal),
                        alarm_id: id(&ch.alarm_signal),
                        maxmiss_id: id(ch.maxmiss_signal.as_ref().expect("instrumented build")),
                    }
                })
                .collect();
            self.compiled.insert(key.to_vec(), CompiledRound { reactor, ids });
        }
        Ok(self.compiled.get_mut(key).expect("just inserted"))
    }
}

/// The incremental estimation loop. Same observable behavior as
/// [`estimate_cold`], round for round.
fn estimate_with_ctx(
    ctx: &mut EstimationCtx,
    scenario: &Scenario,
    options: &EstimationOptions,
) -> Result<EstimationReport, GalsError> {
    let signals = ctx.signals.clone();
    let fifo_names = ctx.fifo_names.clone();
    let warm_ok = ctx.warm_ok;
    let (mut sizes, mut provenance) = seed_sizes(signals.iter(), options)?;
    if all_proven(&provenance) {
        return Ok(EstimationReport {
            converged: true,
            history: Vec::new(),
            final_sizes: sizes,
            provenance,
        });
    }

    let mut history = Vec::new();
    let mut prev: Option<PrevRound> = None;
    for _ in 0..options.max_iterations {
        let key: Vec<usize> = signals.iter().map(|s| sizes[s]).collect();
        let round = ctx.round(&sizes, &key)?;
        let dense = dense_scenario(&round.reactor, scenario)?;
        let plan = if warm_ok {
            prev.as_ref().and_then(|p| plan_warm_start(p, &key, &fifo_names, &round.reactor))
        } else {
            None
        };
        let obs = measure_round(round, &dense, plan)?;
        let iteration = EstimationIteration {
            sizes: sizes.clone(),
            alarms: signals.iter().cloned().zip(obs.alarms.iter().copied()).collect(),
            max_miss: signals.iter().cloned().zip(obs.max_miss.iter().copied()).collect(),
        };
        let clean = iteration.is_clean();
        history.push(iteration);
        if clean {
            return Ok(EstimationReport {
                converged: true,
                final_sizes: sizes,
                history,
                provenance,
            });
        }
        prev = Some(PrevRound {
            key,
            spans: round.reactor.register_spans().to_vec(),
            initial: round.reactor.initial_registers().to_vec(),
            first_write: obs.first_write,
        });
        // grow the channels that missed; a proven channel that alarms loses
        // its static provenance (the proof was wrong for this environment)
        let mut capped = false;
        for (signal, &miss) in signals.iter().zip(&obs.max_miss) {
            if miss == 0 {
                continue;
            }
            let size = sizes.get_mut(signal).expect("channel seeded");
            *size = match options.growth {
                GrowthPolicy::ByMaxMiss => *size + miss,
                GrowthPolicy::Doubling => (*size * 2).max(*size + 1),
            };
            provenance.insert(signal.clone(), Provenance::Dynamic);
            if *size > options.max_size {
                capped = true;
            }
        }
        if capped {
            return Ok(EstimationReport {
                converged: false,
                final_sizes: sizes,
                history,
                provenance,
            });
        }
    }
    Ok(EstimationReport { converged: false, final_sizes: sizes, history, provenance })
}

/// Decides whether the new round (depth vector `key`, compiled to
/// `reactor`) can resume from `prev` instead of starting cold, and builds
/// the transplanted state if so.
///
/// Soundness (DESIGN.md §9): an untouched FIFO is observationally
/// depth-independent — until its first write attempt its outputs and
/// registers are what an empty FIFO of *any* depth produces. So up to
/// `start` = the earliest first write attempt on any *grown* channel, the
/// old and new networks behave identically, and the old round's register
/// file at `start` is the new round's — modulo the grown FIFOs' registers,
/// which are still at their initial values (validated here; any mismatch
/// falls back to a cold start rather than trusting the assumption).
fn plan_warm_start(
    prev: &PrevRound,
    key: &[usize],
    fifo_names: &[String],
    reactor: &Reactor,
) -> Option<WarmPlan> {
    let mut grown = Vec::new();
    for (i, (&new, &old)) in key.iter().zip(&prev.key).enumerate() {
        match new.cmp(&old) {
            // a shrunken channel invalidates the prefix argument wholesale
            Ordering::Less => return None,
            Ordering::Greater => grown.push(i),
            Ordering::Equal => {}
        }
    }
    if grown.is_empty() {
        return None;
    }
    let mut start = usize::MAX;
    let mut donor: Option<&[Value]> = None;
    for &i in &grown {
        // a grown channel must have alarmed, hence written; `None` here
        // means the bookkeeping lost its first write — start cold
        let (t, regs) = prev.first_write[i].as_ref()?;
        if *t < start {
            start = *t;
            donor = Some(regs);
        }
    }
    if start == 0 {
        return None;
    }
    let grown_fifos: Vec<&str> = grown.iter().map(|&i| fifo_names[i].as_str()).collect();
    let registers = transplant(prev, donor?, reactor, &grown_fifos)?;
    // channels that first wrote inside the shared prefix keep their record
    // (the new round will not replay those instants), snapshots
    // re-expressed in the new register layout
    let mut carried: Vec<Option<(usize, Box<[Value]>)>> = vec![None; key.len()];
    for (slot, fw) in carried.iter_mut().zip(&prev.first_write) {
        if let Some((t, regs)) = fw {
            if *t < start {
                *slot = Some((*t, transplant(prev, regs, reactor, &grown_fifos)?));
            }
        }
    }
    Some(WarmPlan { start, registers, carried })
}

/// Re-expresses a donor register file in the new reactor's layout:
/// unchanged components copy their span verbatim; grown FIFOs keep the new
/// initial block, *provided* the donor still had them at their initial
/// values (i.e. genuinely untouched). Any structural surprise returns
/// `None` — the caller starts cold.
fn transplant(
    prev: &PrevRound,
    old_regs: &[Value],
    reactor: &Reactor,
    grown_fifos: &[&str],
) -> Option<Box<[Value]>> {
    let new_spans = reactor.register_spans();
    if prev.spans.len() != new_spans.len() {
        return None;
    }
    let mut regs: Vec<Value> = reactor.initial_registers().to_vec();
    for ((oname, ostart, olen), (nname, nstart, nlen)) in prev.spans.iter().zip(new_spans) {
        if oname != nname {
            return None;
        }
        if grown_fifos.contains(&nname.as_str()) {
            if old_regs[*ostart..*ostart + *olen] != prev.initial[*ostart..*ostart + *olen] {
                return None;
            }
        } else {
            if olen != nlen {
                return None;
            }
            regs[*nstart..*nstart + *nlen].copy_from_slice(&old_regs[*ostart..*ostart + *olen]);
        }
    }
    Some(regs.into_boxed_slice())
}

/// Runs one round on dense environments, cold (`plan: None`) or resuming a
/// warm plan, and reads the observables straight off each reaction's
/// output.
///
/// Observation equivalence with the cold [`measure`]: a warm prefix
/// contributes no alarms (non-grown channels had none all round, grown ones
/// had not yet written) and holds every miss register at 0, so counting
/// from `start` with zeroed accumulators is exact.
fn measure_round(
    round: &mut CompiledRound,
    dense: &[DenseEnv],
    plan: Option<WarmPlan>,
) -> Result<RoundObs, GalsError> {
    let nch = round.ids.len();
    let (start, mut first_write) = match plan {
        Some(WarmPlan { start, registers, carried }) => {
            round.reactor.restore(&ReactorState::new(registers, start));
            (start, carried)
        }
        None => {
            round.reactor.reset();
            (0, vec![None; nch])
        }
    };
    let mut alarms = vec![0usize; nch];
    let mut max_miss = vec![0i64; nch];
    let mut pending = first_write.iter().filter(|f| f.is_none()).count();
    for (k, env) in dense.iter().enumerate().skip(start) {
        // registers as they stand before this instant: the donor state a
        // later round resumes from if some channel first writes now
        let snap: Option<Box<[Value]>> =
            (pending > 0).then(|| round.reactor.registers().to_vec().into_boxed_slice());
        let out = round.reactor.react_dense(env)?;
        for (i, ids) in round.ids.iter().enumerate() {
            if first_write[i].is_none() && out.get(ids.in_id).is_some() {
                first_write[i] = Some((k, snap.clone().expect("snapshot taken while pending")));
                pending -= 1;
            }
            if out.get(ids.alarm_id) == Some(Value::TRUE) {
                alarms[i] += 1;
            }
            if let Some(v) = out.get(ids.maxmiss_id).and_then(|v| v.as_int()) {
                max_miss[i] = v;
            }
        }
    }
    Ok(RoundObs {
        alarms,
        max_miss: max_miss.into_iter().map(|v| v.max(0) as usize).collect(),
        first_write,
    })
}

/// Converts a scenario to dense per-instant environments against one
/// reactor's interner, mirroring [`Simulator::run`]'s conversion (including
/// its reject-unknown-names-before-reacting behavior).
fn dense_scenario(reactor: &Reactor, scenario: &Scenario) -> Result<Vec<DenseEnv>, GalsError> {
    let n = reactor.signal_count();
    let mut steps = Vec::with_capacity(scenario.len());
    for inputs in scenario.iter() {
        let mut env = DenseEnv::new(n);
        for (name, value) in inputs {
            let Some(id) = reactor.sig_id(name) else {
                return Err(SimError::NotAnInput { name: name.clone() }.into());
            };
            env.set(id, *value);
        }
        steps.push(env);
    }
    Ok(steps)
}

/// The outcome of an ensemble estimation: one report per scenario plus the
/// per-channel worst case over the whole ensemble.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnsembleReport {
    /// One [`EstimationReport`] per input scenario, in input order.
    pub reports: Vec<EstimationReport>,
    /// Per channel, the largest final size any scenario demanded — the
    /// sizing that covers the whole ensemble.
    pub merged_sizes: BTreeMap<SigName, usize>,
    /// `true` iff every scenario's loop converged.
    pub converged: bool,
}

/// Scenarios per worker below which fanning out isn't worth the spawn
/// latency (each scenario already amortizes several desynchronize +
/// simulate rounds).
const MIN_SCENARIOS_PER_CHUNK: usize = 1;

/// Runs the Section-5.2 estimation loop once per scenario and merges the
/// results: the paper's "set of behaviors" workflow.
///
/// Scenarios are independent, so the loops are fanned out across
/// `options.threads` scoped workers (chunked contiguously, results merged
/// in input order) — every report, and therefore the merged sizing, is
/// identical for every thread count. An error aborts the whole ensemble,
/// surfacing the earliest-indexed scenario's failure.
pub fn estimate_buffer_sizes_ensemble(
    program: &Program,
    scenarios: &[Scenario],
    options: &EstimationOptions,
) -> Result<EnsembleReport, GalsError> {
    let outs = crossbeam::pool::map_chunks(
        options.threads,
        scenarios,
        MIN_SCENARIOS_PER_CHUNK,
        |_start, chunk| -> Result<Vec<EstimationReport>, GalsError> {
            if options.incremental {
                // one skeleton + compiled-round memo per worker: every
                // scenario starts from the same depth vector, so later
                // scenarios in the chunk hit the compiled cache
                let mut ctx = EstimationCtx::new(program)?;
                chunk.iter().map(|s| estimate_with_ctx(&mut ctx, s, options)).collect()
            } else {
                chunk.iter().map(|s| estimate_cold(program, s, options)).collect()
            }
        },
    );
    let mut reports = Vec::with_capacity(scenarios.len());
    for out in outs {
        reports.extend(out?);
    }
    let mut merged_sizes: BTreeMap<SigName, usize> = BTreeMap::new();
    for report in &reports {
        for (signal, &size) in &report.final_sizes {
            let slot = merged_sizes.entry(signal.clone()).or_insert(size);
            *slot = (*slot).max(size);
        }
    }
    let converged = reports.iter().all(|r| r.converged);
    Ok(EnsembleReport { reports, merged_sizes, converged })
}

/// Simulates one instrumented round and collects alarms and miss registers.
fn measure(
    d: &Desynchronized,
    scenario: &Scenario,
    sizes: &BTreeMap<SigName, usize>,
) -> Result<EstimationIteration, GalsError> {
    let mut sim = Simulator::for_program(&d.program)?;
    let run = sim.run(scenario)?;
    let mut alarms = BTreeMap::new();
    let mut max_miss = BTreeMap::new();
    for ch in &d.channels {
        let alarm_count = run.flow(&ch.alarm_signal).iter().filter(|v| **v == Value::TRUE).count();
        alarms.insert(ch.spec.signal.clone(), alarm_count);
        let register = ch
            .maxmiss_signal
            .as_ref()
            .and_then(|s| run.flow(s).last().and_then(|v| v.as_int()))
            .unwrap_or(0);
        max_miss.insert(ch.spec.signal.clone(), register.max(0) as usize);
    }
    Ok(EstimationIteration { sizes: sizes.clone(), alarms, max_miss })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_lang::parse_program;
    use polysig_sim::generator::master_clock;
    use polysig_sim::{BurstyInputs, PeriodicInputs, ScenarioGenerator};
    use polysig_tagged::ValueType;

    fn pipe() -> Program {
        parse_program(
            "process P { input a: int; output x: int; x := a; } \
             process Q { input x: int; output y: int; y := x; }",
        )
        .unwrap()
    }

    /// writer every tick, reader every `rd_period` ticks
    fn env(steps: usize, write_period: usize, rd_period: usize) -> Scenario {
        PeriodicInputs::new("a", ValueType::Int, write_period, 0)
            .generate(steps)
            .zip_union(&PeriodicInputs::new("x_rd", ValueType::Bool, rd_period, 1).generate(steps))
            .zip_union(&master_clock("tick", steps))
    }

    #[test]
    fn matched_rates_converge_immediately() {
        // write every 2, read every 2: one-place buffering suffices
        let report =
            estimate_buffer_sizes(&pipe(), &env(24, 2, 2), &EstimationOptions::default()).unwrap();
        assert!(report.converged);
        assert_eq!(report.iterations(), 1);
        assert_eq!(report.size_of(&"x".into()), Some(1));
    }

    #[test]
    fn rate_mismatch_grows_buffers() {
        // write every tick, read every 3rd tick over a short horizon:
        // backlog grows, the loop must enlarge the buffer
        let report =
            estimate_buffer_sizes(&pipe(), &env(12, 1, 3), &EstimationOptions::default()).unwrap();
        assert!(report.converged, "history: {:#?}", report.history);
        assert!(report.iterations() > 1);
        assert!(report.size_of(&"x".into()).unwrap() > 1);
        // final round is clean
        assert!(report.history.last().unwrap().is_clean());
        // earlier rounds raised alarms
        assert!(!report.history[0].is_clean());
    }

    #[test]
    fn bursts_need_buffers_matching_burst_length() {
        let steps = 40;
        let scenario = BurstyInputs::new("a", ValueType::Int, 4, 10)
            .generate(steps)
            .zip_union(&PeriodicInputs::new("x_rd", ValueType::Bool, 2, 0).generate(steps))
            .zip_union(&master_clock("tick", steps));
        let report =
            estimate_buffer_sizes(&pipe(), &scenario, &EstimationOptions::default()).unwrap();
        assert!(report.converged);
        let n = report.size_of(&"x".into()).unwrap();
        assert!(n >= 2, "4-bursts drained every 2 ticks need at least 2 places, got {n}");
    }

    #[test]
    fn doubling_policy_also_converges() {
        let opts = EstimationOptions { growth: GrowthPolicy::Doubling, ..Default::default() };
        let report = estimate_buffer_sizes(&pipe(), &env(12, 1, 3), &opts).unwrap();
        assert!(report.converged);
    }

    #[test]
    fn writer_only_workload_converges_at_write_count() {
        // writer always, reader never: on a finite run the loop settles on
        // a buffer holding every write (an infinite run would diverge)
        let steps = 30;
        let scenario = PeriodicInputs::new("a", ValueType::Int, 1, 0)
            .generate(steps)
            .zip_union(&master_clock("tick", steps));
        let report =
            estimate_buffer_sizes(&pipe(), &scenario, &EstimationOptions::default()).unwrap();
        assert!(report.converged);
        assert_eq!(report.size_of(&"x".into()), Some(steps));
    }

    #[test]
    fn size_cap_reports_divergence() {
        // same workload, but the cap is below the needed depth: the loop
        // must give up and say so
        let steps = 30;
        let scenario = PeriodicInputs::new("a", ValueType::Int, 1, 0)
            .generate(steps)
            .zip_union(&master_clock("tick", steps));
        let opts = EstimationOptions { max_size: 8, ..Default::default() };
        let report = estimate_buffer_sizes(&pipe(), &scenario, &opts).unwrap();
        assert!(!report.converged);
        let final_size = report.final_sizes[&SigName::from("x")];
        assert!(final_size > 8, "growth should have tripped the cap, got {final_size}");
        assert!(!report.history.is_empty());
    }

    #[test]
    fn ensemble_merges_worst_case_and_is_thread_count_invariant() {
        // three read rates: the merged sizing must cover the slowest reader
        let scenarios = vec![env(24, 2, 2), env(12, 1, 3), env(18, 1, 2)];
        let seq = estimate_buffer_sizes_ensemble(
            &pipe(),
            &scenarios,
            &EstimationOptions { threads: 1, ..Default::default() },
        )
        .unwrap();
        assert!(seq.converged);
        assert_eq!(seq.reports.len(), 3);
        let worst = seq.reports.iter().map(|r| r.final_sizes[&SigName::from("x")]).max().unwrap();
        assert_eq!(seq.merged_sizes[&SigName::from("x")], worst);
        // per-scenario reports equal the single-scenario entry point
        for (s, r) in scenarios.iter().zip(&seq.reports) {
            assert_eq!(
                r,
                &estimate_buffer_sizes(&pipe(), s, &EstimationOptions::default()).unwrap()
            );
        }
        for threads in [2, 4, 8] {
            let par = estimate_buffer_sizes_ensemble(
                &pipe(),
                &scenarios,
                &EstimationOptions { threads, ..Default::default() },
            )
            .unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    /// Writer starting at `wphase` (then every tick), reader every
    /// `rd_period` from instant 0 — a nonzero `wphase` delays the first
    /// write attempt, which is what lets a warm start skip a prefix.
    fn phased_env(steps: usize, wphase: usize, rd_period: usize) -> Scenario {
        PeriodicInputs::new("a", ValueType::Int, 1, wphase)
            .generate(steps)
            .zip_union(&PeriodicInputs::new("x_rd", ValueType::Bool, rd_period, 0).generate(steps))
            .zip_union(&master_clock("tick", steps))
    }

    #[test]
    fn incremental_matches_cold_reference() {
        let cold_opts = EstimationOptions { incremental: false, ..Default::default() };
        for scenario in [env(24, 2, 2), env(12, 1, 3), phased_env(16, 3, 4), phased_env(30, 5, 2)] {
            let warm = estimate_buffer_sizes(&pipe(), &scenario, &Default::default()).unwrap();
            let cold = estimate_buffer_sizes(&pipe(), &scenario, &cold_opts).unwrap();
            assert_eq!(warm, cold);
        }
    }

    #[test]
    fn warm_start_plan_engages_at_first_write_instant() {
        // drive the internals by hand: round 1 at depth 1, then check the
        // grown round's plan resumes at the first write attempt (instant 3)
        let scenario = phased_env(16, 3, 4);
        let mut ctx = EstimationCtx::new(&pipe()).unwrap();
        assert!(ctx.warm_ok);

        let sizes1: BTreeMap<SigName, usize> = [(SigName::from("x"), 1)].into();
        let round1 = ctx.round(&sizes1, &[1]).unwrap();
        let dense = dense_scenario(&round1.reactor, &scenario).unwrap();
        let obs = measure_round(round1, &dense, None).unwrap();
        let (t, _) = obs.first_write[0].as_ref().expect("the writer wrote");
        assert_eq!(*t, 3);
        let miss = obs.max_miss[0];
        assert!(miss > 0, "depth 1 must overflow under this workload");
        let prev = PrevRound {
            key: vec![1],
            spans: round1.reactor.register_spans().to_vec(),
            initial: round1.reactor.initial_registers().to_vec(),
            first_write: obs.first_write,
        };

        let key2 = vec![1 + miss];
        let sizes2: BTreeMap<SigName, usize> = [(SigName::from("x"), 1 + miss)].into();
        let round2 = ctx.round(&sizes2, &key2).unwrap();
        let plan = plan_warm_start(&prev, &key2, &[fifo_component_name("x")], &round2.reactor)
            .expect("growth after a delayed first write must warm start");
        assert_eq!(plan.start, 3);
        assert_eq!(plan.registers.len(), round2.reactor.register_count());

        // a shrink, an equal key, or a zero-instant prefix must refuse
        assert!(
            plan_warm_start(&prev, &[0], &[fifo_component_name("x")], &round2.reactor).is_none()
        );
        assert!(
            plan_warm_start(&prev, &[1], &[fifo_component_name("x")], &round2.reactor).is_none()
        );
    }

    #[test]
    fn transplant_rejects_structural_mismatches() {
        // exercise every cold-fallback branch of `transplant` directly: a
        // donor that disagrees with the new reactor's layout in any way must
        // return None (the loop then starts cold) rather than guess
        let mut ctx = EstimationCtx::new(&pipe()).unwrap();
        let sizes1: BTreeMap<SigName, usize> = [(SigName::from("x"), 1)].into();
        let (spans, initial) = {
            let r1 = ctx.round(&sizes1, &[1]).unwrap();
            (r1.reactor.register_spans().to_vec(), r1.reactor.initial_registers().to_vec())
        };
        let sizes2: BTreeMap<SigName, usize> = [(SigName::from("x"), 3)].into();
        let fifo = fifo_component_name("x");
        let fifo_span = spans
            .iter()
            .find(|(n, _, len)| *n == fifo && *len > 0)
            .cloned()
            .expect("the FIFO component has registers");
        let round2 = ctx.round(&sizes2, &[3]).unwrap();
        let prev = |spans: Vec<(String, usize, usize)>, initial: Vec<Value>| PrevRound {
            key: vec![1],
            spans,
            initial,
            first_write: vec![None],
        };

        // healthy donor at initial values: accepted
        let healthy = prev(spans.clone(), initial.clone());
        assert!(transplant(&healthy, &initial, &round2.reactor, &[fifo.as_str()]).is_some());

        // span-count mismatch: donor recorded one span fewer
        let mut fewer = spans.clone();
        fewer.pop();
        assert!(transplant(
            &prev(fewer, initial.clone()),
            &initial,
            &round2.reactor,
            &[fifo.as_str()]
        )
        .is_none());

        // component-name mismatch in one span
        let mut renamed = spans.clone();
        renamed[0].0 = "NotAComponent".to_string();
        assert!(transplant(
            &prev(renamed, initial.clone()),
            &initial,
            &round2.reactor,
            &[fifo.as_str()]
        )
        .is_none());

        // span-length mismatch: the grown FIFO's span differs between
        // depths, so failing to list it as grown trips the length check
        assert!(transplant(&healthy, &initial, &round2.reactor, &[]).is_none());

        // grown FIFO whose donor registers are NOT at their initial values:
        // the "genuinely untouched" precondition fails
        let mut touched = initial.clone();
        touched[fifo_span.1] = Value::Int(99);
        assert!(
            transplant(&healthy, &touched, &round2.reactor, &[fifo.as_str()]).is_none(),
            "a written-to grown FIFO must force a cold start"
        );
    }

    #[test]
    fn missing_first_write_record_refuses_warm_start() {
        // a grown channel whose first-write bookkeeping is empty cannot
        // anchor a resume point: the plan must refuse
        let mut ctx = EstimationCtx::new(&pipe()).unwrap();
        let sizes1: BTreeMap<SigName, usize> = [(SigName::from("x"), 1)].into();
        let (spans, initial) = {
            let r1 = ctx.round(&sizes1, &[1]).unwrap();
            (r1.reactor.register_spans().to_vec(), r1.reactor.initial_registers().to_vec())
        };
        let prev = PrevRound { key: vec![1], spans, initial, first_write: vec![None] };
        let sizes2: BTreeMap<SigName, usize> = [(SigName::from("x"), 2)].into();
        let round2 = ctx.round(&sizes2, &[2]).unwrap();
        assert!(
            plan_warm_start(&prev, &[2], &[fifo_component_name("x")], &round2.reactor).is_none()
        );
    }

    #[test]
    fn shrunken_depth_between_loops_stays_cold_and_matches() {
        // run the public loop at initial_size 4 then 1 against the same
        // context-free entry point: each must match its own cold reference
        // (the depth drop between the two calls shares no warm state)
        let scenario = phased_env(16, 3, 4);
        for initial_size in [4usize, 1] {
            let opts = EstimationOptions { initial_size, ..Default::default() };
            let cold = EstimationOptions { incremental: false, ..opts.clone() };
            assert_eq!(
                estimate_buffer_sizes(&pipe(), &scenario, &opts).unwrap(),
                estimate_buffer_sizes(&pipe(), &scenario, &cold).unwrap(),
                "initial_size={initial_size}"
            );
        }
    }

    #[test]
    fn generated_namespace_collision_disables_warm_start_but_matches() {
        // `x_probe` sits in the channel's generated namespace: the engine
        // must refuse warm starts yet still produce the reference report
        let p = parse_program(
            "process P { input a: int; output x: int; local x_probe: int; \
                         x := a; x_probe := x; } \
             process Q { input x: int; output y: int; y := x; }",
        )
        .unwrap();
        assert!(!EstimationCtx::new(&p).unwrap().warm_ok);
        let scenario = phased_env(16, 3, 4);
        let warm = estimate_buffer_sizes(&p, &scenario, &Default::default()).unwrap();
        let cold = estimate_buffer_sizes(
            &p,
            &scenario,
            &EstimationOptions { incremental: false, ..Default::default() },
        )
        .unwrap();
        assert_eq!(warm, cold);
    }

    #[test]
    fn nondefault_initial_size_matches_cold() {
        let opts = EstimationOptions { initial_size: 2, ..Default::default() };
        let cold_opts = EstimationOptions { initial_size: 2, incremental: false, ..opts.clone() };
        let scenario = phased_env(20, 2, 3);
        assert_eq!(
            estimate_buffer_sizes(&pipe(), &scenario, &opts).unwrap(),
            estimate_buffer_sizes(&pipe(), &scenario, &cold_opts).unwrap(),
        );
    }

    #[test]
    fn all_proven_channels_skip_simulation_entirely() {
        // prove x at the depth the dynamic loop would find: zero rounds,
        // same final sizes, provenance Static
        let scenario = env(12, 1, 3);
        let plain = estimate_buffer_sizes(&pipe(), &scenario, &Default::default()).unwrap();
        assert!(plain.converged);
        let depth = plain.size_of(&"x".into()).unwrap();
        for incremental in [true, false] {
            let opts = EstimationOptions {
                proven: [(SigName::from("x"), depth)].into(),
                incremental,
                ..Default::default()
            };
            let warm = estimate_buffer_sizes(&pipe(), &scenario, &opts).unwrap();
            assert!(warm.converged);
            assert_eq!(warm.iterations(), 0, "all-proven must not simulate");
            assert_eq!(warm.final_sizes, plain.final_sizes);
            assert_eq!(warm.provenance[&SigName::from("x")], Provenance::Static);
        }
        assert_eq!(plain.provenance[&SigName::from("x")], Provenance::Dynamic);
    }

    #[test]
    fn wrong_proof_falls_back_to_growth_and_flips_provenance() {
        // "prove" the first channel of a 3-stage pipeline at depth 1 under
        // a workload needing more, leaving the second channel unproven so
        // the loop actually simulates: the bogus proof must be caught by
        // the alarms, grown past, and reported Dynamic
        let p = parse_program(
            "process P { input a: int; output x: int; x := a; } \
             process Q { input x: int; output y: int; y := x; } \
             process R { input y: int; output z: int; z := y; }",
        )
        .unwrap();
        let steps = 12;
        let scenario = PeriodicInputs::new("a", ValueType::Int, 1, 0)
            .generate(steps)
            .zip_union(&PeriodicInputs::new("x_rd", ValueType::Bool, 3, 1).generate(steps))
            .zip_union(&PeriodicInputs::new("y_rd", ValueType::Bool, 1, 0).generate(steps))
            .zip_union(&master_clock("tick", steps));
        let plain = estimate_buffer_sizes(&p, &scenario, &Default::default()).unwrap();
        assert!(plain.converged);
        let needed = plain.size_of(&"x".into()).unwrap();
        assert!(needed > 1);
        for incremental in [true, false] {
            let opts = EstimationOptions {
                proven: [(SigName::from("x"), 1)].into(),
                incremental,
                ..Default::default()
            };
            let report = estimate_buffer_sizes(&p, &scenario, &opts).unwrap();
            assert!(report.converged);
            assert_eq!(report.final_sizes, plain.final_sizes);
            assert_eq!(report.provenance[&SigName::from("x")], Provenance::Dynamic);
            assert!(report.iterations() >= 2);
        }
    }

    #[test]
    fn proven_depth_above_need_converges_in_one_round_when_not_all_proven() {
        // a two-channel pipeline with only the first channel proven: the
        // proven one starts deep and stays Static, the other is estimated
        let p = parse_program(
            "process P { input a: int; output x: int; x := a; } \
             process Q { input x: int; output y: int; y := x; } \
             process R { input y: int; output z: int; z := y; }",
        )
        .unwrap();
        let steps = 12;
        let scenario = PeriodicInputs::new("a", ValueType::Int, 1, 0)
            .generate(steps)
            .zip_union(&PeriodicInputs::new("x_rd", ValueType::Bool, 3, 1).generate(steps))
            .zip_union(&PeriodicInputs::new("y_rd", ValueType::Bool, 1, 0).generate(steps))
            .zip_union(&master_clock("tick", steps));
        let plain = estimate_buffer_sizes(&p, &scenario, &Default::default()).unwrap();
        assert!(plain.converged);
        let x_depth = plain.size_of(&"x".into()).unwrap();
        for incremental in [true, false] {
            let opts = EstimationOptions {
                proven: [(SigName::from("x"), x_depth)].into(),
                incremental,
                ..Default::default()
            };
            let warm = estimate_buffer_sizes(&p, &scenario, &opts).unwrap();
            assert!(warm.converged);
            assert_eq!(warm.final_sizes, plain.final_sizes);
            assert!(warm.iterations() < plain.iterations(), "warm start must skip rounds");
            assert_eq!(warm.provenance[&SigName::from("x")], Provenance::Static);
            assert_eq!(warm.provenance[&SigName::from("y")], Provenance::Dynamic);
        }
    }

    #[test]
    fn proven_zero_depth_is_clamped_to_one() {
        let scenario = env(24, 2, 2);
        let opts =
            EstimationOptions { proven: [(SigName::from("x"), 0)].into(), ..Default::default() };
        let report = estimate_buffer_sizes(&pipe(), &scenario, &opts).unwrap();
        assert!(report.converged);
        assert_eq!(report.iterations(), 0);
        assert_eq!(report.size_of(&"x".into()), Some(1));
    }

    #[test]
    fn proven_unknown_channel_is_rejected() {
        for incremental in [true, false] {
            let opts = EstimationOptions {
                proven: [(SigName::from("nope"), 2)].into(),
                incremental,
                ..Default::default()
            };
            let err = estimate_buffer_sizes(&pipe(), &env(8, 2, 2), &opts).unwrap_err();
            assert!(
                matches!(err, GalsError::UnknownChannel { signal } if signal.as_str() == "nope")
            );
        }
    }

    #[test]
    fn proven_reports_match_between_engines() {
        // field-for-field equality cold vs incremental with a mixed proven
        // map (the EstimateEquiv oracle's contract, extended to provenance)
        let scenario = env(12, 1, 3);
        for proven_depth in [1usize, 3, 6] {
            let mk = |incremental| EstimationOptions {
                proven: [(SigName::from("x"), proven_depth)].into(),
                incremental,
                ..Default::default()
            };
            let warm = estimate_buffer_sizes(&pipe(), &scenario, &mk(true)).unwrap();
            let cold = estimate_buffer_sizes(&pipe(), &scenario, &mk(false)).unwrap();
            assert_eq!(warm, cold, "proven_depth={proven_depth}");
        }
    }

    #[test]
    fn estimated_size_is_sufficient_but_honest() {
        // verify the paper's guarantee: for the *simulated* behaviors, the
        // estimated size raises no alarm
        let scenario = env(18, 1, 2);
        let report =
            estimate_buffer_sizes(&pipe(), &scenario, &EstimationOptions::default()).unwrap();
        assert!(report.converged);
        let n = report.size_of(&"x".into()).unwrap();
        // re-simulate at size n: clean; at size n-1 (if any): alarms
        let clean = desynchronize(&pipe(), &DesyncOptions::with_size(n).instrumented()).unwrap();
        let mut sim = Simulator::for_program(&clean.program).unwrap();
        let run = sim.run(&scenario).unwrap();
        assert!(run.flow(&"x_alarm".into()).iter().all(|v| *v != Value::TRUE));
        if n > 1 {
            let tight =
                desynchronize(&pipe(), &DesyncOptions::with_size(n - 1).instrumented()).unwrap();
            let mut sim = Simulator::for_program(&tight.program).unwrap();
            let run = sim.run(&scenario).unwrap();
            assert!(run.flow(&"x_alarm".into()).contains(&Value::TRUE));
        }
    }
}
