//! Section 5.2: iterative buffer-size estimation.
//!
//! "Designers can start with a set of behaviors and a rough guess of the
//! needed buffer size and use the instrumented FIFO network to find the
//! right estimation … by simulating the behavior of the design for a given
//! environment, observing the values in the counters, incrementing the
//! buffer size by these values, and iterating the simulation till no alarm
//! is raised."
//!
//! [`estimate_buffer_sizes`] runs exactly that loop: desynchronize with the
//! current sizes and the Figure-4 instrumentation, simulate the given
//! environment, read each channel's max-consecutive-miss register and alarm
//! count, grow the buffers, and repeat until a run raises no alarm (or a
//! cap is hit).

use std::collections::BTreeMap;

use polysig_lang::Program;
use polysig_sim::{Scenario, Simulator};
use polysig_tagged::{SigName, Value};

use crate::desync::{desynchronize, DesyncOptions, Desynchronized};
use crate::error::GalsError;

/// How to grow a channel that missed writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GrowthPolicy {
    /// Grow by the max-consecutive-miss register (the paper's rule).
    #[default]
    ByMaxMiss,
    /// Double the size (classic geometric growth — an ablation point).
    Doubling,
}

/// Options for the estimation loop.
#[derive(Debug, Clone)]
pub struct EstimationOptions {
    /// Starting depth for every channel.
    pub initial_size: usize,
    /// Give up after this many simulate-grow rounds.
    pub max_iterations: usize,
    /// Give up when any channel would exceed this depth.
    pub max_size: usize,
    /// Growth rule.
    pub growth: GrowthPolicy,
    /// Worker threads for [`estimate_buffer_sizes_ensemble`] (a single
    /// loop is inherently sequential round-to-round, so
    /// [`estimate_buffer_sizes`] ignores this). Per-scenario results are
    /// identical for every value. Defaults to the detected parallelism
    /// (`POLYSIG_TEST_THREADS` overrides it).
    pub threads: usize,
}

impl Default for EstimationOptions {
    fn default() -> Self {
        EstimationOptions {
            initial_size: 1,
            max_iterations: 32,
            max_size: 4096,
            growth: GrowthPolicy::ByMaxMiss,
            threads: crossbeam::pool::default_threads(),
        }
    }
}

/// One simulate-and-measure round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EstimationIteration {
    /// Sizes used in this round.
    pub sizes: BTreeMap<SigName, usize>,
    /// Alarm-true events observed per channel.
    pub alarms: BTreeMap<SigName, usize>,
    /// Final value of each channel's max-consecutive-miss register.
    pub max_miss: BTreeMap<SigName, usize>,
}

impl EstimationIteration {
    /// `true` iff no channel raised an alarm.
    pub fn is_clean(&self) -> bool {
        self.alarms.values().all(|&n| n == 0)
    }
}

/// The outcome of the estimation loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EstimationReport {
    /// `true` iff the last round raised no alarm.
    pub converged: bool,
    /// Every round, in order (the last one is the clean run when
    /// converged).
    pub history: Vec<EstimationIteration>,
    /// The sizes of the final round.
    pub final_sizes: BTreeMap<SigName, usize>,
}

impl EstimationReport {
    /// Number of simulate-grow rounds executed.
    pub fn iterations(&self) -> usize {
        self.history.len()
    }

    /// The estimated size of one channel.
    pub fn size_of(&self, signal: &SigName) -> Option<usize> {
        self.final_sizes.get(signal).copied()
    }
}

/// Runs the Section-5.2 estimation loop for `program` under the environment
/// `scenario` (which must drive the *desynchronized* program's inputs: the
/// original external inputs, each channel's `<x>_rd` read pattern, and the
/// master `tick`).
///
/// # Errors
///
/// Surfaces transformation and simulation errors. A loop that hits the
/// iteration or size cap returns `Ok` with `converged == false` — inspect
/// the report's history to see the divergence.
///
/// ```
/// use polysig_gals::estimate::{estimate_buffer_sizes, EstimationOptions};
/// use polysig_lang::parse_program;
/// use polysig_sim::{PeriodicInputs, ScenarioGenerator};
/// use polysig_tagged::ValueType;
///
/// // producer emits every tick, consumer reads every 2nd tick: any finite
/// // buffer eventually overflows on a long run, but on a short run the
/// // loop finds the size covering the backlog.
/// let p = parse_program(
///     "process P { input a: int; output x: int; x := a; } \
///      process Q { input x: int; output y: int; y := x; }",
/// )?;
/// let steps = 8;
/// let scenario = PeriodicInputs::new("a", ValueType::Int, 1, 0)
///     .generate(steps)
///     .zip_union(&PeriodicInputs::new("x_rd", ValueType::Bool, 2, 1).generate(steps))
///     .zip_union(&polysig_sim::generator::master_clock("tick", steps));
/// let report = estimate_buffer_sizes(&p, &scenario, &EstimationOptions::default())?;
/// assert!(report.converged);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn estimate_buffer_sizes(
    program: &Program,
    scenario: &Scenario,
    options: &EstimationOptions,
) -> Result<EstimationReport, GalsError> {
    // discover channels once to seed sizes
    let probe = desynchronize(program, &DesyncOptions::with_size(1))?;
    let mut sizes: BTreeMap<SigName, usize> = probe
        .channels
        .iter()
        .map(|c| (c.spec.signal.clone(), options.initial_size.max(1)))
        .collect();

    let mut history = Vec::new();
    for _ in 0..options.max_iterations {
        let d = desynchronize(
            program,
            &DesyncOptions { sizes: sizes.clone(), default_size: 1, instrument: true },
        )?;
        let iteration = measure(&d, scenario, &sizes)?;
        let clean = iteration.is_clean();
        let max_miss = iteration.max_miss.clone();
        history.push(iteration);
        if clean {
            return Ok(EstimationReport { converged: true, final_sizes: sizes, history });
        }
        // grow the channels that missed
        let mut capped = false;
        for (signal, miss) in &max_miss {
            if *miss == 0 {
                continue;
            }
            let size = sizes.get_mut(signal).expect("channel seeded");
            *size = match options.growth {
                GrowthPolicy::ByMaxMiss => *size + miss,
                GrowthPolicy::Doubling => (*size * 2).max(*size + 1),
            };
            if *size > options.max_size {
                capped = true;
            }
        }
        if capped {
            return Ok(EstimationReport { converged: false, final_sizes: sizes, history });
        }
    }
    Ok(EstimationReport { converged: false, final_sizes: sizes, history })
}

/// The outcome of an ensemble estimation: one report per scenario plus the
/// per-channel worst case over the whole ensemble.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnsembleReport {
    /// One [`EstimationReport`] per input scenario, in input order.
    pub reports: Vec<EstimationReport>,
    /// Per channel, the largest final size any scenario demanded — the
    /// sizing that covers the whole ensemble.
    pub merged_sizes: BTreeMap<SigName, usize>,
    /// `true` iff every scenario's loop converged.
    pub converged: bool,
}

/// Scenarios per worker below which fanning out isn't worth the spawn
/// latency (each scenario already amortizes several desynchronize +
/// simulate rounds).
const MIN_SCENARIOS_PER_CHUNK: usize = 1;

/// Runs the Section-5.2 estimation loop once per scenario and merges the
/// results: the paper's "set of behaviors" workflow.
///
/// Scenarios are independent, so the loops are fanned out across
/// `options.threads` scoped workers (chunked contiguously, results merged
/// in input order) — every report, and therefore the merged sizing, is
/// identical for every thread count. An error aborts the whole ensemble,
/// surfacing the earliest-indexed scenario's failure.
pub fn estimate_buffer_sizes_ensemble(
    program: &Program,
    scenarios: &[Scenario],
    options: &EstimationOptions,
) -> Result<EnsembleReport, GalsError> {
    let outs = crossbeam::pool::map_chunks(
        options.threads,
        scenarios,
        MIN_SCENARIOS_PER_CHUNK,
        |_start, chunk| -> Result<Vec<EstimationReport>, GalsError> {
            chunk.iter().map(|s| estimate_buffer_sizes(program, s, options)).collect()
        },
    );
    let mut reports = Vec::with_capacity(scenarios.len());
    for out in outs {
        reports.extend(out?);
    }
    let mut merged_sizes: BTreeMap<SigName, usize> = BTreeMap::new();
    for report in &reports {
        for (signal, &size) in &report.final_sizes {
            let slot = merged_sizes.entry(signal.clone()).or_insert(size);
            *slot = (*slot).max(size);
        }
    }
    let converged = reports.iter().all(|r| r.converged);
    Ok(EnsembleReport { reports, merged_sizes, converged })
}

/// Simulates one instrumented round and collects alarms and miss registers.
fn measure(
    d: &Desynchronized,
    scenario: &Scenario,
    sizes: &BTreeMap<SigName, usize>,
) -> Result<EstimationIteration, GalsError> {
    let mut sim = Simulator::for_program(&d.program)?;
    let run = sim.run(scenario)?;
    let mut alarms = BTreeMap::new();
    let mut max_miss = BTreeMap::new();
    for ch in &d.channels {
        let alarm_count = run.flow(&ch.alarm_signal).iter().filter(|v| **v == Value::TRUE).count();
        alarms.insert(ch.spec.signal.clone(), alarm_count);
        let register = ch
            .maxmiss_signal
            .as_ref()
            .and_then(|s| run.flow(s).last().and_then(|v| v.as_int()))
            .unwrap_or(0);
        max_miss.insert(ch.spec.signal.clone(), register.max(0) as usize);
    }
    Ok(EstimationIteration { sizes: sizes.clone(), alarms, max_miss })
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_lang::parse_program;
    use polysig_sim::generator::master_clock;
    use polysig_sim::{BurstyInputs, PeriodicInputs, ScenarioGenerator};
    use polysig_tagged::ValueType;

    fn pipe() -> Program {
        parse_program(
            "process P { input a: int; output x: int; x := a; } \
             process Q { input x: int; output y: int; y := x; }",
        )
        .unwrap()
    }

    /// writer every tick, reader every `rd_period` ticks
    fn env(steps: usize, write_period: usize, rd_period: usize) -> Scenario {
        PeriodicInputs::new("a", ValueType::Int, write_period, 0)
            .generate(steps)
            .zip_union(&PeriodicInputs::new("x_rd", ValueType::Bool, rd_period, 1).generate(steps))
            .zip_union(&master_clock("tick", steps))
    }

    #[test]
    fn matched_rates_converge_immediately() {
        // write every 2, read every 2: one-place buffering suffices
        let report =
            estimate_buffer_sizes(&pipe(), &env(24, 2, 2), &EstimationOptions::default()).unwrap();
        assert!(report.converged);
        assert_eq!(report.iterations(), 1);
        assert_eq!(report.size_of(&"x".into()), Some(1));
    }

    #[test]
    fn rate_mismatch_grows_buffers() {
        // write every tick, read every 3rd tick over a short horizon:
        // backlog grows, the loop must enlarge the buffer
        let report =
            estimate_buffer_sizes(&pipe(), &env(12, 1, 3), &EstimationOptions::default()).unwrap();
        assert!(report.converged, "history: {:#?}", report.history);
        assert!(report.iterations() > 1);
        assert!(report.size_of(&"x".into()).unwrap() > 1);
        // final round is clean
        assert!(report.history.last().unwrap().is_clean());
        // earlier rounds raised alarms
        assert!(!report.history[0].is_clean());
    }

    #[test]
    fn bursts_need_buffers_matching_burst_length() {
        let steps = 40;
        let scenario = BurstyInputs::new("a", ValueType::Int, 4, 10)
            .generate(steps)
            .zip_union(&PeriodicInputs::new("x_rd", ValueType::Bool, 2, 0).generate(steps))
            .zip_union(&master_clock("tick", steps));
        let report =
            estimate_buffer_sizes(&pipe(), &scenario, &EstimationOptions::default()).unwrap();
        assert!(report.converged);
        let n = report.size_of(&"x".into()).unwrap();
        assert!(n >= 2, "4-bursts drained every 2 ticks need at least 2 places, got {n}");
    }

    #[test]
    fn doubling_policy_also_converges() {
        let opts = EstimationOptions { growth: GrowthPolicy::Doubling, ..Default::default() };
        let report = estimate_buffer_sizes(&pipe(), &env(12, 1, 3), &opts).unwrap();
        assert!(report.converged);
    }

    #[test]
    fn writer_only_workload_converges_at_write_count() {
        // writer always, reader never: on a finite run the loop settles on
        // a buffer holding every write (an infinite run would diverge)
        let steps = 30;
        let scenario = PeriodicInputs::new("a", ValueType::Int, 1, 0)
            .generate(steps)
            .zip_union(&master_clock("tick", steps));
        let report =
            estimate_buffer_sizes(&pipe(), &scenario, &EstimationOptions::default()).unwrap();
        assert!(report.converged);
        assert_eq!(report.size_of(&"x".into()), Some(steps));
    }

    #[test]
    fn size_cap_reports_divergence() {
        // same workload, but the cap is below the needed depth: the loop
        // must give up and say so
        let steps = 30;
        let scenario = PeriodicInputs::new("a", ValueType::Int, 1, 0)
            .generate(steps)
            .zip_union(&master_clock("tick", steps));
        let opts = EstimationOptions { max_size: 8, ..Default::default() };
        let report = estimate_buffer_sizes(&pipe(), &scenario, &opts).unwrap();
        assert!(!report.converged);
        let final_size = report.final_sizes[&SigName::from("x")];
        assert!(final_size > 8, "growth should have tripped the cap, got {final_size}");
        assert!(!report.history.is_empty());
    }

    #[test]
    fn ensemble_merges_worst_case_and_is_thread_count_invariant() {
        // three read rates: the merged sizing must cover the slowest reader
        let scenarios = vec![env(24, 2, 2), env(12, 1, 3), env(18, 1, 2)];
        let seq = estimate_buffer_sizes_ensemble(
            &pipe(),
            &scenarios,
            &EstimationOptions { threads: 1, ..Default::default() },
        )
        .unwrap();
        assert!(seq.converged);
        assert_eq!(seq.reports.len(), 3);
        let worst = seq.reports.iter().map(|r| r.final_sizes[&SigName::from("x")]).max().unwrap();
        assert_eq!(seq.merged_sizes[&SigName::from("x")], worst);
        // per-scenario reports equal the single-scenario entry point
        for (s, r) in scenarios.iter().zip(&seq.reports) {
            assert_eq!(
                r,
                &estimate_buffer_sizes(&pipe(), s, &EstimationOptions::default()).unwrap()
            );
        }
        for threads in [2, 4, 8] {
            let par = estimate_buffer_sizes_ensemble(
                &pipe(),
                &scenarios,
                &EstimationOptions { threads, ..Default::default() },
            )
            .unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn estimated_size_is_sufficient_but_honest() {
        // verify the paper's guarantee: for the *simulated* behaviors, the
        // estimated size raises no alarm
        let scenario = env(18, 1, 2);
        let report =
            estimate_buffer_sizes(&pipe(), &scenario, &EstimationOptions::default()).unwrap();
        assert!(report.converged);
        let n = report.size_of(&"x".into()).unwrap();
        // re-simulate at size n: clean; at size n-1 (if any): alarms
        let clean = desynchronize(&pipe(), &DesyncOptions::with_size(n).instrumented()).unwrap();
        let mut sim = Simulator::for_program(&clean.program).unwrap();
        let run = sim.run(&scenario).unwrap();
        assert!(run.flow(&"x_alarm".into()).iter().all(|v| *v != Value::TRUE));
        if n > 1 {
            let tight =
                desynchronize(&pipe(), &DesyncOptions::with_size(n - 1).instrumented()).unwrap();
            let mut sim = Simulator::for_program(&tight.program).unwrap();
            let run = sim.run(&scenario).unwrap();
            assert!(run.flow(&"x_alarm".into()).contains(&Value::TRUE));
        }
    }
}
