//! Decomposing one synchronous component into a two-component program.
//!
//! Section 3 of the paper: "Decomposition of a Signal program can be the
//! result of reusing a number of COTS components or decomposition
//! techniques based on graph partitioning [12, 16]". This module provides
//! the partitioning step: given (or having heuristically chosen) a
//! two-coloring of a component's defined signals, [`split_component`]
//! produces a semantically equivalent two-component program whose
//! cross-partition signals become explicit data dependencies — ready to be
//! cut by [`crate::desynchronize`].

use std::collections::{BTreeMap, BTreeSet};

use polysig_lang::ast::Declaration;
use polysig_lang::{Component, Program, Role, Statement};
use polysig_tagged::SigName;

use crate::error::GalsError;

/// Which of the two parts a defined signal goes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SplitSide {
    /// The first part.
    Left,
    /// The second part.
    Right,
}

/// Splits `component` into two components according to `assignment`, which
/// must map every *defined* signal (output or local) to a side. Inputs are
/// shared freely (each side declares the inputs it reads); a signal defined
/// on one side and read on the other is exported (promoted to output) and
/// imported (declared as input) — an explicit data dependency in the sense
/// of Definition 7.
///
/// The resulting program is synchronously equivalent to the original: its
/// merged reaction system has exactly the same equations.
///
/// # Errors
///
/// * [`GalsError::UnknownSignal`] if the assignment misses a defined signal
///   or names an unknown one;
/// * resolution errors if the input component is malformed.
pub fn split_component(
    component: &Component,
    left_name: &str,
    right_name: &str,
    assignment: &BTreeMap<SigName, SplitSide>,
) -> Result<Program, GalsError> {
    polysig_lang::resolve::resolve_component(component)?;
    let defined: BTreeSet<SigName> =
        component.decls.iter().filter(|d| d.role != Role::Input).map(|d| d.name.clone()).collect();
    for name in assignment.keys() {
        if !defined.contains(name) {
            return Err(GalsError::UnknownSignal { signal: name.clone() });
        }
    }
    for name in &defined {
        if !assignment.contains_key(name) {
            return Err(GalsError::UnknownSignal { signal: name.clone() });
        }
    }
    let side_of = |name: &SigName| assignment.get(name).copied();

    // reads per side
    let mut reads =
        BTreeMap::from([(SplitSide::Left, BTreeSet::new()), (SplitSide::Right, BTreeSet::new())]);
    let mut stmts = BTreeMap::from([
        (SplitSide::Left, Vec::<Statement>::new()),
        (SplitSide::Right, Vec::<Statement>::new()),
    ]);
    for stmt in &component.stmts {
        match stmt {
            Statement::Eq(eq) => {
                let side = side_of(&eq.lhs).expect("checked: every defined signal is assigned");
                reads.get_mut(&side).expect("seeded").extend(eq.rhs.free_vars());
                stmts.get_mut(&side).expect("seeded").push(stmt.clone());
            }
            Statement::Sync(names) => {
                // a sync constraint lives where its first *defined* member
                // lives (inputs alone don't own constraints); its members
                // must be visible there
                let side = names.iter().find_map(side_of).unwrap_or(SplitSide::Left);
                reads.get_mut(&side).expect("seeded").extend(names.iter().cloned());
                stmts.get_mut(&side).expect("seeded").push(stmt.clone());
            }
        }
    }

    let build_side = |side: SplitSide, name: &str| -> Component {
        let mut c = Component::new(name);
        let my_reads = &reads[&side];
        for d in &component.decls {
            let mine = side_of(&d.name) == Some(side);
            let read_here = my_reads.contains(&d.name);
            let read_there = reads[&match side {
                SplitSide::Left => SplitSide::Right,
                SplitSide::Right => SplitSide::Left,
            }]
                .contains(&d.name);
            match d.role {
                Role::Input => {
                    if read_here {
                        c.decls.push(Declaration {
                            name: d.name.clone(),
                            role: Role::Input,
                            ty: d.ty,
                        });
                    }
                }
                Role::Output | Role::Local => {
                    if mine {
                        // exported if the original role was Output, or the
                        // other side reads it
                        let role = if d.role == Role::Output || read_there {
                            Role::Output
                        } else {
                            Role::Local
                        };
                        c.decls.push(Declaration { name: d.name.clone(), role, ty: d.ty });
                    } else if read_here {
                        c.decls.push(Declaration {
                            name: d.name.clone(),
                            role: Role::Input,
                            ty: d.ty,
                        });
                    }
                }
            }
        }
        c.stmts = stmts[&side].clone();
        c
    };

    let mut program = Program::new(format!("{}_split", component.name));
    program.components.push(build_side(SplitSide::Left, left_name));
    program.components.push(build_side(SplitSide::Right, right_name));
    polysig_lang::resolve::resolve_program(&program)?;
    Ok(program)
}

/// A simple graph-partitioning heuristic in the spirit of the paper's
/// reference \[12\]: grow the left side greedily from the first defined
/// signal, always absorbing the unassigned defined signal with the most
/// dependency edges into the current left side, until half the defined
/// signals are taken. Minimizing crossing edges keeps the number of
/// channels (and hence FIFOs) small.
pub fn suggest_split(component: &Component) -> BTreeMap<SigName, SplitSide> {
    let defined: Vec<SigName> =
        component.decls.iter().filter(|d| d.role != Role::Input).map(|d| d.name.clone()).collect();
    // adjacency over defined signals (dependency edges, both directions)
    let mut adj: BTreeMap<SigName, BTreeSet<SigName>> =
        defined.iter().map(|n| (n.clone(), BTreeSet::new())).collect();
    for eq in component.equations() {
        for read in eq.rhs.free_vars() {
            if adj.contains_key(&read) && read != eq.lhs {
                adj.get_mut(&eq.lhs).expect("defined").insert(read.clone());
                adj.get_mut(&read).expect("defined").insert(eq.lhs.clone());
            }
        }
    }
    let target = defined.len().div_ceil(2);
    let mut left: BTreeSet<SigName> = BTreeSet::new();
    if let Some(seed) = defined.first() {
        left.insert(seed.clone());
    }
    while left.len() < target {
        let candidate = defined
            .iter()
            .filter(|n| !left.contains(*n))
            .max_by_key(|n| adj[*n].intersection(&left).count());
        match candidate {
            Some(c) => {
                left.insert(c.clone());
            }
            None => break,
        }
    }
    defined
        .into_iter()
        .map(|n| {
            let side = if left.contains(&n) { SplitSide::Left } else { SplitSide::Right };
            (n, side)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_lang::parse_component;
    use polysig_sim::{PeriodicInputs, ScenarioGenerator, Simulator};
    use polysig_tagged::ValueType;

    fn sample() -> Component {
        parse_component(
            "process Whole { input a: int; output y: int; local m: int, k: int; \
             m := a + 1; k := m * 2; y := k + (pre 0 m); }",
        )
        .unwrap()
    }

    fn manual_assignment() -> BTreeMap<SigName, SplitSide> {
        BTreeMap::from([
            ("m".into(), SplitSide::Left),
            ("k".into(), SplitSide::Right),
            ("y".into(), SplitSide::Right),
        ])
    }

    #[test]
    fn split_exports_cross_signals() {
        let p = split_component(&sample(), "Front", "Back", &manual_assignment()).unwrap();
        let front = p.component("Front").unwrap();
        let back = p.component("Back").unwrap();
        // m crosses: output of Front, input of Back
        assert_eq!(front.decl(&"m".into()).unwrap().role, Role::Output);
        assert_eq!(back.decl(&"m".into()).unwrap().role, Role::Input);
        // k stays local to Back
        assert_eq!(back.decl(&"k".into()).unwrap().role, Role::Local);
        // shared-signal discovery sees exactly one channel
        let channels = crate::partition::channels_of_program(&p).unwrap();
        assert_eq!(channels.len(), 1);
        assert_eq!(channels[0].signal.as_str(), "m");
    }

    #[test]
    fn split_program_is_synchronously_equivalent() {
        let whole = sample();
        let p = split_component(&whole, "Front", "Back", &manual_assignment()).unwrap();
        let scenario = PeriodicInputs::new("a", ValueType::Int, 1, 0).generate(12);
        let mut sim_whole = Simulator::for_component(&whole).unwrap();
        let mut sim_split = Simulator::for_program(&p).unwrap();
        let rw = sim_whole.run(&scenario).unwrap();
        let rs = sim_split.run(&scenario).unwrap();
        assert_eq!(rw.flow(&"y".into()), rs.flow(&"y".into()));
    }

    #[test]
    fn split_then_desynchronize_end_to_end() {
        let p = split_component(&sample(), "Front", "Back", &manual_assignment()).unwrap();
        let d =
            crate::desync::desynchronize(&p, &crate::desync::DesyncOptions::with_size(2)).unwrap();
        assert!(d.program.component("Fifo_m").is_some());
        assert!(d.program.shared_signals("Front", "Back").is_empty());
    }

    #[test]
    fn missing_assignment_rejected() {
        let mut partial = manual_assignment();
        partial.remove(&SigName::from("k"));
        let err = split_component(&sample(), "F", "B", &partial).unwrap_err();
        assert!(matches!(err, GalsError::UnknownSignal { .. }));
    }

    #[test]
    fn unknown_assignment_rejected() {
        let mut extra = manual_assignment();
        extra.insert("ghost".into(), SplitSide::Left);
        let err = split_component(&sample(), "F", "B", &extra).unwrap_err();
        assert!(matches!(err, GalsError::UnknownSignal { .. }));
    }

    #[test]
    fn suggested_split_covers_all_defined_signals_and_resolves() {
        let whole = sample();
        let assignment = suggest_split(&whole);
        assert_eq!(assignment.len(), 3);
        let p = split_component(&whole, "L", "R", &assignment).unwrap();
        assert!(polysig_lang::resolve::resolve_program(&p).is_ok());
        // and it behaves identically
        let scenario = PeriodicInputs::new("a", ValueType::Int, 2, 0).generate(10);
        let mut sim_whole = Simulator::for_component(&whole).unwrap();
        let mut sim_split = Simulator::for_program(&p).unwrap();
        assert_eq!(
            sim_whole.run(&scenario).unwrap().flow(&"y".into()),
            sim_split.run(&scenario).unwrap().flow(&"y".into())
        );
    }

    #[test]
    fn suggested_split_keeps_connected_signals_together() {
        // a component with two independent halves: the heuristic should not
        // cut inside a connected half
        let c = parse_component(
            "process Two { input a: int, b: int; output u: int, v: int; \
             local ua: int, vb: int; \
             ua := a + 1; u := ua * 2; vb := b + 1; v := vb * 2; }",
        )
        .unwrap();
        let assignment = suggest_split(&c);
        let p = split_component(&c, "L", "R", &assignment).unwrap();
        // a perfect split has no crossing channels at all
        let channels = crate::partition::channels_of_program(&p).unwrap();
        assert!(
            channels.len() <= 1,
            "independent halves should yield at most one crossing, got {channels:?}"
        );
    }
}
