//! Section 5.1: the `n`-place FIFO as a chain of one-place stages.
//!
//! The paper composes `n` copies of the Example-1 buffer and wires the
//! `in_i`/`out_i` control signals so that items ripple forward; an `alarm`
//! is raised for every unsuccessful write attempt and `ok` for every
//! successful one. We generate the chain as a single component with indexed
//! stage signals (`<name>_d1 … <name>_dn`, `<name>_f1 … <name>_fn`):
//!
//! * an item written into stage 1 ripples one stage per tick toward stage
//!   `n` (bubble-collapsing: a stage may shift forward in the same tick its
//!   successor shifts out);
//! * a read (`<name>_rd`) succeeds when stage `n` holds an item, delivering
//!   it on `<name>_out`;
//! * a write (`<name>_in`) succeeds when stage 1 is free or frees up this
//!   very tick; otherwise `<name>_alarm` fires (value `true`).
//!
//! The component also exposes `<name>_count`, the number of occupied stages
//! at the previous tick — the occupancy series used by the estimation
//! experiments.

use polysig_lang::{Binop, Component, ComponentBuilder, Expr};
use polysig_tagged::{Value, ValueType};

/// The component name [`nfifo_component`] generates for channel `name`.
pub fn fifo_component_name(name: &str) -> String {
    format!("Fifo_{name}")
}

/// Builds the `n`-place FIFO component for channel `name`.
///
/// Interface (all clocked by the master input `tick`):
///
/// * `"<name>_in": int` — write attempts (input);
/// * `"<name>_rd": bool` — read requests (input);
/// * `"<name>_out": int` — successful reads (output);
/// * `"<name>_alarm" / "<name>_ok": bool` — present at write attempts
///   (output), true on rejection / acceptance respectively;
/// * `"<name>_count": int` — occupied stages as of the previous tick
///   (output, present at every tick);
/// * `"<name>_full": bool` — stage 1 occupied at the *end* of the tick
///   (output, present at every tick): if true, a write in the next tick
///   will be rejected unless stage 1 frees up in that same tick — the
///   conservative indicator for Section 5.2's producer clock masking.
///
/// # Panics
///
/// Panics if `n == 0` (a zero-place buffer is the synchronous wire the
/// transformation starts from).
pub fn nfifo_component(name: &str, n: usize) -> Component {
    assert!(n > 0, "an n-place FIFO needs n >= 1");
    let input = format!("{name}_in");
    let rd = format!("{name}_rd");
    let out = format!("{name}_out");
    let alarm = format!("{name}_alarm");
    let ok = format!("{name}_ok");
    let count = format!("{name}_count");
    let full = format!("{name}_full");
    let inw = format!("{name}_inw");
    let rdw_flag = format!("{name}_rdw");
    let d = |i: usize| format!("{name}_d{i}");
    let f = |i: usize| format!("{name}_f{i}");
    let fp = |i: usize| format!("{name}_fp{i}");
    let mv = |i: usize| format!("{name}_mv{i}");

    let mut b = ComponentBuilder::new(fifo_component_name(name))
        .input(input.as_str(), ValueType::Int)
        .input(rd.as_str(), ValueType::Bool)
        .input("tick", ValueType::Bool)
        .output(out.as_str(), ValueType::Int)
        .output(alarm.as_str(), ValueType::Bool)
        .output(ok.as_str(), ValueType::Bool)
        .output(count.as_str(), ValueType::Int)
        .output(full.as_str(), ValueType::Bool)
        .local(inw.as_str(), ValueType::Bool)
        .local(rdw_flag.as_str(), ValueType::Bool);
    for i in 1..=n {
        b = b
            .local(d(i).as_str(), ValueType::Int)
            .local(f(i).as_str(), ValueType::Bool)
            .local(fp(i).as_str(), ValueType::Bool)
            .local(mv(i).as_str(), ValueType::Bool);
    }
    // the stage registers and the count live on the master clock
    let mut sync_names: Vec<String> = vec!["tick".into(), count.clone()];
    for i in 1..=n {
        sync_names.push(d(i));
        sync_names.push(f(i));
    }
    b = b.sync(sync_names.iter().map(String::as_str));

    // write / read attempts as booleans at the master clock
    b = b.equation(
        inw.as_str(),
        Expr::var(input.as_str()).clock().default(Expr::bool(false).when(Expr::var("tick"))),
    );
    b = b.equation(
        rdw_flag.as_str(),
        Expr::var(rd.as_str()).default(Expr::bool(false).when(Expr::var("tick"))),
    );

    // previous occupancy per stage
    for i in 1..=n {
        b = b.equation(
            fp(i).as_str(),
            Expr::var(f(i).as_str()).pre(Value::FALSE).when(Expr::var("tick")),
        );
    }

    // movement chain, back to front:
    //   mv_n = take = rdw ∧ fp_n
    //   mv_i = fp_i ∧ (¬fp_{i+1} ∨ mv_{i+1})        (i < n)
    b = b.equation(
        mv(n).as_str(),
        Expr::var(rdw_flag.as_str()).binop(Binop::And, Expr::var(fp(n).as_str())),
    );
    for i in (1..n).rev() {
        b = b.equation(
            mv(i).as_str(),
            Expr::var(fp(i).as_str()).binop(
                Binop::And,
                Expr::var(fp(i + 1).as_str()).not().binop(Binop::Or, Expr::var(mv(i + 1).as_str())),
            ),
        );
    }

    // put = inw ∧ (¬fp_1 ∨ mv_1)
    let put = Expr::var(inw.as_str()).binop(
        Binop::And,
        Expr::var(fp(1).as_str()).not().binop(Binop::Or, Expr::var(mv(1).as_str())),
    );

    // occupancy updates: f_i' = (fp_i ∧ ¬mv_i) ∨ incoming_i
    for i in 1..=n {
        let incoming = if i == 1 { put.clone() } else { Expr::var(mv(i - 1).as_str()) };
        b = b.equation(
            f(i).as_str(),
            Expr::var(fp(i).as_str())
                .binop(Binop::And, Expr::var(mv(i).as_str()).not())
                .binop(Binop::Or, incoming),
        );
    }

    // data movement: stage 1 takes the fresh write, stage i > 1 takes the
    // predecessor's previous value when it shifts
    b = b.equation(
        d(1).as_str(),
        Expr::var(input.as_str())
            .when(put.clone())
            .default(Expr::var(d(1).as_str()).pre(Value::Int(0)).when(Expr::var("tick"))),
    );
    for i in 2..=n {
        b = b.equation(
            d(i).as_str(),
            Expr::var(d(i - 1).as_str())
                .pre(Value::Int(0))
                .when(Expr::var(mv(i - 1).as_str()))
                .default(Expr::var(d(i).as_str()).pre(Value::Int(0)).when(Expr::var("tick"))),
        );
    }

    // output: stage n's stored value on a successful read
    b = b.equation(
        out.as_str(),
        Expr::var(d(n).as_str()).pre(Value::Int(0)).when(Expr::var(mv(n).as_str())),
    );

    // Section 5.1 instrumentation hooks: alarm/ok at write attempts
    let rejected = Expr::var(fp(1).as_str()).binop(Binop::And, Expr::var(mv(1).as_str()).not());
    b = b.equation(alarm.as_str(), rejected.clone().when(Expr::var(inw.as_str())));
    b = b.equation(ok.as_str(), rejected.not().when(Expr::var(inw.as_str())));

    // masking indicator: stage 1 occupied at the end of this tick
    b = b.equation(full.as_str(), Expr::var(f(1).as_str()));

    // occupancy count (previous tick)
    let mut sum = Expr::var(fp(1).as_str()).if_int();
    for i in 2..=n {
        sum = sum.binop(Binop::Add, Expr::var(fp(i).as_str()).if_int());
    }
    b = b.equation(count.as_str(), sum);

    b.build()
}

/// Helper: encode a boolean expression as `1`/`0` at the same clock.
trait IfInt {
    fn if_int(self) -> Expr;
}

impl IfInt for Expr {
    fn if_int(self) -> Expr {
        Expr::int(1).when(self.clone()).default(Expr::int(0).when(self.not()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_sim::{Scenario, Simulator};
    use polysig_tagged::{is_afifo_behavior, is_nfifo_behavior, Behavior, SigName, Value};

    fn sim(n: usize) -> Simulator {
        Simulator::for_component(&nfifo_component("ch", n)).unwrap()
    }

    fn step(s: Scenario, write: Option<i64>, read: bool) -> Scenario {
        let mut s = s.on("tick", Value::TRUE);
        if let Some(v) = write {
            s = s.on("ch_in", Value::Int(v));
        }
        if read {
            s = s.on("ch_rd", Value::TRUE);
        }
        s.tick()
    }

    /// Drives the FIFO with (write?, read?) commands and returns the run.
    fn drive(n: usize, cmds: &[(Option<i64>, bool)]) -> polysig_sim::Run {
        let mut scenario = Scenario::new();
        for &(w, r) in cmds {
            scenario = step(scenario, w, r);
        }
        sim(n).run(&scenario).unwrap()
    }

    #[test]
    fn single_item_ripples_to_the_output() {
        // depth 3: written item needs 3 ticks to become readable
        let run = drive(
            3,
            &[
                (Some(7), false),
                (None, true), // too early: still rippling
                (None, true), // too early
                (None, true), // now at stage 3
            ],
        );
        assert_eq!(run.flow(&"ch_out".into()), vec![Value::Int(7)]);
        assert_eq!(run.presence(&"ch_out".into()), vec![3]);
    }

    #[test]
    fn preserves_fifo_order() {
        let run = drive(
            2,
            &[(Some(1), false), (Some(2), false), (None, true), (None, true), (None, true)],
        );
        assert_eq!(run.flow(&"ch_out".into()), vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn overflowing_writes_raise_alarm_and_are_dropped() {
        // depth 1: second immediate write is rejected
        let run = drive(1, &[(Some(1), false), (Some(2), false), (None, true)]);
        assert_eq!(run.flow(&"ch_alarm".into()), vec![Value::FALSE, Value::TRUE]);
        assert_eq!(run.flow(&"ch_ok".into()), vec![Value::TRUE, Value::FALSE]);
        assert_eq!(run.flow(&"ch_out".into()), vec![Value::Int(1)]);
    }

    #[test]
    fn capacity_matches_depth() {
        // depth 3 absorbs a 3-burst without alarms; the 4th write trips
        let run =
            drive(3, &[(Some(1), false), (Some(2), false), (Some(3), false), (Some(4), false)]);
        let alarms = run.flow(&"ch_alarm".into());
        assert_eq!(alarms, vec![Value::FALSE, Value::FALSE, Value::FALSE, Value::TRUE]);
    }

    #[test]
    fn full_throughput_after_pipeline_fill() {
        // depth 2, alternating write+read once primed: one item per tick
        let run = drive(
            2,
            &[
                (Some(1), false),
                (Some(2), false),
                (Some(3), true),
                (Some(4), true),
                (None, true),
                (None, true),
                (None, true),
            ],
        );
        assert_eq!(run.flow(&"ch_out".into()), (1..=4).map(Value::Int).collect::<Vec<_>>());
        assert!(run.flow(&"ch_alarm".into()).iter().all(|v| *v == Value::FALSE));
    }

    #[test]
    fn count_reports_previous_occupancy() {
        let run = drive(2, &[(Some(1), false), (Some(2), false), (None, false)]);
        assert_eq!(run.flow(&"ch_count".into()), vec![Value::Int(0), Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn chain_satisfies_nfifo_spec() {
        for n in 1..=4 {
            let cmds: Vec<(Option<i64>, bool)> = (0..20)
                .map(|i| {
                    let w = if i % 2 == 0 { Some(i as i64) } else { None };
                    let r = i % 3 == 0;
                    (w, r)
                })
                .collect();
            let run = drive(n, &cmds);
            // accepted writes vs delivered reads must satisfy Definition 9
            // with bound n (occupancy counted between accept and deliver)
            let mut b = Behavior::new();
            b.declare("w");
            b.declare("r");
            let ok = run.behavior.trace(&SigName::from("ch_ok")).unwrap().clone();
            for e in run.behavior.trace(&SigName::from("ch_in")).unwrap().iter() {
                if ok.value_at(e.tag()) == Some(Value::TRUE) {
                    b.push_event("w", e.tag(), e.value());
                }
            }
            for e in run.behavior.trace(&SigName::from("ch_out")).unwrap().iter() {
                b.push_event("r", e.tag(), e.value());
            }
            assert!(
                is_afifo_behavior(&b, &"w".into(), &"r".into()),
                "depth {n}: AFifo spec violated:\n{b}"
            );
            assert!(
                is_nfifo_behavior(&b, &"w".into(), &"r".into(), n),
                "depth {n}: nFifo bound violated:\n{b}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "n >= 1")]
    fn zero_depth_rejected() {
        let _ = nfifo_component("ch", 0);
    }

    #[test]
    fn reads_on_empty_are_silent_forever() {
        let run = drive(2, &[(None, true), (None, true), (None, true)]);
        assert!(run.flow(&"ch_out".into()).is_empty());
        assert!(run.flow(&"ch_alarm".into()).is_empty()); // no write attempts
    }
}
