//! Closed-loop simulation with producer clock masking.
//!
//! Section 5.2: "we can use the conjunction of all `full_i` signals to mask
//! the clock of the producer" — the feedback that turns a lossy design into
//! a lossless one at the cost of stalling. In the synchronous model the
//! producer's clock is driven by the environment, so the masking is a
//! *closed loop* between the design and its driver: before each reaction
//! the driver inspects the previous reaction's `full`/`alarm` status and
//! withholds (defers, not drops) the producer's inputs while the channel
//! has no room.
//!
//! [`run_masked`] implements that driver on top of any desynchronized
//! program: writes deferred by masking are replayed as soon as the channel
//! frees up, so the write *flow* is preserved exactly — only its timing
//! stretches, which is precisely the stretching semantics (Definition 2)
//! the paper assigns to clock masking.

use std::collections::{BTreeMap, VecDeque};

use polysig_sim::{Scenario, Simulator};
use polysig_tagged::{Behavior, SigName, Tag, Value};

use crate::desync::Desynchronized;
use crate::error::GalsError;

/// The outcome of a masked closed-loop run.
#[derive(Debug, Clone)]
pub struct MaskedRun {
    /// The recorded behavior of the whole desynchronized program.
    pub behavior: Behavior,
    /// Reactions executed.
    pub steps: usize,
    /// Reactions in which at least one producer input was withheld.
    pub masked_steps: usize,
    /// Alarms observed (must be zero: masking prevents overflow).
    pub alarms: usize,
    /// Writes still deferred when the run ended.
    pub residual: usize,
}

/// Runs `scenario` against the desynchronized program `d`, masking each
/// channel's *write input* (`x_in`, fed here directly rather than by a
/// producer component) while the channel reports full.
///
/// The scenario drives the FIFO-facing inputs: each channel's `<x>_in`
/// write attempts, `<x>_rd` read requests, and the master `tick`. Writes
/// arriving while the channel is full are queued by the driver and
/// replayed in order at the next free instant.
///
/// # Errors
///
/// Surfaces elaboration and reaction errors.
pub fn run_masked(d: &Desynchronized, scenario: &Scenario) -> Result<MaskedRun, GalsError> {
    let mut sim = Simulator::for_program(&d.program)?;
    let external = d.program.external_inputs();

    // per producer component: its external inputs (the activation we mask)
    // and the full-indicators of its outbound channels
    struct Producer {
        env_inputs: Vec<SigName>,
        full_signals: Vec<SigName>,
        pending: VecDeque<BTreeMap<SigName, Value>>,
        full_prev: bool,
    }
    let mut producers: BTreeMap<String, Producer> = BTreeMap::new();
    for ch in &d.channels {
        let comp = d
            .program
            .component(&ch.spec.producer)
            .expect("producer exists in the transformed program");
        let entry = producers.entry(ch.spec.producer.clone()).or_insert_with(|| Producer {
            env_inputs: comp
                .signals_with_role(polysig_lang::Role::Input)
                .filter(|dd| external.contains(&dd.name))
                .map(|dd| dd.name.clone())
                .collect(),
            full_signals: Vec::new(),
            pending: VecDeque::new(),
            full_prev: false,
        });
        entry.full_signals.push(ch.full_signal.clone());
    }

    let mut behavior = Behavior::new();
    for name in sim.reactor().signal_names() {
        behavior.declare(name.clone());
    }
    let mut masked_steps = 0usize;
    let mut alarms = 0usize;

    for (k, step) in scenario.iter().enumerate() {
        let mut inputs = step.clone();
        let mut masked_here = false;
        for producer in producers.values_mut() {
            // extract this producer's activation from the scenario step
            let mut activation = BTreeMap::new();
            for name in &producer.env_inputs {
                if let Some(v) = inputs.remove(name) {
                    activation.insert(name.clone(), v);
                }
            }
            if !activation.is_empty() {
                producer.pending.push_back(activation);
            }
            // release the oldest deferred activation when there is room
            if producer.pending.front().is_some() {
                if producer.full_prev {
                    masked_here = true;
                } else {
                    let front = producer.pending.pop_front().expect("checked");
                    inputs.extend(front);
                }
            }
        }
        if masked_here {
            masked_steps += 1;
        }

        let present = sim.reactor_mut().react(&inputs)?;
        let tag = Tag::new(k as u64 + 1);
        for (name, value) in &present {
            behavior.push_event(name.clone(), tag, *value);
        }
        // update fullness (conjunction over the producer's channels would
        // under-mask; any-full is the safe disjunction) and count alarms
        for producer in producers.values_mut() {
            producer.full_prev = producer
                .full_signals
                .iter()
                .any(|fs| present.iter().any(|(n, v)| n == fs && *v == Value::TRUE));
        }
        for ch in &d.channels {
            if present.iter().any(|(n, v)| n == &ch.alarm_signal && *v == Value::TRUE) {
                alarms += 1;
            }
        }
    }

    Ok(MaskedRun {
        behavior,
        steps: scenario.len(),
        masked_steps,
        alarms,
        residual: producers.values().map(|p| p.pending.len()).sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desync::{desynchronize, DesyncOptions};
    use polysig_lang::parse_program;
    use polysig_sim::generator::master_clock;
    use polysig_sim::{PeriodicInputs, ScenarioGenerator};
    use polysig_tagged::ValueType;

    fn fifo_only() -> Desynchronized {
        // a bare channel: the scenario drives x_in/x_rd directly
        let p = parse_program(
            "process P { input a: int; output x: int; x := a; } \
             process Q { input x: int; output y: int; y := x; }",
        )
        .unwrap();
        desynchronize(&p, &DesyncOptions::with_size(2)).unwrap()
    }

    /// writer at full rate, reader at 1/3 rate: without masking this loses
    /// data; with masking it must not.
    fn overload_env(steps: usize) -> Scenario {
        PeriodicInputs::new("a", ValueType::Int, 1, 0)
            .generate(steps / 2)
            .zip_union(&PeriodicInputs::new("x_rd", ValueType::Bool, 3, 0).generate(steps))
            .zip_union(&master_clock("tick", steps))
    }

    #[test]
    fn masking_prevents_all_alarms() {
        let d = fifo_only();
        let run = run_masked(&d, &overload_env(60)).unwrap();
        assert_eq!(run.alarms, 0, "masking must prevent overflow");
        assert!(run.masked_steps > 0, "overload must actually trigger masking");
    }

    #[test]
    fn masking_preserves_the_write_flow() {
        let d = fifo_only();
        let steps = 90;
        let run = run_masked(&d, &overload_env(steps)).unwrap();
        // everything eventually delivered in order: the consumer's received
        // flow is a prefix of the natural numbers sequence 1..
        let received: Vec<Value> = run.behavior.trace(&SigName::from("x_out")).unwrap().values();
        assert!(!received.is_empty());
        for (i, v) in received.iter().enumerate() {
            assert_eq!(*v, Value::Int(i as i64 + 1), "reordered/lost at {i}");
        }
        // nothing lost: everything written is delivered, still in the
        // channel (up to its capacity), or still deferred by the driver
        let written = steps / 2; // writes attempted
        let unaccounted = written - received.len() - run.residual;
        assert!(unaccounted <= 2, "at most the channel capacity in flight, got {unaccounted}");
    }

    #[test]
    fn no_masking_when_rates_match() {
        let d = fifo_only();
        let steps = 30;
        let env = PeriodicInputs::new("a", ValueType::Int, 2, 0)
            .generate(steps)
            .zip_union(&PeriodicInputs::new("x_rd", ValueType::Bool, 2, 1).generate(steps))
            .zip_union(&master_clock("tick", steps));
        let run = run_masked(&d, &env).unwrap();
        assert_eq!(run.alarms, 0);
        assert_eq!(run.masked_steps, 0, "matched rates never fill the channel");
        assert_eq!(run.residual, 0);
    }

    #[test]
    fn contrast_unmasked_run_does_lose_data() {
        // the negative control: the same overload without the closed loop
        let d = fifo_only();
        let mut sim = Simulator::for_program(&d.program).unwrap();
        let run = sim.run(&overload_env(60)).unwrap();
        let alarms = run.flow(&"x_alarm".into()).iter().filter(|v| **v == Value::TRUE).count();
        assert!(alarms > 0, "without masking the overload must overflow");
    }
}
