//! # `polysig-gals` — GALS desynchronization of polychronous Signal programs
//!
//! The paper's core contribution (Mousavi, Le Guernic, Talpin, Shukla,
//! Basten — DATE 2004): model a *globally asynchronous, locally synchronous*
//! system entirely inside the multi-clock synchronous framework, by
//! replacing every cross-component data dependency with a FIFO channel, then
//! validate the result with synchronous simulation and model checking.
//!
//! What this crate provides:
//!
//! * [`onefifo`] — the paper's Example 1: the single-cell memory and the
//!   one-place buffer, as Signal components (endochronized with an explicit
//!   master clock so the constructive simulator can run them
//!   deterministically);
//! * [`nfifo`] — Section 5.1: the `n`-place FIFO as a chain of one-place
//!   stages, with the `alarm`/`ok` signals raised on rejected writes;
//! * [`instrument`] — Figure 4: the alarm → counter → max-register circuitry
//!   around a channel, in Signal;
//! * [`partition`]/[`desync`] — Figure 3 and Theorem 1: the transformation
//!   that splits a program's explicit data dependencies and routes each
//!   through a FIFO component, producing a fully synchronous multi-clock
//!   model of the asynchronous design;
//! * [`estimate`] — Section 5.2: the iterative buffer-size estimation loop
//!   (simulate, read the miss counters, grow the buffers, repeat until no
//!   alarm);
//! * [`runtime`] — the *deployment* side: run the components on independent
//!   local clocks (periodic / jittered / random) coupled by real queues, in
//!   one thread or on OS threads via crossbeam, and check that the observed
//!   I/O flows stay flow-equivalent to the synchronous model.
//!
//! ## Quick tour
//!
//! ```
//! use polysig_gals::nfifo::nfifo_component;
//! use polysig_sim::{Scenario, Simulator};
//! use polysig_tagged::Value;
//!
//! // a 2-place FIFO named "ch", written via `ch_in`, read via `ch_rd`
//! let fifo = nfifo_component("ch", 2);
//! let mut sim = Simulator::for_component(&fifo)?;
//! let scenario = Scenario::new()
//!     .on("tick", Value::Bool(true)).on("ch_in", Value::Int(7)).tick()
//!     .on("tick", Value::Bool(true)).tick()
//!     .on("tick", Value::Bool(true)).on("ch_rd", Value::Bool(true)).tick();
//! let run = sim.run(&scenario)?;
//! assert_eq!(run.flow(&"ch_out".into()), vec![Value::Int(7)]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod budget;
pub mod cache;
pub mod closedloop;
pub mod desync;
pub mod error;
pub mod estimate;
pub mod fork;
pub mod instrument;
pub mod nfifo;
pub mod onefifo;
pub mod partition;
pub mod policy;
pub mod report;
pub mod runtime;
pub mod split;
pub mod vcd;

pub use budget::{Breach, Budget, Stopwatch};
pub use cache::{hash_bytes, ByteLru, CacheStats, ContentHash, Sha256};
pub use closedloop::{run_masked, MaskedRun};
pub use desync::{desynchronize, DesyncCache, DesyncOptions, Desynchronized};
pub use error::GalsError;
pub use estimate::{
    estimate_buffer_sizes, estimate_buffer_sizes_ensemble, EnsembleReport, EstimationOptions,
    EstimationReport, Estimator, Provenance,
};
pub use fork::{fork_component, fork_shared_signals, merge_component};
pub use partition::{channels_of_program, ChannelSpec};
pub use policy::ChannelPolicy;
pub use split::{split_component, suggest_split, SplitSide};
