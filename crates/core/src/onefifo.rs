//! The paper's Example 1: a single-cell memory and a one-place buffer.
//!
//! Two remarks on fidelity (see DESIGN.md §3):
//!
//! * The paper's components leave their master clock implicit (the
//!   environment of the Polychrony toolset supplies it). Our constructive
//!   simulator requires every clock to be pinned down, so the components
//!   take an explicit boolean master input `tick`; writes and read requests
//!   must arrive at ticks (`msgin, rd ⊆ tick`). This is the standard
//!   endochronization step and does not change the buffer's I/O flows.
//! * The buffer state machine is written so that `full` genuinely persists
//!   across idle instants (the paper's abbreviated listing elides this).

use polysig_lang::{Component, ComponentBuilder, Expr};
use polysig_tagged::{Value, ValueType};

/// The single-cell *memory* of Example 1: independent reads and writes, no
/// flow control — reads return the last value written (initially 0), writes
/// overwrite freely. This is the starting point the paper refines into a
/// buffer.
///
/// Interface: inputs `msgin: int`, `rd: bool`, `tick: bool`; output
/// `msgout: int` (present at read requests).
pub fn memory_cell_component(name: &str) -> Component {
    ComponentBuilder::new(name)
        .input("msgin", ValueType::Int)
        .input("rd", ValueType::Bool)
        .input("tick", ValueType::Bool)
        .output("msgout", ValueType::Int)
        .local("data", ValueType::Int)
        .sync(["tick", "data"])
        // data = msgin default (pre 0 data)   — the paper's first equation
        .equation(
            "data",
            Expr::var("msgin")
                .default(Expr::var("data").pre(Value::Int(0)).when(Expr::var("tick"))),
        )
        // msgout = data when ^msgout — reads are demand-driven; here the
        // demand is the explicit `rd` request
        .equation("msgout", Expr::var("data").when(Expr::var("rd")))
        .build()
}

/// The *one-place buffer* of Example 1 (Figure 2): a memory cell with
/// first-in-first-out causality — a write is accepted only when the buffer
/// is empty, a read succeeds only when it holds data.
///
/// Interface:
///
/// * inputs — `msgin: int` (write attempt), `rd: bool` (read request),
///   `tick: bool` (master clock);
/// * outputs — `msgout: int` (successful reads), `full: bool` (state after
///   each tick), `alarm: bool` / `ok: bool` (present at write attempts:
///   `alarm` true when the write was rejected, `ok` true when accepted —
///   Section 5.1's instrumentation hooks);
/// * write/read in the same instant is allowed when the buffer is full
///   (read drains, write refills next state? no — the write is rejected:
///   a one-place buffer hands over through storage, matching Definition 9
///   with `n = 1`).
pub fn one_place_buffer_component(name: &str) -> Component {
    ComponentBuilder::new(name)
        .input("msgin", ValueType::Int)
        .input("rd", ValueType::Bool)
        .input("tick", ValueType::Bool)
        .output("msgout", ValueType::Int)
        .output("full", ValueType::Bool)
        .output("alarm", ValueType::Bool)
        .output("ok", ValueType::Bool)
        .local("inw", ValueType::Bool)
        .local("rdw", ValueType::Bool)
        .local("fullprev", ValueType::Bool)
        .local("data", ValueType::Int)
        .sync(["tick", "full", "data"])
        // write / read attempts as booleans at the master clock
        // (the paper's `in = ^msgin default false`, `out = ^msgout default false`)
        .equation(
            "inw",
            Expr::var("msgin").clock().default(Expr::bool(false).when(Expr::var("tick"))),
        )
        .equation("rdw", Expr::var("rd").default(Expr::bool(false).when(Expr::var("tick"))))
        .equation("fullprev", Expr::var("full").pre(Value::FALSE).when(Expr::var("tick")))
        // full' = (full ∧ ¬take) ∨ put  — the paper's `full = (pre in ∧ ¬pre out) default pre full`
        .equation(
            "full",
            Expr::var("fullprev")
                .binop(
                    polysig_lang::Binop::And,
                    Expr::var("rdw").binop(polysig_lang::Binop::And, Expr::var("fullprev")).not(),
                )
                .binop(
                    polysig_lang::Binop::Or,
                    Expr::var("inw").binop(polysig_lang::Binop::And, Expr::var("fullprev").not()),
                ),
        )
        // data = (msgin when ¬full) default pre data — paper's guarded write
        .equation(
            "data",
            Expr::var("msgin")
                .when(Expr::var("fullprev").not())
                .default(Expr::var("data").pre(Value::Int(0)).when(Expr::var("tick"))),
        )
        // a read delivers the stored value
        .equation(
            "msgout",
            Expr::var("data")
                .pre(Value::Int(0))
                .when(Expr::var("rdw").binop(polysig_lang::Binop::And, Expr::var("fullprev"))),
        )
        // Section 5.1: alarm at unsuccessful writes, ok at successful ones
        .equation("alarm", Expr::var("fullprev").when(Expr::var("inw")))
        .equation("ok", Expr::var("fullprev").not().when(Expr::var("inw")))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_sim::{Scenario, Simulator};
    use polysig_tagged::{is_afifo_behavior, is_nfifo_behavior, Behavior, SigName, Value};

    fn tick(s: Scenario) -> Scenario {
        s.on("tick", Value::TRUE).tick()
    }

    fn write(s: Scenario, v: i64) -> Scenario {
        s.on("tick", Value::TRUE).on("msgin", Value::Int(v)).tick()
    }

    fn read(s: Scenario) -> Scenario {
        s.on("tick", Value::TRUE).on("rd", Value::TRUE).tick()
    }

    fn write_read(s: Scenario, v: i64) -> Scenario {
        s.on("tick", Value::TRUE).on("msgin", Value::Int(v)).on("rd", Value::TRUE).tick()
    }

    #[test]
    fn memory_cell_keeps_last_written_value() {
        let mut sim = Simulator::for_component(&memory_cell_component("Mem")).unwrap();
        let s = read(write(tick(write(Scenario::new(), 5)), 9));
        // write 5, tick, write 9, read
        let run = sim.run(&s).unwrap();
        assert_eq!(run.flow(&"msgout".into()), vec![Value::Int(9)]);
    }

    #[test]
    fn memory_cell_initial_value_is_zero() {
        let mut sim = Simulator::for_component(&memory_cell_component("Mem")).unwrap();
        let run = sim.run(&read(Scenario::new())).unwrap();
        assert_eq!(run.flow(&"msgout".into()), vec![Value::Int(0)]);
    }

    #[test]
    fn memory_cell_allows_overwrite_unlike_buffer() {
        // two writes, then a read: memory returns the second value —
        // the buffer (below) would reject the second write.
        let mut sim = Simulator::for_component(&memory_cell_component("Mem")).unwrap();
        let run = sim.run(&read(write(write(Scenario::new(), 1), 2))).unwrap();
        assert_eq!(run.flow(&"msgout".into()), vec![Value::Int(2)]);
    }

    #[test]
    fn buffer_stores_and_delivers_one_value() {
        let mut sim = Simulator::for_component(&one_place_buffer_component("B")).unwrap();
        let run = sim.run(&read(write(Scenario::new(), 7))).unwrap();
        assert_eq!(run.flow(&"msgout".into()), vec![Value::Int(7)]);
        assert_eq!(run.flow(&"ok".into()), vec![Value::TRUE]);
        assert!(run.flow(&"alarm".into()).iter().all(|v| *v == Value::FALSE));
    }

    #[test]
    fn buffer_rejects_write_when_full_and_raises_alarm() {
        let mut sim = Simulator::for_component(&one_place_buffer_component("B")).unwrap();
        let run = sim.run(&read(write(write(Scenario::new(), 1), 2))).unwrap();
        // second write rejected: read returns 1, alarm fired once
        assert_eq!(run.flow(&"msgout".into()), vec![Value::Int(1)]);
        assert_eq!(run.flow(&"alarm".into()), vec![Value::FALSE, Value::TRUE]);
        assert_eq!(run.flow(&"ok".into()), vec![Value::TRUE, Value::FALSE]);
    }

    #[test]
    fn buffer_read_on_empty_is_silent() {
        let mut sim = Simulator::for_component(&one_place_buffer_component("B")).unwrap();
        let run = sim.run(&read(Scenario::new())).unwrap();
        assert!(run.flow(&"msgout".into()).is_empty());
    }

    #[test]
    fn buffer_full_flag_tracks_occupancy() {
        let mut sim = Simulator::for_component(&one_place_buffer_component("B")).unwrap();
        let run = sim.run(&tick(read(tick(write(Scenario::new(), 4))))).unwrap();
        // after write: full; after idle: full; after read: empty; idle: empty
        assert_eq!(
            run.flow(&"full".into()),
            vec![Value::TRUE, Value::TRUE, Value::FALSE, Value::FALSE]
        );
    }

    #[test]
    fn buffer_simultaneous_write_and_read_when_full() {
        let mut sim = Simulator::for_component(&one_place_buffer_component("B")).unwrap();
        // fill with 1, then write 2 + read in the same instant:
        // the read drains 1, the write of 2 is rejected (alarm) — a strict
        // one-place buffer hands over through storage.
        let run = sim.run(&read(write_read(write(Scenario::new(), 1), 2))).unwrap();
        assert_eq!(run.flow(&"msgout".into()), vec![Value::Int(1)]);
        assert_eq!(run.flow(&"alarm".into()), vec![Value::FALSE, Value::TRUE]);
    }

    /// The buffer's accepted-write/delivered-read behavior satisfies the
    /// semantic FIFO specifications of Definitions 8 and 9 with n = 1.
    #[test]
    fn buffer_satisfies_nfifo_spec_on_accepted_writes() {
        let mut sim = Simulator::for_component(&one_place_buffer_component("B")).unwrap();
        let s = read(write(read(write(write(Scenario::new(), 1), 2)), 3));
        let run = sim.run(&s).unwrap();

        // project to accepted writes (msgin at ok-true instants) and reads
        let mut b = Behavior::new();
        b.declare("w");
        b.declare("r");
        let beh = &run.behavior;
        let ok = beh.trace(&SigName::from("ok")).unwrap().clone();
        let msgin = beh.trace(&SigName::from("msgin")).unwrap().clone();
        for e in msgin.iter() {
            if ok.value_at(e.tag()) == Some(Value::TRUE) {
                b.push_event("w", e.tag(), e.value());
            }
        }
        for e in beh.trace(&SigName::from("msgout")).unwrap().iter() {
            b.push_event("r", e.tag(), e.value());
        }
        assert!(is_afifo_behavior(&b, &"w".into(), &"r".into()));
        assert!(is_nfifo_behavior(&b, &"w".into(), &"r".into(), 1));
    }
}
