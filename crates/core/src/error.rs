//! Error type for the GALS transformation and runtime layers.

use std::fmt;

use polysig_tagged::SigName;

/// Errors from desynchronization, estimation and the GALS runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GalsError {
    /// A static language error.
    Lang(polysig_lang::LangError),
    /// A simulation error.
    Sim(polysig_sim::SimError),
    /// A shared signal with more than one consumer (the paper's
    /// single-producer/single-consumer restriction below Theorem 2).
    MultiConsumer {
        /// The fanned-out signal.
        signal: SigName,
        /// Its consumers.
        consumers: Vec<String>,
    },
    /// A channel named in a configuration does not exist in the program.
    UnknownChannel {
        /// The unknown signal.
        signal: SigName,
    },
    /// The estimation loop hit its iteration or size cap before the alarms
    /// disappeared (the workload's rate mismatch is unbounded — Lemma 2's
    /// condition fails for every finite `n`).
    EstimationDiverged {
        /// Iterations performed.
        iterations: usize,
        /// Sizes reached per channel when giving up.
        sizes: Vec<(SigName, usize)>,
    },
    /// A runtime component tried to use a signal the executor does not know.
    UnknownSignal {
        /// The unknown signal.
        signal: SigName,
    },
    /// A component's clock hierarchy has several independent master clocks,
    /// so its reactions are not determined by its input flows —
    /// the endochrony precondition Theorem 1 needs before desynchronization
    /// preserves flows. Opt out with [`crate::DesyncOptions::lenient`].
    NonEndochronous {
        /// The offending component.
        component: String,
        /// One representative signal per independent master clock.
        masters: Vec<SigName>,
    },
}

impl fmt::Display for GalsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GalsError::Lang(e) => write!(f, "{e}"),
            GalsError::Sim(e) => write!(f, "{e}"),
            GalsError::MultiConsumer { signal, consumers } => write!(
                f,
                "signal `{signal}` is consumed by {} components ({}); insert an explicit fork",
                consumers.len(),
                consumers.join(", ")
            ),
            GalsError::UnknownChannel { signal } => {
                write!(f, "no channel for signal `{signal}` in the program")
            }
            GalsError::EstimationDiverged { iterations, sizes } => {
                write!(f, "buffer estimation did not converge after {iterations} iterations (")?;
                for (i, (s, n)) in sizes.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}={n}")?;
                }
                write!(f, ")")
            }
            GalsError::UnknownSignal { signal } => {
                write!(f, "executor does not know signal `{signal}`")
            }
            GalsError::NonEndochronous { component, masters } => {
                write!(
                    f,
                    "component `{component}` is not endochronous: independent master clocks "
                )?;
                for (i, m) in masters.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "`{m}`")?;
                }
                write!(
                    f,
                    "; its reactions are not determined by input flows, so desynchronization \
                     may not preserve them (DesyncOptions::lenient() skips this check)"
                )
            }
        }
    }
}

impl std::error::Error for GalsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GalsError::Lang(e) => Some(e),
            GalsError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<polysig_lang::LangError> for GalsError {
    fn from(e: polysig_lang::LangError) -> Self {
        GalsError::Lang(e)
    }
}

impl From<polysig_sim::SimError> for GalsError {
    fn from(e: polysig_sim::SimError) -> Self {
        GalsError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        let errs: Vec<GalsError> = vec![
            GalsError::MultiConsumer {
                signal: "x".into(),
                consumers: vec!["B".into(), "C".into()],
            },
            GalsError::UnknownChannel { signal: "x".into() },
            GalsError::EstimationDiverged { iterations: 10, sizes: vec![("x".into(), 64)] },
            GalsError::UnknownSignal { signal: "x".into() },
            GalsError::NonEndochronous {
                component: "P".into(),
                masters: vec!["y".into(), "z".into()],
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversions_preserve_messages() {
        let lang = polysig_lang::LangError::MultipleWriters {
            name: "x".into(),
            components: ("A".into(), "B".into()),
        };
        let g: GalsError = lang.clone().into();
        assert_eq!(g.to_string(), lang.to_string());
        assert!(std::error::Error::source(&g).is_some());
    }
}
