//! Channel overflow policies (Section 5.2's service levels).
//!
//! The paper discusses three ways to handle a write into a full buffer:
//! the ideal *unbounded* channel (Theorem 1's reference model), *lossy*
//! channels that drop the write and raise an alarm (the instrumented
//! estimation design), and *blocking* — "use the conjunction of all `full_i`
//! signals to mask the clock of the producer", trading pipelining for
//! losslessness (the Berry–Sentovich single-place scheme generalized).

use std::fmt;

/// What a channel does when a write arrives while it is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChannelPolicy {
    /// Never full: the queue grows without bound (Theorem 1's ideal
    /// semantic object — not implementable in hardware, used as the
    /// reference model).
    Unbounded,
    /// The write is dropped and counted (matches the Signal-level
    /// instrumented FIFO, whose `alarm` fires on the lost write).
    #[default]
    Lossy,
    /// The producer's activation is masked until space exists — Section
    /// 5.2's clock-masking feedback. Lossless, but stalls the producer.
    Blocking,
}

impl ChannelPolicy {
    /// `true` iff the policy never loses data.
    pub fn is_lossless(self) -> bool {
        !matches!(self, ChannelPolicy::Lossy)
    }
}

impl fmt::Display for ChannelPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelPolicy::Unbounded => write!(f, "unbounded"),
            ChannelPolicy::Lossy => write!(f, "lossy"),
            ChannelPolicy::Blocking => write!(f, "blocking"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn losslessness() {
        assert!(ChannelPolicy::Unbounded.is_lossless());
        assert!(ChannelPolicy::Blocking.is_lossless());
        assert!(!ChannelPolicy::Lossy.is_lossless());
    }

    #[test]
    fn display() {
        assert_eq!(ChannelPolicy::Unbounded.to_string(), "unbounded");
        assert_eq!(ChannelPolicy::Lossy.to_string(), "lossy");
        assert_eq!(ChannelPolicy::Blocking.to_string(), "blocking");
    }

    #[test]
    fn default_is_lossy() {
        assert_eq!(ChannelPolicy::default(), ChannelPolicy::Lossy);
    }
}
