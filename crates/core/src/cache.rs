//! Content hashing and byte-budgeted LRU caching for the serving layer.
//!
//! Two independent pieces, both deterministic and dependency-free:
//!
//! * [`ContentHash`] / [`Sha256`] — a from-scratch SHA-256 (FIPS 180-4)
//!   used to key cached analysis artifacts by *what was asked*: the
//!   normalized program source plus a canonical fingerprint of every
//!   option that can change the answer. Two requests share a cache entry
//!   exactly when their hashes agree, so the fingerprint must cover every
//!   semantic knob (see `serve::engine` in the facade crate).
//! * [`ByteLru`] — a least-recently-used map whose capacity is counted in
//!   *bytes* (as reported at insert time), with exact hit / miss /
//!   eviction / insertion / rejection counters. The eviction rule is part
//!   of the public contract (tests replay it against a reference
//!   simulation): inserting an entry evicts least-recently-used entries —
//!   oldest stamp first — until the new total fits the cap; an entry
//!   larger than the whole cap is *rejected* (counted, not inserted, no
//!   eviction); re-inserting an existing key releases the old bytes
//!   first and refreshes its recency.

use std::collections::BTreeMap;
use std::fmt;

// ---------------------------------------------------------------------------
// SHA-256
// ---------------------------------------------------------------------------

/// A 256-bit content hash, printable as 64 hex digits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContentHash(pub [u8; 32]);

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 (FIPS 180-4), enough for content addressing; no
/// secrets are hashed here so constant-time properties are irrelevant.
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// Fresh hasher with the FIPS initial state.
    pub fn new() -> Sha256 {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len < 64 {
                return; // buffer still partial — nothing more to consume
            }
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            self.compress(block.try_into().expect("64-byte split"));
            rest = tail;
        }
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    /// Convenience: absorb a length-prefixed field, making the encoding
    /// injective across field boundaries (`"ab","c"` ≠ `"a","bc"`).
    pub fn field(&mut self, data: &[u8]) {
        self.update(&(data.len() as u64).to_le_bytes());
        self.update(data);
    }

    /// Finishes with the standard 1-bit + length padding.
    pub fn finish(mut self) -> ContentHash {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // manual, not update(): total_len already counts the message only
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        ContentHash(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, c) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(c.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot hash of a byte string.
pub fn hash_bytes(data: &[u8]) -> ContentHash {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

// ---------------------------------------------------------------------------
// Byte-budgeted LRU
// ---------------------------------------------------------------------------

/// Exact occupancy counters; every cache operation increments exactly one
/// of `hits`/`misses` (lookups) or `insertions`/`rejections` (stores),
/// plus `evictions` once per entry displaced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` found the key.
    pub hits: u64,
    /// `get` did not find the key.
    pub misses: u64,
    /// Entries displaced to make room (not counting replacements of the
    /// same key, which release their bytes without counting here).
    pub evictions: u64,
    /// Entries stored (including same-key replacement).
    pub insertions: u64,
    /// Stores refused because the entry alone exceeds the byte cap.
    pub rejections: u64,
}

struct Entry<V> {
    value: V,
    bytes: usize,
    stamp: u64,
}

/// A least-recently-used map with a byte-denominated capacity.
///
/// `bytes` is whatever the caller reports at insert time — the cache
/// enforces the cap against *reported* bytes exactly (`used_bytes() <=
/// cap_bytes()` is an invariant checked by tests), making the accounting
/// auditable even though the reports themselves are estimates.
pub struct ByteLru<K: Ord + Clone, V> {
    cap: usize,
    used: usize,
    seq: u64,
    map: BTreeMap<K, Entry<V>>,
    order: BTreeMap<u64, K>,
    stats: CacheStats,
}

impl<K: Ord + Clone, V> ByteLru<K, V> {
    /// An empty cache holding at most `cap_bytes` reported bytes.
    pub fn new(cap_bytes: usize) -> ByteLru<K, V> {
        ByteLru {
            cap: cap_bytes,
            used: 0,
            seq: 0,
            map: BTreeMap::new(),
            order: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let seq = self.next_seq();
        match self.map.get_mut(key) {
            Some(e) => {
                self.stats.hits += 1;
                self.order.remove(&e.stamp);
                e.stamp = seq;
                self.order.insert(seq, key.clone());
                Some(&self.map.get(key).expect("just touched").value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peeks without touching recency or counters (introspection only).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|e| &e.value)
    }

    /// Stores `key → value` accounted at `bytes`, evicting
    /// least-recently-used entries until it fits. Returns `false` (and
    /// stores nothing) when `bytes` alone exceeds the cap.
    pub fn insert(&mut self, key: K, value: V, bytes: usize) -> bool {
        if bytes > self.cap {
            self.stats.rejections += 1;
            return false;
        }
        if let Some(old) = self.map.remove(&key) {
            self.order.remove(&old.stamp);
            self.used -= old.bytes;
        }
        while self.used + bytes > self.cap {
            let (&stamp, _) = self.order.iter().next().expect("used > 0 implies an entry");
            let victim = self.order.remove(&stamp).expect("stamp just read");
            let gone = self.map.remove(&victim).expect("order and map agree");
            self.used -= gone.bytes;
            self.stats.evictions += 1;
        }
        let stamp = self.next_seq();
        self.used += bytes;
        self.map.insert(key.clone(), Entry { value, bytes, stamp });
        self.order.insert(stamp, key);
        self.stats.insertions += 1;
        true
    }

    /// Reported bytes currently held.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// The byte cap.
    pub fn cap_bytes(&self) -> usize {
        self.cap
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// No entries?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_known_vectors() {
        // FIPS 180-4 / RFC 6234 vectors
        assert_eq!(
            hash_bytes(b"").to_string(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hash_bytes(b"abc").to_string(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hash_bytes(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_string(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // a multi-block message exercising the buffered path
        let long = vec![b'a'; 1_000];
        let mut h = Sha256::new();
        for chunk in long.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), hash_bytes(&long));
    }

    #[test]
    fn field_prefixing_is_injective() {
        let mut a = Sha256::new();
        a.field(b"ab");
        a.field(b"c");
        let mut b = Sha256::new();
        b.field(b"a");
        b.field(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn lru_evicts_oldest_until_fit_and_counts_exactly() {
        let mut c: ByteLru<&str, u32> = ByteLru::new(100);
        assert!(c.insert("a", 1, 40));
        assert!(c.insert("b", 2, 40));
        assert_eq!(c.used_bytes(), 80);
        // touching `a` makes `b` the eviction victim
        assert_eq!(c.get(&"a"), Some(&1));
        assert!(c.insert("c", 3, 40)); // evicts b (oldest stamp)
        assert_eq!(c.used_bytes(), 80);
        assert_eq!(c.peek(&"b"), None);
        assert_eq!(c.peek(&"a"), Some(&1));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.insertions, s.rejections), (1, 0, 1, 3, 0));
    }

    #[test]
    fn oversized_entry_is_rejected_without_eviction() {
        let mut c: ByteLru<&str, u32> = ByteLru::new(50);
        assert!(c.insert("a", 1, 30));
        assert!(!c.insert("big", 2, 51));
        assert_eq!(c.len(), 1, "rejection evicts nothing");
        assert_eq!(c.used_bytes(), 30);
        assert_eq!(c.stats().rejections, 1);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn replacing_a_key_releases_its_bytes_first() {
        let mut c: ByteLru<&str, u32> = ByteLru::new(100);
        assert!(c.insert("a", 1, 60));
        assert!(c.insert("a", 2, 80)); // would not fit beside the old entry
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 80);
        assert_eq!(c.peek(&"a"), Some(&2));
        assert_eq!(c.stats().evictions, 0, "same-key replacement is not an eviction");
    }

    /// The documented semantics replayed against a brute-force reference
    /// model over a deterministic operation stream.
    #[test]
    fn lru_matches_reference_simulation() {
        #[derive(Default)]
        struct Reference {
            // (key, bytes, last-touch tick), recency = position-independent
            entries: Vec<(u64, usize, u64)>,
            used: usize,
            stats: CacheStats,
            tick: u64,
        }
        impl Reference {
            fn get(&mut self, cap: usize, k: u64) -> Option<()> {
                let _ = cap;
                self.tick += 1;
                if let Some(e) = self.entries.iter_mut().find(|e| e.0 == k) {
                    e.2 = self.tick;
                    self.stats.hits += 1;
                    Some(())
                } else {
                    self.stats.misses += 1;
                    None
                }
            }
            fn insert(&mut self, cap: usize, k: u64, bytes: usize) {
                self.tick += 1;
                if bytes > cap {
                    self.stats.rejections += 1;
                    return;
                }
                if let Some(i) = self.entries.iter().position(|e| e.0 == k) {
                    self.used -= self.entries.remove(i).1;
                }
                while self.used + bytes > cap {
                    let oldest = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.2)
                        .map(|(i, _)| i)
                        .expect("over cap implies non-empty");
                    self.used -= self.entries.remove(oldest).1;
                    self.stats.evictions += 1;
                }
                self.used += bytes;
                self.entries.push((k, bytes, self.tick));
                self.stats.insertions += 1;
            }
        }

        const CAP: usize = 64;
        let mut lru: ByteLru<u64, u64> = ByteLru::new(CAP);
        let mut reference = Reference::default();
        // deterministic splitmix64 op stream
        let mut s: u64 = 0x9e3779b97f4a7c15;
        let mut next = || {
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        for _ in 0..4_000 {
            let r = next();
            let key = r % 13;
            if r & 1 == 0 {
                let bytes = (next() % 70) as usize; // sometimes oversized
                lru.insert(key, key, bytes);
                reference.insert(CAP, key, bytes);
            } else {
                assert_eq!(lru.get(&key).is_some(), reference.get(CAP, key).is_some());
            }
            assert!(lru.used_bytes() <= CAP, "byte cap respected exactly");
            assert_eq!(lru.used_bytes(), reference.used);
            assert_eq!(lru.len(), reference.entries.len());
            assert_eq!(lru.stats(), reference.stats);
        }
        // the stream must have actually exercised every path
        let s = lru.stats();
        assert!(s.hits > 0 && s.misses > 0 && s.evictions > 0 && s.rejections > 0);
    }
}
