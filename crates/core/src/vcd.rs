//! VCD (Value Change Dump, IEEE 1364) export of recorded behaviors.
//!
//! The Polychrony toolset renders simulations as waveforms; we export any
//! [`Behavior`] to VCD so runs can be inspected in GTKWave or any other
//! standard viewer. Polychronous absence is encoded the usual way for
//! event-like signals: a signal is *strobed* — it carries its value only at
//! its instants and returns to `x` (unknown) in between, so presence is
//! visible in the waveform, not just value changes.

use std::fmt::Write as _;

use polysig_tagged::{Behavior, SigName, Tag, Value};

/// Renders selected signals of a behavior as a VCD document.
///
/// One VCD time unit per logical instant; two VCD ticks are emitted per
/// instant (value, then return-to-`x`) so repeated equal values remain
/// visible as separate events.
///
/// ```
/// use polysig_gals::vcd::to_vcd;
/// use polysig_tagged::{Behavior, Value};
///
/// let mut b = Behavior::new();
/// b.push_event("x", 1, Value::Int(3));
/// let doc = to_vcd(&b, &["x".into()], "polysig");
/// assert!(doc.contains("$var"));
/// assert!(doc.contains("b11 "));
/// ```
pub fn to_vcd(behavior: &Behavior, signals: &[SigName], module: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$date polysig export $end");
    let _ = writeln!(out, "$version polysig 0.1.0 $end");
    let _ = writeln!(out, "$timescale 1 ns $end");
    let _ = writeln!(out, "$scope module {module} $end");

    // identifier codes: printable ASCII starting at '!'
    let code = |i: usize| -> String {
        let mut n = i;
        let mut s = String::new();
        loop {
            s.push((b'!' + (n % 94) as u8) as char);
            n /= 94;
            if n == 0 {
                break;
            }
        }
        s
    };
    for (i, name) in signals.iter().enumerate() {
        // 64-bit vector covers both value kinds; booleans still render
        // readably as b0/b1
        let _ = writeln!(out, "$var wire 64 {} {} $end", code(i), name);
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // initial state: everything unknown
    let _ = writeln!(out, "#0");
    let _ = writeln!(out, "$dumpvars");
    for i in 0..signals.len() {
        let _ = writeln!(out, "bx {}", code(i));
    }
    let _ = writeln!(out, "$end");

    let last_tag = behavior.all_tags().last().map(|t| t.as_u64()).unwrap_or(0);
    for t in 1..=last_tag {
        let tag = Tag::new(t);
        let mut assertions = String::new();
        let mut releases = String::new();
        for (i, name) in signals.iter().enumerate() {
            if let Some(v) = behavior.value_at(name, tag) {
                let bits = match v {
                    Value::Bool(b) => format!("b{} ", u8::from(b)),
                    Value::Int(k) => format!("b{:b} ", k as u64),
                };
                let _ = writeln!(assertions, "{bits}{}", code(i));
                let _ = writeln!(releases, "bx {}", code(i));
            }
        }
        if !assertions.is_empty() {
            let _ = writeln!(out, "#{}", 2 * t - 1);
            out.push_str(&assertions);
            let _ = writeln!(out, "#{}", 2 * t);
            out.push_str(&releases);
        }
    }
    let _ = writeln!(out, "#{}", 2 * last_tag + 1);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Behavior {
        let mut b = Behavior::new();
        b.push_event("x", 1, Value::Int(3));
        b.push_event("c", 1, Value::Bool(true));
        b.push_event("x", 3, Value::Int(3)); // same value again — must show
        b
    }

    #[test]
    fn header_declares_all_signals() {
        let doc = to_vcd(&sample(), &["x".into(), "c".into()], "m");
        assert!(doc.contains("$scope module m $end"));
        assert_eq!(doc.matches("$var wire 64").count(), 2);
        assert!(doc.contains("$enddefinitions $end"));
    }

    #[test]
    fn events_are_strobed() {
        let doc = to_vcd(&sample(), &["x".into()], "m");
        // value 3 asserted at odd ticks of instants 1 and 3…
        assert!(doc.contains("#1\nb11 !"));
        assert!(doc.contains("#5\nb11 !"));
        // …and released to x right after
        assert!(doc.contains("#2\nbx !"));
        assert!(doc.contains("#6\nbx !"));
    }

    #[test]
    fn booleans_render_as_single_bits() {
        let doc = to_vcd(&sample(), &["c".into()], "m");
        assert!(doc.contains("b1 !"));
    }

    #[test]
    fn silent_instants_emit_nothing() {
        let doc = to_vcd(&sample(), &["x".into()], "m");
        // instant 2 is silent for x: no #3 block
        assert!(!doc.contains("#3\n"));
    }

    #[test]
    fn empty_behavior_is_a_valid_header_only_document() {
        let b = Behavior::new();
        let doc = to_vcd(&b, &[], "m");
        assert!(doc.contains("$enddefinitions"));
        assert!(doc.trim_end().ends_with("#1"));
    }

    #[test]
    fn identifier_codes_stay_unique_for_many_signals() {
        let mut b = Behavior::new();
        let names: Vec<SigName> = (0..200).map(|i| SigName::from(format!("s{i}"))).collect();
        for n in &names {
            b.declare(n.clone());
        }
        let doc = to_vcd(&b, &names, "m");
        let codes: Vec<&str> = doc
            .lines()
            .filter(|l| l.starts_with("$var"))
            .map(|l| l.split_whitespace().nth(3).unwrap())
            .collect();
        let unique: std::collections::BTreeSet<&str> = codes.iter().copied().collect();
        assert_eq!(unique.len(), 200);
    }
}
