//! Deterministic single-threaded GALS executor.
//!
//! Runs each component of a program as its own [`polysig_sim::Reactor`] on
//! its own [`ClockModel`], coupled only by [`RuntimeChannel`]s over the
//! program's cross-component dependencies. Global time is a discrete
//! reference axis (the paper's tag set); components listed earlier in the
//! program react first within one instant, so a value produced at instant
//! `t` is visible to a consumer activating at the same `t` — matching the
//! same-instant handover the synchronous model allows.

use std::collections::BTreeMap;

use polysig_lang::{Program, Role};
use polysig_sim::{DenseEnv, Reactor, Scenario};
use polysig_tagged::{Behavior, SigId, SigName, Tag, Value};

use crate::error::GalsError;
use crate::partition::channels_of_program;
use crate::policy::ChannelPolicy;
use crate::runtime::channel::{ChannelStats, PushOutcome, RuntimeChannel};
use crate::runtime::clock::ClockModel;

/// Per-component configuration for the executor.
#[derive(Debug, Clone)]
pub struct ComponentSpec {
    /// The component's name in the program.
    pub name: String,
    /// Its local clock.
    pub clock: ClockModel,
    /// Inputs driven by this component's own environment, indexed by
    /// *activation count* (not global time): the k-th entry of the scenario
    /// feeds the component's k-th activation.
    pub environment: Scenario,
}

impl ComponentSpec {
    /// A component on a periodic clock with no local environment inputs.
    pub fn periodic(name: impl Into<String>, period: u64) -> Self {
        ComponentSpec {
            name: name.into(),
            clock: ClockModel::periodic(period),
            environment: Scenario::new(),
        }
    }

    /// Sets the local environment scenario.
    #[must_use]
    pub fn with_environment(mut self, environment: Scenario) -> Self {
        self.environment = environment;
        self
    }

    /// Sets the clock model.
    #[must_use]
    pub fn with_clock(mut self, clock: ClockModel) -> Self {
        self.clock = clock;
        self
    }
}

/// The observable outcome of a GALS execution.
#[derive(Debug, Clone)]
pub struct GalsRun {
    /// Per component: the behavior over its signals on the global time
    /// axis.
    pub behaviors: BTreeMap<String, Behavior>,
    /// Per channel signal: traffic statistics.
    pub channel_stats: BTreeMap<SigName, ChannelStats>,
    /// Activations that were masked by the blocking policy, per component.
    pub masked: BTreeMap<String, usize>,
    /// Per channel signal: queue occupancy sampled after every global
    /// instant — the series the estimation experiments plot.
    pub occupancy: BTreeMap<SigName, Vec<usize>>,
    /// Global instants executed.
    pub horizon: u64,
}

impl GalsRun {
    /// The flow a component produced on one of its signals.
    pub fn flow(&self, component: &str, signal: &SigName) -> Vec<Value> {
        self.behaviors
            .get(component)
            .and_then(|b| b.trace(signal))
            .map(|t| t.values())
            .unwrap_or_default()
    }
}

/// One component's runtime state: its reactor plus channel endpoints
/// resolved, at build time, to `(local SigId, channel index)` pairs — the
/// per-instant exchange loop never looks anything up by name.
#[derive(Debug)]
struct ComponentState {
    spec: ComponentSpec,
    reactor: Reactor,
    /// Channel-fed inputs: reactor-local id ← channel index.
    in_links: Vec<(SigId, usize)>,
    /// Channel-fed outputs: reactor-local id → channel index.
    out_links: Vec<(SigId, usize)>,
}

/// The single-threaded GALS executor.
#[derive(Debug)]
pub struct GalsExecutor {
    components: Vec<ComponentState>,
    /// Channels addressed by index; names live on the channels themselves
    /// and are only consulted when reports are assembled.
    channels: Vec<RuntimeChannel>,
}

impl GalsExecutor {
    /// Builds an executor for `program`: one reactor per component, one
    /// channel per cross-component dependency (capacity per
    /// `capacities`, default 1 for bounded policies).
    ///
    /// # Errors
    ///
    /// Surfaces language errors and the single-consumer restriction;
    /// every component of the program must have a spec.
    pub fn new(
        program: &Program,
        specs: Vec<ComponentSpec>,
        policy: ChannelPolicy,
        capacities: &BTreeMap<SigName, usize>,
    ) -> Result<GalsExecutor, GalsError> {
        let chans = channels_of_program(program)?;
        let mut channels: Vec<RuntimeChannel> = Vec::with_capacity(chans.len());
        let mut channel_index: BTreeMap<SigName, usize> = BTreeMap::new();
        for c in &chans {
            let cap = capacities.get(&c.signal).copied().unwrap_or(1);
            channel_index.insert(c.signal.clone(), channels.len());
            channels.push(RuntimeChannel::new(c.signal.clone(), Some(cap), policy));
        }

        let mut components = Vec::new();
        for spec in specs {
            let comp = program.component(&spec.name).ok_or_else(|| GalsError::UnknownSignal {
                signal: SigName::from(spec.name.as_str()),
            })?;
            let reactor = Reactor::for_component(comp)?;
            // resolve channel endpoints to (local id, channel index) once
            let resolve = |role: Role| -> Vec<(SigId, usize)> {
                comp.signals_with_role(role)
                    .filter_map(|d| {
                        let ci = *channel_index.get(&d.name)?;
                        let id = reactor.sig_id(&d.name).expect("declared signal is interned");
                        Some((id, ci))
                    })
                    .collect()
            };
            let in_links = resolve(Role::Input);
            let out_links = resolve(Role::Output);
            components.push(ComponentState { spec, reactor, in_links, out_links });
        }
        Ok(GalsExecutor { components, channels })
    }

    /// Runs the system for `horizon` global instants.
    ///
    /// # Errors
    ///
    /// Surfaces reaction errors of any component.
    pub fn run(&mut self, horizon: u64) -> Result<GalsRun, GalsError> {
        // precompute activation sets, dense environment steps and name
        // tables; reset counters — all boundary work, once per run
        let mut activation_sets: Vec<Vec<u64>> = Vec::new();
        let mut env_steps: Vec<Vec<DenseEnv>> = Vec::new();
        let mut name_tables: Vec<Vec<SigName>> = Vec::new();
        for c in &mut self.components {
            activation_sets.push(c.spec.clock.activations(horizon));
            c.reactor.reset();
            let n = c.reactor.signal_count();
            let mut steps = Vec::with_capacity(c.spec.environment.len());
            for inputs in c.spec.environment.iter() {
                let mut env = DenseEnv::new(n);
                for (name, value) in inputs {
                    let Some(id) = c.reactor.sig_id(name) else {
                        return Err(polysig_sim::SimError::NotAnInput { name: name.clone() }.into());
                    };
                    env.set(id, *value);
                }
                steps.push(env);
            }
            env_steps.push(steps);
            name_tables.push(c.reactor.signal_names().to_vec());
        }
        let mut activation_index = vec![0usize; self.components.len()];
        let mut behaviors: BTreeMap<String, Behavior> = self
            .components
            .iter()
            .map(|c| {
                let mut b = Behavior::new();
                for n in c.reactor.signal_names() {
                    b.declare(n.clone());
                }
                (c.spec.name.clone(), b)
            })
            .collect();
        let mut masked_counts = vec![0usize; self.components.len()];
        let mut occupancy_series: Vec<Vec<usize>> =
            self.channels.iter().map(|_| Vec::with_capacity(horizon as usize)).collect();
        let mut in_buf = DenseEnv::default();

        for t in 0..horizon {
            for (k, c) in self.components.iter_mut().enumerate() {
                // an activation masked at its scheduled instant stays due
                // until it can fire (the producer's clock is stretched, in
                // the paper's terms — not skipped)
                let due = activation_sets[k].get(activation_index[k]).is_some_and(|&at| at <= t);
                if !due {
                    continue;
                }
                // blocking policy: mask the activation when any outbound
                // channel is full (Section 5.2's clock masking)
                let blocked = c.out_links.iter().any(|&(_, ci)| {
                    let ch = &self.channels[ci];
                    ch.policy() == ChannelPolicy::Blocking && ch.is_full()
                });
                if blocked {
                    masked_counts[k] += 1;
                    // the activation is deferred, not skipped: local inputs
                    // stay aligned with activation count
                    continue;
                }
                let idx = activation_index[k];
                activation_index[k] += 1;

                // assemble inputs: local environment + one value per
                // non-empty inbound channel
                in_buf.reset(c.reactor.signal_count());
                if let Some(step) = env_steps[k].get(idx) {
                    for (id, v) in step.iter() {
                        in_buf.set(id, v);
                    }
                }
                for &(id, ci) in &c.in_links {
                    if let Some(v) = self.channels[ci].pop() {
                        in_buf.set(id, v);
                    }
                }

                let present = c.reactor.react_dense(&in_buf)?;
                let behavior = behaviors.get_mut(&c.spec.name).expect("seeded");
                let names = &name_tables[k];
                for (id, value) in present.iter() {
                    behavior.push_event(names[id.index()].clone(), Tag::new(t + 1), value);
                }
                // route outputs into outbound channels
                for &(id, ci) in &c.out_links {
                    if let Some(v) = present.get(id) {
                        let outcome = self.channels[ci].push(v);
                        debug_assert!(
                            outcome != PushOutcome::WouldBlock,
                            "blocking mask should have prevented this push"
                        );
                    }
                }
            }

            for (ci, ch) in self.channels.iter().enumerate() {
                occupancy_series[ci].push(ch.occupancy());
            }
        }

        let masked = self
            .components
            .iter()
            .zip(&masked_counts)
            .map(|(c, &m)| (c.spec.name.clone(), m))
            .collect();
        let occupancy = self
            .channels
            .iter()
            .zip(occupancy_series)
            .map(|(ch, series)| (ch.name().clone(), series))
            .collect();
        Ok(GalsRun {
            behaviors,
            channel_stats: self.channels.iter().map(|ch| (ch.name().clone(), ch.stats())).collect(),
            masked,
            occupancy,
            horizon,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_lang::parse_program;
    use polysig_sim::{PeriodicInputs, ScenarioGenerator};
    use polysig_tagged::ValueType;

    fn pipe() -> Program {
        parse_program(
            "process P { input a: int; output x: int; x := a; } \
             process Q { input x: int; output y: int; y := x; }",
        )
        .unwrap()
    }

    fn producer_env(n: usize) -> Scenario {
        PeriodicInputs::new("a", ValueType::Int, 1, 0).generate(n)
    }

    #[test]
    fn matched_clocks_deliver_every_value() {
        let mut ex = GalsExecutor::new(
            &pipe(),
            vec![
                ComponentSpec::periodic("P", 2).with_environment(producer_env(10)),
                ComponentSpec::periodic("Q", 2)
                    .with_clock(ClockModel::Periodic { period: 2, phase: 1 }),
            ],
            ChannelPolicy::Lossy,
            &BTreeMap::new(),
        )
        .unwrap();
        let run = ex.run(20).unwrap();
        let sent = run.flow("P", &"x".into());
        let received = run.flow("Q", &"x".into());
        assert_eq!(sent.len(), 10);
        assert_eq!(received, sent);
        assert_eq!(run.channel_stats[&SigName::from("x")].drops, 0);
    }

    #[test]
    fn slow_consumer_with_lossy_channel_drops_in_order() {
        // producer every tick, consumer every 3 ticks, capacity 1
        let mut ex = GalsExecutor::new(
            &pipe(),
            vec![
                ComponentSpec::periodic("P", 1).with_environment(producer_env(30)),
                ComponentSpec::periodic("Q", 3),
            ],
            ChannelPolicy::Lossy,
            &BTreeMap::new(),
        )
        .unwrap();
        let run = ex.run(30).unwrap();
        let stats = run.channel_stats[&SigName::from("x")];
        assert!(stats.drops > 0);
        // received values are a subsequence of sent values (order kept)
        let sent = run.flow("P", &"x".into());
        let received = run.flow("Q", &"x".into());
        let mut it = sent.iter();
        for r in &received {
            assert!(it.any(|s| s == r), "received {r} out of order");
        }
    }

    #[test]
    fn blocking_policy_is_lossless() {
        let mut ex = GalsExecutor::new(
            &pipe(),
            vec![
                ComponentSpec::periodic("P", 1).with_environment(producer_env(30)),
                ComponentSpec::periodic("Q", 3),
            ],
            ChannelPolicy::Blocking,
            &BTreeMap::new(),
        )
        .unwrap();
        let run = ex.run(30).unwrap();
        let stats = run.channel_stats[&SigName::from("x")];
        assert_eq!(stats.drops, 0);
        assert!(run.masked["P"] > 0, "producer should have been masked");
        // everything received is a prefix of everything sent
        let sent = run.flow("P", &"x".into());
        let received = run.flow("Q", &"x".into());
        assert_eq!(&sent[..received.len()], received.as_slice());
        // the producer is throttled to the consumer's rate, not stalled
        // forever: the consumer activates 10 times over 30 instants
        assert!(received.len() >= 8, "consumer should keep draining, got {}", received.len());
    }

    #[test]
    fn unbounded_policy_never_loses_nor_masks() {
        let mut ex = GalsExecutor::new(
            &pipe(),
            vec![
                ComponentSpec::periodic("P", 1).with_environment(producer_env(24)),
                ComponentSpec::periodic("Q", 4),
            ],
            ChannelPolicy::Unbounded,
            &BTreeMap::new(),
        )
        .unwrap();
        let run = ex.run(24).unwrap();
        let stats = run.channel_stats[&SigName::from("x")];
        assert_eq!(stats.drops, 0);
        assert_eq!(run.masked["P"], 0);
        assert!(stats.max_occupancy > 1);
        let sent = run.flow("P", &"x".into());
        let received = run.flow("Q", &"x".into());
        assert_eq!(&sent[..received.len()], received.as_slice());
    }

    #[test]
    fn capacity_bounds_occupancy() {
        let mut caps = BTreeMap::new();
        caps.insert(SigName::from("x"), 3);
        let mut ex = GalsExecutor::new(
            &pipe(),
            vec![
                ComponentSpec::periodic("P", 1).with_environment(producer_env(40)),
                ComponentSpec::periodic("Q", 2),
            ],
            ChannelPolicy::Lossy,
            &caps,
        )
        .unwrap();
        let run = ex.run(40).unwrap();
        assert!(run.channel_stats[&SigName::from("x")].max_occupancy <= 3);
    }

    #[test]
    fn jittered_clocks_still_preserve_flow_order() {
        let mut ex = GalsExecutor::new(
            &pipe(),
            vec![
                ComponentSpec::periodic("P", 2)
                    .with_environment(producer_env(20))
                    .with_clock(ClockModel::Jittered { period: 2, jitter: 1, seed: 9 }),
                ComponentSpec::periodic("Q", 2).with_clock(ClockModel::Jittered {
                    period: 2,
                    jitter: 1,
                    seed: 10,
                }),
            ],
            ChannelPolicy::Unbounded,
            &BTreeMap::new(),
        )
        .unwrap();
        let run = ex.run(40).unwrap();
        let sent = run.flow("P", &"x".into());
        let received = run.flow("Q", &"x".into());
        assert!(!received.is_empty());
        assert_eq!(&sent[..received.len()], received.as_slice());
    }

    #[test]
    fn occupancy_series_tracks_queue_growth() {
        let mut ex = GalsExecutor::new(
            &pipe(),
            vec![
                ComponentSpec::periodic("P", 1).with_environment(producer_env(12)),
                ComponentSpec::periodic("Q", 4),
            ],
            ChannelPolicy::Unbounded,
            &BTreeMap::new(),
        )
        .unwrap();
        let run = ex.run(12).unwrap();
        let series = &run.occupancy[&SigName::from("x")];
        assert_eq!(series.len(), 12);
        // producer 4× faster: occupancy trends upward
        assert!(series.last().unwrap() > series.first().unwrap());
        // the peak matches the recorded max statistic
        assert_eq!(
            *series.iter().max().unwrap(),
            run.channel_stats[&SigName::from("x")].max_occupancy
        );
    }

    #[test]
    fn unknown_component_rejected() {
        let err = GalsExecutor::new(
            &pipe(),
            vec![ComponentSpec::periodic("Ghost", 1)],
            ChannelPolicy::Lossy,
            &BTreeMap::new(),
        )
        .unwrap_err();
        assert!(matches!(err, GalsError::UnknownSignal { .. }));
    }
}
