//! The run-time infrastructure (RTI): the small coordinator every
//! federated execution runs under.
//!
//! Modeled on the rti/federate split of federated reactor runtimes: the
//! RTI owns *coordination*, never data. Concretely it provides
//!
//! * **start-time sync** — a barrier no federate passes until every
//!   federate has finished elaborating, so measured runs never overlap a
//!   competitor's setup and no channel sees traffic before all endpoints
//!   exist;
//! * **shutdown propagation** — a shared flag any federate (or the
//!   coordinator) raises; stalled sends and data-driven receives poll it,
//!   so one failing federate drains the whole federation promptly instead
//!   of deadlocking it;
//! * **liveness accounting** — each federate decrements a live counter on
//!   exit (including panic unwind, via `Drop`), which is what lets the
//!   coordinator stream telemetry samples while the federation runs and
//!   stop sampling the moment it is done;
//! * **teardown** — `join_all` joins *every* spawned thread before
//!   returning or re-raising anything, so no run leaks a thread: a panic
//!   in one federate is re-thrown on the coordinator only after the other
//!   threads are joined.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;
use std::time::Duration;

/// The coordination context one federate thread holds for its lifetime.
///
/// Dropping it (normally or during a panic unwind) marks the federate
/// done; a panicking federate additionally raises the shutdown flag so
/// the rest of the federation unblocks.
pub(crate) struct FederateCtx {
    shutdown: Arc<AtomicBool>,
    barrier: Arc<Barrier>,
    live: Arc<AtomicUsize>,
}

impl FederateCtx {
    /// Blocks until every federate reaches its start line.
    pub fn start(&self) {
        self.barrier.wait();
    }

    /// `true` once any party requested shutdown.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Asks every federate to wind down at its next poll point.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// The shared flag itself, for blocking channel calls to poll.
    pub fn shutdown_flag(&self) -> &AtomicBool {
        &self.shutdown
    }
}

impl Drop for FederateCtx {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.request_shutdown();
        }
        self.live.fetch_sub(1, Ordering::Release);
    }
}

/// How a federation's teardown went; the proof no thread leaked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Federate threads spawned.
    pub spawned: usize,
    /// Threads joined back (always equals `spawned` when `join_all`
    /// returns — a panic is re-raised only after every join).
    pub joined: usize,
}

/// The coordinator: spawns federates, waits on them (optionally sampling
/// telemetry at a cadence), and joins every thread.
pub(crate) struct Rti<R> {
    shutdown: Arc<AtomicBool>,
    barrier: Arc<Barrier>,
    live: Arc<AtomicUsize>,
    handles: Vec<(String, JoinHandle<R>)>,
}

impl<R: Send + 'static> Rti<R> {
    /// A coordinator for exactly `federates` threads (the start barrier is
    /// sized to that count; spawning more or fewer would hang or misfire).
    pub fn new(federates: usize) -> Rti<R> {
        Rti {
            shutdown: Arc::new(AtomicBool::new(false)),
            barrier: Arc::new(Barrier::new(federates.max(1))),
            live: Arc::new(AtomicUsize::new(0)),
            handles: Vec::with_capacity(federates),
        }
    }

    /// Spawns one federate. `body` receives its [`FederateCtx`] and must
    /// call [`FederateCtx::start`] before touching any channel.
    pub fn spawn<F>(&mut self, name: String, body: F)
    where
        F: FnOnce(FederateCtx) -> R + Send + 'static,
    {
        self.live.fetch_add(1, Ordering::Release);
        let ctx = FederateCtx {
            shutdown: self.shutdown.clone(),
            barrier: self.barrier.clone(),
            live: self.live.clone(),
        };
        let handle = std::thread::spawn(move || body(ctx));
        self.handles.push((name, handle));
    }

    /// `true` while at least one federate has not exited.
    pub fn any_live(&self) -> bool {
        self.live.load(Ordering::Acquire) > 0
    }

    /// How many federates have not exited yet (the stall watchdog compares
    /// this against the number of blocked channel endpoints).
    pub fn live_count(&self) -> usize {
        self.live.load(Ordering::Acquire)
    }

    /// Coordinator-side shutdown request: every federate winds down at its
    /// next poll point (the watchdog's way out of a deadlocked federation).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Blocks until every federate exited, calling `sample` every `every`
    /// (the streaming-telemetry hook). A `None` cadence degenerates to a
    /// plain wait-by-join in [`Rti::join_all`].
    pub fn wait_sampling(&self, every: Option<Duration>, mut sample: impl FnMut()) {
        let Some(every) = every else { return };
        while self.any_live() {
            std::thread::sleep(every);
            sample();
        }
    }

    /// Joins every spawned thread, in spawn order. A panicked federate is
    /// re-raised on the caller — but only after **all** threads are
    /// joined, so even the panic path leaks nothing.
    pub fn join_all(self) -> (Vec<(String, R)>, JoinStats) {
        let mut stats = JoinStats { spawned: self.handles.len(), joined: 0 };
        let mut results = Vec::with_capacity(self.handles.len());
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for (name, handle) in self.handles {
            match handle.join() {
                Ok(r) => results.push((name, r)),
                Err(payload) => {
                    // keep joining; re-raise the first panic afterwards
                    panic.get_or_insert(payload);
                }
            }
            stats.joined += 1;
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn start_barrier_synchronizes_every_federate() {
        // no federate may observe fewer than n "armed" marks after start():
        // all arming happens before any barrier release
        let n = 4;
        let armed = Arc::new(AtomicUsize::new(0));
        let mut rti: Rti<usize> = Rti::new(n);
        for i in 0..n {
            let armed = armed.clone();
            rti.spawn(format!("f{i}"), move |ctx| {
                armed.fetch_add(1, Ordering::SeqCst);
                ctx.start();
                armed.load(Ordering::SeqCst)
            });
        }
        let (results, stats) = rti.join_all();
        assert_eq!(stats, JoinStats { spawned: n, joined: n });
        for (_, seen) in results {
            assert_eq!(seen, n, "a federate started before all were armed");
        }
    }

    #[test]
    fn panic_propagates_after_every_thread_is_joined() {
        let joined_proof = Arc::new(Mutex::new(Vec::new()));
        let proof = joined_proof.clone();
        let result = std::panic::catch_unwind(move || {
            let mut rti: Rti<()> = Rti::new(3);
            for i in 0..3 {
                let proof = proof.clone();
                rti.spawn(format!("f{i}"), move |ctx| {
                    ctx.start();
                    if i == 1 {
                        panic!("federate 1 exploded");
                    }
                    // the two survivors run to completion and record it
                    proof.lock().unwrap().push(i);
                });
            }
            rti.join_all();
        });
        let payload = result.expect_err("the federate panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("exploded"), "original payload is preserved, got {msg:?}");
        // both non-panicking federates were joined before the re-raise
        let mut proof = joined_proof.lock().unwrap().clone();
        proof.sort_unstable();
        assert_eq!(proof, vec![0, 2]);
    }

    #[test]
    fn panicking_federate_requests_shutdown_for_the_rest() {
        let mut rti: Rti<bool> = Rti::new(2);
        rti.spawn("waiter".into(), |ctx| {
            ctx.start();
            // spin until the panicking peer's unwind raises the flag
            while !ctx.shutdown_requested() {
                std::thread::yield_now();
            }
            true
        });
        rti.spawn("bomb".into(), |ctx| {
            ctx.start();
            panic!("boom");
        });
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rti.join_all()));
        assert!(err.is_err(), "the bomb must re-raise");
    }

    #[test]
    fn sampling_runs_until_the_last_federate_exits() {
        let mut rti: Rti<()> = Rti::new(2);
        for i in 0..2 {
            rti.spawn(format!("f{i}"), move |ctx| {
                ctx.start();
                std::thread::sleep(Duration::from_millis(20 * (i as u64 + 1)));
            });
        }
        let mut ticks = 0usize;
        rti.wait_sampling(Some(Duration::from_millis(5)), || ticks += 1);
        assert!(!rti.any_live(), "sampling only returns once all federates exited");
        assert!(ticks >= 2, "the sampler observed the running federation");
        let (_, stats) = rti.join_all();
        assert_eq!(stats.spawned, stats.joined);
    }

    #[test]
    fn zero_activation_federates_join_cleanly() {
        let mut rti: Rti<u32> = Rti::new(3);
        for i in 0..3 {
            rti.spawn(format!("f{i}"), move |ctx| {
                ctx.start();
                i // exit immediately: a zero-work federate
            });
        }
        let (results, stats) = rti.join_all();
        assert_eq!(stats, JoinStats { spawned: 3, joined: 3 });
        assert_eq!(results.iter().map(|(_, r)| *r).sum::<u32>(), 3);
    }
}
