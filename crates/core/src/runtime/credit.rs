//! Credit-based flow control across threads.
//!
//! The paper's Section 5.2 points at "different service levels … in which
//! the rate of production and consumption of data items can be tuned",
//! citing the latency-insensitive GALS literature (its reference [15]).
//! Credit-based flow control is the canonical such scheme: the producer
//! holds a credit counter initialized to the buffer depth, spends one
//! credit per send, and regains one when the consumer acknowledges a
//! processed item. Unlike global clock masking it needs no shared state —
//! only a second (ack) channel in the reverse direction — and unlike the
//! lossy policy it never drops: the producer *locally* decides to stall.
//!
//! A stalled producer **blocks on its ack channel** (sliced,
//! disconnect-aware waits) rather than spinning: no CPU burned while out
//! of credit, an immediate wake on either an ack or a gone consumer, and
//! the time spent stalled is accounted per component alongside the stall
//! count ([`CreditRun::stalled`]).

use std::collections::BTreeMap;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use polysig_lang::{Program, Role};
use polysig_sim::{DenseEnv, Reactor, Scenario, SimError};
use polysig_tagged::{SigId, SigName, Value};

use crate::error::GalsError;
use crate::partition::channels_of_program;
use crate::runtime::record::FlowRecorder;
use crate::runtime::threaded::ThreadedComponent;

/// Result of a credit-based threaded run.
#[derive(Debug, Clone, Default)]
pub struct CreditRun {
    /// `flows[component][signal]` = values in activation order.
    pub flows: BTreeMap<String, BTreeMap<SigName, Vec<Value>>>,
    /// Activations each producer spent stalled waiting for credit.
    pub stalls: BTreeMap<String, usize>,
    /// Wall-clock time each producer spent blocked waiting for credit.
    pub stalled: BTreeMap<String, Duration>,
}

impl CreditRun {
    /// The flow one component observed/produced on one signal.
    pub fn flow(&self, component: &str, signal: &SigName) -> Vec<Value> {
        self.flows.get(component).and_then(|m| m.get(signal)).cloned().unwrap_or_default()
    }
}

/// What one component thread reports back: its name, per-signal flows,
/// activations spent stalled, and time spent stalled.
type CreditReport = (String, BTreeMap<SigName, Vec<Value>>, usize, Duration);

/// Poll slice for a blocked credit wait: long enough that a stalled
/// producer sleeps (no spinning), short enough that a consumer retiring
/// without closing its ack channel is noticed promptly.
const STALL_POLL: Duration = Duration::from_millis(1);

struct Endpoint {
    data_tx: Option<Sender<Value>>,
    data_rx: Option<Receiver<Value>>,
    ack_tx: Option<Sender<()>>,
    ack_rx: Option<Receiver<()>>,
}

/// Runs the program's components on OS threads with per-channel credits.
///
/// Every channel gets `credits` initial credits: the bound on in-flight
/// items (the `n` of an `nFifo`). A producer whose credit is exhausted
/// *stalls its activation* (retrying until an ack arrives or the consumer
/// is gone), so no data is ever lost — the thread-level equivalent of
/// Lemma 2's rate condition, enforced at runtime.
///
/// # Errors
///
/// Surfaces language errors, the single-consumer restriction, and any
/// reaction error raised inside a component thread.
///
/// # Panics
///
/// Panics if a component thread panics.
pub fn run_threaded_credit(
    program: &Program,
    components: Vec<ThreadedComponent>,
    credits: usize,
) -> Result<CreditRun, GalsError> {
    assert!(credits > 0, "credit-based flow control needs at least one credit");
    let chans = channels_of_program(program)?;

    let mut endpoints: BTreeMap<SigName, Endpoint> = BTreeMap::new();
    for c in &chans {
        let (data_tx, data_rx) = unbounded();
        let (ack_tx, ack_rx) = unbounded();
        endpoints.insert(
            c.signal.clone(),
            Endpoint {
                data_tx: Some(data_tx),
                data_rx: Some(data_rx),
                ack_tx: Some(ack_tx),
                ack_rx: Some(ack_rx),
            },
        );
    }

    let mut handles = Vec::new();
    for spec in components {
        let comp = program
            .component(&spec.name)
            .ok_or_else(|| GalsError::UnknownSignal { signal: SigName::from(spec.name.as_str()) })?
            .clone();
        let mut reactor = Reactor::for_component(&comp)?;
        // endpoints resolved to reactor-local ids once; the activation loop
        // below runs entirely on dense indices.
        // producer side: data sender + ack receiver, with a credit counter
        let mut out_links: Vec<(SigId, Sender<Value>, Receiver<()>, usize)> = Vec::new();
        // consumer side: data receiver + ack sender
        let mut in_links: Vec<(SigId, Receiver<Value>, Sender<()>)> = Vec::new();
        for d in comp.signals_with_role(Role::Output) {
            if let Some(ep) = endpoints.get_mut(&d.name) {
                let id = reactor.sig_id(&d.name).expect("declared signal is interned");
                out_links.push((
                    id,
                    ep.data_tx.take().expect("single producer"),
                    ep.ack_rx.take().expect("single producer"),
                    credits,
                ));
            }
        }
        for d in comp.signals_with_role(Role::Input) {
            if let Some(ep) = endpoints.get_mut(&d.name) {
                let id = reactor.sig_id(&d.name).expect("declared signal is interned");
                in_links.push((
                    id,
                    ep.data_rx.take().expect("single consumer"),
                    ep.ack_tx.take().expect("single consumer"),
                ));
            }
        }

        let environment: Scenario = spec.environment;
        let n_sigs = reactor.signal_count();
        let mut env_steps: Vec<(DenseEnv, bool)> = Vec::with_capacity(environment.len());
        for inputs in environment.iter() {
            let mut env = DenseEnv::new(n_sigs);
            for (name, value) in inputs {
                let Some(id) = reactor.sig_id(name) else {
                    return Err(SimError::NotAnInput { name: name.clone() }.into());
                };
                env.set(id, *value);
            }
            env_steps.push((env, !inputs.is_empty()));
        }
        let activations = spec.activations;
        let name = spec.name;
        let handle = thread::spawn(move || -> Result<CreditReport, GalsError> {
            let mut recorder = FlowRecorder::new(reactor.signal_names().to_vec());
            let mut in_buf = DenseEnv::new(n_sigs);
            let mut stalls = 0usize;
            let mut stalled = Duration::ZERO;
            let mut k = 0usize;
            let mut done = 0usize;
            while done < activations {
                // refresh credits from acks (non-blocking drain); a
                // disconnected ack channel means the consumer is gone —
                // stop stalling on it (its data channel becomes /dev/null)
                let mut consumer_gone = false;
                for (_, _, ack_rx, credit) in &mut out_links {
                    loop {
                        use crossbeam::channel::TryRecvError;
                        match ack_rx.try_recv() {
                            Ok(()) => *credit += 1,
                            Err(TryRecvError::Empty) => break,
                            Err(TryRecvError::Disconnected) => {
                                consumer_gone = true;
                                break;
                            }
                        }
                    }
                }
                // a producer activation that would send without credit
                // stalls (the local masking decision) — by *blocking* on
                // the ack channel, not by spinning: an arriving ack or a
                // dropped consumer endpoint wakes it immediately, and the
                // sliced timeout keeps the wait observable
                let would_send = !out_links.is_empty()
                    && env_steps.get(k).is_some_and(|(_, nonempty)| *nonempty);
                if would_send && !consumer_gone {
                    let mut stalled_this_activation = false;
                    'out: for (_, _, ack_rx, credit) in &mut out_links {
                        while *credit == 0 {
                            if !stalled_this_activation {
                                stalled_this_activation = true;
                                stalls += 1;
                            }
                            let from = Instant::now();
                            let woke = ack_rx.recv_timeout(STALL_POLL);
                            stalled += from.elapsed();
                            match woke {
                                Ok(()) => *credit += 1,
                                Err(RecvTimeoutError::Timeout) => {}
                                // consumer gone: stop waiting — the next
                                // activation's ack drain re-detects it and
                                // skips the stall entirely
                                Err(RecvTimeoutError::Disconnected) => break 'out,
                            }
                        }
                    }
                }
                // load this activation's environment step with one slice copy
                match env_steps.get(k) {
                    Some((step, _)) => in_buf.assign_from(step),
                    None => in_buf.reset(n_sigs),
                }
                k += 1;
                for (id, data_rx, ack_tx) in &in_links {
                    if let Ok(v) = data_rx.try_recv() {
                        in_buf.set(*id, v);
                        let _ = ack_tx.send(());
                    }
                }
                let present = reactor.react_dense(&in_buf)?;
                recorder.record(present);
                for (id, data_tx, _, credit) in &mut out_links {
                    let Some(value) = present.get(*id) else { continue };
                    let _ = data_tx.send(value);
                    // saturating: a gone consumer leaves credit pinned
                    *credit = credit.saturating_sub(1);
                }
                done += 1;
                if done % 8 == 7 {
                    thread::yield_now();
                }
            }
            Ok((name, recorder.into_named(), stalls, stalled))
        });
        handles.push(handle);
    }

    let mut run = CreditRun::default();
    for handle in handles {
        let (name, flows, stalls, stalled) = handle.join().expect("component thread panicked")?;
        run.stalls.insert(name.clone(), stalls);
        run.stalled.insert(name.clone(), stalled);
        run.flows.insert(name, flows);
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_lang::parse_program;
    use polysig_sim::{PeriodicInputs, ScenarioGenerator};
    use polysig_tagged::ValueType;

    fn pipe() -> Program {
        parse_program(
            "process P { input a: int; output x: int; x := a; } \
             process Q { input x: int; output y: int; y := x * 2; }",
        )
        .unwrap()
    }

    fn env(n: usize) -> Scenario {
        PeriodicInputs::new("a", ValueType::Int, 1, 0).generate(n)
    }

    #[test]
    fn credits_bound_in_flight_items_without_loss() {
        let n = 150;
        let run = run_threaded_credit(
            &pipe(),
            vec![
                ThreadedComponent { name: "P".into(), activations: n, environment: env(n) },
                ThreadedComponent {
                    name: "Q".into(),
                    activations: 30 * n,
                    environment: Scenario::new(),
                },
            ],
            3,
        )
        .unwrap();
        let sent = run.flow("P", &"x".into());
        let received = run.flow("Q", &"x".into());
        assert_eq!(sent.len(), n, "every activation eventually sends");
        // nothing lost or reordered: received is a prefix of sent
        assert_eq!(&sent[..received.len()], received.as_slice());
        assert!(received.len() >= n - 3, "at most `credits` items in flight at the end");
    }

    #[test]
    fn slow_consumer_forces_stalls() {
        let n = 60;
        let run = run_threaded_credit(
            &pipe(),
            vec![
                ThreadedComponent { name: "P".into(), activations: n, environment: env(n) },
                // consumer does the minimum number of activations that can
                // still drain everything
                ThreadedComponent {
                    name: "Q".into(),
                    activations: 40 * n,
                    environment: Scenario::new(),
                },
            ],
            1,
        )
        .unwrap();
        // with a single credit the producer must stall at least once while
        // each ack makes the round trip
        assert!(run.stalls["P"] > 0, "single-credit producer should stall");
        // and the time spent blocked is accounted alongside the count
        assert!(run.stalled["P"] > Duration::ZERO, "stalled time is accounted");
        let sent = run.flow("P", &"x".into());
        assert_eq!(sent.len(), n);
    }

    #[test]
    fn stall_wait_is_disconnect_aware_not_a_hang() {
        // the consumer retires after a single activation; the producer's
        // blocked credit waits must notice the dropped ack endpoint and
        // finish (sends become /dev/null) rather than stalling forever
        let n = 40;
        let run = run_threaded_credit(
            &pipe(),
            vec![
                ThreadedComponent { name: "P".into(), activations: n, environment: env(n) },
                ThreadedComponent {
                    name: "Q".into(),
                    activations: 1,
                    environment: Scenario::new(),
                },
            ],
            1,
        )
        .unwrap();
        assert_eq!(run.flow("P", &"x".into()).len(), n, "producer ran its full budget");
    }

    #[test]
    #[should_panic(expected = "at least one credit")]
    fn zero_credits_rejected() {
        let _ = run_threaded_credit(&pipe(), vec![], 0);
    }
}
