//! Runtime FIFO queues with overflow policies and occupancy statistics.
//!
//! Two families live here:
//!
//! * [`RuntimeChannel`] — the single-threaded executor's queue, mutated
//!   in place by the event loop;
//! * the federated channel ([`fed_channel`]) — a bounded SPSC queue
//!   between two OS threads with credit-style backpressure (the capacity
//!   *is* the credit: a producer out of space blocks until the consumer's
//!   pop returns one), disconnect-aware blocking on both ends, and
//!   lock-free [`ChannelTelemetry`] counters an RTI can sample while the
//!   federation runs.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use polysig_tagged::{SigName, Value};

use crate::policy::ChannelPolicy;

/// What happened to a pushed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Enqueued.
    Stored,
    /// Dropped (lossy policy, queue full).
    Dropped,
    /// Rejected; the producer must retry later (blocking policy).
    WouldBlock,
}

/// Occupancy and traffic statistics of one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Values enqueued.
    pub pushes: usize,
    /// Values dequeued.
    pub pops: usize,
    /// Values lost to the lossy policy.
    pub drops: usize,
    /// Pushes rejected with [`PushOutcome::WouldBlock`].
    pub blocks: usize,
    /// Highest occupancy ever observed.
    pub max_occupancy: usize,
}

/// A bounded or unbounded FIFO queue between two GALS components.
///
/// ```
/// use polysig_gals::runtime::RuntimeChannel;
/// use polysig_gals::ChannelPolicy;
/// use polysig_tagged::Value;
///
/// let mut ch = RuntimeChannel::new("x".into(), Some(1), ChannelPolicy::Lossy);
/// ch.push(Value::Int(1));
/// ch.push(Value::Int(2)); // dropped
/// assert_eq!(ch.pop(), Some(Value::Int(1)));
/// assert_eq!(ch.stats().drops, 1);
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeChannel {
    name: SigName,
    capacity: Option<usize>,
    policy: ChannelPolicy,
    queue: VecDeque<Value>,
    stats: ChannelStats,
}

impl RuntimeChannel {
    /// Creates a channel. `capacity` is ignored (unbounded) under
    /// [`ChannelPolicy::Unbounded`].
    ///
    /// # Panics
    ///
    /// Panics if a bounded policy is given no capacity or a zero capacity.
    pub fn new(name: SigName, capacity: Option<usize>, policy: ChannelPolicy) -> Self {
        if policy != ChannelPolicy::Unbounded {
            let c = capacity.expect("bounded channel needs a capacity");
            assert!(c > 0, "capacity must be positive");
        }
        RuntimeChannel {
            name,
            capacity: if policy == ChannelPolicy::Unbounded { None } else { capacity },
            policy,
            queue: VecDeque::new(),
            stats: ChannelStats::default(),
        }
    }

    /// The carried signal's name.
    pub fn name(&self) -> &SigName {
        &self.name
    }

    /// The overflow policy.
    pub fn policy(&self) -> ChannelPolicy {
        self.policy
    }

    /// Current queue length.
    pub fn occupancy(&self) -> usize {
        self.queue.len()
    }

    /// `true` iff a push would not store the value.
    pub fn is_full(&self) -> bool {
        self.capacity.is_some_and(|c| self.queue.len() >= c)
    }

    /// Pushes a value according to the policy.
    pub fn push(&mut self, value: Value) -> PushOutcome {
        if self.is_full() {
            match self.policy {
                ChannelPolicy::Unbounded => unreachable!("unbounded channels are never full"),
                ChannelPolicy::Lossy => {
                    self.stats.drops += 1;
                    return PushOutcome::Dropped;
                }
                ChannelPolicy::Blocking => {
                    self.stats.blocks += 1;
                    return PushOutcome::WouldBlock;
                }
            }
        }
        self.queue.push_back(value);
        self.stats.pushes += 1;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.queue.len());
        PushOutcome::Stored
    }

    /// Pops the oldest value, if any.
    pub fn pop(&mut self) -> Option<Value> {
        let v = self.queue.pop_front();
        if v.is_some() {
            self.stats.pops += 1;
        }
        v
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// the federated channel: bounded SPSC with credit backpressure + telemetry
// ---------------------------------------------------------------------------

/// What a blocking federated send did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Enqueued (possibly after stalling for credit).
    Sent,
    /// The consumer endpoint is gone; the value was discarded. The producer
    /// should stop sending on this link (it has become `/dev/null`).
    ConsumerGone,
    /// The shutdown flag was raised while stalled; the value was discarded.
    Interrupted,
}

/// What a blocking federated receive did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvOutcome {
    /// A value arrived (possibly after waiting).
    Value(Value),
    /// The queue is drained and the producer endpoint is gone.
    ProducerGone,
    /// The shutdown flag was raised while waiting.
    Interrupted,
}

/// Monotonic counters one federated channel streams while it runs.
///
/// All fields are relaxed atomics: single-writer per counter (pushes and
/// stalls by the producer, pops by the consumer), read concurrently by the
/// RTI's sampler. A sampled occupancy may be transiently off by one — fine
/// for monitoring, and the post-join snapshot is exact.
#[derive(Debug, Default)]
pub struct ChannelTelemetry {
    pushes: AtomicU64,
    pops: AtomicU64,
    stall_events: AtomicU64,
    stalled_ns: AtomicU64,
    max_occupancy: AtomicU64,
    producer_waiting: AtomicBool,
    consumer_waiting: AtomicBool,
}

impl ChannelTelemetry {
    /// Values enqueued so far.
    pub fn pushes(&self) -> u64 {
        self.pushes.load(Ordering::Relaxed)
    }

    /// Values dequeued so far.
    pub fn pops(&self) -> u64 {
        self.pops.load(Ordering::Relaxed)
    }

    /// Current queue occupancy (pushes − pops; transiently approximate
    /// while both ends are live).
    pub fn occupancy(&self) -> u64 {
        self.pushes().saturating_sub(self.pops())
    }

    /// How many endpoints of this channel are blocked *right now*: the
    /// producer inside a stalled [`FedSender::send`], the consumer inside a
    /// waiting [`FedReceiver::recv`] (0, 1 or 2). The flags are set while
    /// the endpoint is inside its wait loop and cleared before the call
    /// returns, so a permanently deadlocked endpoint reads as permanently
    /// waiting — the signal the RTI's stall watchdog keys on.
    pub fn waiting_ends(&self) -> usize {
        usize::from(self.producer_waiting.load(Ordering::Relaxed))
            + usize::from(self.consumer_waiting.load(Ordering::Relaxed))
    }

    /// One-shot copy of every counter.
    pub fn snapshot(&self) -> ChannelCounters {
        ChannelCounters {
            pushes: self.pushes(),
            pops: self.pops(),
            stall_events: self.stall_events.load(Ordering::Relaxed),
            stalled: Duration::from_nanos(self.stalled_ns.load(Ordering::Relaxed)),
            max_occupancy: self.max_occupancy.load(Ordering::Relaxed) as usize,
        }
    }
}

/// A point-in-time copy of one channel's [`ChannelTelemetry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelCounters {
    /// Values enqueued.
    pub pushes: u64,
    /// Values dequeued.
    pub pops: u64,
    /// Sends that had to stall for credit at least once.
    pub stall_events: u64,
    /// Total wall-clock time sends spent stalled.
    pub stalled: Duration,
    /// Highest occupancy ever reached.
    pub max_occupancy: usize,
}

impl ChannelCounters {
    /// Occupancy at snapshot time (pushes − pops).
    pub fn occupancy_now(&self) -> u64 {
        self.pushes.saturating_sub(self.pops)
    }

    /// `true` iff every value pushed was also popped.
    pub fn drained(&self) -> bool {
        self.pushes == self.pops
    }
}

struct FedState {
    queue: VecDeque<Value>,
    producer_gone: bool,
    consumer_gone: bool,
}

struct FedShared {
    state: Mutex<FedState>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    telemetry: ChannelTelemetry,
}

/// Producer endpoint of a federated channel. Dropping it marks the
/// producer gone and wakes a blocked consumer.
pub struct FedSender {
    shared: Arc<FedShared>,
}

/// Consumer endpoint of a federated channel. Dropping it marks the
/// consumer gone and wakes a blocked producer.
pub struct FedReceiver {
    shared: Arc<FedShared>,
}

/// Creates a bounded federated channel of the given capacity (the credit
/// pool: at most `capacity` values in flight).
///
/// # Panics
///
/// Panics when `capacity` is zero.
pub fn fed_channel(capacity: usize) -> (FedSender, FedReceiver) {
    assert!(capacity > 0, "a federated channel needs at least one credit");
    let shared = Arc::new(FedShared {
        state: Mutex::new(FedState {
            queue: VecDeque::with_capacity(capacity),
            producer_gone: false,
            consumer_gone: false,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        capacity,
        telemetry: ChannelTelemetry::default(),
    });
    (FedSender { shared: shared.clone() }, FedReceiver { shared })
}

/// A coordinator-side handle to one federated channel's telemetry that
/// outlives both endpoints: the RTI keeps monitors while the endpoints move
/// into federate threads, samples occupancy during the run, and snapshots
/// the exact totals after every thread is joined.
#[derive(Clone)]
pub struct ChannelMonitor {
    shared: Arc<FedShared>,
}

impl ChannelMonitor {
    /// Current queue occupancy (transiently approximate while live).
    pub fn occupancy(&self) -> u64 {
        self.shared.telemetry.occupancy()
    }

    /// Endpoints blocked in a send/recv wait loop right now (0..=2) — the
    /// stall watchdog's input (see [`ChannelTelemetry::waiting_ends`]).
    pub fn waiting_ends(&self) -> usize {
        self.shared.telemetry.waiting_ends()
    }

    /// Values moved through the channel so far (pushes + pops): frozen
    /// totals across a watchdog window mean no token moved.
    pub fn traffic(&self) -> u64 {
        self.shared.telemetry.pushes() + self.shared.telemetry.pops()
    }

    /// One-shot copy of every counter.
    pub fn snapshot(&self) -> ChannelCounters {
        self.shared.telemetry.snapshot()
    }
}

impl FedSender {
    /// The channel's streaming counters (shared with the receiver).
    pub fn telemetry(&self) -> &ChannelTelemetry {
        &self.shared.telemetry
    }

    /// A telemetry handle that survives both endpoints being moved away.
    pub fn monitor(&self) -> ChannelMonitor {
        ChannelMonitor { shared: self.shared.clone() }
    }

    /// Sends `value`, blocking while the channel is out of credit.
    ///
    /// The wait is sliced into `poll`-long waits so the producer notices a
    /// raised `shutdown` flag promptly; a consumer endpoint dropping wakes
    /// the call immediately (disconnect-aware, no timeout needed). Stall
    /// time is accounted on the channel's telemetry: one stall event per
    /// send that had to wait, plus the summed wall-clock wait.
    pub fn send(&self, value: Value, poll: Duration, shutdown: &AtomicBool) -> SendOutcome {
        let sh = &*self.shared;
        let mut st = sh.state.lock().expect("federated channel poisoned");
        if !st.consumer_gone && st.queue.len() < sh.capacity {
            return Self::commit(sh, &mut st, value);
        }
        // slow path: out of credit (or consumer gone) — stall with the
        // clock running
        sh.telemetry.stall_events.fetch_add(1, Ordering::Relaxed);
        sh.telemetry.producer_waiting.store(true, Ordering::Relaxed);
        let stalled_from = Instant::now();
        let outcome = loop {
            if st.consumer_gone {
                break SendOutcome::ConsumerGone;
            }
            if st.queue.len() < sh.capacity {
                break Self::commit(sh, &mut st, value);
            }
            if shutdown.load(Ordering::Relaxed) {
                break SendOutcome::Interrupted;
            }
            let (guard, _) =
                sh.not_full.wait_timeout(st, poll).expect("federated channel poisoned");
            st = guard;
        };
        sh.telemetry.producer_waiting.store(false, Ordering::Relaxed);
        sh.telemetry
            .stalled_ns
            .fetch_add(stalled_from.elapsed().as_nanos() as u64, Ordering::Relaxed);
        outcome
    }

    fn commit(sh: &FedShared, st: &mut FedState, value: Value) -> SendOutcome {
        st.queue.push_back(value);
        let occ = st.queue.len() as u64;
        sh.telemetry.pushes.fetch_add(1, Ordering::Relaxed);
        sh.telemetry.max_occupancy.fetch_max(occ, Ordering::Relaxed);
        sh.not_empty.notify_one();
        SendOutcome::Sent
    }
}

impl FedReceiver {
    /// The channel's streaming counters (shared with the sender).
    pub fn telemetry(&self) -> &ChannelTelemetry {
        &self.shared.telemetry
    }

    /// Pops the oldest value without blocking, returning a credit to the
    /// producer.
    pub fn try_recv(&self) -> Option<Value> {
        let sh = &*self.shared;
        let mut st = sh.state.lock().expect("federated channel poisoned");
        let v = st.queue.pop_front()?;
        drop(st);
        sh.telemetry.pops.fetch_add(1, Ordering::Relaxed);
        sh.not_full.notify_one();
        Some(v)
    }

    /// Pops the oldest value, blocking while the channel is empty (the
    /// data-driven activation mode). Queued values are drained before a
    /// gone producer is reported, so nothing in flight is lost; the wait is
    /// sliced by `poll` to notice the `shutdown` flag.
    pub fn recv(&self, poll: Duration, shutdown: &AtomicBool) -> RecvOutcome {
        let sh = &*self.shared;
        let mut st = sh.state.lock().expect("federated channel poisoned");
        let mut waited = false;
        let outcome = loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                sh.telemetry.pops.fetch_add(1, Ordering::Relaxed);
                sh.not_full.notify_one();
                break RecvOutcome::Value(v);
            }
            if st.producer_gone {
                break RecvOutcome::ProducerGone;
            }
            if shutdown.load(Ordering::Relaxed) {
                break RecvOutcome::Interrupted;
            }
            if !waited {
                waited = true;
                sh.telemetry.consumer_waiting.store(true, Ordering::Relaxed);
            }
            let (guard, _) =
                sh.not_empty.wait_timeout(st, poll).expect("federated channel poisoned");
            st = guard;
        };
        if waited {
            sh.telemetry.consumer_waiting.store(false, Ordering::Relaxed);
        }
        outcome
    }
}

impl Drop for FedSender {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("federated channel poisoned");
        st.producer_gone = true;
        drop(st);
        self.shared.not_empty.notify_all();
    }
}

impl Drop for FedReceiver {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("federated channel poisoned");
        st.consumer_gone = true;
        drop(st);
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut ch = RuntimeChannel::new("x".into(), None, ChannelPolicy::Unbounded);
        for i in 0..5 {
            assert_eq!(ch.push(Value::Int(i)), PushOutcome::Stored);
        }
        for i in 0..5 {
            assert_eq!(ch.pop(), Some(Value::Int(i)));
        }
        assert_eq!(ch.pop(), None);
        assert_eq!(ch.stats().max_occupancy, 5);
    }

    #[test]
    fn lossy_drops_on_overflow() {
        let mut ch = RuntimeChannel::new("x".into(), Some(2), ChannelPolicy::Lossy);
        assert_eq!(ch.push(Value::Int(1)), PushOutcome::Stored);
        assert_eq!(ch.push(Value::Int(2)), PushOutcome::Stored);
        assert_eq!(ch.push(Value::Int(3)), PushOutcome::Dropped);
        assert_eq!(ch.stats().drops, 1);
        // the dropped value never appears
        assert_eq!(ch.pop(), Some(Value::Int(1)));
        assert_eq!(ch.pop(), Some(Value::Int(2)));
        assert_eq!(ch.pop(), None);
    }

    #[test]
    fn blocking_rejects_and_counts() {
        let mut ch = RuntimeChannel::new("x".into(), Some(1), ChannelPolicy::Blocking);
        assert_eq!(ch.push(Value::Int(1)), PushOutcome::Stored);
        assert_eq!(ch.push(Value::Int(2)), PushOutcome::WouldBlock);
        assert_eq!(ch.stats().blocks, 1);
        ch.pop();
        assert_eq!(ch.push(Value::Int(2)), PushOutcome::Stored);
    }

    #[test]
    #[should_panic(expected = "needs a capacity")]
    fn bounded_policy_requires_capacity() {
        let _ = RuntimeChannel::new("x".into(), None, ChannelPolicy::Lossy);
    }

    #[test]
    fn unbounded_never_fills() {
        let mut ch = RuntimeChannel::new("x".into(), Some(1), ChannelPolicy::Unbounded);
        for i in 0..100 {
            assert_eq!(ch.push(Value::Int(i)), PushOutcome::Stored);
        }
        assert!(!ch.is_full());
    }
}

#[cfg(test)]
mod fed_tests {
    use super::*;
    use std::thread;

    const POLL: Duration = Duration::from_millis(2);

    fn no_shutdown() -> AtomicBool {
        AtomicBool::new(false)
    }

    #[test]
    fn capacity_is_the_credit_pool() {
        let (tx, rx) = fed_channel(2);
        let stop = no_shutdown();
        assert_eq!(tx.send(Value::Int(1), POLL, &stop), SendOutcome::Sent);
        assert_eq!(tx.send(Value::Int(2), POLL, &stop), SendOutcome::Sent);
        // third send must stall until the consumer returns a credit
        let producer = thread::spawn(move || {
            let stop = no_shutdown();
            let out = tx.send(Value::Int(3), POLL, &stop);
            (out, tx.telemetry().snapshot())
        });
        thread::sleep(Duration::from_millis(15));
        assert_eq!(rx.try_recv(), Some(Value::Int(1)));
        let (out, counters) = producer.join().unwrap();
        assert_eq!(out, SendOutcome::Sent);
        assert_eq!(counters.stall_events, 1, "exactly the blocked send stalls");
        assert!(counters.stalled >= Duration::from_millis(5), "stall time is accounted");
        assert_eq!(counters.max_occupancy, 2);
        assert_eq!(rx.try_recv(), Some(Value::Int(2)));
        assert_eq!(rx.try_recv(), Some(Value::Int(3)));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn consumer_drop_wakes_a_stalled_producer() {
        let (tx, rx) = fed_channel(1);
        let stop = no_shutdown();
        assert_eq!(tx.send(Value::Int(1), Duration::from_secs(10), &stop), SendOutcome::Sent);
        let producer = thread::spawn(move || {
            let stop = no_shutdown();
            // a 10s poll slice: only the disconnect wake can finish this
            // test promptly
            tx.send(Value::Int(2), Duration::from_secs(10), &stop)
        });
        thread::sleep(Duration::from_millis(10));
        drop(rx);
        assert_eq!(producer.join().unwrap(), SendOutcome::ConsumerGone);
    }

    #[test]
    fn shutdown_interrupts_a_stalled_producer() {
        let (tx, _rx) = fed_channel(1);
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        assert_eq!(tx.send(Value::Int(1), POLL, &stop), SendOutcome::Sent);
        let producer = thread::spawn(move || tx.send(Value::Int(2), POLL, &flag));
        thread::sleep(Duration::from_millis(10));
        stop.store(true, Ordering::Relaxed);
        assert_eq!(producer.join().unwrap(), SendOutcome::Interrupted);
    }

    #[test]
    fn blocking_recv_drains_before_reporting_gone() {
        let (tx, rx) = fed_channel(4);
        let stop = no_shutdown();
        for i in 0..3 {
            assert_eq!(tx.send(Value::Int(i), POLL, &stop), SendOutcome::Sent);
        }
        drop(tx);
        for i in 0..3 {
            assert_eq!(rx.recv(POLL, &stop), RecvOutcome::Value(Value::Int(i)));
        }
        assert_eq!(rx.recv(POLL, &stop), RecvOutcome::ProducerGone);
        let counters = rx.telemetry().snapshot();
        assert_eq!((counters.pushes, counters.pops), (3, 3));
        assert_eq!(counters.occupancy_now(), 0);
    }

    #[test]
    fn telemetry_streams_while_both_ends_run() {
        let (tx, rx) = fed_channel(8);
        let stop = no_shutdown();
        for i in 0..5 {
            assert_eq!(tx.send(Value::Int(i), POLL, &stop), SendOutcome::Sent);
        }
        assert_eq!(tx.telemetry().occupancy(), 5);
        assert_eq!(rx.try_recv(), Some(Value::Int(0)));
        assert_eq!(tx.telemetry().occupancy(), 4);
        assert_eq!(tx.telemetry().snapshot().max_occupancy, 5);
    }

    #[test]
    #[should_panic(expected = "at least one credit")]
    fn zero_capacity_rejected() {
        let _ = fed_channel(0);
    }
}
