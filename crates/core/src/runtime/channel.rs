//! Runtime FIFO queues with overflow policies and occupancy statistics.

use std::collections::VecDeque;

use polysig_tagged::{SigName, Value};

use crate::policy::ChannelPolicy;

/// What happened to a pushed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Enqueued.
    Stored,
    /// Dropped (lossy policy, queue full).
    Dropped,
    /// Rejected; the producer must retry later (blocking policy).
    WouldBlock,
}

/// Occupancy and traffic statistics of one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Values enqueued.
    pub pushes: usize,
    /// Values dequeued.
    pub pops: usize,
    /// Values lost to the lossy policy.
    pub drops: usize,
    /// Pushes rejected with [`PushOutcome::WouldBlock`].
    pub blocks: usize,
    /// Highest occupancy ever observed.
    pub max_occupancy: usize,
}

/// A bounded or unbounded FIFO queue between two GALS components.
///
/// ```
/// use polysig_gals::runtime::RuntimeChannel;
/// use polysig_gals::ChannelPolicy;
/// use polysig_tagged::Value;
///
/// let mut ch = RuntimeChannel::new("x".into(), Some(1), ChannelPolicy::Lossy);
/// ch.push(Value::Int(1));
/// ch.push(Value::Int(2)); // dropped
/// assert_eq!(ch.pop(), Some(Value::Int(1)));
/// assert_eq!(ch.stats().drops, 1);
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeChannel {
    name: SigName,
    capacity: Option<usize>,
    policy: ChannelPolicy,
    queue: VecDeque<Value>,
    stats: ChannelStats,
}

impl RuntimeChannel {
    /// Creates a channel. `capacity` is ignored (unbounded) under
    /// [`ChannelPolicy::Unbounded`].
    ///
    /// # Panics
    ///
    /// Panics if a bounded policy is given no capacity or a zero capacity.
    pub fn new(name: SigName, capacity: Option<usize>, policy: ChannelPolicy) -> Self {
        if policy != ChannelPolicy::Unbounded {
            let c = capacity.expect("bounded channel needs a capacity");
            assert!(c > 0, "capacity must be positive");
        }
        RuntimeChannel {
            name,
            capacity: if policy == ChannelPolicy::Unbounded { None } else { capacity },
            policy,
            queue: VecDeque::new(),
            stats: ChannelStats::default(),
        }
    }

    /// The carried signal's name.
    pub fn name(&self) -> &SigName {
        &self.name
    }

    /// The overflow policy.
    pub fn policy(&self) -> ChannelPolicy {
        self.policy
    }

    /// Current queue length.
    pub fn occupancy(&self) -> usize {
        self.queue.len()
    }

    /// `true` iff a push would not store the value.
    pub fn is_full(&self) -> bool {
        self.capacity.is_some_and(|c| self.queue.len() >= c)
    }

    /// Pushes a value according to the policy.
    pub fn push(&mut self, value: Value) -> PushOutcome {
        if self.is_full() {
            match self.policy {
                ChannelPolicy::Unbounded => unreachable!("unbounded channels are never full"),
                ChannelPolicy::Lossy => {
                    self.stats.drops += 1;
                    return PushOutcome::Dropped;
                }
                ChannelPolicy::Blocking => {
                    self.stats.blocks += 1;
                    return PushOutcome::WouldBlock;
                }
            }
        }
        self.queue.push_back(value);
        self.stats.pushes += 1;
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.queue.len());
        PushOutcome::Stored
    }

    /// Pops the oldest value, if any.
    pub fn pop(&mut self) -> Option<Value> {
        let v = self.queue.pop_front();
        if v.is_some() {
            self.stats.pops += 1;
        }
        v
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut ch = RuntimeChannel::new("x".into(), None, ChannelPolicy::Unbounded);
        for i in 0..5 {
            assert_eq!(ch.push(Value::Int(i)), PushOutcome::Stored);
        }
        for i in 0..5 {
            assert_eq!(ch.pop(), Some(Value::Int(i)));
        }
        assert_eq!(ch.pop(), None);
        assert_eq!(ch.stats().max_occupancy, 5);
    }

    #[test]
    fn lossy_drops_on_overflow() {
        let mut ch = RuntimeChannel::new("x".into(), Some(2), ChannelPolicy::Lossy);
        assert_eq!(ch.push(Value::Int(1)), PushOutcome::Stored);
        assert_eq!(ch.push(Value::Int(2)), PushOutcome::Stored);
        assert_eq!(ch.push(Value::Int(3)), PushOutcome::Dropped);
        assert_eq!(ch.stats().drops, 1);
        // the dropped value never appears
        assert_eq!(ch.pop(), Some(Value::Int(1)));
        assert_eq!(ch.pop(), Some(Value::Int(2)));
        assert_eq!(ch.pop(), None);
    }

    #[test]
    fn blocking_rejects_and_counts() {
        let mut ch = RuntimeChannel::new("x".into(), Some(1), ChannelPolicy::Blocking);
        assert_eq!(ch.push(Value::Int(1)), PushOutcome::Stored);
        assert_eq!(ch.push(Value::Int(2)), PushOutcome::WouldBlock);
        assert_eq!(ch.stats().blocks, 1);
        ch.pop();
        assert_eq!(ch.push(Value::Int(2)), PushOutcome::Stored);
    }

    #[test]
    #[should_panic(expected = "needs a capacity")]
    fn bounded_policy_requires_capacity() {
        let _ = RuntimeChannel::new("x".into(), None, ChannelPolicy::Lossy);
    }

    #[test]
    fn unbounded_never_fills() {
        let mut ch = RuntimeChannel::new("x".into(), Some(1), ChannelPolicy::Unbounded);
        for i in 0..100 {
            assert_eq!(ch.push(Value::Int(i)), PushOutcome::Stored);
        }
        assert!(!ch.is_full());
    }
}
