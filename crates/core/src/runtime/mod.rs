//! The GALS *deployment* runtime.
//!
//! Where [`crate::desync`] builds the paper's fully synchronous multi-clock
//! *model* of an asynchronous design, this module plays the other end of the
//! story: it actually runs the components on independent local clocks,
//! coupled only by FIFO queues — the target the validated model is deployed
//! onto. The test-suite closes the loop by checking that the flows observed
//! here are flow-equivalent to the synchronous model's flows, which is the
//! paper's notion of a correct deployment.
//!
//! * [`clock`] — local activation patterns: periodic, jittered, random;
//! * [`channel`] — runtime queues with the [`crate::ChannelPolicy`]
//!   overflow policies and occupancy statistics;
//! * [`executor`] — a deterministic single-threaded event loop over global
//!   time;
//! * [`threaded`] — the same system on OS threads with crossbeam channels,
//!   where the asynchrony is real.

pub mod channel;
pub mod clock;
pub mod credit;
pub mod executor;
pub mod threaded;

pub use channel::{ChannelStats, RuntimeChannel};
pub use clock::ClockModel;
pub use credit::{run_threaded_credit, CreditRun};
pub use executor::{ComponentSpec, GalsExecutor, GalsRun};
pub use threaded::run_threaded;
