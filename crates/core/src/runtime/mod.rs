//! The GALS *deployment* runtime.
//!
//! Where [`crate::desync`] builds the paper's fully synchronous multi-clock
//! *model* of an asynchronous design, this module plays the other end of the
//! story: it actually runs the components on independent local clocks,
//! coupled only by FIFO queues — the target the validated model is deployed
//! onto. The test-suite closes the loop by checking that the flows observed
//! here are flow-equivalent to the synchronous model's flows, which is the
//! paper's notion of a correct deployment.
//!
//! * [`clock`] — local activation patterns: periodic, jittered, random;
//! * [`channel`] — runtime queues with the [`crate::ChannelPolicy`]
//!   overflow policies and occupancy statistics;
//! * [`executor`] — a deterministic single-threaded event loop over global
//!   time;
//! * [`threaded`] — the same system on OS threads with crossbeam channels,
//!   where the asynchrony is real;
//! * [`federated`] — the production-shaped deployment: one compiled
//!   federate per component over bounded credit channels, coordinated by
//!   the [`rti`] (start barrier, shutdown propagation, streaming
//!   occupancy counters, leak-free teardown);
//! * [`record`] — the dense [`SigId`]-slot flow recorder all threaded
//!   runtimes share.
//!
//! [`SigId`]: polysig_tagged::SigId

pub mod channel;
pub mod clock;
pub mod credit;
pub mod executor;
pub mod federated;
pub mod record;
pub(crate) mod rti;
pub mod threaded;

pub use channel::{
    fed_channel, ChannelCounters, ChannelMonitor, ChannelStats, ChannelTelemetry, FedReceiver,
    FedSender, RecvOutcome, RuntimeChannel, SendOutcome,
};
pub use clock::ClockModel;
pub use credit::{run_threaded_credit, CreditRun};
pub use executor::{ComponentSpec, GalsExecutor, GalsRun};
pub use federated::{
    run_federated, FederateSpec, FederateStats, FederatedOptions, FederatedRun, OccupancySample,
};
pub use record::FlowRecorder;
pub use rti::JoinStats;
pub use threaded::run_threaded;
