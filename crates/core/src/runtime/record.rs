//! Dense per-signal flow recording for the threaded runtimes.
//!
//! Every runtime that observes reactions (threaded, credit, federated)
//! records flows the same way the reactor itself does (PR 1's pattern):
//! values accumulate into [`SigId`]-indexed `Vec` slots during the run —
//! no name-keyed map insert, no name clone, no per-value allocation beyond
//! the `Vec` push — and convert to the name-keyed boundary form exactly
//! once, when the run's report is assembled.

use std::collections::BTreeMap;

use polysig_sim::DenseEnv;
use polysig_tagged::{SigName, Value};

/// A [`SigId`]-slot flow accumulator for one component's run.
///
/// [`SigId`]: polysig_tagged::SigId
#[derive(Debug, Clone)]
pub struct FlowRecorder {
    /// `flows[id.index()]` = that signal's values in activation order.
    flows: Vec<Vec<Value>>,
    /// The interner's name table, captured once at construction.
    names: Vec<SigName>,
}

impl FlowRecorder {
    /// A recorder for a reactor whose interner maps the given names (in id
    /// order).
    pub fn new(names: Vec<SigName>) -> FlowRecorder {
        FlowRecorder { flows: vec![Vec::new(); names.len()], names }
    }

    /// Appends every present value of one reaction to its signal's slot.
    #[inline]
    pub fn record(&mut self, present: &DenseEnv) {
        for (id, value) in present.iter() {
            self.flows[id.index()].push(value);
        }
    }

    /// The boundary conversion: name-keyed flows, keeping only signals
    /// that ever ticked (matching the historical name-keyed behavior).
    pub fn into_named(self) -> BTreeMap<SigName, Vec<Value>> {
        self.names.into_iter().zip(self.flows).filter(|(_, f)| !f.is_empty()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_tagged::SigId;

    #[test]
    fn records_densely_and_converts_once() {
        let mut rec = FlowRecorder::new(vec!["a".into(), "b".into(), "c".into()]);
        let mut env = DenseEnv::new(3);
        env.set(SigId(0), Value::Int(1));
        env.set(SigId(2), Value::Int(2));
        rec.record(&env);
        env.reset(3);
        env.set(SigId(0), Value::Int(3));
        rec.record(&env);
        let named = rec.into_named();
        assert_eq!(named[&SigName::from("a")], vec![Value::Int(1), Value::Int(3)]);
        assert_eq!(named[&SigName::from("c")], vec![Value::Int(2)]);
        // `b` never ticked: absent from the boundary map
        assert!(!named.contains_key(&SigName::from("b")));
    }
}
