//! GALS execution on OS threads: real asynchrony.
//!
//! Each component runs on its own thread at its own pace; channels are
//! crossbeam queues. Unlike [`crate::runtime::executor`], the relative
//! interleaving here is genuinely nondeterministic — which is exactly the
//! point: per-channel FIFO order is the *only* coordination, so the flow
//! invariants validated on the synchronous model must (and do) survive.

use std::collections::BTreeMap;
use std::thread;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};

use polysig_lang::{Program, Role};
use polysig_sim::{DenseEnv, Reactor, Scenario, SimError};
use polysig_tagged::{SigId, SigName, Value};

use crate::error::GalsError;
use crate::partition::channels_of_program;
use crate::policy::ChannelPolicy;
use crate::runtime::record::FlowRecorder;

/// Configuration of one threaded component.
#[derive(Debug, Clone)]
pub struct ThreadedComponent {
    /// The component's name in the program.
    pub name: String,
    /// How many activations the thread performs.
    pub activations: usize,
    /// Environment inputs per activation.
    pub environment: Scenario,
}

/// Result of a threaded run: per component, the flow of values it produced
/// or consumed per signal, in activation order.
#[derive(Debug, Clone, Default)]
pub struct ThreadedRun {
    /// `flows[component][signal]` = values in activation order.
    pub flows: BTreeMap<String, BTreeMap<SigName, Vec<Value>>>,
    /// Values dropped per channel (lossy policy only).
    pub drops: BTreeMap<SigName, usize>,
}

impl ThreadedRun {
    /// The flow one component observed/produced on one signal.
    pub fn flow(&self, component: &str, signal: &SigName) -> Vec<Value> {
        self.flows.get(component).and_then(|m| m.get(signal)).cloned().unwrap_or_default()
    }
}

/// What one component thread reports back: its name, its per-signal flows,
/// and how many values it dropped.
type ThreadReport = (String, BTreeMap<SigName, Vec<Value>>, usize);

enum Tx {
    Bounded(Sender<Value>),
    Unbounded(Sender<Value>),
}

/// Runs the program's components on OS threads coupled by crossbeam
/// channels.
///
/// `capacity` bounds every channel under the bounded policies
/// ([`ChannelPolicy::Blocking`] uses a blocking `send`, so nothing is lost;
/// [`ChannelPolicy::Lossy`] uses `try_send` and counts drops).
///
/// # Errors
///
/// Surfaces language errors, the single-consumer restriction, and any
/// reaction error raised inside a component thread.
pub fn run_threaded(
    program: &Program,
    components: Vec<ThreadedComponent>,
    policy: ChannelPolicy,
    capacity: usize,
) -> Result<ThreadedRun, GalsError> {
    let chans = channels_of_program(program)?;

    // build endpoints
    let mut senders: BTreeMap<SigName, Tx> = BTreeMap::new();
    let mut receivers: BTreeMap<SigName, Receiver<Value>> = BTreeMap::new();
    for c in &chans {
        let (tx, rx) = match policy {
            ChannelPolicy::Unbounded => {
                let (tx, rx) = unbounded();
                (Tx::Unbounded(tx), rx)
            }
            _ => {
                let (tx, rx) = bounded(capacity.max(1));
                (Tx::Bounded(tx), rx)
            }
        };
        senders.insert(c.signal.clone(), tx);
        receivers.insert(c.signal.clone(), rx);
    }

    // spawn one thread per component
    let mut handles = Vec::new();
    for spec in components {
        let comp = program
            .component(&spec.name)
            .ok_or_else(|| GalsError::UnknownSignal { signal: SigName::from(spec.name.as_str()) })?
            .clone();
        let mut reactor = Reactor::for_component(&comp)?;
        let outs: Vec<SigName> = comp
            .signals_with_role(Role::Output)
            .filter(|d| senders.contains_key(&d.name))
            .map(|d| d.name.clone())
            .collect();
        let ins: Vec<SigName> = comp
            .signals_with_role(Role::Input)
            .filter(|d| receivers.contains_key(&d.name))
            .map(|d| d.name.clone())
            .collect();
        // resolve endpoints to reactor-local ids once; the activation loop
        // below runs entirely on dense indices
        let my_txs: Vec<(SigId, Tx)> = outs
            .iter()
            .map(|n| {
                let id = reactor.sig_id(n).expect("declared signal is interned");
                (id, senders.remove(n).expect("single producer"))
            })
            .collect();
        let my_rxs: Vec<(SigId, Receiver<Value>)> = ins
            .iter()
            .map(|n| {
                let id = reactor.sig_id(n).expect("declared signal is interned");
                (id, receivers.remove(n).expect("single consumer"))
            })
            .collect();
        let n_sigs = reactor.signal_count();
        let mut env_steps: Vec<DenseEnv> = Vec::with_capacity(spec.environment.len());
        for inputs in spec.environment.iter() {
            let mut env = DenseEnv::new(n_sigs);
            for (name, value) in inputs {
                let Some(id) = reactor.sig_id(name) else {
                    return Err(SimError::NotAnInput { name: name.clone() }.into());
                };
                env.set(id, *value);
            }
            env_steps.push(env);
        }

        let handle = thread::spawn(move || -> Result<ThreadReport, GalsError> {
            let mut recorder = FlowRecorder::new(reactor.signal_names().to_vec());
            let mut drops = 0usize;
            let mut in_buf = DenseEnv::new(n_sigs);
            for k in 0..spec.activations {
                // load this activation's environment step with one slice copy
                match env_steps.get(k) {
                    Some(step) => in_buf.assign_from(step),
                    None => in_buf.reset(n_sigs),
                }
                for (id, rx) in &my_rxs {
                    if let Ok(v) = rx.try_recv() {
                        in_buf.set(*id, v);
                    }
                }
                let present = reactor.react_dense(&in_buf)?;
                recorder.record(present);
                for (id, tx) in &my_txs {
                    let Some(value) = present.get(*id) else { continue };
                    match tx {
                        Tx::Unbounded(tx) => {
                            let _ = tx.send(value);
                        }
                        Tx::Bounded(tx) => match policy {
                            ChannelPolicy::Blocking => {
                                // true backpressure: the thread stalls
                                let _ = tx.send(value);
                            }
                            _ => {
                                if let Err(TrySendError::Full(_)) = tx.try_send(value) {
                                    drops += 1;
                                }
                            }
                        },
                    }
                }
                // give the other side a chance to make progress
                if k % 8 == 7 {
                    thread::yield_now();
                }
            }
            Ok((spec.name, recorder.into_named(), drops))
        });
        handles.push((handle, outs));
    }

    let mut run = ThreadedRun::default();
    for (handle, outs) in handles {
        let (name, flows, drops) = handle.join().expect("component thread panicked")?;
        for out in outs {
            *run.drops.entry(out).or_default() += drops;
        }
        run.flows.insert(name, flows);
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_lang::parse_program;
    use polysig_sim::{PeriodicInputs, ScenarioGenerator};
    use polysig_tagged::ValueType;

    fn pipe() -> Program {
        parse_program(
            "process P { input a: int; output x: int; x := a; } \
             process Q { input x: int; output y: int; y := x + 100; }",
        )
        .unwrap()
    }

    fn env(n: usize) -> Scenario {
        PeriodicInputs::new("a", ValueType::Int, 1, 0).generate(n)
    }

    #[test]
    fn blocking_threads_lose_nothing() {
        let n = 200;
        let run = run_threaded(
            &pipe(),
            vec![
                ThreadedComponent { name: "P".into(), activations: n, environment: env(n) },
                // consumer gets plenty of activations to drain everything
                ThreadedComponent {
                    name: "Q".into(),
                    activations: 20 * n,
                    environment: Scenario::new(),
                },
            ],
            ChannelPolicy::Blocking,
            4,
        )
        .unwrap();
        let sent = run.flow("P", &"x".into());
        let received = run.flow("Q", &"x".into());
        assert_eq!(sent.len(), n);
        // the consumer may stop before the tail arrives, but what arrived
        // is a prefix in order
        assert!(received.len() >= n - 4, "received only {}", received.len());
        assert_eq!(&sent[..received.len()], received.as_slice());
        // and Q's outputs reflect its inputs
        let y = run.flow("Q", &"y".into());
        assert_eq!(y.len(), received.len());
        assert!(y
            .iter()
            .zip(&received)
            .all(|(y, x)| { y.as_int().unwrap() == x.as_int().unwrap() + 100 }));
    }

    #[test]
    fn lossy_threads_preserve_subsequence_order() {
        let n = 300;
        let run = run_threaded(
            &pipe(),
            vec![
                ThreadedComponent { name: "P".into(), activations: n, environment: env(n) },
                ThreadedComponent {
                    name: "Q".into(),
                    activations: n / 3,
                    environment: Scenario::new(),
                },
            ],
            ChannelPolicy::Lossy,
            2,
        )
        .unwrap();
        let sent = run.flow("P", &"x".into());
        let received = run.flow("Q", &"x".into());
        // received is a subsequence of sent
        let mut it = sent.iter();
        for r in &received {
            assert!(it.any(|s| s == r), "value {r} received out of order");
        }
    }

    #[test]
    fn unbounded_threads_deliver_everything_eventually() {
        let n = 100;
        let run = run_threaded(
            &pipe(),
            vec![
                ThreadedComponent { name: "P".into(), activations: n, environment: env(n) },
                ThreadedComponent {
                    name: "Q".into(),
                    activations: 50 * n,
                    environment: Scenario::new(),
                },
            ],
            ChannelPolicy::Unbounded,
            0,
        )
        .unwrap();
        let sent = run.flow("P", &"x".into());
        let received = run.flow("Q", &"x".into());
        assert_eq!(sent.len(), n);
        assert!(received.len() >= n - 2, "received only {}", received.len());
        assert_eq!(&sent[..received.len()], received.as_slice());
        assert_eq!(run.drops.get(&SigName::from("x")).copied().unwrap_or(0), 0);
    }
}
