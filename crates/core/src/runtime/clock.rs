//! Local clock models for GALS components.
//!
//! A component's local clock decides at which global instants it reacts.
//! The paper's premise is exactly that these rates are unknown and
//! unsynchronized; the models here are the usual abstractions: strict
//! periods, periods with bounded jitter, and Bernoulli activation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A local activation pattern over discrete global time.
#[derive(Debug, Clone, PartialEq)]
pub enum ClockModel {
    /// Activates at `phase, phase+period, phase+2·period, …`.
    Periodic {
        /// Distance between activations (≥ 1).
        period: u64,
        /// First activation instant.
        phase: u64,
    },
    /// A periodic clock whose each activation is delayed by a uniformly
    /// random amount in `0..=jitter` (deterministic per seed) — models
    /// oscillator drift and clock-domain skew.
    Jittered {
        /// Nominal period (≥ 1).
        period: u64,
        /// Maximum extra delay per activation.
        jitter: u64,
        /// RNG seed.
        seed: u64,
    },
    /// Activates each instant independently with probability `p` —
    /// models a completely unknown remote rate.
    Random {
        /// Activation probability per instant.
        p: f64,
        /// RNG seed.
        seed: u64,
    },
}

impl ClockModel {
    /// A strict period starting at instant 0.
    pub fn periodic(period: u64) -> ClockModel {
        ClockModel::Periodic { period, phase: 0 }
    }

    /// The activation instants within `0..horizon`, strictly increasing.
    ///
    /// # Panics
    ///
    /// Panics on a zero period or an activation probability outside
    /// `[0, 1]`.
    pub fn activations(&self, horizon: u64) -> Vec<u64> {
        match self {
            ClockModel::Periodic { period, phase } => {
                assert!(*period > 0, "period must be positive");
                (0..horizon).filter(|t| t >= phase && (t - phase) % period == 0).collect()
            }
            ClockModel::Jittered { period, jitter, seed } => {
                assert!(*period > 0, "period must be positive");
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut out = Vec::new();
                let mut nominal = 0u64;
                let mut last: Option<u64> = None;
                while nominal < horizon {
                    let delayed = nominal + rng.gen_range(0..=*jitter);
                    // keep activations strictly increasing
                    let t = match last {
                        Some(prev) if delayed <= prev => prev + 1,
                        _ => delayed,
                    };
                    if t < horizon {
                        out.push(t);
                        last = Some(t);
                    }
                    nominal += period;
                }
                out
            }
            ClockModel::Random { p, seed } => {
                assert!((0.0..=1.0).contains(p), "probability must be in [0, 1]");
                let mut rng = StdRng::seed_from_u64(*seed);
                (0..horizon).filter(|_| rng.gen_bool(*p)).collect()
            }
        }
    }

    /// Long-run activations per instant (the rate used in rate-mismatch
    /// calculations).
    pub fn rate(&self) -> f64 {
        match self {
            ClockModel::Periodic { period, .. } | ClockModel::Jittered { period, .. } => {
                1.0 / *period as f64
            }
            ClockModel::Random { p, .. } => *p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_activations() {
        let c = ClockModel::Periodic { period: 3, phase: 1 };
        assert_eq!(c.activations(10), vec![1, 4, 7]);
        assert!((c.rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn periodic_shorthand_starts_at_zero() {
        assert_eq!(ClockModel::periodic(4).activations(9), vec![0, 4, 8]);
    }

    #[test]
    fn jittered_is_deterministic_and_increasing() {
        let c = ClockModel::Jittered { period: 5, jitter: 3, seed: 7 };
        let a = c.activations(50);
        let b = c.activations(50);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        // roughly one activation per period
        assert!((a.len() as i64 - 10).abs() <= 2, "got {} activations", a.len());
    }

    #[test]
    fn jitter_zero_equals_periodic() {
        let j = ClockModel::Jittered { period: 4, jitter: 0, seed: 1 };
        let p = ClockModel::periodic(4);
        assert_eq!(j.activations(20), p.activations(20));
    }

    #[test]
    fn random_respects_extremes() {
        let always = ClockModel::Random { p: 1.0, seed: 3 };
        assert_eq!(always.activations(5), vec![0, 1, 2, 3, 4]);
        let never = ClockModel::Random { p: 0.0, seed: 3 };
        assert!(never.activations(5).is_empty());
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = ClockModel::periodic(0).activations(5);
    }
}
