//! The federated GALS executor: one compiled federate per component.
//!
//! This is the deployment the paper's validation story is *for*. Each
//! component becomes a **federate** — an OS thread executing the
//! component's compiled reaction plan ([`Reactor`] auto-compiles to
//! bytecode and falls back to the interpreter, exactly as in the
//! single-threaded runtimes) — and the federates are coupled by nothing
//! but bounded FIFO channels whose capacity is a credit pool sized from
//! static analysis ([`FederatedOptions::from_report`] takes
//! `estimate_buffer_sizes` output; proven `StaticBounds` depths work the
//! same way). A producer out of credit blocks; a consumer in data-driven
//! mode blocks for input. A small RTI coordinates the rest: a start
//! barrier so no channel sees traffic before every federate is
//! elaborated, a shutdown flag that drains the federation when any
//! federate fails, streaming per-channel occupancy sampling, and a
//! join-everything teardown that provably leaks no thread.
//!
//! Flow equivalence (the paper's Theorems 1–2) is what makes the result
//! meaningful: for endochronous components behind single-producer/
//! single-consumer FIFOs, the per-signal flows observed here equal the
//! synchronous simulation's flows *regardless of the nondeterministic
//! thread interleaving* — the Kahn-network argument. The `FederatedFlow`
//! conformance oracle in `crates/gen` checks exactly that on thousands of
//! generated programs.
//!
//! Hot-path discipline (PR 1): federate loops run entirely on dense
//! [`SigId`]-indexed slots — input steps are precomputed `DenseEnv`s
//! loaded with one slice copy, flow recording appends into id-indexed
//! vectors, and name-keyed maps appear only in the final report. In soak
//! mode ([`FederatedOptions::soak`]) flow recording is off entirely and
//! the streaming counters are the only observation channel, so memory
//! stays flat over millions of instants.
//!
//! [`SigId`]: polysig_tagged::SigId

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use polysig_lang::{Program, Role};
use polysig_sim::{DenseEnv, Reactor, Scenario, SimError};
use polysig_tagged::{SigId, SigName, Value};

use crate::error::GalsError;
use crate::estimate::EstimationReport;
use crate::partition::channels_of_program;
use crate::runtime::channel::{
    fed_channel, ChannelCounters, ChannelMonitor, FedReceiver, FedSender, RecvOutcome, SendOutcome,
};
use crate::runtime::record::FlowRecorder;
use crate::runtime::rti::{FederateCtx, JoinStats, Rti};

/// Configuration of one federate.
#[derive(Debug, Clone)]
pub struct FederateSpec {
    /// The component's name in the program.
    pub name: String,
    /// Activation budget: at most this many reactions.
    pub activations: usize,
    /// Environment inputs per activation (indexed by activation number).
    pub environment: Scenario,
    /// Data-driven activation: instead of polling, each activation *blocks*
    /// until every live in-link delivers a value — one reaction per arriving
    /// input, and the federate retires early once every upstream producer is
    /// gone and drained. The natural mode for interior pipeline stages;
    /// meaningless (and ignored) for federates without in-links.
    pub data_driven: bool,
}

impl FederateSpec {
    /// A source-style federate: `activations` reactions driven by its own
    /// local clock, polling in-links without blocking.
    pub fn new(name: impl Into<String>, activations: usize) -> FederateSpec {
        FederateSpec {
            name: name.into(),
            activations,
            environment: Scenario::new(),
            data_driven: false,
        }
    }

    /// Adds environment inputs (one entry per activation).
    pub fn with_environment(mut self, environment: Scenario) -> FederateSpec {
        self.environment = environment;
        self
    }

    /// Switches to data-driven activation (see [`FederateSpec::data_driven`]).
    pub fn data_driven(mut self) -> FederateSpec {
        self.data_driven = true;
        self
    }
}

/// Where a channel's credit capacity came from — recorded per channel on
/// the run so a stall or watchdog report can say *whose* number was wrong
/// (the static analyzer's PA009 lint consumes the same distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CapacityProvenance {
    /// No entry for the channel: [`FederatedOptions::default_capacity`].
    Default,
    /// Hand-configured via [`FederatedOptions::with_capacity`].
    Explicit,
    /// Sized from a dynamic estimation report
    /// ([`FederatedOptions::from_report`]).
    Estimated,
    /// Sized from statically proven bounds
    /// ([`FederatedOptions::with_proven_capacities`], fed from
    /// `StaticBounds::minimal_safe_capacities`).
    Proven,
}

impl CapacityProvenance {
    /// The lowercase name used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            CapacityProvenance::Default => "default",
            CapacityProvenance::Explicit => "explicit",
            CapacityProvenance::Estimated => "estimated",
            CapacityProvenance::Proven => "proven",
        }
    }
}

/// Options of a federated run.
#[derive(Debug, Clone)]
pub struct FederatedOptions {
    /// Per-channel capacities (the credit pools). Channels not named here
    /// use [`FederatedOptions::default_capacity`].
    pub capacities: BTreeMap<SigName, usize>,
    /// Where the entries in [`FederatedOptions::capacities`] came from.
    pub capacity_provenance: CapacityProvenance,
    /// Capacity for channels without an explicit entry (min 1).
    pub default_capacity: usize,
    /// Record per-signal flows (off in soak mode: the streaming counters
    /// become the only observation, and memory stays flat).
    pub record_flows: bool,
    /// Poll slice for blocked sends/receives — how promptly a stalled
    /// federate notices the shutdown flag.
    pub stall_poll: Duration,
    /// When set, the RTI samples every channel's occupancy at this cadence
    /// while the federation runs.
    pub sample_every: Option<Duration>,
    /// When set, the RTI runs a stall watchdog at this cadence: if every
    /// live federate is blocked in a channel wait and no token moves across
    /// two consecutive windows, the federation is declared deadlocked — the
    /// watchdog raises the shutdown flag (every federate unwinds at its
    /// next poll slice) and the run's [`WatchdogReport`] names the stalled
    /// channels. Pick a cadence well above [`FederatedOptions::stall_poll`]
    /// (≥ 10×) so a federate retiring on a gone peer is never mistaken for
    /// a deadlock.
    pub watchdog: Option<Duration>,
}

impl Default for FederatedOptions {
    fn default() -> FederatedOptions {
        FederatedOptions {
            capacities: BTreeMap::new(),
            capacity_provenance: CapacityProvenance::Default,
            default_capacity: 1,
            record_flows: true,
            stall_poll: Duration::from_millis(1),
            sample_every: None,
            watchdog: None,
        }
    }
}

impl FederatedOptions {
    /// Capacities from a buffer-estimation report: each channel's credit
    /// pool is its estimated bound (floored at one credit).
    pub fn from_report(report: &EstimationReport) -> FederatedOptions {
        FederatedOptions {
            capacities: report
                .final_sizes
                .iter()
                .map(|(name, size)| (name.clone(), (*size).max(1)))
                .collect(),
            capacity_provenance: CapacityProvenance::Estimated,
            ..FederatedOptions::default()
        }
    }

    /// Sets one channel's capacity.
    pub fn with_capacity(mut self, signal: impl Into<SigName>, capacity: usize) -> Self {
        self.capacities.insert(signal.into(), capacity.max(1));
        self.capacity_provenance = CapacityProvenance::Explicit;
        self
    }

    /// Capacities from statically proven bounds — the shape
    /// `StaticBounds::minimal_safe_capacities` returns. Channels absent
    /// from the map fall back to [`FederatedOptions::default_capacity`].
    pub fn with_proven_capacities(mut self, capacities: BTreeMap<SigName, usize>) -> Self {
        self.capacities = capacities.into_iter().map(|(s, c)| (s, c.max(1))).collect();
        self.capacity_provenance = CapacityProvenance::Proven;
        self
    }

    /// Sets the capacity used by channels without an explicit entry.
    pub fn with_default_capacity(mut self, capacity: usize) -> Self {
        self.default_capacity = capacity.max(1);
        self
    }

    /// Soak mode: no flow recording (counters are the observation).
    pub fn soak(mut self) -> Self {
        self.record_flows = false;
        self
    }

    /// Enables occupancy sampling at the given cadence.
    pub fn with_sampling(mut self, every: Duration) -> Self {
        self.sample_every = Some(every);
        self
    }

    /// Enables the RTI stall watchdog at the given cadence (see
    /// [`FederatedOptions::watchdog`]).
    pub fn with_watchdog(mut self, every: Duration) -> Self {
        self.watchdog = Some(every);
        self
    }
}

/// Per-federate execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FederateStats {
    /// Reactions performed (≤ the activation budget; less when the federate
    /// retired early or was interrupted).
    pub reactions: usize,
    /// `true` when the federate ran its compiled [`ExecPlan`] rather than
    /// the interpreter.
    ///
    /// [`ExecPlan`]: polysig_sim::ExecPlan
    pub compiled: bool,
}

/// One streamed occupancy sample, taken while the federation was running.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OccupancySample {
    /// Time since the federation started.
    pub at: Duration,
    /// Queue occupancy per channel at that moment.
    pub occupancy: BTreeMap<SigName, u64>,
}

/// What the RTI stall watchdog observed (present iff
/// [`FederatedOptions::watchdog`] was set).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WatchdogReport {
    /// `true` iff the watchdog declared the federation deadlocked and
    /// raised the shutdown flag.
    pub fired: bool,
    /// When it fired, measured from the start barrier's release.
    pub at: Option<Duration>,
    /// The channels with a blocked endpoint at firing time — the wait-for
    /// cycle's edges, as observed live.
    pub stalled: Vec<SigName>,
}

/// Result of a federated run.
#[derive(Debug, Clone, Default)]
pub struct FederatedRun {
    /// `flows[component][signal]` = values in activation order (empty maps
    /// in soak mode).
    pub flows: BTreeMap<String, BTreeMap<SigName, Vec<Value>>>,
    /// Exact post-join counters per channel: pushes, pops, stall events,
    /// stalled wall-clock time, max occupancy.
    pub channels: BTreeMap<SigName, ChannelCounters>,
    /// The capacity each channel actually ran with, and where that number
    /// came from.
    pub capacities: BTreeMap<SigName, (usize, CapacityProvenance)>,
    /// Per-federate statistics.
    pub federates: BTreeMap<String, FederateStats>,
    /// Occupancy samples streamed during the run (empty unless
    /// [`FederatedOptions::sample_every`] was set).
    pub samples: Vec<OccupancySample>,
    /// The stall watchdog's observations (`None` when it was not enabled).
    pub watchdog: Option<WatchdogReport>,
    /// Thread teardown accounting (`spawned == joined` always holds).
    pub teardown: JoinStats,
    /// Wall-clock time from the start barrier's release to the last join.
    pub elapsed: Duration,
}

impl FederatedRun {
    /// The flow one federate observed/produced on one signal.
    pub fn flow(&self, component: &str, signal: &SigName) -> Vec<Value> {
        self.flows.get(component).and_then(|m| m.get(signal)).cloned().unwrap_or_default()
    }

    /// Total reactions across all federates.
    pub fn total_reactions(&self) -> usize {
        self.federates.values().map(|s| s.reactions).sum()
    }

    /// Total values pushed across all channels.
    pub fn total_events(&self) -> u64 {
        self.channels.values().map(|c| c.pushes).sum()
    }

    /// `true` iff the stall watchdog declared the federation deadlocked.
    pub fn deadlocked(&self) -> bool {
        self.watchdog.as_ref().is_some_and(|w| w.fired)
    }
}

/// What one federate thread reports back.
type FederateReport = (FederateStats, BTreeMap<SigName, Vec<Value>>);

/// One federate, fully elaborated on the caller's thread (so every static
/// error surfaces before anything is spawned).
struct PreparedFederate {
    name: String,
    activations: usize,
    data_driven: bool,
    reactor: Reactor,
    env_steps: Vec<DenseEnv>,
    out_links: Vec<(SigId, FedSender)>,
    in_links: Vec<(SigId, FedReceiver)>,
}

/// Runs the program's components as federates on OS threads, coupled only
/// by bounded credit channels, under RTI coordination.
///
/// Every component of the program that appears in `federates` is run;
/// channels whose producer or consumer is not among the federates simply
/// never carry traffic (their endpoints are dropped before the start
/// barrier, which downstream data-driven federates observe as a retired
/// producer).
///
/// # Errors
///
/// Static errors (unknown component, multi-consumer signal, an environment
/// naming a signal the component does not intern) surface before any
/// thread is spawned. A reaction error inside a federate raises the
/// shutdown flag — draining the rest of the federation — and is returned
/// after every thread is joined.
pub fn run_federated(
    program: &Program,
    federates: Vec<FederateSpec>,
    options: &FederatedOptions,
) -> Result<FederatedRun, GalsError> {
    let chans = channels_of_program(program)?;

    // channel endpoints + coordinator-side monitors
    let mut senders: BTreeMap<SigName, FedSender> = BTreeMap::new();
    let mut receivers: BTreeMap<SigName, FedReceiver> = BTreeMap::new();
    let mut monitors: Vec<(SigName, ChannelMonitor)> = Vec::with_capacity(chans.len());
    let mut capacities: BTreeMap<SigName, (usize, CapacityProvenance)> = BTreeMap::new();
    for c in &chans {
        let (capacity, provenance) = match options.capacities.get(&c.signal) {
            Some(&cap) => (cap.max(1), options.capacity_provenance),
            None => (options.default_capacity.max(1), CapacityProvenance::Default),
        };
        capacities.insert(c.signal.clone(), (capacity, provenance));
        let (tx, rx) = fed_channel(capacity);
        monitors.push((c.signal.clone(), tx.monitor()));
        senders.insert(c.signal.clone(), tx);
        receivers.insert(c.signal.clone(), rx);
    }

    // elaborate every federate before spawning anything
    let mut prepared: Vec<PreparedFederate> = Vec::with_capacity(federates.len());
    for spec in federates {
        let comp = program
            .component(&spec.name)
            .ok_or_else(|| GalsError::UnknownSignal { signal: SigName::from(spec.name.as_str()) })?
            .clone();
        let reactor = Reactor::for_component(&comp)?;
        let out_links: Vec<(SigId, FedSender)> = comp
            .signals_with_role(Role::Output)
            .filter_map(|d| {
                let tx = senders.remove(&d.name)?;
                let id = reactor.sig_id(&d.name).expect("declared signal is interned");
                Some((id, tx))
            })
            .collect();
        let in_links: Vec<(SigId, FedReceiver)> = comp
            .signals_with_role(Role::Input)
            .filter_map(|d| {
                let rx = receivers.remove(&d.name)?;
                let id = reactor.sig_id(&d.name).expect("declared signal is interned");
                Some((id, rx))
            })
            .collect();
        let n_sigs = reactor.signal_count();
        let mut env_steps: Vec<DenseEnv> = Vec::with_capacity(spec.environment.len());
        for inputs in spec.environment.iter() {
            let mut env = DenseEnv::new(n_sigs);
            for (name, value) in inputs {
                let Some(id) = reactor.sig_id(name) else {
                    return Err(SimError::NotAnInput { name: name.clone() }.into());
                };
                env.set(id, *value);
            }
            env_steps.push(env);
        }
        prepared.push(PreparedFederate {
            name: spec.name,
            activations: spec.activations,
            data_driven: spec.data_driven,
            reactor,
            env_steps,
            out_links,
            in_links,
        });
    }
    // endpoints of channels no federate serves retire here, before the
    // start barrier: their peers observe a gone endpoint, never a hang
    drop(senders);
    drop(receivers);

    let record_flows = options.record_flows;
    let poll = options.stall_poll;
    let mut rti: Rti<Result<FederateReport, GalsError>> = Rti::new(prepared.len());
    let started = Instant::now();
    for fed in prepared {
        let name = fed.name.clone();
        rti.spawn(name, move |ctx| run_federate(fed, ctx, record_flows, poll));
    }

    // stream occupancy samples while the federation runs, and (when the
    // watchdog is armed) check for a federation-wide permanent stall
    let mut samples = Vec::new();
    let mut watchdog = options.watchdog.map(|_| WatchdogReport::default());
    match options.watchdog {
        None => rti.wait_sampling(options.sample_every, || {
            samples.push(OccupancySample {
                at: started.elapsed(),
                occupancy: monitors.iter().map(|(n, m)| (n.clone(), m.occupancy())).collect(),
            });
        }),
        Some(check_every) => {
            let cadence = options.sample_every.map_or(check_every, |s| s.min(check_every));
            let report = watchdog.as_mut().expect("armed above");
            let mut next_sample = options.sample_every;
            let mut next_check = check_every;
            let mut last_traffic: Option<u64> = None;
            let mut stuck_streak = 0u32;
            rti.wait_sampling(Some(cadence), || {
                let now = started.elapsed();
                if let Some(due) = next_sample {
                    if now >= due {
                        next_sample = Some(due + options.sample_every.expect("set with due"));
                        samples.push(OccupancySample {
                            at: now,
                            occupancy: monitors
                                .iter()
                                .map(|(n, m)| (n.clone(), m.occupancy()))
                                .collect(),
                        });
                    }
                }
                if now < next_check || report.fired {
                    return;
                }
                next_check = now + check_every;
                // a deadlock reads as: every live federate blocked inside a
                // channel wait AND zero tokens moved since the last check —
                // sustained over two consecutive windows, so a federate
                // momentarily between a gone peer and its wakeup (a window
                // of one stall_poll slice) can never trip it
                let live = rti.live_count();
                let waiting: usize = monitors.iter().map(|(_, m)| m.waiting_ends()).sum();
                let traffic: u64 = monitors.iter().map(|(_, m)| m.traffic()).sum();
                let stuck = live > 0 && waiting >= live && last_traffic == Some(traffic);
                last_traffic = Some(traffic);
                stuck_streak = if stuck { stuck_streak + 1 } else { 0 };
                if stuck_streak >= 2 {
                    report.fired = true;
                    report.at = Some(now);
                    report.stalled = monitors
                        .iter()
                        .filter(|(_, m)| m.waiting_ends() > 0)
                        .map(|(n, _)| n.clone())
                        .collect();
                    rti.request_shutdown();
                }
            });
        }
    }

    let (results, teardown) = rti.join_all();
    let elapsed = started.elapsed();
    let mut run = FederatedRun {
        samples,
        capacities,
        watchdog,
        teardown,
        elapsed,
        ..FederatedRun::default()
    };
    for (name, m) in monitors {
        run.channels.insert(name, m.snapshot());
    }
    for (name, result) in results {
        let (stats, flows) = result?;
        run.federates.insert(name.clone(), stats);
        run.flows.insert(name, flows);
    }
    Ok(run)
}

/// The body of one federate thread: the dense activation loop.
fn run_federate(
    fed: PreparedFederate,
    ctx: FederateCtx,
    record_flows: bool,
    poll: Duration,
) -> Result<FederateReport, GalsError> {
    let PreparedFederate { mut reactor, env_steps, out_links, in_links, .. } = fed;
    let n_sigs = reactor.signal_count();
    let data_driven = fed.data_driven && !in_links.is_empty();
    let mut recorder = record_flows.then(|| FlowRecorder::new(reactor.signal_names().to_vec()));
    let mut in_gone = vec![false; in_links.len()];
    let mut out_gone = vec![false; out_links.len()];
    let mut in_buf = DenseEnv::new(n_sigs);
    let mut stats = FederateStats { reactions: 0, compiled: reactor.is_compiled() };

    ctx.start();
    let result = (|| -> Result<(), GalsError> {
        'activations: for k in 0..fed.activations {
            if ctx.shutdown_requested() {
                break;
            }
            // load this activation's environment step with one slice copy
            match env_steps.get(k) {
                Some(step) => in_buf.assign_from(step),
                None => in_buf.reset(n_sigs),
            }
            if data_driven {
                // block per live in-link: one reaction per arriving input
                let mut any_value = false;
                for (i, (id, rx)) in in_links.iter().enumerate() {
                    if in_gone[i] {
                        continue;
                    }
                    match rx.recv(poll, ctx.shutdown_flag()) {
                        RecvOutcome::Value(v) => {
                            in_buf.set(*id, v);
                            any_value = true;
                        }
                        RecvOutcome::ProducerGone => in_gone[i] = true,
                        RecvOutcome::Interrupted => break 'activations,
                    }
                }
                if !any_value {
                    // every upstream is retired and drained: nothing more
                    // will ever arrive, so the budget's remainder is moot
                    break;
                }
                if ctx.shutdown_requested() {
                    // teardown raced our blocking receives: a peer's dropped
                    // endpoint can surface as ProducerGone after the shutdown
                    // flag is up, and reacting to that partial delivery would
                    // report a spurious clock mismatch
                    break;
                }
            } else {
                for (id, rx) in &in_links {
                    if let Some(v) = rx.try_recv() {
                        in_buf.set(*id, v);
                    }
                }
            }
            let present = reactor.react_dense(&in_buf)?;
            stats.reactions += 1;
            if let Some(rec) = recorder.as_mut() {
                rec.record(present);
            }
            for (i, (id, tx)) in out_links.iter().enumerate() {
                if out_gone[i] {
                    continue;
                }
                let Some(value) = present.get(*id) else { continue };
                match tx.send(value, poll, ctx.shutdown_flag()) {
                    SendOutcome::Sent => {}
                    SendOutcome::ConsumerGone => out_gone[i] = true,
                    SendOutcome::Interrupted => break 'activations,
                }
            }
        }
        Ok(())
    })();
    if let Err(e) = result {
        // drain the federation: peers unblock at their next poll slice
        ctx.request_shutdown();
        return Err(e);
    }
    Ok((stats, recorder.map(FlowRecorder::into_named).unwrap_or_default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_lang::parse_program;
    use polysig_sim::{PeriodicInputs, ScenarioGenerator};
    use polysig_tagged::ValueType;

    fn pipe() -> Program {
        parse_program(
            "process P { input a: int; output x: int; x := a; } \
             process Q { input x: int; output y: int; y := x + 100; }",
        )
        .unwrap()
    }

    fn env(n: usize) -> Scenario {
        PeriodicInputs::new("a", ValueType::Int, 1, 0).generate(n)
    }

    #[test]
    fn data_driven_chain_delivers_every_value_in_order() {
        let n = 200;
        let run = run_federated(
            &pipe(),
            vec![
                FederateSpec::new("P", n).with_environment(env(n)),
                // generous budget; data-driven retires when P is done
                FederateSpec::new("Q", 10 * n).data_driven(),
            ],
            &FederatedOptions::default().with_capacity("x", 4),
        )
        .unwrap();
        let sent = run.flow("P", &"x".into());
        let received = run.flow("Q", &"x".into());
        assert_eq!(sent.len(), n);
        // data-driven + credit backpressure: *exact* delivery, not a prefix
        assert_eq!(sent, received);
        let y = run.flow("Q", &"y".into());
        assert_eq!(y.len(), n);
        assert!(y.iter().zip(&sent).all(|(y, x)| y.as_int() == x.as_int().map(|v| v + 100)));
        // channel accounting agrees
        let x = &run.channels[&SigName::from("x")];
        assert_eq!((x.pushes, x.pops), (n as u64, n as u64));
        assert!(x.drained());
        assert!(x.max_occupancy <= 4, "capacity respected, got {}", x.max_occupancy);
        assert_eq!(run.teardown.spawned, 2);
        assert_eq!(run.teardown.joined, 2);
        // both federates compiled their plans (simple arithmetic cones) —
        // unless the POLYSIG_COMPILE override forces interpretation, in
        // which case both must report the interpreter
        let compile_on = !matches!(
            std::env::var("POLYSIG_COMPILE").ok().as_deref(),
            Some("off" | "0" | "false")
        );
        assert!(run.federates.values().all(|s| s.compiled == compile_on));
    }

    #[test]
    fn capacity_one_is_fully_serialized_yet_lossless() {
        let n = 64;
        let run = run_federated(
            &pipe(),
            vec![
                FederateSpec::new("P", n).with_environment(env(n)),
                FederateSpec::new("Q", 10 * n).data_driven(),
            ],
            &FederatedOptions::default(), // default_capacity = 1
        )
        .unwrap();
        assert_eq!(run.flow("P", &"x".into()), run.flow("Q", &"x".into()));
        assert_eq!(run.channels[&SigName::from("x")].max_occupancy, 1);
    }

    #[test]
    fn soak_mode_streams_counters_without_recording() {
        let n = 500;
        let run = run_federated(
            &pipe(),
            vec![
                FederateSpec::new("P", n).with_environment(env(n)),
                FederateSpec::new("Q", 10 * n).data_driven(),
            ],
            &FederatedOptions::default().with_capacity("x", 8).soak(),
        )
        .unwrap();
        // no flows recorded...
        assert!(run.flows.values().all(BTreeMap::is_empty));
        // ...but the counters carry the whole story
        let x = &run.channels[&SigName::from("x")];
        assert_eq!((x.pushes, x.pops), (n as u64, n as u64));
        assert_eq!(run.federates["P"].reactions, n);
        assert_eq!(run.total_events(), n as u64);
    }

    #[test]
    fn zero_activation_consumer_retires_the_producer_without_deadlock() {
        let n = 50;
        let run = run_federated(
            &pipe(),
            vec![FederateSpec::new("P", n).with_environment(env(n)), FederateSpec::new("Q", 0)],
            &FederatedOptions::default().with_capacity("x", 2),
        )
        .unwrap();
        // P keeps reacting; its sends hit ConsumerGone and are discarded
        assert_eq!(run.federates["P"].reactions, n);
        assert_eq!(run.federates["Q"].reactions, 0);
        assert_eq!(run.teardown.joined, 2);
    }

    #[test]
    fn missing_consumer_federate_is_a_retired_endpoint_not_a_hang() {
        let n = 30;
        // Q is not federated at all: x's receiver drops before the barrier
        let run = run_federated(
            &pipe(),
            vec![FederateSpec::new("P", n).with_environment(env(n))],
            &FederatedOptions::default(),
        )
        .unwrap();
        assert_eq!(run.federates["P"].reactions, n);
    }

    #[test]
    fn reaction_error_drains_the_federation_and_surfaces() {
        // feed a bool into an int expression: the reaction errors mid-run
        let bad = Scenario::new()
            .on("a", Value::Int(1))
            .tick()
            .on("a", Value::Int(2))
            .tick()
            .on("a", Value::TRUE)
            .tick();
        let err = run_federated(
            &pipe(),
            vec![
                FederateSpec::new("P", 10).with_environment(bad),
                FederateSpec::new("Q", 1000).data_driven(),
            ],
            &FederatedOptions::default(),
        );
        assert!(err.is_err(), "the type error must surface");
    }

    #[test]
    fn sampling_streams_occupancy_during_the_run() {
        let n = 400;
        let run = run_federated(
            &pipe(),
            vec![
                FederateSpec::new("P", n).with_environment(env(n)),
                FederateSpec::new("Q", 10 * n).data_driven(),
            ],
            &FederatedOptions::default()
                .with_capacity("x", 4)
                .with_sampling(Duration::from_micros(200)),
        )
        .unwrap();
        assert!(!run.samples.is_empty(), "at least one sample lands");
        for s in &run.samples {
            assert!(s.occupancy.contains_key(&SigName::from("x")));
        }
    }

    #[test]
    fn watchdog_fires_on_an_all_data_driven_cycle() {
        // A and B both block receiving their cycle input before their first
        // reaction: no token ever enters the cycle, at any capacity
        let p = parse_program(
            "process A { input f: int; output x: int; x := f + 1; } \
             process B { input x: int; output f: int; f := pre 0 x; }",
        )
        .unwrap();
        let run = run_federated(
            &p,
            vec![
                FederateSpec::new("A", 100).data_driven(),
                FederateSpec::new("B", 100).data_driven(),
            ],
            &FederatedOptions::default()
                .with_capacity("x", 4)
                .with_capacity("f", 4)
                .with_watchdog(Duration::from_millis(20)),
        )
        .unwrap();
        assert!(run.deadlocked(), "the watchdog must declare the cycle dead");
        let report = run.watchdog.as_ref().unwrap();
        assert!(report.fired && report.at.is_some());
        // both cycle edges had a blocked endpoint at firing time
        assert!(report.stalled.contains(&SigName::from("f")), "{:?}", report.stalled);
        // the shutdown drained the federation: every thread joined, no
        // reaction ever fired
        assert_eq!(run.teardown.joined, 2);
        assert_eq!(run.total_reactions(), 0);
    }

    #[test]
    fn watchdog_stays_quiet_on_a_completing_run() {
        let n = 300;
        let run = run_federated(
            &pipe(),
            vec![
                FederateSpec::new("P", n).with_environment(env(n)),
                FederateSpec::new("Q", 10 * n).data_driven(),
            ],
            &FederatedOptions::default()
                .with_capacity("x", 2)
                .with_watchdog(Duration::from_millis(20)),
        )
        .unwrap();
        assert!(!run.deadlocked());
        let report = run.watchdog.as_ref().unwrap();
        assert!(!report.fired && report.at.is_none() && report.stalled.is_empty());
        // the run still delivered everything
        assert_eq!(run.flow("P", &"x".into()), run.flow("Q", &"x".into()));
    }

    #[test]
    fn unknown_component_fails_before_spawning() {
        let err = run_federated(
            &pipe(),
            vec![FederateSpec::new("Nope", 1)],
            &FederatedOptions::default(),
        );
        assert!(err.is_err());
    }
}
