//! Per-request resource budgets for the serving layer.
//!
//! A [`Budget`] caps what one analysis request may consume — explored
//! states, scenario instants, estimation growth, wall-clock time — so a
//! single adversarial program degrades to a structured "budget exceeded"
//! answer instead of starving every other request in the pool. The caps
//! are enforced in two complementary ways:
//!
//! * **a priori** — scenario length and estimation growth are clamped
//!   before any work starts ([`Budget::admit_instants`], and the serving
//!   engine clamps `EstimationOptions::{max_iterations, max_size}` /
//!   `CheckOptions::max_states` from the budget), so the deterministic
//!   caps trip deterministically;
//! * **cooperatively** — a [`Stopwatch`] started per request is polled
//!   between pipeline stages; wall-clock overrun is inherently racy, so
//!   it is a backstop, not the primary cap.

use std::fmt;
use std::time::{Duration, Instant};

/// Resource caps applied to one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Cap on distinct states the reachability checker may explore
    /// (plumbs into `CheckOptions::max_states`).
    pub max_states: usize,
    /// Cap on scenario instants a request may submit or replay.
    pub max_instants: usize,
    /// Cap on the estimation loop's per-channel depth
    /// (`EstimationOptions::max_size`).
    pub max_fifo_depth: usize,
    /// Cap on estimation rounds (`EstimationOptions::max_iterations`).
    pub max_rounds: usize,
    /// Wall-clock allowance; `None` = untimed.
    pub timeout: Option<Duration>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_states: 250_000,
            max_instants: 4_096,
            max_fifo_depth: 4_096,
            max_rounds: 32,
            timeout: Some(Duration::from_secs(10)),
        }
    }
}

impl Budget {
    /// Admits a scenario of `instants` steps, or reports the breach.
    pub fn admit_instants(&self, instants: usize) -> Result<(), Breach> {
        if instants > self.max_instants {
            Err(Breach::Instants { got: instants, cap: self.max_instants })
        } else {
            Ok(())
        }
    }
}

/// Which cap a request ran into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Breach {
    /// The scenario is longer than the instant cap.
    Instants {
        /// Instants submitted.
        got: usize,
        /// The cap.
        cap: usize,
    },
    /// The reachability checker hit the state cap.
    States {
        /// The cap.
        cap: usize,
    },
    /// The wall-clock allowance ran out.
    Timeout {
        /// The pipeline stage that observed the overrun.
        stage: &'static str,
        /// The allowance.
        allowed: Duration,
    },
}

impl fmt::Display for Breach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Breach::Instants { got, cap } => {
                write!(f, "scenario has {got} instants, budget allows {cap}")
            }
            Breach::States { cap } => {
                write!(f, "state space exceeds the {cap}-state budget")
            }
            Breach::Timeout { stage, allowed } => {
                write!(f, "wall-clock budget of {allowed:?} exhausted at stage `{stage}`")
            }
        }
    }
}

/// Cooperative wall-clock enforcement: started when the request is picked
/// up, polled between stages.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
    allowed: Option<Duration>,
}

impl Stopwatch {
    /// Starts timing against `budget.timeout`.
    pub fn start(budget: &Budget) -> Stopwatch {
        Stopwatch { started: Instant::now(), allowed: budget.timeout }
    }

    /// Errors iff the allowance is exhausted; `stage` names the caller
    /// for the diagnostic.
    pub fn check(&self, stage: &'static str) -> Result<(), Breach> {
        match self.allowed {
            Some(allowed) if self.started.elapsed() > allowed => {
                Err(Breach::Timeout { stage, allowed })
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_cap_trips_deterministically() {
        let b = Budget { max_instants: 8, ..Budget::default() };
        assert!(b.admit_instants(8).is_ok());
        let err = b.admit_instants(9).unwrap_err();
        assert_eq!(err, Breach::Instants { got: 9, cap: 8 });
        assert!(err.to_string().contains("9 instants"));
    }

    #[test]
    fn stopwatch_trips_after_the_allowance() {
        let b = Budget { timeout: Some(Duration::from_nanos(1)), ..Budget::default() };
        let sw = Stopwatch::start(&b);
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(sw.check("lint"), Err(Breach::Timeout { stage: "lint", .. })));
        let untimed = Budget { timeout: None, ..Budget::default() };
        assert!(Stopwatch::start(&untimed).check("lint").is_ok());
    }
}
