//! Fork and merge components.
//!
//! The paper's single-producer/single-consumer restriction (below Theorem 2)
//! is discharged by "standard copy (fork) and merge (join) components to
//! copy the shared channel for several components and join several write
//! attempts of different components into one channel". This module builds
//! them as ordinary Signal components, and [`fork_shared_signals`] rewrites
//! a multi-consumer program into single-consumer form so the
//! desynchronization transformation applies.

use polysig_lang::{Component, ComponentBuilder, Expr, Program, Role};
use polysig_tagged::{SigName, ValueType};

use crate::error::GalsError;

/// Builds a fork: input `x`, outputs `x__1 … x__n`, each an identical copy
/// (same clock, same values).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn fork_component(signal: &SigName, ty: ValueType, n: usize) -> Component {
    assert!(n > 0, "a fork needs at least one output");
    let mut b = ComponentBuilder::new(format!("Fork_{signal}")).input(signal.clone(), ty);
    for i in 1..=n {
        let out = fork_branch(signal, i);
        b = b.output(out.clone(), ty).equation(out, Expr::Var(signal.clone()));
    }
    b.build()
}

/// The name of the `i`-th (1-based) branch of a forked signal.
pub fn fork_branch(signal: &SigName, i: usize) -> SigName {
    SigName::from(format!("{signal}__{i}"))
}

/// Builds a merge (join): inputs `x__1 … x__n`, output `x` preferring lower
/// branch indices when several write in the same instant (the deterministic
/// `default` cascade — Signal's standard join).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn merge_component(signal: &SigName, ty: ValueType, n: usize) -> Component {
    assert!(n > 0, "a merge needs at least one input");
    let mut b = ComponentBuilder::new(format!("Merge_{signal}"));
    for i in 1..=n {
        b = b.input(fork_branch(signal, i), ty);
    }
    let mut expr = Expr::Var(fork_branch(signal, 1));
    for i in 2..=n {
        expr = expr.default(Expr::Var(fork_branch(signal, i)));
    }
    b.output(signal.clone(), ty).equation(signal.clone(), expr).build()
}

/// Rewrites every multi-consumer shared signal of `program` through an
/// explicit fork: the producer keeps writing `x`, a `Fork_x` component
/// copies it, and the `k`-th consumer reads its private branch `x__k`.
///
/// The result satisfies the single-consumer restriction, so
/// [`crate::desynchronize`] can cut each branch independently.
///
/// # Errors
///
/// Surfaces resolution errors of the input program.
pub fn fork_shared_signals(program: &Program) -> Result<Program, GalsError> {
    polysig_lang::resolve::resolve_program(program)?;
    let mut out = Program::new(program.name.clone());
    let mut forks: Vec<Component> = Vec::new();
    let mut components = program.components.clone();

    // collect (signal, ty, consumers) for signals with >= 2 consumers
    let producers: Vec<(SigName, ValueType)> = program
        .components
        .iter()
        .flat_map(|c| c.signals_with_role(Role::Output).map(|d| (d.name.clone(), d.ty)))
        .collect();
    for (signal, ty) in producers {
        let consumers: Vec<usize> = components
            .iter()
            .enumerate()
            .filter(|(_, c)| c.decl(&signal).is_some_and(|d| d.role == Role::Input))
            .map(|(i, _)| i)
            .collect();
        if consumers.len() < 2 {
            continue;
        }
        forks.push(fork_component(&signal, ty, consumers.len()));
        for (k, &ci) in consumers.iter().enumerate() {
            components[ci] = components[ci].rename_signal(&signal, &fork_branch(&signal, k + 1));
        }
    }

    out.components = components;
    out.components.extend(forks);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::channels_of_program;
    use polysig_lang::parse_program;
    use polysig_sim::{Scenario, Simulator};
    use polysig_tagged::Value;

    #[test]
    fn fork_copies_values_and_clock() {
        let f = fork_component(&"x".into(), ValueType::Int, 3);
        let mut sim = Simulator::for_component(&f).unwrap();
        let run = sim.run(&Scenario::new().on("x", Value::Int(7)).tick().tick()).unwrap();
        for i in 1..=3 {
            assert_eq!(run.flow(&fork_branch(&"x".into(), i)), vec![Value::Int(7)]);
            assert_eq!(run.presence(&fork_branch(&"x".into(), i)), vec![0]);
        }
    }

    #[test]
    fn merge_prefers_lower_branches() {
        let m = merge_component(&"x".into(), ValueType::Int, 2);
        let mut sim = Simulator::for_component(&m).unwrap();
        let run = sim
            .run(
                &Scenario::new()
                    .on("x__1", Value::Int(1))
                    .on("x__2", Value::Int(2))
                    .tick()
                    .on("x__2", Value::Int(9))
                    .tick(),
            )
            .unwrap();
        assert_eq!(run.flow(&"x".into()), vec![Value::Int(1), Value::Int(9)]);
    }

    #[test]
    fn fork_then_merge_is_identity_on_single_branch() {
        let mut p = Program::new("loopback");
        p.components.push(fork_component(&"x".into(), ValueType::Int, 1));
        p.components.push(merge_component(&"y".into(), ValueType::Int, 1));
        // wire: fork's x__1 is not merge's y__1 — just check both elaborate
        assert!(Simulator::for_program(&p).is_ok());
    }

    #[test]
    fn fork_shared_signals_fixes_multi_consumer_programs() {
        let p = parse_program(
            "process A { input a: int; output x: int; x := a; } \
             process B { input x: int; output y: int; y := x + 1; } \
             process C { input x: int; output z: int; z := x * 2; }",
        )
        .unwrap();
        // before: rejected
        assert!(channels_of_program(&p).is_err());
        // after: fork inserted, three single-consumer channels
        let forked = fork_shared_signals(&p).unwrap();
        assert!(forked.component("Fork_x").is_some());
        let channels = channels_of_program(&forked).unwrap();
        assert_eq!(channels.len(), 3); // A→Fork, Fork→B, Fork→C
                                       // behavior: both consumers see the producer's values
        let mut sim = Simulator::for_program(&forked).unwrap();
        let run = sim.run(&Scenario::new().on("a", Value::Int(5)).tick()).unwrap();
        assert_eq!(run.flow(&"y".into()), vec![Value::Int(6)]);
        assert_eq!(run.flow(&"z".into()), vec![Value::Int(10)]);
    }

    #[test]
    fn forked_program_desynchronizes() {
        let p = parse_program(
            "process A { input a: int; output x: int; x := a; } \
             process B { input x: int; output y: int; y := x + 1; } \
             process C { input x: int; output z: int; z := x * 2; }",
        )
        .unwrap();
        let forked = fork_shared_signals(&p).unwrap();
        let d = crate::desync::desynchronize(&forked, &crate::desync::DesyncOptions::with_size(2))
            .unwrap();
        assert_eq!(d.channels.len(), 3);
        assert!(polysig_lang::resolve::resolve_program(&d.program).is_ok());
    }

    #[test]
    fn single_consumer_programs_unchanged() {
        let p = parse_program(
            "process A { input a: int; output x: int; x := a; } \
             process B { input x: int; output y: int; y := x; }",
        )
        .unwrap();
        let forked = fork_shared_signals(&p).unwrap();
        assert_eq!(forked.components.len(), 2);
        assert!(forked.component("Fork_x").is_none());
    }
}
