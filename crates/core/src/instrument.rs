//! Figure 4: the instrumentation circuitry around a FIFO channel.
//!
//! Every unsuccessful write (`alarm` true) increments a counter; every
//! successful write (`ok` true) resets it; a register keeps the maximum the
//! counter ever reached — "the number of times we consecutively missed a
//! write to the buffer". The estimation loop of Section 5.2 reads this
//! register after a simulation run and grows the buffer by that amount.

use polysig_lang::{Binop, Component, ComponentBuilder, Expr};
use polysig_tagged::{SigName, Value, ValueType};

/// The component name [`monitor_component`] generates for channel `name`.
pub fn monitor_component_name(name: &str) -> String {
    format!("Monitor_{name}")
}

/// Builds the monitor component for channel `name`.
///
/// Interface:
///
/// * inputs — `<name>_alarm: bool`, `<name>_ok: bool` (from
///   [`crate::nfifo::nfifo_component`]), `tick: bool`;
/// * outputs — `<name>_misses: int` (current consecutive-miss counter,
///   present at every tick) and `<name>_maxmiss: int` (the max register,
///   present at every tick).
pub fn monitor_component(name: &str) -> Component {
    let alarm = format!("{name}_alarm");
    let ok = format!("{name}_ok");
    let misses = format!("{name}_misses");
    let maxmiss = format!("{name}_maxmiss");
    let mprev = format!("{name}_mprev");
    let xprev = format!("{name}_xprev");

    ComponentBuilder::new(monitor_component_name(name))
        .input(alarm.as_str(), ValueType::Bool)
        .input(ok.as_str(), ValueType::Bool)
        .input("tick", ValueType::Bool)
        .output(misses.as_str(), ValueType::Int)
        .output(maxmiss.as_str(), ValueType::Int)
        .local(mprev.as_str(), ValueType::Int)
        .local(xprev.as_str(), ValueType::Int)
        .sync(["tick", misses.as_str(), maxmiss.as_str()])
        .equation(
            mprev.as_str(),
            Expr::var(misses.as_str()).pre(Value::Int(0)).when(Expr::var("tick")),
        )
        .equation(
            xprev.as_str(),
            Expr::var(maxmiss.as_str()).pre(Value::Int(0)).when(Expr::var("tick")),
        )
        // counter: +1 on a missed write, reset on a successful write,
        // otherwise hold
        .equation(
            misses.as_str(),
            Expr::var(mprev.as_str())
                .binop(Binop::Add, Expr::int(1))
                .when(Expr::var(alarm.as_str()))
                .default(
                    Expr::int(0).when(Expr::var(ok.as_str())).default(Expr::var(mprev.as_str())),
                ),
        )
        // register: maximum the counter ever reached
        .equation(
            maxmiss.as_str(),
            Expr::var(misses.as_str())
                .when(Expr::var(misses.as_str()).binop(Binop::Gt, Expr::var(xprev.as_str())))
                .default(Expr::var(xprev.as_str())),
        )
        .build()
}

/// The name of the max-miss register output for channel `name` (what the
/// estimation loop reads).
pub fn maxmiss_signal(name: &str) -> SigName {
    SigName::from(format!("{name}_maxmiss"))
}

/// The name of the alarm output for channel `name`.
pub fn alarm_signal(name: &str) -> SigName {
    SigName::from(format!("{name}_alarm"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfifo::nfifo_component;
    use polysig_lang::Program;
    use polysig_sim::{Scenario, Simulator};
    use polysig_tagged::Value;

    /// FIFO + monitor wired through the shared alarm/ok signals.
    fn monitored_fifo(n: usize) -> Program {
        let mut p = Program::new("monitored");
        p.components.push(nfifo_component("ch", n));
        p.components.push(monitor_component("ch"));
        p
    }

    fn step(s: Scenario, write: Option<i64>, read: bool) -> Scenario {
        let mut s = s.on("tick", Value::TRUE);
        if let Some(v) = write {
            s = s.on("ch_in", Value::Int(v));
        }
        if read {
            s = s.on("ch_rd", Value::TRUE);
        }
        s.tick()
    }

    #[test]
    fn counter_counts_consecutive_misses() {
        let mut sim = Simulator::for_program(&monitored_fifo(1)).unwrap();
        let mut s = Scenario::new();
        // fill, then three rejected writes, then drain and a good write
        s = step(s, Some(1), false);
        s = step(s, Some(2), false);
        s = step(s, Some(3), false);
        s = step(s, Some(4), false);
        s = step(s, None, true);
        s = step(s, Some(5), false);
        let run = sim.run(&s).unwrap();
        assert_eq!(
            run.flow(&"ch_misses".into()),
            vec![
                Value::Int(0),
                Value::Int(1),
                Value::Int(2),
                Value::Int(3),
                Value::Int(3), // held during the read-only tick
                Value::Int(0), // reset by the successful write
            ]
        );
        assert_eq!(run.flow(&"ch_maxmiss".into()).last(), Some(&Value::Int(3)));
    }

    #[test]
    fn register_keeps_maximum_across_episodes() {
        let mut sim = Simulator::for_program(&monitored_fifo(1)).unwrap();
        let mut s = Scenario::new();
        // episode 1: two misses; drain; episode 2: one miss
        s = step(s, Some(1), false);
        s = step(s, Some(2), false);
        s = step(s, Some(3), false);
        s = step(s, None, true);
        s = step(s, Some(4), false);
        s = step(s, Some(5), false);
        let run = sim.run(&s).unwrap();
        assert_eq!(run.flow(&"ch_maxmiss".into()).last(), Some(&Value::Int(2)));
    }

    #[test]
    fn no_misses_keeps_register_zero() {
        let mut sim = Simulator::for_program(&monitored_fifo(2)).unwrap();
        let mut s = Scenario::new();
        s = step(s, Some(1), false);
        s = step(s, None, false);
        s = step(s, None, true);
        s = step(s, Some(2), true);
        let run = sim.run(&s).unwrap();
        assert!(run.flow(&"ch_maxmiss".into()).iter().all(|v| *v == Value::Int(0)));
    }

    #[test]
    fn helper_names() {
        assert_eq!(maxmiss_signal("ch").as_str(), "ch_maxmiss");
        assert_eq!(alarm_signal("ch").as_str(), "ch_alarm");
    }
}
