//! Rendering behaviors as the paper renders them.
//!
//! Figure 2 of the paper shows a behavior as a table: one row per signal,
//! one column per instant, blank cells for absence. [`trace_table`]
//! regenerates exactly that view from a recorded [`Behavior`].

use polysig_tagged::{Behavior, SigName, Tag};

/// Renders selected signals of a behavior as a column-per-instant table.
///
/// `steps` fixes the number of columns (instants `1..=steps`); signals
/// absent at an instant get a blank cell.
///
/// ```
/// use polysig_gals::report::trace_table;
/// use polysig_tagged::{Behavior, Value};
///
/// let mut b = Behavior::new();
/// b.push_event("x", 1, Value::Int(1));
/// b.push_event("x", 3, Value::Int(2));
/// let t = trace_table(&b, &["x".into()], 3);
/// assert!(t.contains("x"));
/// assert!(t.lines().count() >= 2);
/// ```
pub fn trace_table(behavior: &Behavior, signals: &[SigName], steps: usize) -> String {
    let mut cells: Vec<Vec<String>> = Vec::with_capacity(signals.len());
    for name in signals {
        let mut row = Vec::with_capacity(steps);
        for t in 1..=steps {
            let cell = behavior
                .value_at(name, Tag::new(t as u64))
                .map(|v| v.to_string())
                .unwrap_or_default();
            row.push(cell);
        }
        cells.push(row);
    }
    // column widths: instant header vs widest cell
    let name_width = signals.iter().map(|s| s.as_str().len()).max().unwrap_or(1).max(6);
    let mut widths = Vec::with_capacity(steps);
    for t in 0..steps {
        let head = format!("t{}", t + 1).len();
        let body = cells.iter().map(|row| row[t].len()).max().unwrap_or(0);
        widths.push(head.max(body));
    }

    let mut out = String::new();
    out.push_str(&format!("{:name_width$}", "signal"));
    for (t, w) in widths.iter().enumerate() {
        out.push_str(&format!(" | {:>w$}", format!("t{}", t + 1)));
    }
    out.push('\n');
    out.push_str(&"-".repeat(name_width));
    for w in &widths {
        out.push_str(&format!("-+-{}", "-".repeat(*w)));
    }
    out.push('\n');
    for (name, row) in signals.iter().zip(&cells) {
        out.push_str(&format!("{:name_width$}", name.as_str()));
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" | {cell:>w$}"));
        }
        out.push('\n');
    }
    out
}

/// Renders selected signals of a behavior as CSV: one row per instant,
/// one column per signal, empty cells for absence — ready for any plotting
/// tool.
///
/// ```
/// use polysig_gals::report::to_csv;
/// use polysig_tagged::{Behavior, Value};
///
/// let mut b = Behavior::new();
/// b.push_event("x", 1, Value::Int(3));
/// let csv = to_csv(&b, &["x".into()], 2);
/// assert_eq!(csv, "instant,x\n1,3\n2,\n");
/// ```
pub fn to_csv(behavior: &Behavior, signals: &[SigName], steps: usize) -> String {
    let mut out = String::from("instant");
    for s in signals {
        out.push(',');
        out.push_str(s.as_str());
    }
    out.push('\n');
    for t in 1..=steps {
        out.push_str(&t.to_string());
        for s in signals {
            out.push(',');
            if let Some(v) = behavior.value_at(s, Tag::new(t as u64)) {
                out.push_str(&v.to_string());
            }
        }
        out.push('\n');
    }
    out
}

/// Renders an integer series (e.g. channel occupancy per tick) as a compact
/// sparkline-style row, for experiment logs.
pub fn int_series(label: &str, values: &[i64]) -> String {
    let mut out = format!("{label}: ");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&v.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use polysig_tagged::Value;

    #[test]
    fn table_marks_absence_with_blanks() {
        let mut b = Behavior::new();
        b.push_event("msgin", 1, Value::Int(1));
        b.push_event("full", 1, Value::Bool(true));
        b.push_event("full", 2, Value::Bool(true));
        b.push_event("msgout", 3, Value::Int(1));
        let t = trace_table(&b, &["msgin".into(), "full".into(), "msgout".into()], 3);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5); // header + rule + 3 rows
        assert!(lines[2].contains('1'));
        assert!(lines[3].contains("true"));
        // msgout row: blank, blank, 1
        let msgout_row = lines[4];
        assert!(msgout_row.trim_end().ends_with('1'));
    }

    #[test]
    fn table_has_requested_column_count() {
        let mut b = Behavior::new();
        b.push_event("x", 1, Value::Int(1));
        let t = trace_table(&b, &["x".into()], 5);
        assert_eq!(t.lines().next().unwrap().matches('|').count(), 5);
    }

    #[test]
    fn csv_rows_match_instants() {
        let mut b = Behavior::new();
        b.push_event("x", 1, Value::Int(1));
        b.push_event("c", 2, Value::Bool(true));
        let csv = to_csv(&b, &["x".into(), "c".into()], 3);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines, vec!["instant,x,c", "1,1,", "2,,true", "3,,"]);
    }

    #[test]
    fn int_series_formats() {
        assert_eq!(int_series("occ", &[0, 1, 2]), "occ: 0 1 2");
    }
}
