//! Property tests of the language front end: pretty ↔ parse round trips on
//! randomly generated ASTs, and stability of the analyses.

use proptest::prelude::*;

use polysig_lang::pretty::{pretty_component, pretty_expr, pretty_program};
use polysig_lang::resolve::resolve_program;
use polysig_lang::{
    parse_component, parse_expr, parse_program, Binop, Component, ComponentBuilder, Expr, Program,
    Role, Unop,
};
use polysig_tagged::{Value, ValueType};

/// Declaration shapes with freely interleaved roles — the regression space
/// for the printer's old group-by-role reordering bug.
fn arb_decl_shape() -> impl Strategy<Value = Vec<(Role, ValueType)>> {
    proptest::collection::vec(
        (
            proptest::sample::select(vec![Role::Input, Role::Output, Role::Local]),
            proptest::sample::select(vec![ValueType::Int, ValueType::Bool]),
        ),
        1..6,
    )
}

/// Builds a resolvable component from a declaration shape: signals are
/// `<prefix>s<j>`, and every output/local gets a trivial defining equation.
fn component_from_shape(name: &str, prefix: &str, shape: &[(Role, ValueType)]) -> Component {
    let mut b = ComponentBuilder::new(name);
    for (j, (role, ty)) in shape.iter().enumerate() {
        let n = format!("{prefix}s{j}");
        b = match role {
            Role::Input => b.input(n.as_str(), *ty),
            Role::Output => b.output(n.as_str(), *ty),
            Role::Local => b.local(n.as_str(), *ty),
        };
    }
    for (j, (role, ty)) in shape.iter().enumerate() {
        if *role == Role::Input {
            continue;
        }
        let rhs = match ty {
            ValueType::Int => Expr::int(j as i64),
            ValueType::Bool => Expr::bool(j % 2 == 0),
        }
        .when(Expr::bool(true));
        b = b.equation(format!("{prefix}s{j}").as_str(), rhs);
    }
    b.build()
}

/// Random expressions over variables `a b c`, depth-bounded.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(Expr::var),
        (-5i64..6).prop_map(Expr::int),
        proptest::bool::ANY.prop_map(Expr::bool),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), -3i64..4).prop_map(|(e, k)| e.pre(Value::Int(k))),
            (inner.clone(), inner.clone()).prop_map(|(e, c)| e.when(c)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.default(r)),
            inner.clone().prop_map(Expr::not),
            inner.clone().prop_map(Expr::clock),
            (
                inner.clone(),
                inner,
                prop_oneof![
                    Just(Binop::Add),
                    Just(Binop::Sub),
                    Just(Binop::Mul),
                    Just(Binop::Eq),
                    Just(Binop::Ne),
                    Just(Binop::Lt),
                    Just(Binop::Le),
                    Just(Binop::Gt),
                    Just(Binop::Ge),
                    Just(Binop::And),
                    Just(Binop::Or),
                ]
            )
                .prop_map(|(l, r, op)| l.binop(op, r)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// pretty-print then parse is the identity on arbitrary ASTs —
    /// including every operator and nesting shape.
    #[test]
    fn pretty_parse_round_trips(e in arb_expr()) {
        let printed = pretty_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("`{printed}` failed to reparse: {err}"));
        prop_assert_eq!(reparsed, e);
    }

    /// free_vars is stable under the round trip and rename actually removes
    /// the renamed variable.
    #[test]
    fn rename_removes_the_source_var(e in arb_expr()) {
        let renamed = e.rename_var(&"a".into(), &"zz".into());
        let vars = renamed.free_vars();
        prop_assert!(!vars.contains("a"));
        if e.free_vars().contains("a") {
            prop_assert!(vars.contains("zz"));
        }
        // double rename is idempotent in effect
        let again = renamed.rename_var(&"a".into(), &"zz2".into());
        prop_assert_eq!(again, renamed);
    }

    /// Components built from random expressions round-trip through the
    /// printer (declarations + equations + sync).
    #[test]
    fn component_round_trips(e1 in arb_expr(), e2 in arb_expr()) {
        let c: Component = ComponentBuilder::new("P")
            .input("a", ValueType::Int)
            .input("b", ValueType::Int)
            .input("c", ValueType::Bool)
            .output("x", ValueType::Int)
            .output("y", ValueType::Int)
            .equation("x", e1)
            .equation("y", e2)
            .sync(["x", "y"])
            .build();
        let printed = pretty_component(&c);
        let reparsed = parse_component(&printed)
            .unwrap_or_else(|err| panic!("component failed to reparse: {err}\n{printed}"));
        prop_assert_eq!(reparsed, c);
    }

    /// instant-vars ⊆ free-vars, with equality when the expression has no
    /// `pre`.
    #[test]
    fn instant_vars_subset_of_free_vars(e in arb_expr()) {
        let mut instant = std::collections::BTreeSet::new();
        e.collect_instant_vars(&mut instant);
        let free = e.free_vars();
        prop_assert!(instant.is_subset(&free));
        fn has_pre(e: &Expr) -> bool {
            match e {
                Expr::Pre { .. } => true,
                Expr::Var(_) | Expr::Const(_) => false,
                Expr::When { body, cond } => has_pre(body) || has_pre(cond),
                Expr::Default { left, right } | Expr::Binary { left, right, .. } => {
                    has_pre(left) || has_pre(right)
                }
                Expr::Unary { arg, .. } => has_pre(arg),
            }
        }
        if !has_pre(&e) {
            prop_assert_eq!(instant, free);
        }
    }

    /// Whole programs — multiple components, interleaved declaration roles —
    /// round-trip through `pretty_program` to a structurally equal `Program`
    /// that still resolves. This is the printer/parser conformance property
    /// the generative harness leans on.
    #[test]
    fn interleaved_programs_round_trip(
        shapes in proptest::collection::vec(arb_decl_shape(), 1..4)
    ) {
        let components: Vec<Component> = shapes
            .iter()
            .enumerate()
            .map(|(i, s)| component_from_shape(&format!("C{i}"), &format!("c{i}_"), s))
            .collect();
        // parse_program names a single-component program after its component
        // and a multi-component program "main"; mirror that convention so the
        // whole Program (name included) compares equal after the round trip.
        let name =
            if components.len() == 1 { components[0].name.clone() } else { "main".to_string() };
        let program = Program { name, components };
        resolve_program(&program).expect("generated program must resolve");
        let printed = pretty_program(&program);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|err| panic!("failed to reparse own printout: {err}\n{printed}"));
        prop_assert_eq!(&reparsed, &program);
        resolve_program(&reparsed).expect("reparsed program must resolve");
        for (c, shape) in reparsed.components.iter().zip(&shapes) {
            let roles: Vec<Role> = c.decls.iter().map(|d| d.role).collect();
            let expected: Vec<Role> = shape.iter().map(|(r, _)| *r).collect();
            prop_assert_eq!(roles, expected, "declaration order changed:\n{}", printed);
        }
    }

    /// The clock analysis never panics and produces a class for every
    /// declared signal, regardless of expression shape.
    #[test]
    fn clock_analysis_total(e in arb_expr()) {
        let c = ComponentBuilder::new("P")
            .input("a", ValueType::Int)
            .input("b", ValueType::Int)
            .input("c", ValueType::Bool)
            .output("x", ValueType::Int)
            .equation("x", e)
            .build();
        let analysis = polysig_lang::clock::analyze_component(&c);
        for name in ["a", "b", "c", "x"] {
            prop_assert!(analysis.class_of(&name.into()).is_some());
        }
        // dominance is reflexive-transitive: sanity on a couple of pairs
        prop_assert!(analysis.dominated_by(&"x".into(), &"x".into()));
    }
}

/// Every program shipped in `programs/` survives the printer:
/// `pretty_program` → `parse_program` → `resolve_program` yields a
/// structurally equal `Program`.
#[test]
fn shipped_programs_round_trip_structurally() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../programs");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("programs/ directory") {
        let path = entry.expect("directory entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("sig") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("readable program");
        let program = parse_program(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        resolve_program(&program).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let printed = pretty_program(&program);
        let reparsed = parse_program(&printed).unwrap_or_else(|e| {
            panic!("{} failed to reparse its own printout: {e}\n{printed}", path.display())
        });
        assert_eq!(reparsed, program, "{} changed across the round trip", path.display());
        resolve_program(&reparsed).expect("reparsed program resolves");
        checked += 1;
    }
    assert!(checked >= 3, "expected the shipped .sig programs, found only {checked}");
}

/// A negation-specific regression: `not` chains and `- INT` literals are
/// the trickiest corners of the grammar.
#[test]
fn deep_negation_round_trips() {
    let e = Expr::var("a").not().not().not().pre(Value::Int(-3)).not();
    let printed = pretty_expr(&e);
    assert_eq!(parse_expr(&printed).unwrap(), e);

    // negation over integer literals folds to the canonical constant form
    let neg = Expr::Unary {
        op: Unop::Neg,
        arg: Box::new(Expr::Unary { op: Unop::Neg, arg: Box::new(Expr::int(-7)) }),
    };
    let printed = pretty_expr(&neg);
    assert_eq!(parse_expr(&printed).unwrap(), Expr::int(-7));
    // …while negation over variables keeps its structure
    let negvar = Expr::Unary { op: Unop::Neg, arg: Box::new(Expr::var("a")) };
    assert_eq!(parse_expr(&pretty_expr(&negvar)).unwrap(), negvar);
}
