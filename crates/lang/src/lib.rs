//! # `polysig-lang` — a kernel of the Signal polychronous language
//!
//! This crate implements the language layer of the reproduction: the core
//! Signal syntax of the paper's Figure 1 (`pre`, `when`, `default`, pointwise
//! operators), extended with the shorthands the paper itself uses in
//! Example 1 (`^x` clock-of, clock synchronization constraints `x ^= y`,
//! boolean/arithmetic operators, constants).
//!
//! Provided passes:
//!
//! * [`lexer`]/[`parser`] — a small concrete syntax, so programs can be
//!   written as text as well as built programmatically via [`builder`],
//! * [`resolve`] — name/ownership checking (each signal written once, inputs
//!   never written, outputs defined…),
//! * [`types`] — bool/int type inference and checking,
//! * [`clock`] — the clock calculus: derives the synchronization constraints
//!   each operator imposes, groups signals into clock-equivalence classes,
//!   builds the clock-dominance hierarchy and runs an endochrony heuristic,
//! * [`deps`] — instantaneous data dependencies and causality-cycle
//!   detection (`pre` breaks cycles, the other operators do not).
//!
//! The constructive simulator lives in `polysig-sim`; the GALS
//! desynchronization transformation in `polysig-gals`.
//!
//! ## Example
//!
//! ```
//! use polysig_lang::parse_program;
//!
//! let src = r#"
//! process Count {
//!     input tick: bool;
//!     output n: int;
//!     n := (pre 0 n) + (1 when tick);
//! }
//! "#;
//! let program = parse_program(src)?;
//! assert_eq!(program.components.len(), 1);
//! # Ok::<(), polysig_lang::LangError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod clock;
pub mod deps;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod resolve;
pub mod types;

pub use ast::{Binop, Component, Equation, Expr, Program, Role, Statement, Unop};
pub use builder::ComponentBuilder;
pub use clock::{classify_endochrony, const_guard_source, ClockAnalysis, ClockClass, Endochrony};
pub use deps::DependencyGraph;
pub use error::LangError;
pub use parser::{parse_component, parse_expr, parse_program};
pub use pretty::pretty_program;

/// Parses, resolves and type-checks a program in one call.
///
/// # Errors
///
/// Returns the first lexical, syntactic, resolution or type error found.
///
/// ```
/// let p = polysig_lang::check_program("process P { output x: int; x := 1 when true; }")?;
/// assert_eq!(p.components[0].name, "P");
/// # Ok::<(), polysig_lang::LangError>(())
/// ```
pub fn check_program(src: &str) -> Result<Program, LangError> {
    let program = parse_program(src)?;
    resolve::resolve_program(&program)?;
    types::check_program(&program)?;
    Ok(program)
}
