//! Abstract syntax of core Signal (the paper's Figure 1, plus the shorthands
//! used in its Example 1).
//!
//! A [`Program`] is a list of [`Component`]s assumed to run synchronously in
//! parallel; components exchange data through signals that are outputs of one
//! component and inputs of another. A component consists of signal
//! declarations and [`Statement`]s: equations `x := e` and clock
//! synchronization constraints `x ^= y` (the latter are derived syntax in the
//! paper but ubiquitous in its examples).

use std::collections::BTreeSet;
use std::fmt;

use polysig_tagged::{SigName, Value, ValueType};

/// Unary pointwise operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unop {
    /// Boolean negation.
    Not,
    /// Integer negation.
    Neg,
    /// The paper's `^x` shorthand: `true when (x == x)` — a boolean `true`
    /// at exactly the instants where the operand is present.
    ClockOf,
}

impl fmt::Display for Unop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unop::Not => write!(f, "not"),
            Unop::Neg => write!(f, "-"),
            Unop::ClockOf => write!(f, "^"),
        }
    }
}

/// Binary synchronous pointwise operators (the paper's `f(y, z, …)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Binop {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Equality on equal-typed operands (the paper's `==`).
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less (integers).
    Lt,
    /// Less or equal (integers).
    Le,
    /// Strictly greater (integers).
    Gt,
    /// Greater or equal (integers).
    Ge,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
}

impl Binop {
    /// `true` for operators producing booleans.
    pub fn returns_bool(self) -> bool {
        !matches!(self, Binop::Add | Binop::Sub | Binop::Mul)
    }

    /// `true` for operators requiring integer operands.
    pub fn takes_ints(self) -> bool {
        matches!(
            self,
            Binop::Add | Binop::Sub | Binop::Mul | Binop::Lt | Binop::Le | Binop::Gt | Binop::Ge
        )
    }

    /// Applies the operator to two values.
    ///
    /// Returns `None` on a type mismatch (callers surface this as a runtime
    /// type error; the static checker rules it out for checked programs).
    #[inline]
    pub fn apply(self, a: Value, b: Value) -> Option<Value> {
        use Binop::*;
        Some(match self {
            Add => Value::Int(a.as_int()?.checked_add(b.as_int()?)?),
            Sub => Value::Int(a.as_int()?.checked_sub(b.as_int()?)?),
            Mul => Value::Int(a.as_int()?.checked_mul(b.as_int()?)?),
            Eq => Value::Bool(a == b && a.ty() == b.ty()),
            Ne => Value::Bool(a.ty() == b.ty() && a != b),
            Lt => Value::Bool(a.as_int()? < b.as_int()?),
            Le => Value::Bool(a.as_int()? <= b.as_int()?),
            Gt => Value::Bool(a.as_int()? > b.as_int()?),
            Ge => Value::Bool(a.as_int()? >= b.as_int()?),
            And => Value::Bool(a.as_bool()? && b.as_bool()?),
            Or => Value::Bool(a.as_bool()? || b.as_bool()?),
        })
    }
}

impl fmt::Display for Binop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Binop::Add => "+",
            Binop::Sub => "-",
            Binop::Mul => "*",
            Binop::Eq => "=",
            Binop::Ne => "/=",
            Binop::Lt => "<",
            Binop::Le => "<=",
            Binop::Gt => ">",
            Binop::Ge => ">=",
            Binop::And => "and",
            Binop::Or => "or",
        };
        f.write_str(s)
    }
}

/// A Signal expression (right-hand side of an equation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A signal reference.
    Var(SigName),
    /// A constant; its clock is taken from the context (the enclosing
    /// operator or, at top level, the defined signal).
    Const(Value),
    /// `pre init y` — the previous value of `y`, initially `init`
    /// (synchronous with `y`).
    Pre {
        /// Initial value delivered at `body`'s first instant.
        init: Value,
        /// The delayed expression.
        body: Box<Expr>,
    },
    /// `y when z` — `y`'s value at instants where `z` is present and true.
    When {
        /// The sampled expression.
        body: Box<Expr>,
        /// The boolean condition expression.
        cond: Box<Expr>,
    },
    /// `y default z` — `y` when present, else `z`.
    Default {
        /// The preferred expression.
        left: Box<Expr>,
        /// The fallback expression.
        right: Box<Expr>,
    },
    /// A unary pointwise operator.
    Unary {
        /// The operator.
        op: Unop,
        /// Its operand.
        arg: Box<Expr>,
    },
    /// A binary synchronous pointwise operator.
    Binary {
        /// The operator.
        op: Binop,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
}

impl Expr {
    /// A variable reference.
    pub fn var(name: impl Into<SigName>) -> Expr {
        Expr::Var(name.into())
    }

    /// An integer constant.
    pub fn int(v: i64) -> Expr {
        Expr::Const(Value::Int(v))
    }

    /// A boolean constant.
    pub fn bool(v: bool) -> Expr {
        Expr::Const(Value::Bool(v))
    }

    /// `pre init self`.
    pub fn pre(self, init: Value) -> Expr {
        Expr::Pre { init, body: Box::new(self) }
    }

    /// `self when cond`.
    pub fn when(self, cond: Expr) -> Expr {
        Expr::When { body: Box::new(self), cond: Box::new(cond) }
    }

    /// `self default other`.
    pub fn default(self, other: Expr) -> Expr {
        Expr::Default { left: Box::new(self), right: Box::new(other) }
    }

    /// `not self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Unary { op: Unop::Not, arg: Box::new(self) }
    }

    /// `^self` — the clock of the expression.
    pub fn clock(self) -> Expr {
        Expr::Unary { op: Unop::ClockOf, arg: Box::new(self) }
    }

    /// `self <op> other`.
    pub fn binop(self, op: Binop, other: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(self), right: Box::new(other) }
    }

    /// Collects every signal name read by the expression into `out`.
    pub fn collect_vars(&self, out: &mut BTreeSet<SigName>) {
        match self {
            Expr::Var(x) => {
                out.insert(x.clone());
            }
            Expr::Const(_) => {}
            Expr::Pre { body, .. } => body.collect_vars(out),
            Expr::When { body, cond } => {
                body.collect_vars(out);
                cond.collect_vars(out);
            }
            Expr::Default { left, right } | Expr::Binary { left, right, .. } => {
                left.collect_vars(out);
                right.collect_vars(out);
            }
            Expr::Unary { arg, .. } => arg.collect_vars(out),
        }
    }

    /// The signals read by the expression.
    pub fn free_vars(&self) -> BTreeSet<SigName> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    /// Collects signals whose *current-instant value* flows into the result
    /// (i.e. excluding those only read under `pre`, which breaks
    /// instantaneous causality).
    pub fn collect_instant_vars(&self, out: &mut BTreeSet<SigName>) {
        match self {
            Expr::Var(x) => {
                out.insert(x.clone());
            }
            Expr::Const(_) => {}
            // pre decouples the instantaneous dependency — only the *clock*
            // of the body matters, which deps.rs accounts for separately.
            Expr::Pre { .. } => {}
            Expr::When { body, cond } => {
                body.collect_instant_vars(out);
                cond.collect_instant_vars(out);
            }
            Expr::Default { left, right } | Expr::Binary { left, right, .. } => {
                left.collect_instant_vars(out);
                right.collect_instant_vars(out);
            }
            Expr::Unary { arg, .. } => arg.collect_instant_vars(out),
        }
    }

    /// Renames every occurrence of signal `from` to `to`.
    pub fn rename_var(&self, from: &SigName, to: &SigName) -> Expr {
        match self {
            Expr::Var(x) if x == from => Expr::Var(to.clone()),
            Expr::Var(_) | Expr::Const(_) => self.clone(),
            Expr::Pre { init, body } => {
                Expr::Pre { init: *init, body: Box::new(body.rename_var(from, to)) }
            }
            Expr::When { body, cond } => Expr::When {
                body: Box::new(body.rename_var(from, to)),
                cond: Box::new(cond.rename_var(from, to)),
            },
            Expr::Default { left, right } => Expr::Default {
                left: Box::new(left.rename_var(from, to)),
                right: Box::new(right.rename_var(from, to)),
            },
            Expr::Unary { op, arg } => {
                Expr::Unary { op: *op, arg: Box::new(arg.rename_var(from, to)) }
            }
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.rename_var(from, to)),
                right: Box::new(right.rename_var(from, to)),
            },
        }
    }
}

/// A signal equation `x := e`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Equation {
    /// The defined signal.
    pub lhs: SigName,
    /// The defining expression.
    pub rhs: Expr,
}

/// A component statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// A defining equation.
    Eq(Equation),
    /// A clock synchronization constraint: all listed signals share one
    /// clock (`x ^= y ^= …`).
    Sync(Vec<SigName>),
}

/// The role a signal plays in a component's interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// Read from the environment (or another component).
    Input,
    /// Defined here and visible outside.
    Output,
    /// Defined and used here only.
    Local,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Input => write!(f, "input"),
            Role::Output => write!(f, "output"),
            Role::Local => write!(f, "local"),
        }
    }
}

/// A signal declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Declaration {
    /// The declared name.
    pub name: SigName,
    /// Its interface role.
    pub role: Role,
    /// Its value type.
    pub ty: ValueType,
}

/// A synchronous component: declarations plus statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// Component name (`CName` of Figure 1).
    pub name: String,
    /// Signal declarations.
    pub decls: Vec<Declaration>,
    /// Equations and synchronization constraints.
    pub stmts: Vec<Statement>,
}

impl Component {
    /// Creates an empty component.
    pub fn new(name: impl Into<String>) -> Self {
        Component { name: name.into(), decls: Vec::new(), stmts: Vec::new() }
    }

    /// Declared signals with a given role.
    pub fn signals_with_role(&self, role: Role) -> impl Iterator<Item = &Declaration> + '_ {
        self.decls.iter().filter(move |d| d.role == role)
    }

    /// Looks up a declaration by name.
    pub fn decl(&self, name: &SigName) -> Option<&Declaration> {
        self.decls.iter().find(|d| &d.name == name)
    }

    /// All declared names.
    pub fn names(&self) -> BTreeSet<SigName> {
        self.decls.iter().map(|d| d.name.clone()).collect()
    }

    /// The equations (skipping sync constraints).
    pub fn equations(&self) -> impl Iterator<Item = &Equation> + '_ {
        self.stmts.iter().filter_map(|s| match s {
            Statement::Eq(eq) => Some(eq),
            Statement::Sync(_) => None,
        })
    }

    /// The equation defining `name`, if any.
    pub fn defining_equation(&self, name: &SigName) -> Option<&Equation> {
        self.equations().find(|eq| &eq.lhs == name)
    }

    /// Renames a signal everywhere in the component (declaration, equations,
    /// sync constraints).
    pub fn rename_signal(&self, from: &SigName, to: &SigName) -> Component {
        Component {
            name: self.name.clone(),
            decls: self
                .decls
                .iter()
                .map(|d| Declaration {
                    name: if &d.name == from { to.clone() } else { d.name.clone() },
                    role: d.role,
                    ty: d.ty,
                })
                .collect(),
            stmts: self
                .stmts
                .iter()
                .map(|s| match s {
                    Statement::Eq(eq) => Statement::Eq(Equation {
                        lhs: if &eq.lhs == from { to.clone() } else { eq.lhs.clone() },
                        rhs: eq.rhs.rename_var(from, to),
                    }),
                    Statement::Sync(names) => Statement::Sync(
                        names
                            .iter()
                            .map(|n| if n == from { to.clone() } else { n.clone() })
                            .collect(),
                    ),
                })
                .collect(),
        }
    }
}

/// A program: components composed synchronously in parallel (`∥s`), wired by
/// name — a signal that is an output of one component and an input of
/// another is a shared variable in the sense of Definition 7.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Program name (`PName` of Figure 1).
    pub name: String,
    /// The synchronous components.
    pub components: Vec<Component>,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Program { name: name.into(), components: Vec::new() }
    }

    /// Creates a single-component program.
    pub fn single(component: Component) -> Self {
        Program { name: component.name.clone(), components: vec![component] }
    }

    /// Finds a component by name.
    pub fn component(&self, name: &str) -> Option<&Component> {
        self.components.iter().find(|c| c.name == name)
    }

    /// Signals shared between two components of the program: outputs of one
    /// that are inputs of the other (the explicit data dependencies of
    /// Definition 7).
    pub fn shared_signals(&self, a: &str, b: &str) -> BTreeSet<SigName> {
        let (Some(ca), Some(cb)) = (self.component(a), self.component(b)) else {
            return BTreeSet::new();
        };
        let mut out = BTreeSet::new();
        for d in &ca.decls {
            if d.role == Role::Local {
                continue;
            }
            if let Some(other) = cb.decl(&d.name) {
                if other.role != Role::Local {
                    out.insert(d.name.clone());
                }
            }
        }
        out
    }

    /// All program-level input signals: inputs of some component that no
    /// component outputs.
    pub fn external_inputs(&self) -> BTreeSet<SigName> {
        let outputs: BTreeSet<SigName> = self
            .components
            .iter()
            .flat_map(|c| c.signals_with_role(Role::Output).map(|d| d.name.clone()))
            .collect();
        self.components
            .iter()
            .flat_map(|c| c.signals_with_role(Role::Input).map(|d| d.name.clone()))
            .filter(|n| !outputs.contains(n))
            .collect()
    }

    /// All program-level output signals (outputs of any component).
    pub fn external_outputs(&self) -> BTreeSet<SigName> {
        self.components
            .iter()
            .flat_map(|c| c.signals_with_role(Role::Output).map(|d| d.name.clone()))
            .collect()
    }

    /// Every declared name across components.
    pub fn all_names(&self) -> BTreeSet<SigName> {
        self.components.iter().flat_map(|c| c.names()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_apply_arithmetic() {
        assert_eq!(Binop::Add.apply(Value::Int(2), Value::Int(3)), Some(Value::Int(5)));
        assert_eq!(Binop::Sub.apply(Value::Int(2), Value::Int(3)), Some(Value::Int(-1)));
        assert_eq!(Binop::Mul.apply(Value::Int(4), Value::Int(3)), Some(Value::Int(12)));
        assert_eq!(Binop::Add.apply(Value::Bool(true), Value::Int(3)), None);
    }

    #[test]
    fn binop_apply_comparisons_and_logic() {
        assert_eq!(Binop::Eq.apply(Value::Int(2), Value::Int(2)), Some(Value::TRUE));
        assert_eq!(Binop::Ne.apply(Value::Int(2), Value::Int(3)), Some(Value::TRUE));
        assert_eq!(Binop::Lt.apply(Value::Int(2), Value::Int(3)), Some(Value::TRUE));
        assert_eq!(Binop::Ge.apply(Value::Int(2), Value::Int(3)), Some(Value::FALSE));
        assert_eq!(Binop::And.apply(Value::TRUE, Value::FALSE), Some(Value::FALSE));
        assert_eq!(Binop::Or.apply(Value::FALSE, Value::TRUE), Some(Value::TRUE));
        // cross-type equality is a static type error; dynamically it is false
        assert_eq!(Binop::Eq.apply(Value::Int(1), Value::Bool(true)), Some(Value::FALSE));
    }

    #[test]
    fn expr_builders_compose() {
        let e = Expr::var("y").when(Expr::var("z")).default(Expr::var("w").pre(Value::Int(0)));
        let vars = e.free_vars();
        assert_eq!(vars.len(), 3);
    }

    #[test]
    fn instant_vars_skip_pre() {
        let e = Expr::var("y").pre(Value::Int(0)).default(Expr::var("z"));
        let mut out = BTreeSet::new();
        e.collect_instant_vars(&mut out);
        assert!(out.contains(&SigName::from("z")));
        assert!(!out.contains(&SigName::from("y")));
    }

    #[test]
    fn rename_var_descends() {
        let e = Expr::var("x").when(Expr::var("x").clock()).default(Expr::var("y"));
        let r = e.rename_var(&"x".into(), &"x_p".into());
        let vars = r.free_vars();
        assert!(vars.contains(&SigName::from("x_p")));
        assert!(!vars.contains(&SigName::from("x")));
        assert!(vars.contains(&SigName::from("y")));
    }

    #[test]
    fn component_rename_touches_everything() {
        let mut c = Component::new("C");
        c.decls.push(Declaration { name: "x".into(), role: Role::Output, ty: ValueType::Int });
        c.decls.push(Declaration { name: "y".into(), role: Role::Input, ty: ValueType::Int });
        c.stmts.push(Statement::Eq(Equation { lhs: "x".into(), rhs: Expr::var("y") }));
        c.stmts.push(Statement::Sync(vec!["x".into(), "y".into()]));
        let r = c.rename_signal(&"x".into(), &"x2".into());
        assert!(r.decl(&"x2".into()).is_some());
        assert!(r.decl(&"x".into()).is_none());
        assert_eq!(r.defining_equation(&"x2".into()).unwrap().rhs, Expr::var("y"));
        match &r.stmts[1] {
            Statement::Sync(names) => assert!(names.contains(&"x2".into())),
            Statement::Eq(_) => panic!("expected sync statement"),
        }
    }

    #[test]
    fn program_shared_signals() {
        let mut p = Component::new("P");
        p.decls.push(Declaration { name: "x".into(), role: Role::Output, ty: ValueType::Int });
        let mut q = Component::new("Q");
        q.decls.push(Declaration { name: "x".into(), role: Role::Input, ty: ValueType::Int });
        q.decls.push(Declaration { name: "y".into(), role: Role::Output, ty: ValueType::Int });
        let mut prog = Program::new("PQ");
        prog.components.push(p);
        prog.components.push(q);
        let shared = prog.shared_signals("P", "Q");
        assert_eq!(shared.len(), 1);
        assert!(shared.contains(&SigName::from("x")));
        assert!(prog.external_inputs().is_empty());
        assert_eq!(prog.external_outputs().len(), 2);
    }

    #[test]
    fn display_ops() {
        assert_eq!(Unop::Not.to_string(), "not");
        assert_eq!(Binop::Le.to_string(), "<=");
        assert_eq!(Role::Local.to_string(), "local");
    }
}
