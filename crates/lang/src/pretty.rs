//! Pretty-printer: renders ASTs back to parseable concrete syntax.
//!
//! The printer round-trips: `parse(pretty(p))` yields an equal AST (up to
//! redundant parentheses), which the test-suite checks.

use std::fmt::Write as _;

use crate::ast::{Component, Expr, Program, Role, Statement, Unop};

/// Renders an expression with explicit parentheses around every compound
/// sub-expression, guaranteeing the round-trip property.
pub fn pretty_expr(e: &Expr) -> String {
    match e {
        Expr::Var(x) => x.to_string(),
        Expr::Const(v) => v.to_string(),
        Expr::Pre { init, body } => format!("(pre {init} {})", pretty_expr(body)),
        Expr::When { body, cond } => {
            format!("({} when {})", pretty_expr(body), pretty_expr(cond))
        }
        Expr::Default { left, right } => {
            format!("({} default {})", pretty_expr(left), pretty_expr(right))
        }
        Expr::Unary { op, arg } => match op {
            Unop::Not => format!("(not {})", pretty_expr(arg)),
            Unop::Neg => format!("(- {})", pretty_expr(arg)),
            Unop::ClockOf => format!("(^ {})", pretty_expr(arg)),
        },
        Expr::Binary { op, left, right } => {
            format!("({} {op} {})", pretty_expr(left), pretty_expr(right))
        }
    }
}

/// Renders a component.
///
/// Declarations print in declaration order, one line per run of consecutive
/// same-role binders — grouping all declarations of one role together would
/// reorder interleaved `decls` and break the structural round trip.
pub fn pretty_component(c: &Component) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "process {} {{", c.name);
    let mut run: Vec<String> = Vec::new();
    let mut run_role: Option<Role> = None;
    let flush = |run: &mut Vec<String>, role: Option<Role>, out: &mut String| {
        if let (Some(role), false) = (role, run.is_empty()) {
            let _ = writeln!(out, "    {role} {};", run.join(", "));
            run.clear();
        }
    };
    for d in &c.decls {
        if run_role != Some(d.role) {
            flush(&mut run, run_role, &mut out);
            run_role = Some(d.role);
        }
        run.push(format!("{}: {}", d.name, d.ty));
    }
    flush(&mut run, run_role, &mut out);
    for stmt in &c.stmts {
        match stmt {
            Statement::Eq(eq) => {
                let _ = writeln!(out, "    {} := {};", eq.lhs, pretty_expr(&eq.rhs));
            }
            Statement::Sync(names) => {
                let joined: Vec<String> = names.iter().map(|n| n.to_string()).collect();
                let _ = writeln!(out, "    sync {};", joined.join(", "));
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a whole program.
///
/// ```
/// use polysig_lang::{parse_program, pretty_program};
/// let p = parse_program("process P { output x: int; x := 1 when true; }")?;
/// let text = pretty_program(&p);
/// let reparsed = parse_program(&text)?;
/// assert_eq!(p, reparsed);
/// # Ok::<(), polysig_lang::LangError>(())
/// ```
pub fn pretty_program(p: &Program) -> String {
    p.components.iter().map(pretty_component).collect::<Vec<_>>().join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_component, parse_expr, parse_program};

    #[test]
    fn expr_round_trips() {
        for src in [
            "a when b default c",
            "pre 0 x",
            "not (^ y)",
            "(a + b) * c",
            "a < b and c = d",
            "(msgin when (not full)) default (pre 0 data)",
            "1 when true",
            "a /= b or a >= c",
        ] {
            let e = parse_expr(src).unwrap();
            let printed = pretty_expr(&e);
            let reparsed = parse_expr(&printed).unwrap();
            assert_eq!(e, reparsed, "round-trip failed for `{src}` -> `{printed}`");
        }
    }

    #[test]
    fn component_round_trips() {
        let src = r#"
        process OneFifo {
            input msgin: int, rd: bool;
            output msgout: int;
            local data: int, full: bool;
            data := (msgin when (not full)) default (pre 0 data);
            msgout := data when rd;
            full := (^msgin) default (pre false full);
            sync data, full;
        }
        "#;
        let c = parse_component(src).unwrap();
        let printed = pretty_component(&c);
        let reparsed = parse_component(&printed).unwrap();
        assert_eq!(c, reparsed);
    }

    #[test]
    fn program_round_trips() {
        let src = "process A { output x: int; x := 1 when true; } \
                   process B { input x: int; output y: int; y := x + 1; }";
        let p = parse_program(src).unwrap();
        let reparsed = parse_program(&pretty_program(&p)).unwrap();
        assert_eq!(p.components, reparsed.components);
    }

    #[test]
    fn interleaved_declaration_order_round_trips() {
        // regression: the printer used to emit declarations grouped by role
        // (all inputs, all outputs, all locals), silently reordering a
        // component whose declaration lines interleave roles
        let src = "process Mix { \
                   input a: int; local t: bool; input b: bool, c: int; \
                   output x: int; local u: int; output y: bool; \
                   x := a + c; y := b; t := b; u := a; }";
        let c = parse_component(src).unwrap();
        let printed = pretty_component(&c);
        let reparsed = parse_component(&printed).unwrap();
        assert_eq!(c, reparsed, "interleaved roles must survive printing:\n{printed}");
        let roles: Vec<_> = reparsed.decls.iter().map(|d| d.role).collect();
        use crate::ast::Role::{Input, Local, Output};
        assert_eq!(roles, vec![Input, Local, Input, Input, Output, Local, Output]);
    }

    #[test]
    fn negative_literals_round_trip() {
        let e = parse_expr("pre -3 x").unwrap();
        let reparsed = parse_expr(&pretty_expr(&e)).unwrap();
        assert_eq!(e, reparsed);
    }
}
