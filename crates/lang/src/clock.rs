//! Clock calculus: synchronization constraints, clock-equivalence classes
//! and the clock-dominance hierarchy.
//!
//! Each Signal operator induces constraints between the *clocks* (sets of
//! presence instants) of the signals it touches:
//!
//! * `x := pre v y`, `x := f(y, z)` — `x`, `y`, `z` share one clock;
//! * `x := y when c` — `clk(x) = clk(y) ∩ [c]`, so `clk(x) ⊆ clk(y)` and
//!   `clk(x) ⊆ clk(c)`;
//! * `x := y default z` — `clk(x) = clk(y) ∪ clk(z)`, so `clk(y) ⊆ clk(x)`
//!   and `clk(z) ⊆ clk(x)`;
//! * `x ^= y` — `clk(x) = clk(y)`.
//!
//! [`analyze_component`] computes the clock-equivalence classes (union-find
//! over equality constraints), the dominance preorder between classes
//! (`⊆` edges from `when`/`default`), and reports the *master* classes —
//! the maximal elements of the hierarchy. A component whose hierarchy has a
//! single master rooted above every class is flagged by the endochrony
//! heuristic: its reactions can be driven deterministically from one clock
//! plus values, the classical sufficient condition for safe
//! desynchronization (Benveniste et al., "From synchrony to asynchrony").

use std::collections::{BTreeMap, BTreeSet};

use polysig_tagged::{SigName, Value};

use crate::ast::{Component, Expr, Role, Statement};

/// A clock-equivalence class: signals provably sharing one clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockClass {
    /// Stable class identifier (index into [`ClockAnalysis::classes`]).
    pub id: usize,
    /// The member signals, sorted.
    pub members: Vec<SigName>,
}

/// Result of the clock calculus on one component.
#[derive(Debug, Clone)]
pub struct ClockAnalysis {
    /// The clock-equivalence classes.
    pub classes: Vec<ClockClass>,
    class_of: BTreeMap<SigName, usize>,
    /// `(a, b)` means class `a`'s clock is included in class `b`'s clock.
    edges: BTreeSet<(usize, usize)>,
    /// Transitive closure of `edges`.
    closure: BTreeSet<(usize, usize)>,
}

impl ClockAnalysis {
    /// The class id of a signal, if analyzed.
    pub fn class_of(&self, name: &SigName) -> Option<usize> {
        self.class_of.get(name).copied()
    }

    /// `true` iff two signals provably share a clock.
    pub fn same_clock(&self, a: &SigName, b: &SigName) -> bool {
        match (self.class_of(a), self.class_of(b)) {
            (Some(ca), Some(cb)) => ca == cb,
            _ => false,
        }
    }

    /// `true` iff `a`'s clock is provably included in `b`'s
    /// (`clk(a) ⊆ clk(b)`), including equality.
    pub fn dominated_by(&self, a: &SigName, b: &SigName) -> bool {
        match (self.class_of(a), self.class_of(b)) {
            (Some(ca), Some(cb)) => ca == cb || self.closure.contains(&(ca, cb)),
            _ => false,
        }
    }

    /// Direct `⊆` edges between class ids.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// The master classes: classes not strictly dominated by any other —
    /// roots of the clock hierarchy.
    pub fn masters(&self) -> Vec<usize> {
        (0..self.classes.len())
            .filter(|&c| {
                !(0..self.classes.len()).any(|d| {
                    d != c && self.closure.contains(&(c, d)) && !self.closure.contains(&(d, c))
                })
            })
            .collect()
    }

    /// Endochrony heuristic: the hierarchy has exactly one master class and
    /// every other class is (transitively) dominated by it. Programs passing
    /// this test have a deterministic reaction schedule driven by the master
    /// clock, the sufficient condition the paper relies on for replacing
    /// synchronous links with FIFOs.
    pub fn is_rooted(&self) -> bool {
        // a root dominates every class; several mutually-included roots are
        // one clock in disguise (the union-find only merges *syntactic*
        // equalities, while cyclic ⊆ edges prove semantic equality)
        self.classes.len() <= 1
            || (0..self.classes.len())
                .any(|m| (0..self.classes.len()).all(|c| c == m || self.closure.contains(&(c, m))))
    }

    /// The id of a class dominating every other class, if the hierarchy is
    /// rooted. With mutually-included top classes any of them qualifies; the
    /// smallest id is returned.
    pub fn root(&self) -> Option<usize> {
        if self.classes.len() <= 1 {
            return self.classes.first().map(|c| c.id);
        }
        (0..self.classes.len())
            .find(|&m| (0..self.classes.len()).all(|c| c == m || self.closure.contains(&(c, m))))
    }

    /// `true` iff `a` and `b` provably share presence instants: either the
    /// union-find merged them, or mutual `⊆` edges prove the two classes are
    /// one clock written two ways.
    pub fn equal_clock(&self, a: &SigName, b: &SigName) -> bool {
        match (self.class_of(a), self.class_of(b)) {
            (Some(ca), Some(cb)) => {
                ca == cb || (self.closure.contains(&(ca, cb)) && self.closure.contains(&(cb, ca)))
            }
            _ => false,
        }
    }

    /// Classifies the component's determinism given its input set — the
    /// precondition Theorem 1 needs before a component may be desynchronized.
    pub fn endochrony(&self, inputs: &BTreeSet<SigName>) -> Endochrony {
        if self.classes.is_empty() {
            return Endochrony::Endochronous;
        }
        let Some(root) = self.root() else {
            let masters = self
                .masters()
                .into_iter()
                .filter_map(|m| self.classes[m].members.first().cloned())
                .collect();
            return Endochrony::NonDeterministic { masters };
        };
        // an input anchors the hierarchy when its class dominates every class
        let anchored = inputs.iter().any(|i| {
            self.class_of(i).is_some_and(|ci| {
                (0..self.classes.len()).all(|c| c == ci || self.closure.contains(&(c, ci)))
            })
        });
        if anchored {
            Endochrony::Endochronous
        } else {
            Endochrony::Endochronizable { master: self.classes[root].members.clone() }
        }
    }
}

/// The endochrony verdict of [`ClockAnalysis::endochrony`] /
/// [`classify_endochrony`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endochrony {
    /// The clock hierarchy is rooted in a class containing an input: every
    /// activation clock is determined by the input clocks (plus values), so
    /// reactions are reproducible from input flows alone.
    Endochronous,
    /// Rooted, but the master clock is internal. The component is
    /// deterministic, yet its alignment cannot be reconstructed from input
    /// flows; adding a master-clock input (`sync`ed to the listed signals)
    /// makes it endochronous.
    Endochronizable {
        /// Members of the internal master class.
        master: Vec<SigName>,
    },
    /// Several independent master clocks: reactions depend on relative clock
    /// rates the inputs do not determine — desynchronization may not
    /// preserve flows (Theorem 1's precondition fails).
    NonDeterministic {
        /// One representative signal per independent master class.
        masters: Vec<SigName>,
    },
}

/// Runs the clock calculus on `c` and classifies its endochrony against its
/// declared inputs.
///
/// ```
/// use polysig_lang::clock::{classify_endochrony, Endochrony};
/// use polysig_lang::parse_component;
///
/// let c = parse_component("process P { input a: int; output x: int; x := a + 1; }")?;
/// assert_eq!(classify_endochrony(&c), Endochrony::Endochronous);
///
/// let c = parse_component(
///     "process P { input y: int, z: int; output x: int, w: int; x := y; w := z; }",
/// )?;
/// assert!(matches!(classify_endochrony(&c), Endochrony::NonDeterministic { .. }));
/// # Ok::<(), polysig_lang::LangError>(())
/// ```
pub fn classify_endochrony(c: &Component) -> Endochrony {
    let inputs: BTreeSet<SigName> =
        c.decls.iter().filter(|d| d.role == Role::Input).map(|d| d.name.clone()).collect();
    analyze_component(c).endochrony(&inputs)
}

/// Guard-pattern query: the signal an expression is provably *synchronous*
/// with, treating constant-`true` guards as transparent (a constant adapts
/// to its context, so `e when true` and `e op k` keep `e`'s clock).
///
/// Returns `None` when the expression's clock is a strict subset or union
/// that no single signal determines. Used by the static rate analysis to
/// anchor a channel's write clock to an environment input.
pub fn const_guard_source(e: &Expr) -> Option<&SigName> {
    match e {
        Expr::Var(x) => Some(x),
        Expr::Const(_) => None,
        Expr::Pre { body, .. } => const_guard_source(body),
        Expr::Unary { arg, .. } => const_guard_source(arg),
        Expr::When { body, cond } => {
            if matches!(cond.as_ref(), Expr::Const(Value::Bool(true))) {
                const_guard_source(body)
            } else {
                None
            }
        }
        Expr::Default { left, right } => {
            match (const_guard_source(left), const_guard_source(right)) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            }
        }
        Expr::Binary { left, right, .. } => {
            match (const_guard_source(left), const_guard_source(right)) {
                (Some(a), Some(b)) if a == b => Some(a),
                // one constant operand adapts to the other side's clock
                (Some(a), None) if matches!(right.as_ref(), Expr::Const(_)) => Some(a),
                (None, Some(b)) if matches!(left.as_ref(), Expr::Const(_)) => Some(b),
                _ => None,
            }
        }
    }
}

/// Internal symbolic clock of an expression, over the analyzer's dense
/// signal indices (the hot path never touches a name).
enum ClockTerm {
    /// Same clock as a signal.
    Sig(u32),
    /// Sampled: included in the clocks of `uppers`.
    Sampled { uppers: BTreeSet<u32> },
    /// Union: includes the clocks of `lowers`; included in nothing known.
    Union { lowers: BTreeSet<u32>, uppers: BTreeSet<u32> },
    /// Adapts to context (constants).
    Context,
}

impl ClockTerm {
    fn uppers(&self) -> BTreeSet<u32> {
        match self {
            ClockTerm::Sig(s) => [*s].into(),
            ClockTerm::Sampled { uppers } | ClockTerm::Union { uppers, .. } => uppers.clone(),
            ClockTerm::Context => BTreeSet::new(),
        }
    }

    fn lowers(&self) -> BTreeSet<u32> {
        match self {
            ClockTerm::Sig(s) => [*s].into(),
            ClockTerm::Union { lowers, .. } => lowers.clone(),
            ClockTerm::Sampled { .. } | ClockTerm::Context => BTreeSet::new(),
        }
    }
}

struct Analyzer {
    /// Dense index per signal name, grown lazily for names the component
    /// never declares (resolution may not have run yet).
    index: polysig_tagged::hash::FxHashMap<SigName, u32>,
    names: Vec<SigName>,
    parent: Vec<u32>,
    /// subset edges between signals: (sub, sup)
    subset: BTreeSet<(u32, u32)>,
}

impl Analyzer {
    fn id(&mut self, x: &SigName) -> u32 {
        if let Some(&i) = self.index.get(x) {
            return i;
        }
        let i = self.names.len() as u32;
        self.index.insert(x.clone(), i);
        self.names.push(x.clone());
        self.parent.push(i);
        i
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // path compression
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }

    /// Clock of an expression; emits equality/subset constraints as a side
    /// effect.
    fn clock_of(&mut self, e: &Expr) -> ClockTerm {
        match e {
            Expr::Var(x) => ClockTerm::Sig(self.id(x)),
            Expr::Const(_) => ClockTerm::Context,
            Expr::Pre { body, .. } => self.clock_of(body),
            Expr::Unary { arg, .. } => self.clock_of(arg),
            Expr::When { body, cond } => {
                let tb = self.clock_of(body);
                let tc = self.clock_of(cond);
                let mut uppers = tb.uppers();
                uppers.extend(tc.uppers());
                ClockTerm::Sampled { uppers }
            }
            Expr::Default { left, right } => {
                let tl = self.clock_of(left);
                let tr = self.clock_of(right);
                let lowers: BTreeSet<u32> = tl.lowers().union(&tr.lowers()).copied().collect();
                let uppers: BTreeSet<u32> =
                    tl.uppers().intersection(&tr.uppers()).copied().collect();
                ClockTerm::Union { lowers, uppers }
            }
            Expr::Binary { left, right, .. } => {
                let tl = self.clock_of(left);
                let tr = self.clock_of(right);
                // synchronous arguments: unify when both sides name a signal
                if let (ClockTerm::Sig(a), ClockTerm::Sig(b)) = (&tl, &tr) {
                    self.union(*a, *b);
                }
                match (&tl, &tr) {
                    (ClockTerm::Context, _) => tr,
                    _ => tl,
                }
            }
        }
    }
}

/// Runs the clock calculus on a component.
///
/// ```
/// use polysig_lang::{clock::analyze_component, parse_component};
///
/// let c = parse_component(
///     "process P { input a: int, c: bool; output x: int, y: int; \
///      x := a when c; y := a + a; }",
/// )?;
/// let analysis = analyze_component(&c);
/// assert!(analysis.same_clock(&"y".into(), &"a".into()));
/// assert!(analysis.dominated_by(&"x".into(), &"a".into()));
/// # Ok::<(), polysig_lang::LangError>(())
/// ```
pub fn analyze_component(c: &Component) -> ClockAnalysis {
    let mut az = Analyzer {
        index: polysig_tagged::hash::FxHashMap::default(),
        names: Vec::with_capacity(c.decls.len()),
        parent: Vec::with_capacity(c.decls.len()),
        subset: BTreeSet::new(),
    };
    let decl_ids: Vec<u32> = c.decls.iter().map(|d| az.id(&d.name)).collect();
    for stmt in &c.stmts {
        match stmt {
            Statement::Eq(eq) => {
                let term = az.clock_of(&eq.rhs);
                let lhs = az.id(&eq.lhs);
                match &term {
                    ClockTerm::Sig(y) => az.union(lhs, *y),
                    ClockTerm::Context => {}
                    _ => {
                        for u in term.uppers() {
                            az.subset.insert((lhs, u));
                        }
                        for l in term.lowers() {
                            az.subset.insert((l, lhs));
                        }
                    }
                }
            }
            Statement::Sync(names) => {
                for w in names.windows(2) {
                    let (a, b) = (az.id(&w[0]), az.id(&w[1]));
                    az.union(a, b);
                }
            }
        }
    }

    // build classes over the declared signals, in declaration order
    let mut rep_to_class: Vec<usize> = vec![usize::MAX; az.names.len()];
    let mut classes: Vec<ClockClass> = Vec::new();
    let mut class_of: BTreeMap<SigName, usize> = BTreeMap::new();
    let mut class_of_id: Vec<usize> = vec![usize::MAX; az.names.len()];
    for (&sid, d) in decl_ids.iter().zip(&c.decls) {
        let rep = az.find(sid) as usize;
        if rep_to_class[rep] == usize::MAX {
            rep_to_class[rep] = classes.len();
            classes.push(ClockClass { id: classes.len(), members: Vec::new() });
        }
        let id = rep_to_class[rep];
        classes[id].members.push(d.name.clone());
        class_of.insert(d.name.clone(), id);
        class_of_id[sid as usize] = id;
    }

    // subset edges between classes
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for &(sub, sup) in &az.subset {
        let (a, b) = (class_of_id[sub as usize], class_of_id[sup as usize]);
        if a != b && a != usize::MAX && b != usize::MAX {
            edges.insert((a, b));
        }
    }

    // transitive closure (tiny graphs — Floyd-Warshall style)
    let n = classes.len();
    let mut closure = edges.clone();
    loop {
        let mut grew = false;
        let snapshot: Vec<(usize, usize)> = closure.iter().copied().collect();
        for &(a, b) in &snapshot {
            for k in 0..n {
                if closure.contains(&(b, k)) && a != k && closure.insert((a, k)) {
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }

    ClockAnalysis { classes, class_of, edges, closure }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_component;

    fn analyze(src: &str) -> ClockAnalysis {
        analyze_component(&parse_component(src).unwrap())
    }

    #[test]
    fn pre_and_pointwise_ops_synchronize() {
        let a =
            analyze("process P { input y: int; output x: int, z: int; x := pre 0 y; z := x + y; }");
        assert!(a.same_clock(&"x".into(), &"y".into()));
        assert!(a.same_clock(&"z".into(), &"y".into()));
    }

    #[test]
    fn when_gives_subset() {
        let a = analyze("process P { input y: int, c: bool; output x: int; x := y when c; }");
        assert!(a.dominated_by(&"x".into(), &"y".into()));
        assert!(a.dominated_by(&"x".into(), &"c".into()));
        assert!(!a.same_clock(&"x".into(), &"y".into()));
    }

    #[test]
    fn default_gives_superset() {
        let a = analyze("process P { input y: int, z: int; output x: int; x := y default z; }");
        assert!(a.dominated_by(&"y".into(), &"x".into()));
        assert!(a.dominated_by(&"z".into(), &"x".into()));
    }

    #[test]
    fn sync_constraints_unify() {
        let a =
            analyze("process P { input y: int, z: int; output x: int; x := y default z; x ^= y; }");
        assert!(a.same_clock(&"x".into(), &"y".into()));
        // z ⊆ x = y
        assert!(a.dominated_by(&"z".into(), &"y".into()));
    }

    #[test]
    fn dominance_is_transitive() {
        let a = analyze(
            "process P { input y: int, c: bool, d: bool; output x: int, w: int; \
             x := y when c; w := x when d; }",
        );
        assert!(a.dominated_by(&"w".into(), &"x".into()));
        assert!(a.dominated_by(&"w".into(), &"y".into()));
        assert!(!a.dominated_by(&"y".into(), &"w".into()));
    }

    #[test]
    fn masters_of_flat_component() {
        let a = analyze("process P { input y: int; output x: int; x := pre 0 y; }");
        // single class → single master → rooted
        assert_eq!(a.classes.len(), 1);
        assert_eq!(a.masters().len(), 1);
        assert!(a.is_rooted());
    }

    #[test]
    fn rooted_hierarchy_detected() {
        let a =
            analyze("process P { input y: int, c: bool; output x: int; x := y when c; y ^= c; }");
        // y = c is the unique master; x below it
        assert!(a.is_rooted());
    }

    #[test]
    fn unrooted_when_two_independent_inputs() {
        let a =
            analyze("process P { input y: int, z: int; output x: int, w: int; x := y; w := z; }");
        // y-class and z-class are unrelated maximal classes
        assert!(!a.is_rooted());
        assert!(a.masters().len() >= 2);
    }

    #[test]
    fn clock_of_has_operand_clock() {
        let a = analyze("process P { input y: int; output k: bool; k := ^y; }");
        assert!(a.same_clock(&"k".into(), &"y".into()));
    }

    #[test]
    fn constants_adapt_to_context() {
        let a = analyze("process P { input y: int; output x: int; x := y + 1; }");
        assert!(a.same_clock(&"x".into(), &"y".into()));
    }

    #[test]
    fn mutual_inclusion_is_equal_clock() {
        // x := (y when c) default y: x ⊆ y and y ⊆ x, different classes
        let a = analyze(
            "process P { input y: int, c: bool; output x: int; x := (y when c) default y; }",
        );
        assert!(!a.same_clock(&"x".into(), &"y".into()));
        assert!(a.equal_clock(&"x".into(), &"y".into()));
        // the guard only bounds the sampled branch: c stays unrelated
        assert!(!a.equal_clock(&"c".into(), &"y".into()));
    }

    #[test]
    fn root_of_rooted_hierarchy_dominates_all() {
        let a =
            analyze("process P { input y: int, c: bool; output x: int; x := y when c; y ^= c; }");
        let root = a.root().unwrap();
        assert!(a.classes[root].members.contains(&"y".into()));
        let flat = analyze("process P { input y: int; output x: int; x := pre 0 y; }");
        assert_eq!(flat.root(), Some(0));
        let split =
            analyze("process P { input y: int, z: int; output x: int, w: int; x := y; w := z; }");
        assert_eq!(split.root(), None);
    }

    #[test]
    fn endochrony_classification() {
        use crate::parser::parse_component;

        // input-anchored root: endochronous
        let c = parse_component("process P { input a: int; output x: int; x := a + 1; }").unwrap();
        assert_eq!(classify_endochrony(&c), Endochrony::Endochronous);

        // rooted in an internal master: endochronizable
        let c = parse_component(
            "process P { input a: int; output x: int; local m: bool; \
             m := (^a) default (pre false m); x := a when m; }",
        )
        .unwrap();
        match classify_endochrony(&c) {
            Endochrony::Endochronizable { master } => {
                assert!(master.contains(&"m".into()), "master {master:?}");
            }
            other => panic!("expected Endochronizable, got {other:?}"),
        }

        // two unrelated input clocks: non-deterministic
        let c = parse_component(
            "process P { input y: int, z: int; output x: int, w: int; x := y; w := z; }",
        )
        .unwrap();
        match classify_endochrony(&c) {
            Endochrony::NonDeterministic { masters } => assert!(masters.len() >= 2),
            other => panic!("expected NonDeterministic, got {other:?}"),
        }

        // the mutually-included accumulator stays endochronous
        let c = parse_component(
            "process Acc { input tick: bool; output n: int; local np: int; \
             np := (pre 0 n) when tick; n := (0 when (np = 3)) default (np + 1); n ^= tick; }",
        )
        .unwrap();
        assert_eq!(classify_endochrony(&c), Endochrony::Endochronous);
    }

    #[test]
    fn const_guard_source_peels_transparent_guards() {
        use crate::parser::parse_expr;

        let src = |s: &str| {
            let e = parse_expr(s).unwrap();
            const_guard_source(&e).map(|n| n.as_str().to_string())
        };
        assert_eq!(src("a + 1"), Some("a".into()));
        assert_eq!(src("pre 0 a"), Some("a".into()));
        assert_eq!(src("a when true"), Some("a".into()));
        assert_eq!(src("(a when true) default a"), Some("a".into()));
        assert_eq!(src("a when c"), None);
        assert_eq!(src("a default b"), None);
        assert_eq!(src("3"), None);
        assert_eq!(src("a + a"), Some("a".into()));
    }
}
