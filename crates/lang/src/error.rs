//! Error type shared by all language passes.

use std::fmt;

use polysig_tagged::{SigName, ValueType};

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors from lexing, parsing, resolution or type checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// An unexpected character in the source text.
    Lex {
        /// Where it was found.
        pos: Pos,
        /// A short description.
        message: String,
    },
    /// A parse error.
    Parse {
        /// Where it was found.
        pos: Pos,
        /// What was expected / found.
        message: String,
    },
    /// A signal is used but never declared.
    UndeclaredSignal {
        /// Component in which the use occurs.
        component: String,
        /// The undeclared name.
        name: SigName,
    },
    /// A signal is defined by more than one equation.
    MultipleDefinitions {
        /// Component in which the conflict occurs.
        component: String,
        /// The doubly defined name.
        name: SigName,
    },
    /// An input signal appears on the left-hand side of an equation.
    InputDefined {
        /// Component in which the violation occurs.
        component: String,
        /// The written input.
        name: SigName,
    },
    /// An output or local signal has no defining equation.
    MissingDefinition {
        /// Component in which the signal was declared.
        component: String,
        /// The undefined name.
        name: SigName,
    },
    /// Two components both output the same signal (single-writer rule of
    /// Definition 7).
    MultipleWriters {
        /// The shared name.
        name: SigName,
        /// The two offending components.
        components: (String, String),
    },
    /// A name is declared twice in one component.
    DuplicateDeclaration {
        /// Component in which the duplicate occurs.
        component: String,
        /// The duplicated name.
        name: SigName,
    },
    /// A type mismatch.
    Type {
        /// Component in which the mismatch occurs.
        component: String,
        /// The offending signal (the equation's LHS).
        signal: SigName,
        /// Expected type.
        expected: ValueType,
        /// Found type.
        found: ValueType,
        /// Where in the expression, informally.
        context: String,
    },
    /// An instantaneous causality cycle (detected by `deps`).
    CausalityCycle {
        /// Component in which the cycle occurs.
        component: String,
        /// The signals on the cycle, in order.
        cycle: Vec<SigName>,
    },
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { pos, message } => write!(f, "lexical error at {pos}: {message}"),
            LangError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            LangError::UndeclaredSignal { component, name } => {
                write!(f, "component `{component}`: signal `{name}` is not declared")
            }
            LangError::MultipleDefinitions { component, name } => {
                write!(f, "component `{component}`: signal `{name}` is defined more than once")
            }
            LangError::InputDefined { component, name } => {
                write!(f, "component `{component}`: input signal `{name}` must not be defined")
            }
            LangError::MissingDefinition { component, name } => {
                write!(f, "component `{component}`: signal `{name}` has no defining equation")
            }
            LangError::MultipleWriters { name, components } => write!(
                f,
                "signal `{name}` is written by both `{}` and `{}`",
                components.0, components.1
            ),
            LangError::DuplicateDeclaration { component, name } => {
                write!(f, "component `{component}`: `{name}` is declared twice")
            }
            LangError::Type { component, signal, expected, found, context } => write!(
                f,
                "component `{component}`, equation for `{signal}`: expected {expected}, found {found} ({context})"
            ),
            LangError::CausalityCycle { component, cycle } => {
                write!(f, "component `{component}`: instantaneous causality cycle: ")?;
                for (i, s) in cycle.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{s}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let errors = [
            LangError::Lex { pos: Pos { line: 1, col: 2 }, message: "bad char".into() },
            LangError::Parse { pos: Pos { line: 3, col: 4 }, message: "expected `;`".into() },
            LangError::UndeclaredSignal { component: "C".into(), name: "x".into() },
            LangError::MultipleDefinitions { component: "C".into(), name: "x".into() },
            LangError::InputDefined { component: "C".into(), name: "x".into() },
            LangError::MissingDefinition { component: "C".into(), name: "x".into() },
            LangError::MultipleWriters { name: "x".into(), components: ("A".into(), "B".into()) },
            LangError::DuplicateDeclaration { component: "C".into(), name: "x".into() },
            LangError::Type {
                component: "C".into(),
                signal: "x".into(),
                expected: ValueType::Int,
                found: ValueType::Bool,
                context: "left operand of +".into(),
            },
            LangError::CausalityCycle {
                component: "C".into(),
                cycle: vec!["a".into(), "b".into()],
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<LangError>();
    }
}
