//! Fluent programmatic construction of components.
//!
//! The desynchronization transformation in `polysig-gals` generates FIFO and
//! instrumentation components on the fly; this builder keeps that code
//! readable.

use polysig_tagged::{SigName, ValueType};

use crate::ast::{Component, Declaration, Equation, Expr, Program, Role, Statement};

/// Builds a [`Component`] declaration-by-declaration, equation-by-equation.
///
/// ```
/// use polysig_lang::{ComponentBuilder, Expr};
/// use polysig_tagged::ValueType;
///
/// let c = ComponentBuilder::new("Double")
///     .input("a", ValueType::Int)
///     .output("x", ValueType::Int)
///     .equation("x", Expr::var("a").binop(polysig_lang::Binop::Add, Expr::var("a")))
///     .build();
/// assert_eq!(c.equations().count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ComponentBuilder {
    component: Component,
}

impl ComponentBuilder {
    /// Starts a new component.
    pub fn new(name: impl Into<String>) -> Self {
        ComponentBuilder { component: Component::new(name) }
    }

    /// Declares an input signal.
    pub fn input(mut self, name: impl Into<SigName>, ty: ValueType) -> Self {
        self.component.decls.push(Declaration { name: name.into(), role: Role::Input, ty });
        self
    }

    /// Declares an output signal.
    pub fn output(mut self, name: impl Into<SigName>, ty: ValueType) -> Self {
        self.component.decls.push(Declaration { name: name.into(), role: Role::Output, ty });
        self
    }

    /// Declares a local signal.
    pub fn local(mut self, name: impl Into<SigName>, ty: ValueType) -> Self {
        self.component.decls.push(Declaration { name: name.into(), role: Role::Local, ty });
        self
    }

    /// Adds an equation `lhs := rhs`.
    pub fn equation(mut self, lhs: impl Into<SigName>, rhs: Expr) -> Self {
        self.component.stmts.push(Statement::Eq(Equation { lhs: lhs.into(), rhs }));
        self
    }

    /// Adds a clock synchronization constraint over the given signals.
    pub fn sync<I, N>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = N>,
        N: Into<SigName>,
    {
        self.component.stmts.push(Statement::Sync(names.into_iter().map(Into::into).collect()));
        self
    }

    /// Finishes the component.
    pub fn build(self) -> Component {
        self.component
    }

    /// Finishes the component and wraps it in a single-component
    /// [`Program`].
    pub fn build_program(self) -> Program {
        Program::single(self.component)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::resolve_component;
    use polysig_tagged::Value;

    #[test]
    fn builder_produces_resolvable_component() {
        let c = ComponentBuilder::new("Acc")
            .input("tick", ValueType::Bool)
            .output("n", ValueType::Int)
            .equation(
                "n",
                Expr::var("n")
                    .pre(Value::Int(0))
                    .binop(crate::ast::Binop::Add, Expr::int(1).when(Expr::var("tick"))),
            )
            .build();
        assert!(resolve_component(&c).is_ok());
    }

    #[test]
    fn builder_matches_parsed_component() {
        let built = ComponentBuilder::new("P")
            .input("a", ValueType::Int)
            .output("x", ValueType::Int)
            .equation("x", Expr::var("a"))
            .sync(["x", "a"])
            .build();
        let parsed = crate::parser::parse_component(
            "process P { input a: int; output x: int; x := a; x ^= a; }",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn build_program_wraps_single_component() {
        let p = ComponentBuilder::new("Solo")
            .output("x", ValueType::Bool)
            .equation("x", Expr::bool(true).when(Expr::bool(true)))
            .build_program();
        assert_eq!(p.name, "Solo");
        assert_eq!(p.components.len(), 1);
    }
}
