//! Instantaneous data dependencies and causality-cycle detection.
//!
//! Within one reaction, the value of `x := e` depends on the current values
//! of the signals `e` reads *outside* any `pre` (a `pre` delivers last
//! instant's value, breaking the instantaneous dependency — this is how
//! Signal programs close feedback loops). A cycle in this graph means no
//! constructive evaluation order exists and the component is rejected.

use std::collections::{BTreeMap, BTreeSet};

use polysig_tagged::SigName;

use crate::ast::{Component, Statement};
use crate::error::LangError;

/// The instantaneous dependency graph of a component.
///
/// ```
/// use polysig_lang::{deps::DependencyGraph, parse_component};
///
/// let c = parse_component(
///     "process P { input a: int; output x: int, y: int; x := a + 1; y := x * 2; }",
/// )?;
/// let g = DependencyGraph::of_component(&c);
/// let order = g.topological_order()?;
/// let xi = order.iter().position(|s| s.as_str() == "x").unwrap();
/// let yi = order.iter().position(|s| s.as_str() == "y").unwrap();
/// assert!(xi < yi);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DependencyGraph {
    component: String,
    /// `deps[x]` = signals whose current value `x` needs.
    deps: BTreeMap<SigName, BTreeSet<SigName>>,
}

impl DependencyGraph {
    /// Builds the graph for a component. Every declared signal appears as a
    /// node; inputs have no dependencies.
    pub fn of_component(c: &Component) -> Self {
        let mut deps: BTreeMap<SigName, BTreeSet<SigName>> = BTreeMap::new();
        for d in &c.decls {
            deps.entry(d.name.clone()).or_default();
        }
        for stmt in &c.stmts {
            if let Statement::Eq(eq) = stmt {
                let mut vars = BTreeSet::new();
                eq.rhs.collect_instant_vars(&mut vars);
                deps.entry(eq.lhs.clone()).or_default().extend(vars);
            }
        }
        DependencyGraph { component: c.name.clone(), deps }
    }

    /// The direct dependencies of a signal.
    pub fn deps_of(&self, name: &SigName) -> impl Iterator<Item = &SigName> + '_ {
        self.deps.get(name).into_iter().flatten()
    }

    /// Iterates every node (declared signals and equation left-hand sides).
    pub fn nodes(&self) -> impl Iterator<Item = &SigName> + '_ {
        self.deps.keys()
    }

    /// The component this graph was built from.
    pub fn component_name(&self) -> &str {
        &self.component
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// `true` iff the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Returns an evaluation order in which every signal comes after its
    /// instantaneous dependencies.
    ///
    /// # Errors
    ///
    /// Returns [`LangError::CausalityCycle`] naming the signals on a cycle
    /// when the graph is cyclic.
    pub fn topological_order(&self) -> Result<Vec<SigName>, LangError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks: BTreeMap<&SigName, Mark> =
            self.deps.keys().map(|k| (k, Mark::White)).collect();
        let mut order = Vec::new();
        let mut stack_trace: Vec<SigName> = Vec::new();

        fn visit<'a>(
            node: &'a SigName,
            deps: &'a BTreeMap<SigName, BTreeSet<SigName>>,
            marks: &mut BTreeMap<&'a SigName, Mark>,
            order: &mut Vec<SigName>,
            trace: &mut Vec<SigName>,
        ) -> Result<(), Vec<SigName>> {
            match marks.get(node).copied() {
                Some(Mark::Black) => return Ok(()),
                Some(Mark::Grey) => {
                    // found a cycle: cut the trace at the first occurrence
                    let start = trace.iter().position(|s| s == node).unwrap_or(0);
                    let mut cycle = trace[start..].to_vec();
                    cycle.push(node.clone());
                    return Err(cycle);
                }
                _ => {}
            }
            marks.insert(node, Mark::Grey);
            trace.push(node.clone());
            if let Some(ds) = deps.get(node) {
                for d in ds {
                    if deps.contains_key(d) {
                        visit(d, deps, marks, order, trace)?;
                    }
                }
            }
            trace.pop();
            marks.insert(node, Mark::Black);
            order.push(node.clone());
            Ok(())
        }

        let keys: Vec<&SigName> = self.deps.keys().collect();
        for node in keys {
            visit(node, &self.deps, &mut marks, &mut order, &mut stack_trace).map_err(|cycle| {
                LangError::CausalityCycle { component: self.component.clone(), cycle }
            })?;
        }
        Ok(order)
    }

    /// Convenience: `true` iff the component has no instantaneous cycle.
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_component;

    fn graph(src: &str) -> DependencyGraph {
        DependencyGraph::of_component(&parse_component(src).unwrap())
    }

    #[test]
    fn chain_orders_correctly() {
        let g = graph(
            "process P { input a: int; output x: int, y: int, z: int; \
             x := a; y := x; z := y + x; }",
        );
        let order = g.topological_order().unwrap();
        let pos = |n: &str| order.iter().position(|s| s.as_str() == n).unwrap();
        assert!(pos("a") < pos("x"));
        assert!(pos("x") < pos("y"));
        assert!(pos("y") < pos("z"));
    }

    #[test]
    fn pre_breaks_cycles() {
        // the classic accumulator: n depends on its own previous value
        let g =
            graph("process P { input tick: bool; output n: int; n := (pre 0 n) + (1 when tick); }");
        assert!(g.is_acyclic());
    }

    #[test]
    fn instantaneous_self_loop_is_a_cycle() {
        let g = graph("process P { output n: int; n := n + 1; }");
        let err = g.topological_order().unwrap_err();
        match err {
            LangError::CausalityCycle { cycle, .. } => {
                assert!(cycle.iter().any(|s| s.as_str() == "n"));
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn two_signal_cycle_detected_with_members() {
        let g = graph("process P { output a: int, b: int; a := b + 1; b := a - 1; }");
        let err = g.topological_order().unwrap_err();
        match err {
            LangError::CausalityCycle { cycle, .. } => {
                let names: Vec<&str> = cycle.iter().map(|s| s.as_str()).collect();
                assert!(names.contains(&"a"));
                assert!(names.contains(&"b"));
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn cycle_through_when_and_default_detected() {
        let g = graph(
            "process P { input c: bool; output a: int, b: int; \
             a := b when c; b := a default 0; }",
        );
        assert!(!g.is_acyclic());
    }

    #[test]
    fn paper_one_place_buffer_is_acyclic() {
        // `full` reads only pre values of in/out/full — no instantaneous cycle
        let g = graph(
            r#"
            process OneFifo {
                input msgin: int, rd: bool;
                output msgout: int;
                local data: int, full: bool, inw: bool, outw: bool;
                data := (msgin when (not full)) default (pre 0 data);
                msgout := data when rd;
                inw := (^msgin) default false;
                outw := (^msgout) default false;
                full := ((pre false inw) and (not (pre false outw))) default (pre false full);
            }
            "#,
        );
        assert!(g.is_acyclic());
    }

    #[test]
    fn inputs_have_no_dependencies() {
        let g = graph("process P { input a: int; output x: int; x := a; }");
        assert_eq!(g.deps_of(&"a".into()).count(), 0);
        assert_eq!(g.deps_of(&"x".into()).count(), 1);
        assert_eq!(g.len(), 2);
    }
}
