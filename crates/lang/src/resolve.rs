//! Name resolution and single-writer checking.
//!
//! Enforces the static sanity rules the paper assumes:
//!
//! * every used signal is declared;
//! * inputs are never defined; outputs and locals are defined exactly once;
//! * across components, a signal has at most one writer (the paper's
//!   single-producer assumption below Theorem 2 — multi-producer designs
//!   must go through explicit fork/merge components).

use std::collections::{BTreeMap, BTreeSet};

use polysig_tagged::SigName;

use crate::ast::{Component, Program, Role, Statement};
use crate::error::LangError;

/// Resolves one component.
///
/// # Errors
///
/// Returns the first violated rule as a [`LangError`].
pub fn resolve_component(c: &Component) -> Result<(), LangError> {
    // no duplicate declarations
    let mut seen: BTreeSet<&SigName> = BTreeSet::new();
    for d in &c.decls {
        if !seen.insert(&d.name) {
            return Err(LangError::DuplicateDeclaration {
                component: c.name.clone(),
                name: d.name.clone(),
            });
        }
    }
    let declared: BTreeSet<SigName> = c.names();

    let mut defined: BTreeSet<SigName> = BTreeSet::new();
    for stmt in &c.stmts {
        match stmt {
            Statement::Eq(eq) => {
                if !declared.contains(&eq.lhs) {
                    return Err(LangError::UndeclaredSignal {
                        component: c.name.clone(),
                        name: eq.lhs.clone(),
                    });
                }
                if c.decl(&eq.lhs).expect("declared").role == Role::Input {
                    return Err(LangError::InputDefined {
                        component: c.name.clone(),
                        name: eq.lhs.clone(),
                    });
                }
                if !defined.insert(eq.lhs.clone()) {
                    return Err(LangError::MultipleDefinitions {
                        component: c.name.clone(),
                        name: eq.lhs.clone(),
                    });
                }
                for v in eq.rhs.free_vars() {
                    if !declared.contains(&v) {
                        return Err(LangError::UndeclaredSignal {
                            component: c.name.clone(),
                            name: v,
                        });
                    }
                }
            }
            Statement::Sync(names) => {
                for n in names {
                    if !declared.contains(n) {
                        return Err(LangError::UndeclaredSignal {
                            component: c.name.clone(),
                            name: n.clone(),
                        });
                    }
                }
            }
        }
    }

    // outputs and locals must be defined
    for d in &c.decls {
        if d.role != Role::Input && !defined.contains(&d.name) {
            return Err(LangError::MissingDefinition {
                component: c.name.clone(),
                name: d.name.clone(),
            });
        }
    }
    Ok(())
}

/// Resolves a whole program: each component individually, plus the
/// program-level single-writer rule.
///
/// # Errors
///
/// Returns the first violated rule as a [`LangError`].
pub fn resolve_program(p: &Program) -> Result<(), LangError> {
    let mut writer: BTreeMap<SigName, String> = BTreeMap::new();
    for c in &p.components {
        resolve_component(c)?;
        for d in c.signals_with_role(Role::Output) {
            if let Some(prev) = writer.insert(d.name.clone(), c.name.clone()) {
                return Err(LangError::MultipleWriters {
                    name: d.name.clone(),
                    components: (prev, c.name.clone()),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_component, parse_program};

    #[test]
    fn accepts_well_formed_component() {
        let c = parse_component(
            "process P { input a: int; output b: int; local c: int; c := a; b := c + 1; }",
        )
        .unwrap();
        assert!(resolve_component(&c).is_ok());
    }

    #[test]
    fn rejects_undeclared_use() {
        let c = parse_component("process P { output b: int; b := mystery; }").unwrap();
        assert!(matches!(resolve_component(&c), Err(LangError::UndeclaredSignal { .. })));
    }

    #[test]
    fn rejects_undeclared_lhs() {
        let c =
            parse_component("process P { output b: int; b := 1 when true; ghost := b; }").unwrap();
        assert!(matches!(resolve_component(&c), Err(LangError::UndeclaredSignal { .. })));
    }

    #[test]
    fn rejects_defined_input() {
        let c = parse_component("process P { input a: int; a := 1 when true; }").unwrap();
        assert!(matches!(resolve_component(&c), Err(LangError::InputDefined { .. })));
    }

    #[test]
    fn rejects_double_definition() {
        let c = parse_component("process P { output b: int; b := 1 when true; b := 2 when true; }")
            .unwrap();
        assert!(matches!(resolve_component(&c), Err(LangError::MultipleDefinitions { .. })));
    }

    #[test]
    fn rejects_missing_definition() {
        let c = parse_component("process P { output b: int; }").unwrap();
        assert!(matches!(resolve_component(&c), Err(LangError::MissingDefinition { .. })));
    }

    #[test]
    fn rejects_duplicate_declaration() {
        let c =
            parse_component("process P { input a: int; local a: int; a := 1 when true; }").unwrap();
        assert!(matches!(resolve_component(&c), Err(LangError::DuplicateDeclaration { .. })));
    }

    #[test]
    fn rejects_undeclared_in_sync() {
        let c = parse_component("process P { input a: int; a ^= nothere; }").unwrap();
        assert!(matches!(resolve_component(&c), Err(LangError::UndeclaredSignal { .. })));
    }

    #[test]
    fn program_single_writer_rule() {
        let good = parse_program(
            "process A { output x: int; x := 1 when true; } process B { input x: int; }",
        )
        .unwrap();
        assert!(resolve_program(&good).is_ok());

        let bad = parse_program(
            "process A { output x: int; x := 1 when true; } process B { output x: int; x := 2 when true; }",
        )
        .unwrap();
        assert!(matches!(resolve_program(&bad), Err(LangError::MultipleWriters { .. })));
    }
}
