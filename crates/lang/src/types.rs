//! Type checking (bool/int, the paper's value domain `V`).

use polysig_tagged::ValueType;

use crate::ast::{Binop, Component, Expr, Program, Statement, Unop};
use crate::error::LangError;

/// Infers the type of an expression inside a component.
///
/// # Errors
///
/// Returns a [`LangError::Type`] (attributed to `signal`, the equation's
/// left-hand side) on any mismatch, or [`LangError::UndeclaredSignal`] for
/// unknown names.
pub fn infer_expr(
    c: &Component,
    signal: &polysig_tagged::SigName,
    e: &Expr,
) -> Result<ValueType, LangError> {
    let type_err = |expected: ValueType, found: ValueType, context: &str| LangError::Type {
        component: c.name.clone(),
        signal: signal.clone(),
        expected,
        found,
        context: context.to_string(),
    };
    match e {
        Expr::Var(x) => c.decl(x).map(|d| d.ty).ok_or_else(|| LangError::UndeclaredSignal {
            component: c.name.clone(),
            name: x.clone(),
        }),
        Expr::Const(v) => Ok(v.ty()),
        Expr::Pre { init, body } => {
            let t = infer_expr(c, signal, body)?;
            if init.ty() != t {
                return Err(type_err(t, init.ty(), "initial value of pre"));
            }
            Ok(t)
        }
        Expr::When { body, cond } => {
            let tc = infer_expr(c, signal, cond)?;
            if tc != ValueType::Bool {
                return Err(type_err(ValueType::Bool, tc, "condition of when"));
            }
            infer_expr(c, signal, body)
        }
        Expr::Default { left, right } => {
            let tl = infer_expr(c, signal, left)?;
            let tr = infer_expr(c, signal, right)?;
            if tl != tr {
                return Err(type_err(tl, tr, "right operand of default"));
            }
            Ok(tl)
        }
        Expr::Unary { op, arg } => {
            let ta = infer_expr(c, signal, arg)?;
            match op {
                Unop::Not => {
                    if ta != ValueType::Bool {
                        return Err(type_err(ValueType::Bool, ta, "operand of not"));
                    }
                    Ok(ValueType::Bool)
                }
                Unop::Neg => {
                    if ta != ValueType::Int {
                        return Err(type_err(ValueType::Int, ta, "operand of unary -"));
                    }
                    Ok(ValueType::Int)
                }
                Unop::ClockOf => Ok(ValueType::Bool),
            }
        }
        Expr::Binary { op, left, right } => {
            let tl = infer_expr(c, signal, left)?;
            let tr = infer_expr(c, signal, right)?;
            if op.takes_ints() {
                if tl != ValueType::Int {
                    return Err(type_err(ValueType::Int, tl, "left operand"));
                }
                if tr != ValueType::Int {
                    return Err(type_err(ValueType::Int, tr, "right operand"));
                }
            } else if matches!(op, Binop::And | Binop::Or) {
                if tl != ValueType::Bool {
                    return Err(type_err(ValueType::Bool, tl, "left operand"));
                }
                if tr != ValueType::Bool {
                    return Err(type_err(ValueType::Bool, tr, "right operand"));
                }
            } else if tl != tr {
                // Eq / Ne over equal types
                return Err(type_err(tl, tr, "operands of comparison"));
            }
            Ok(if op.returns_bool() { ValueType::Bool } else { ValueType::Int })
        }
    }
}

/// Checks every equation of a component against its declarations.
///
/// # Errors
///
/// Returns the first type mismatch found.
pub fn check_component(c: &Component) -> Result<(), LangError> {
    for stmt in &c.stmts {
        if let Statement::Eq(eq) = stmt {
            let declared = c
                .decl(&eq.lhs)
                .ok_or_else(|| LangError::UndeclaredSignal {
                    component: c.name.clone(),
                    name: eq.lhs.clone(),
                })?
                .ty;
            let inferred = infer_expr(c, &eq.lhs, &eq.rhs)?;
            if declared != inferred {
                return Err(LangError::Type {
                    component: c.name.clone(),
                    signal: eq.lhs.clone(),
                    expected: declared,
                    found: inferred,
                    context: "equation right-hand side".to_string(),
                });
            }
        }
    }
    Ok(())
}

/// Checks every component of a program, plus cross-component interface
/// consistency (a shared signal must be declared with the same type
/// everywhere).
///
/// # Errors
///
/// Returns the first type mismatch found.
pub fn check_program(p: &Program) -> Result<(), LangError> {
    for c in &p.components {
        check_component(c)?;
    }
    // interface types agree across components
    let mut seen: std::collections::BTreeMap<polysig_tagged::SigName, (String, ValueType)> =
        std::collections::BTreeMap::new();
    for c in &p.components {
        for d in &c.decls {
            if d.role == crate::ast::Role::Local {
                continue;
            }
            if let Some((other, ty)) = seen.get(&d.name) {
                if *ty != d.ty {
                    return Err(LangError::Type {
                        component: c.name.clone(),
                        signal: d.name.clone(),
                        expected: *ty,
                        found: d.ty,
                        context: format!("interface mismatch with component `{other}`"),
                    });
                }
            } else {
                seen.insert(d.name.clone(), (c.name.clone(), d.ty));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_component, parse_program};

    #[test]
    fn accepts_well_typed_buffer_fragment() {
        let c = parse_component(
            r#"
            process P {
                input msgin: int, rd: bool;
                output msgout: int;
                local data: int, full: bool;
                data := (msgin when (not full)) default (pre 0 data);
                full := (^msgin) default (pre false full);
                msgout := data when rd;
            }
            "#,
        )
        .unwrap();
        assert!(check_component(&c).is_ok());
    }

    #[test]
    fn rejects_bool_plus_int() {
        let c = parse_component("process P { input b: bool; output x: int; x := b + 1; }").unwrap();
        assert!(matches!(check_component(&c), Err(LangError::Type { .. })));
    }

    #[test]
    fn rejects_int_condition() {
        let c =
            parse_component("process P { input a: int; output x: int; x := a when a; }").unwrap();
        let err = check_component(&c).unwrap_err();
        match err {
            LangError::Type { context, .. } => assert!(context.contains("when")),
            other => panic!("expected type error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_mixed_default() {
        let c = parse_component(
            "process P { input a: int, b: bool; output x: int; x := a default b; }",
        )
        .unwrap();
        assert!(matches!(check_component(&c), Err(LangError::Type { .. })));
    }

    #[test]
    fn rejects_pre_init_mismatch() {
        let c =
            parse_component("process P { input a: int; output x: int; x := pre true a; }").unwrap();
        let err = check_component(&c).unwrap_err();
        match err {
            LangError::Type { context, .. } => assert!(context.contains("pre")),
            other => panic!("expected type error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_lhs_mismatch() {
        let c = parse_component("process P { input a: int; output x: bool; x := a; }").unwrap();
        assert!(matches!(check_component(&c), Err(LangError::Type { .. })));
    }

    #[test]
    fn clock_of_is_bool() {
        let c = parse_component("process P { input a: int; output x: bool; x := ^a; }").unwrap();
        assert!(check_component(&c).is_ok());
    }

    #[test]
    fn comparison_requires_equal_types() {
        let c = parse_component("process P { input a: int, b: bool; output x: bool; x := a = b; }")
            .unwrap();
        assert!(matches!(check_component(&c), Err(LangError::Type { .. })));
    }

    #[test]
    fn interface_types_must_agree_across_components() {
        let p = parse_program(
            "process A { output x: int; x := 1 when true; } process B { input x: bool; }",
        )
        .unwrap();
        assert!(matches!(check_program(&p), Err(LangError::Type { .. })));
    }

    #[test]
    fn logic_ops_type_check() {
        let c = parse_component(
            "process P { input a: bool, b: bool; output x: bool; x := (a and b) or not a; }",
        )
        .unwrap();
        assert!(check_component(&c).is_ok());
    }
}
