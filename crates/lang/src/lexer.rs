//! Lexer for the concrete Signal syntax.

use crate::error::{LangError, Pos};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// `process`
    KwProcess,
    /// `input`
    KwInput,
    /// `output`
    KwOutput,
    /// `local`
    KwLocal,
    /// `int`
    KwIntTy,
    /// `bool`
    KwBoolTy,
    /// `true`
    KwTrue,
    /// `false`
    KwFalse,
    /// `pre`
    KwPre,
    /// `when`
    KwWhen,
    /// `default`
    KwDefault,
    /// `not`
    KwNot,
    /// `and`
    KwAnd,
    /// `or`
    KwOr,
    /// `sync` — alternative spelling for clock constraints
    KwSync,
    /// `:=`
    Assign,
    /// `^=`
    SyncEq,
    /// `^`
    Caret,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `/=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Where it starts.
    pub pos: Pos,
}

/// Tokenizes a source string.
///
/// Comments run from `--` to end of line.
///
/// # Errors
///
/// Returns [`LangError::Lex`] on unexpected characters or malformed
/// literals.
///
/// ```
/// use polysig_lang::lexer::{tokenize, Token};
/// let toks = tokenize("x := y when z;")?;
/// assert_eq!(toks[1].token, Token::Assign);
/// # Ok::<(), polysig_lang::LangError>(())
/// ```
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, LangError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    let keyword = |s: &str| -> Option<Token> {
        Some(match s {
            "process" => Token::KwProcess,
            "input" => Token::KwInput,
            "output" => Token::KwOutput,
            "local" => Token::KwLocal,
            "int" => Token::KwIntTy,
            "bool" => Token::KwBoolTy,
            "true" => Token::KwTrue,
            "false" => Token::KwFalse,
            "pre" => Token::KwPre,
            "when" => Token::KwWhen,
            "default" => Token::KwDefault,
            "not" => Token::KwNot,
            "and" => Token::KwAnd,
            "or" => Token::KwOr,
            "sync" => Token::KwSync,
            _ => return None,
        })
    };

    while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos { line, col };
        let advance = |i: &mut usize, col: &mut u32, n: usize| {
            *i += n;
            *col += n as u32;
        };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => advance(&mut i, &mut col, 1),
            '-' if bytes.get(i + 1) == Some(&'-') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                col += (i - start) as u32;
                let token = keyword(&word).unwrap_or(Token::Ident(word));
                out.push(Spanned { token, pos });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                col += (i - start) as u32;
                let value = word.parse::<i64>().map_err(|_| LangError::Lex {
                    pos,
                    message: format!("integer literal `{word}` out of range"),
                })?;
                out.push(Spanned { token: Token::Int(value), pos });
            }
            ':' => {
                if bytes.get(i + 1) == Some(&'=') {
                    advance(&mut i, &mut col, 2);
                    out.push(Spanned { token: Token::Assign, pos });
                } else {
                    advance(&mut i, &mut col, 1);
                    out.push(Spanned { token: Token::Colon, pos });
                }
            }
            '^' => {
                if bytes.get(i + 1) == Some(&'=') {
                    advance(&mut i, &mut col, 2);
                    out.push(Spanned { token: Token::SyncEq, pos });
                } else {
                    advance(&mut i, &mut col, 1);
                    out.push(Spanned { token: Token::Caret, pos });
                }
            }
            '/' => {
                if bytes.get(i + 1) == Some(&'=') {
                    advance(&mut i, &mut col, 2);
                    out.push(Spanned { token: Token::Ne, pos });
                } else {
                    return Err(LangError::Lex { pos, message: "expected `/=`".into() });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    advance(&mut i, &mut col, 2);
                    out.push(Spanned { token: Token::Le, pos });
                } else {
                    advance(&mut i, &mut col, 1);
                    out.push(Spanned { token: Token::Lt, pos });
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    advance(&mut i, &mut col, 2);
                    out.push(Spanned { token: Token::Ge, pos });
                } else {
                    advance(&mut i, &mut col, 1);
                    out.push(Spanned { token: Token::Gt, pos });
                }
            }
            ';' => {
                advance(&mut i, &mut col, 1);
                out.push(Spanned { token: Token::Semi, pos });
            }
            ',' => {
                advance(&mut i, &mut col, 1);
                out.push(Spanned { token: Token::Comma, pos });
            }
            '{' => {
                advance(&mut i, &mut col, 1);
                out.push(Spanned { token: Token::LBrace, pos });
            }
            '}' => {
                advance(&mut i, &mut col, 1);
                out.push(Spanned { token: Token::RBrace, pos });
            }
            '(' => {
                advance(&mut i, &mut col, 1);
                out.push(Spanned { token: Token::LParen, pos });
            }
            ')' => {
                advance(&mut i, &mut col, 1);
                out.push(Spanned { token: Token::RParen, pos });
            }
            '+' => {
                advance(&mut i, &mut col, 1);
                out.push(Spanned { token: Token::Plus, pos });
            }
            '-' => {
                advance(&mut i, &mut col, 1);
                out.push(Spanned { token: Token::Minus, pos });
            }
            '*' => {
                advance(&mut i, &mut col, 1);
                out.push(Spanned { token: Token::Star, pos });
            }
            '=' => {
                advance(&mut i, &mut col, 1);
                out.push(Spanned { token: Token::Eq, pos });
            }
            other => {
                return Err(LangError::Lex {
                    pos,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            toks("process P default defaulted"),
            vec![
                Token::KwProcess,
                Token::Ident("P".into()),
                Token::KwDefault,
                Token::Ident("defaulted".into())
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            toks(":= ^= ^ <= < >= > = /= + - *"),
            vec![
                Token::Assign,
                Token::SyncEq,
                Token::Caret,
                Token::Le,
                Token::Lt,
                Token::Ge,
                Token::Gt,
                Token::Eq,
                Token::Ne,
                Token::Plus,
                Token::Minus,
                Token::Star
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(toks("42 0"), vec![Token::Int(42), Token::Int(0)]);
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            toks("x -- the rest is ignored ;;;\ny"),
            vec![Token::Ident("x".into()), Token::Ident("y".into())]
        );
    }

    #[test]
    fn tracks_positions() {
        let spanned = tokenize("x\n  y").unwrap();
        assert_eq!(spanned[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(spanned[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(tokenize("x ? y"), Err(LangError::Lex { .. })));
        assert!(matches!(tokenize("x / y"), Err(LangError::Lex { .. })));
    }

    #[test]
    fn rejects_huge_literals() {
        assert!(matches!(tokenize("999999999999999999999999"), Err(LangError::Lex { .. })));
    }
}
